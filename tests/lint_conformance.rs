//! Conformance suite for the `fixref-lint` diagnostics engine.
//!
//! Pins the lint report of every example design against the golden
//! baselines in `tests/golden/lint_*.txt`, and proves the headline
//! static-schedule claims: the LMS equalizer verifies FXL001-clean under
//! its declared schedule, the timing-recovery loop's strobe-gated
//! signals are caught, and a broken schedule declaration downgrades the
//! incremental cache from `Partial` to `Cold`.
//!
//! CI runs this suite under several `FIXREF_TEST_SHARDS` values; every
//! assertion here compares against checked-in bytes, so any worker-count
//! dependence in the lint pipeline shows up as a golden diff.
//!
//! To regenerate after an intentional diagnostics change:
//!
//! ```text
//! cargo run --release -p fixref-bench --bin lint
//! # then split each `=== name ===` section into tests/golden/lint_<name>.txt
//! ```

use fixref::lint::{Code, Linter, Severity};
use fixref::obs::DefaultRecorder;
use fixref::refine::{CachePlan, EvalCache};
use fixref::sim::{Design, SignalRef};
use fixref_bench::lint_example_designs;

/// Diffs `actual` against a golden file with a line-numbered report.
fn assert_matches_golden(actual: &str, golden_path: &str) {
    let path = format!("{}/tests/golden/{golden_path}", env!("CARGO_MANIFEST_DIR"));
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {path} unreadable: {e}"));
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "first divergence at {golden_path}:{}", i + 1);
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "line-count mismatch against {golden_path}"
    );
    panic!("whitespace-only divergence against {golden_path}");
}

#[test]
fn every_example_report_matches_its_golden_baseline() {
    let examples = lint_example_designs();
    assert_eq!(examples.len(), 6, "example inventory drifted");
    for example in &examples {
        assert_matches_golden(
            &example.report.render_text(),
            &format!("lint_{}.txt", example.name),
        );
    }
}

#[test]
fn lms_equalizer_verifies_clean_under_its_declared_static_schedule() {
    let examples = lint_example_designs();
    let lms = examples
        .iter()
        .find(|e| e.name == "lms_equalizer")
        .expect("lms example present");
    // The paper's Table 1 datapath is statically scheduled: every signal
    // is written exactly once per sample. FXL001 must stay silent.
    assert!(
        lms.report.with_code(Code::StaticSchedule).is_empty(),
        "LMS must be FXL001-clean:\n{}",
        lms.report.render_text()
    );
    // Its only finding is the paper's unclamped {w, b} adaptation loop.
    assert_eq!(lms.report.diagnostics.len(), 1);
    let cycle = &lms.report.with_code(Code::UnclampedFeedback)[0];
    assert_eq!(cycle.related, vec!["b".to_string(), "w".to_string()]);
}

#[test]
fn timing_recovery_strobe_gated_signals_are_caught_by_fxl001() {
    let examples = lint_example_designs();
    let timing = examples
        .iter()
        .find(|e| e.name == "timing_recovery")
        .expect("timing example present");
    let schedule = timing.report.with_code(Code::StaticSchedule);
    let flagged: Vec<&str> = schedule.iter().map(|d| d.signal.as_str()).collect();
    // The loop-filter side of the timing loop only runs when the strobe
    // fires (~every other sample), so every signal crossing that clock
    // boundary must carry an FXL001 diagnostic.
    for expected in ["mu", "phase", "step", "fc[0]", "fc[1]", "fc[2]", "fc[3]"] {
        assert!(
            flagged.contains(&expected),
            "{expected} missing from FXL001 findings: {flagged:?}"
        );
    }
    // The example never calls declare_static_schedule(), so these are
    // warnings (advice), not errors (a broken declaration).
    assert!(schedule.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn known_clean_design_produces_zero_diagnostics() {
    // Feedforward, saturating, range-annotated, single-definition, every
    // signal read: nothing for any of the six passes to object to.
    let design = Design::new();
    let x = design.sig_typed("x", "<8,6,tc,st,rd>".parse().expect("valid dtype"));
    let y = design.sig_typed("y", "<10,6,tc,st,rd>".parse().expect("valid dtype"));
    let z = design.sig_typed("z", "<12,6,tc,st,rd>".parse().expect("valid dtype"));
    design.declare_static_schedule();
    design.record_graph(true);
    for i in 0..256 {
        x.set((i as f64 * 0.1).sin());
        y.set(x.get() * 0.5 + 0.25);
        z.set(y.get() - x.get());
        let _ = z.get();
        design.tick();
    }
    design.record_graph(false);
    let report = Linter::new().run(&design);
    assert!(
        report.is_clean(),
        "expected a clean report, got:\n{}",
        report.render_text()
    );
}

#[test]
fn jsonl_rendering_is_bit_identical_across_runs() {
    // The linter must be a pure function of the recorded graph and the
    // merged monitor counters: two full passes over the example designs
    // (fresh simulations each) render byte-identical JSONL.
    let first: Vec<String> = lint_example_designs()
        .iter()
        .map(|e| e.report.render_jsonl())
        .collect();
    let second: Vec<String> = lint_example_designs()
        .iter()
        .map(|e| e.report.render_jsonl())
        .collect();
    assert_eq!(first, second);
    // Every line is valid single-line JSON with the stable field order.
    for jsonl in &first {
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"code\":\"FXL"), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
        }
    }
}

#[test]
fn broken_schedule_declaration_downgrades_the_cache_plan_to_cold() {
    // declare_static_schedule() is the designer's promise; FXL001 is the
    // auditor. When the promise is broken (a half-rate strobe), the
    // incremental cache must refuse the Partial plan even though the
    // declaration was made.
    let rec = DefaultRecorder::new();
    let d = Design::new();
    let x = d.sig("x");
    let xs = d.sig("xs");
    let slow = d.reg("slow");
    let tracked = d.sig("tracked");
    d.declare_static_schedule();
    let mut cache = EvalCache::new();
    let _ = cache.plan(&d, false, &rec); // drain declaration dirt
    d.record_graph(true);
    for i in 0..64 {
        x.set(i as f64 * 0.01);
        xs.set(x.get() * 0.5);
        if i % 2 == 0 {
            slow.set(xs.get() + 1.0);
        }
        tracked.set(xs.get() - 0.25);
        d.tick();
    }
    d.record_graph(false);
    cache.store(&d);
    d.set_range(tracked.id(), -2.0, 2.0);
    match cache.plan(&d, false, &rec) {
        CachePlan::Cold => {}
        other => panic!("expected Cold under an FXL001 violation, got {other:?}"),
    }

    // Identical shape, honest schedule (no strobe): Partial is granted.
    let d2 = Design::new();
    let x2 = d2.sig("x");
    let xs2 = d2.sig("xs");
    let tracked2 = d2.sig("tracked");
    d2.declare_static_schedule();
    let mut cache2 = EvalCache::new();
    let _ = cache2.plan(&d2, false, &rec);
    d2.record_graph(true);
    for i in 0..64 {
        x2.set(i as f64 * 0.01);
        xs2.set(x2.get() * 0.5);
        tracked2.set(xs2.get() - 0.25);
        d2.tick();
    }
    d2.record_graph(false);
    cache2.store(&d2);
    d2.set_range(tracked2.id(), -2.0, 2.0);
    match cache2.plan(&d2, false, &rec) {
        CachePlan::Partial { .. } => {}
        other => panic!("expected Partial for the clean schedule, got {other:?}"),
    }
}
