//! Integration tests asserting the *shape* of every reproduced paper
//! result — who wins, by what order, where the crossovers are — so the
//! EXPERIMENTS.md numbers cannot silently rot.

use fixref::refine::LsbStatus;
use fixref_bench::{
    run_baselines, run_complex, run_sqnr, run_table1, run_table2, LMS_SAMPLES, TIMING_SAMPLES,
};

#[test]
fn table1_shape_two_iterations_with_b_intervention() {
    let (history, interventions) = run_table1(LMS_SAMPLES).expect("converges");
    assert_eq!(history.len(), 2, "paper: 2 iterations");

    let first = &history[0];
    let row = |name: &str| {
        first
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    // Iteration 1: w and b suffer range explosion; everything else with
    // range information resolves.
    assert!(row("w").exploded, "w must explode");
    assert!(row("b").exploded, "b must explode");
    for name in [
        "x", "c[0]", "c[1]", "c[2]", "d[0]", "v[1]", "v[3]", "y", "s",
    ] {
        assert!(!row(name).exploded, "{name} must not explode");
        assert!(row(name).decision.is_resolved(), "{name} must resolve");
    }
    // The input range annotation drives x's propagated side.
    assert_eq!(row("x").prop.expect("x has a range").hi, 1.5);

    // Exactly one automatic intervention, on b (w's explosion is
    // inherited and resolves by itself — like the paper's Table 1).
    assert_eq!(interventions.len(), 1, "{interventions:?}");
    assert!(interventions[0].contains("b.range("), "{interventions:?}");

    // Iteration 2: everything with range information resolved.
    let last = history.last().expect("non-empty");
    for a in last {
        if a.name == "v[0]" {
            continue; // constant zero: no range information, by design
        }
        assert!(a.decision.is_resolved(), "{} unresolved in iter 2", a.name);
        assert!(!a.exploded, "{} still exploded in iter 2", a.name);
    }
    // b is decided saturated, as the paper marks it "(st)".
    let b = last.iter().find(|a| a.name == "b").expect("b present");
    assert!(b.decision.is_saturated());
}

#[test]
fn table2_shape_one_iteration_exact_slicer() {
    let history = run_table2(LMS_SAMPLES).expect("converges");
    assert_eq!(history.len(), 1, "paper: one LSB iteration");
    let rows = &history[0];
    let row = |name: &str| {
        rows.iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };

    // The input is quantized <7,5>: its measured sigma is the classic
    // 2^-5/sqrt(12) and its decided LSB sits 2 bits below (k = 1).
    let x = row("x");
    let expected_sigma = (0.03125f64) / 12f64.sqrt();
    assert!(
        (x.std - expected_sigma).abs() / expected_sigma < 0.05,
        "x sigma {} vs theory {expected_sigma}",
        x.std
    );
    assert_eq!(x.lsb, Some(-7));

    // The slicer output is exact with LSB 0 — the paper's y row.
    let y = row("y");
    assert_eq!(y.status, LsbStatus::Exact);
    assert_eq!(y.lsb, Some(0));
    assert_eq!(y.max_abs, 0.0);
    assert_eq!(y.std, 0.0);

    // The FIR tail and slicer input carry comparable noise to the input
    // (their LSBs land within a couple of bits of x's).
    for name in ["v[2]", "v[3]", "w"] {
        let l = row(name).lsb.expect("resolved");
        assert!(
            (-9..=-5).contains(&l),
            "{name} lsb {l} outside the plausible band"
        );
    }
    // b's error is attenuated by the small step size: finer LSB than w.
    assert!(row("b").lsb.expect("resolved") <= row("w").lsb.expect("resolved"));
}

#[test]
fn sqnr_shape_high_thirties_with_subdb_cost() {
    let (sqnr, outcome) = run_sqnr(LMS_SAMPLES).expect("converges");
    // Paper: 39.8 dB before, 39.1 dB after. Shapes: high-30s/low-40s
    // before; refinement costs well under 2.5 dB.
    assert!(
        (37.0..=44.0).contains(&sqnr.before_db),
        "before {}",
        sqnr.before_db
    );
    assert!(sqnr.after_db < sqnr.before_db, "refinement cannot add SQNR");
    assert!(
        sqnr.cost_db() < 2.5,
        "cost {} dB vs paper's 0.7",
        sqnr.cost_db()
    );
    assert!(outcome.verify.is_overflow_free());
    // Everything but the locked input got a type.
    assert!(outcome.types.len() >= 12, "{} types", outcome.types.len());
    assert!(outcome.unrefined.is_empty(), "{:?}", outcome.unrefined);
}

#[test]
fn complex_example_shape_matches_section_6_1() {
    let r = run_complex(TIMING_SAMPLES).expect("converges");
    assert_eq!(r.signals, 61, "paper: 61 signals");
    assert_eq!(r.msb_iterations, 2, "paper: 2 MSB iterations");
    assert_eq!(
        r.forced_saturations, 2,
        "paper: 2 forced by MSB explosion (the two accumulators)"
    );
    assert_eq!(r.knowledge_saturations, 5, "paper: 5 knowledge-based");
    assert!(
        (46..=56).contains(&r.nonsaturated),
        "paper: 54 non-saturated, got {}",
        r.nonsaturated
    );
    // Sub-to-low single-digit bits of MSB overhead (paper: 0.22).
    assert!(
        (0.0..=2.0).contains(&r.msb_overhead_bits),
        "overhead {}",
        r.msb_overhead_bits
    );
    // The NCO phase is the first divergent signal, stabilized by error().
    assert!(
        r.lsb_divergent.first().map(String::as_str) == Some("phase"),
        "divergent: {:?} (paper: the NCO phase)",
        r.lsb_divergent
    );
    assert!(
        r.lsb_divergent.len() <= 2,
        "at most the two feedback accumulators diverge: {:?}",
        r.lsb_divergent
    );
    assert!(r.lsb_iterations >= 2, "divergence costs an extra iteration");
    assert!(r.outcome.verify.is_overflow_free());

    // §5.2 precision checks on the verification run: the error()-pinned
    // NCO phase must read as the feedback suspect; nothing else in the
    // datapath may hide incoming error.
    use fixref::refine::PrecisionStatus;
    let suspects: Vec<&str> = r
        .precision
        .iter()
        .filter(|c| c.status == PrecisionStatus::FeedbackSuspect)
        .map(|c| c.name.as_str())
        .collect();
    assert!(suspects.contains(&"phase"), "suspects: {suspects:?}");
    assert!(suspects.len() <= 2, "suspects: {suspects:?}");
}

#[test]
fn baselines_shape_hybrid_wins_both_axes() {
    let rows = run_baselines(2000, 35.0).expect("strategies complete");
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.strategy == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let hybrid = get("hybrid");
    let simulation = get("simulation");
    let analytical = get("analytical");

    // Cost axis: the hybrid needs a handful of simulations; the search an
    // order of magnitude more; the analytical method one.
    assert!(
        hybrid.simulations <= 6,
        "hybrid sims {}",
        hybrid.simulations
    );
    assert!(
        simulation.simulations >= hybrid.simulations * 10,
        "search {} vs hybrid {}",
        simulation.simulations,
        hybrid.simulations
    );
    assert_eq!(analytical.simulations, 1);

    // Quality axis: all meet the target; the hybrid clears it.
    assert!(hybrid.quality.expect("measured") >= 35.0);
    assert!(simulation.quality.expect("measured") >= 35.0);
    assert!(analytical.quality.expect("measured") >= 35.0);

    // Wordlength axis: the analytical method decides more bits than the
    // hybrid on the same design (overestimation).
    assert!(
        analytical.mean_wordlength.expect("typed") > hybrid.mean_wordlength.expect("typed"),
        "analytical {} vs hybrid {}",
        analytical.mean_wordlength.expect("typed"),
        hybrid.mean_wordlength.expect("typed")
    );
}

#[test]
fn case_study_shape_qam_ffe() {
    let r = fixref_bench::run_case_study(4000).expect("converges");
    assert_eq!(r.signals, 38);
    assert_eq!(r.msb_iterations, 2, "explosions resolve in one extra pass");
    // All ten adaptive complex coefficients are multiplicative feedback:
    // every one must be pinned after range explosion.
    assert_eq!(r.forced_saturations, 10);
    assert!(r.sqnr_db > 35.0, "SQNR {}", r.sqnr_db);
    assert_eq!(
        r.decision_mismatches, 0,
        "fixed path must decide like float"
    );
    assert!(r.outcome.verify.is_overflow_free());
    assert!(r.gates > 0.0);
}

#[test]
fn scaling_shape_hybrid_flat_search_grows() {
    let rows = fixref_bench::run_scaling(1200, 33.0).expect("strategies complete");
    assert_eq!(rows.len(), 2);
    let (small, large) = (&rows[0], &rows[1]);
    assert!(large.signals > small.signals * 2);
    // Hybrid cost is flat in design size.
    assert!(small.hybrid_sims <= 6 && large.hybrid_sims <= 6);
    assert_eq!(small.hybrid_sims, large.hybrid_sims);
    // Search cost grows with the signal count.
    assert!(
        large.search_sims > small.search_sims,
        "search {} -> {}",
        small.search_sims,
        large.search_sims
    );
    assert!(large.search_sims >= large.hybrid_sims * 20);
}
