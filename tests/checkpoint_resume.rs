//! Conformance suite for checkpoint/resume.
//!
//! The contract under test: a flow interrupted after any completed
//! iteration and resumed via [`RefinementFlow::resume_from`] produces a
//! journal and final annotations **bit-identical** to the uninterrupted
//! run — modulo the single `resumed_from_checkpoint` marker the resumed
//! journal is prefixed with. The matrix covers the LMS equalizer and the
//! timing-recovery loop, the evaluation cache on and off, sequential and
//! swept execution (`FIXREF_TEST_SHARDS` worker counts), and both
//! checkpoint cut points of the sequential LMS flow (after MSB iteration
//! 1 and after MSB convergence).
//!
//! Also here: the serialize→deserialize identity property over seeded
//! random checkpoints, and the crash-resume smoke (a checkpoint *write*
//! failure followed by an interrupt resumes from the previous good file).

use std::path::{Path, PathBuf};

use fixref::obs::Event;
use fixref::refine::{
    Checkpoint, FlowError, RefinePolicy, RefinementFlow, ShardBuilder, SweepDriver,
};
use fixref::sim::{shard_count_from_env, Design, FaultPlan, ScenarioSet, SignalAnnotation};
use fixref_bench::{
    lms_paper_scenario, lms_seed_grid, lms_shard_builder, paper_input_type, timing_shard_builder,
    TIMING_SNR_DB,
};
use fixref_dsp::{LmsConfig, TimingConfig};
use fixref_fixed::DType;

const LMS_SAMPLES: usize = 1200;
const TIMING_SAMPLES: usize = 4000;
const TIMING_SATURATE: [&str; 5] = ["terr", "lp", "lferr", "step", "mu"];

fn lms_config() -> LmsConfig {
    LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    }
}

fn timing_config() -> TimingConfig {
    TimingConfig {
        input_dtype: Some(DType::tc("T_in", 7, 5).expect("valid")),
        input_range: None,
        ..TimingConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("fixref_ckpt_{name}.json"));
    let _ = std::fs::remove_file(&path);
    path
}

/// What a run is judged by: the full event journal, the design's final
/// per-signal annotations (types, pinned ranges, injected sigmas) and the
/// decided types by name.
struct RunTrace {
    journal: Vec<Event>,
    annotations: Vec<SignalAnnotation>,
    types: Vec<(String, String)>,
}

fn trace(
    design: &Design,
    flow: &RefinementFlow,
    outcome: &fixref::refine::FlowOutcome,
) -> RunTrace {
    let mut types: Vec<(String, String)> = outcome
        .types
        .iter()
        .map(|(id, t)| (design.name_of(*id), t.to_string()))
        .collect();
    types.sort();
    RunTrace {
        journal: flow.journal(),
        annotations: design.annotations(),
        types,
    }
}

/// Uninterrupted sequential reference run, checkpointing along the way
/// (so its journal contains the same `checkpoint_written` events the
/// interrupted run produces).
fn cold_sequential(
    builder: Box<ShardBuilder>,
    saturate: &[&str],
    set: &ScenarioSet,
    cached: bool,
    path: &Path,
) -> RunTrace {
    let shard = builder(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    if cached {
        flow.enable_cache();
    }
    for name in saturate {
        flow.force_saturate(design.find(name).expect("declared"));
    }
    flow.checkpoint_to(path.to_path_buf());
    let outcome = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect("cold flow converges");
    trace(&design, &flow, &outcome)
}

/// Runs the flow until the injected interrupt after checkpoint
/// `abort_seq`, then resumes from the file with a fresh design and
/// completes. Saturation hints are *not* re-added on resume — they must
/// come back from the checkpoint.
fn interrupted_then_resumed_sequential(
    builder: Box<ShardBuilder>,
    saturate: &[&str],
    set: &ScenarioSet,
    cached: bool,
    path: &Path,
    abort_seq: usize,
) -> RunTrace {
    let shard = builder(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    if cached {
        flow.enable_cache();
    }
    for name in saturate {
        flow.force_saturate(design.find(name).expect("declared"));
    }
    flow.checkpoint_to(path.to_path_buf());
    flow.set_fault_plan(FaultPlan::seeded(1).abort_after_checkpoint(abort_seq));
    let err = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect_err("injected interrupt fires");
    assert!(
        matches!(err, FlowError::Interrupted { checkpoint } if checkpoint == abort_seq),
        "unexpected error: {err}"
    );
    drop(flow);

    let shard = builder(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::resume_from(design.clone(), RefinePolicy::default(), path)
        .expect("checkpoint resumes");
    if cached {
        flow.enable_cache();
    }
    let outcome = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect("resumed flow converges");
    trace(&design, &flow, &outcome)
}

/// Asserts the resumed trace equals the cold one modulo the leading
/// `resumed_from_checkpoint` marker.
fn assert_bit_identical(cold: &RunTrace, resumed: &RunTrace) {
    assert!(
        matches!(
            resumed.journal.first(),
            Some(Event::ResumedFromCheckpoint { .. })
        ),
        "resumed journal starts with the marker, got {:?}",
        resumed.journal.first()
    );
    assert_eq!(
        &resumed.journal[1..],
        &cold.journal[..],
        "journals diverge after the resume marker"
    );
    assert_eq!(resumed.annotations, cold.annotations, "annotations diverge");
    assert_eq!(resumed.types, cold.types, "decided types diverge");
}

#[test]
fn lms_resume_after_msb_iteration_1_is_bit_identical() {
    let set = lms_paper_scenario(LMS_SAMPLES);
    let cold = cold_sequential(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        false,
        &tmp("lms_cold_a"),
    );
    let resumed = interrupted_then_resumed_sequential(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        false,
        &tmp("lms_resume_a"),
        0,
    );
    assert_bit_identical(&cold, &resumed);
}

#[test]
fn lms_resume_after_msb_convergence_is_bit_identical() {
    // "Interrupted after MSB iteration 2": checkpoint 1 is written when
    // the MSB phase converges on its second iteration.
    let set = lms_paper_scenario(LMS_SAMPLES);
    let cold = cold_sequential(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        false,
        &tmp("lms_cold_b"),
    );
    let resumed = interrupted_then_resumed_sequential(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        false,
        &tmp("lms_resume_b"),
        1,
    );
    assert_bit_identical(&cold, &resumed);
}

#[test]
fn lms_resume_with_evaluation_cache_is_bit_identical() {
    // The checkpoint serializes the warm monitor cache and the pending
    // dirty set; the resumed run replays the same cache decisions.
    let set = lms_paper_scenario(LMS_SAMPLES);
    for abort_seq in [0usize, 1] {
        let cold = cold_sequential(
            lms_shard_builder(lms_config()),
            &[],
            &set,
            true,
            &tmp(&format!("lms_cold_c{abort_seq}")),
        );
        let resumed = interrupted_then_resumed_sequential(
            lms_shard_builder(lms_config()),
            &[],
            &set,
            true,
            &tmp(&format!("lms_resume_c{abort_seq}")),
            abort_seq,
        );
        assert_bit_identical(&cold, &resumed);
    }
}

#[test]
fn timing_loop_resume_is_bit_identical_and_restores_saturation_hints() {
    let set = ScenarioSet::single(31, TIMING_SNR_DB, TIMING_SAMPLES);
    for (cached, abort_seq) in [(false, 1usize), (true, 0)] {
        let tag = format!("timing_{cached}_{abort_seq}");
        let cold = cold_sequential(
            timing_shard_builder(timing_config()),
            &TIMING_SATURATE,
            &set,
            cached,
            &tmp(&format!("cold_{tag}")),
        );
        // The resumed flow gets NO force_saturate calls: the knowledge-
        // based hints must come back from the checkpoint itself.
        let resumed = interrupted_then_resumed_sequential(
            timing_shard_builder(timing_config()),
            &TIMING_SATURATE,
            &set,
            cached,
            &tmp(&format!("resume_{tag}")),
            abort_seq,
        );
        assert_bit_identical(&cold, &resumed);
    }
}

#[test]
fn swept_flow_resume_is_bit_identical_across_worker_counts() {
    let workers = shard_count_from_env(2);
    let set = lms_seed_grid(2, LMS_SAMPLES);
    let master_of = |set: &ScenarioSet| lms_shard_builder(lms_config())(&set.as_slice()[0]).design;

    // Cold swept reference with checkpointing.
    let cold = {
        let master = master_of(&set);
        let mut flow = RefinementFlow::new(master.clone(), RefinePolicy::default());
        flow.checkpoint_to(tmp("swept_cold"));
        let mut driver = SweepDriver::new(set.clone(), workers, lms_shard_builder(lms_config()));
        driver.enable_cache();
        let outcome = flow.run_swept(&mut driver).expect("cold sweep converges");
        trace(&master, &flow, &outcome)
    };

    // Interrupted after checkpoint 1, resumed with a fresh master and a
    // fresh (cold) sweep driver.
    let path = tmp("swept_resume");
    {
        let master = master_of(&set);
        let mut flow = RefinementFlow::new(master, RefinePolicy::default());
        flow.checkpoint_to(path.to_path_buf());
        flow.set_fault_plan(FaultPlan::seeded(1).abort_after_checkpoint(1));
        let mut driver = SweepDriver::new(set.clone(), workers, lms_shard_builder(lms_config()));
        driver.enable_cache();
        let err = flow.run_swept(&mut driver).expect_err("interrupt fires");
        assert!(matches!(err, FlowError::Interrupted { checkpoint: 1 }));
    }
    let resumed = {
        let master = master_of(&set);
        let mut flow = RefinementFlow::resume_from(master.clone(), RefinePolicy::default(), &path)
            .expect("swept checkpoint resumes");
        let mut driver = SweepDriver::new(set.clone(), workers, lms_shard_builder(lms_config()));
        driver.enable_cache();
        let outcome = flow
            .run_swept(&mut driver)
            .expect("resumed sweep converges");
        trace(&master, &flow, &outcome)
    };
    assert_bit_identical(&cold, &resumed);
}

#[test]
fn crash_during_checkpoint_write_resumes_from_previous_good_file() {
    // Checkpoint 1's write fails (disk fault), then the process dies.
    // The file on disk still holds checkpoint 0, which must resume
    // cleanly and reproduce the cold run.
    let set = lms_paper_scenario(LMS_SAMPLES);
    let path = tmp("crash_resume");
    let cold = cold_sequential(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        false,
        &tmp("crash_cold"),
    );

    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    flow.checkpoint_to(path.to_path_buf());
    flow.set_fault_plan(
        FaultPlan::seeded(3)
            .fail_checkpoint_write(1)
            .abort_after_checkpoint(1),
    );
    let err = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect_err("interrupt fires");
    assert!(matches!(err, FlowError::Interrupted { checkpoint: 1 }));
    assert_eq!(
        flow.recorder().counter("fault.checkpoint_write_failures"),
        1
    );
    assert!(flow
        .journal()
        .iter()
        .any(|e| matches!(e, Event::CheckpointFailed { sequence: 1, .. })));
    drop(flow);

    // The file holds checkpoint 0 (the failed write never landed).
    let text = std::fs::read_to_string(&path).expect("previous checkpoint survives");
    let cp = Checkpoint::from_json(&text).expect("parses");
    assert_eq!(cp.next_sequence, 1, "file is the first checkpoint");

    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::resume_from(design.clone(), RefinePolicy::default(), &path)
        .expect("resumes from the good checkpoint");
    let outcome = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect("resumed flow converges");
    assert_bit_identical(&cold, &trace(&design, &flow, &outcome));
}

#[test]
fn torn_checkpoint_write_surfaces_a_structured_parse_error() {
    // A truncated checkpoint file — the artifact a non-atomic writer
    // leaves after a crash mid-write — must produce a structured
    // CheckpointError from resume_from, not a panic and not a silent
    // cold start.
    let set = lms_paper_scenario(LMS_SAMPLES);
    let path = tmp("torn_write");
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    flow.checkpoint_to(path.to_path_buf());
    flow.set_fault_plan(FaultPlan::seeded(1).abort_after_checkpoint(0));
    let _ = flow.run(move |d: &Design, i: usize| stimulus(d, i));
    drop(flow);

    // Tear the file in half.
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    assert!(text.len() > 64, "checkpoint is non-trivial");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let err = RefinementFlow::resume_from(shard.design, RefinePolicy::default(), &path)
        .expect_err("torn checkpoint must be rejected");
    assert!(
        matches!(err, fixref::refine::CheckpointError::Parse(_)),
        "got {err:?}"
    );

    // A missing file is an Io error, equally structured.
    let _ = std::fs::remove_file(&path);
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let err = RefinementFlow::resume_from(shard.design, RefinePolicy::default(), &path)
        .expect_err("missing checkpoint must be rejected");
    assert!(
        matches!(err, fixref::refine::CheckpointError::Io(_)),
        "got {err:?}"
    );
}

#[test]
fn atomic_checkpoint_writes_leave_no_tmp_and_replace_whole_files() {
    // The flow's checkpoint writes go through the tmp+fsync+rename
    // path: after a successful run the destination parses and no *.tmp
    // sibling is left behind.
    let set = lms_paper_scenario(LMS_SAMPLES);
    let path = tmp("atomic_write");
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design, RefinePolicy::default());
    flow.checkpoint_to(path.to_path_buf());
    flow.run(move |d: &Design, i: usize| stimulus(d, i))
        .expect("flow converges");

    let text = std::fs::read_to_string(&path).expect("checkpoint on disk");
    Checkpoint::from_json(&text).expect("final checkpoint parses whole");
    let mut tmp_sibling = path.as_os_str().to_owned();
    tmp_sibling.push(".tmp");
    assert!(
        !std::path::Path::new(&tmp_sibling).exists(),
        "temporary write file must be renamed away"
    );
}

#[test]
fn resume_against_a_mismatched_design_is_rejected() {
    let set = lms_paper_scenario(LMS_SAMPLES);
    let path = tmp("mismatch");
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design, RefinePolicy::default());
    flow.checkpoint_to(path.to_path_buf());
    flow.set_fault_plan(FaultPlan::seeded(1).abort_after_checkpoint(0));
    let _ = flow.run(move |d: &Design, i: usize| stimulus(d, i));

    // A design with different signals cannot host the checkpoint.
    let other = Design::new();
    other.sig("unrelated");
    let err = RefinementFlow::resume_from(other, RefinePolicy::default(), &path)
        .expect_err("mismatch detected");
    assert!(
        matches!(err, fixref::refine::CheckpointError::Mismatch(_)),
        "got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Serialization property test
// ---------------------------------------------------------------------------

mod proptest {
    use fixref::obs::{Event, Phase};
    use fixref::refine::{CacheState, Checkpoint, Cursor, LsbStatus, MsbDecision};
    use fixref::sim::{OverflowEvent, SignalAnnotation, SignalId, SignalStats};
    use fixref_fixed::{
        DType, ErrorStats, Interval, OverflowMode, RangeStats, Rng64, RoundingMode, Signedness,
    };

    fn name(rng: &mut Rng64) -> String {
        let tokens = ["x", "acc", "err", "w0", "lp", "y\"q\\", "μ-step", ""];
        tokens[rng.below(tokens.len() as u64) as usize].to_string()
    }

    fn interval(rng: &mut Rng64) -> Interval {
        match rng.below(4) {
            0 => Interval::EMPTY,
            1 => Interval::UNBOUNDED,
            2 => Interval {
                lo: f64::NEG_INFINITY,
                hi: rng.uniform(-1.0, 1.0),
            },
            _ => {
                let lo = rng.uniform(-1e6, 1e6);
                Interval {
                    lo,
                    hi: lo + rng.uniform(0.0, 1e3),
                }
            }
        }
    }

    fn dtype(rng: &mut Rng64) -> DType {
        DType::new(
            name(rng),
            1 + rng.below(63) as i32,
            rng.below(16) as i32 - 8,
            if rng.below(2) == 0 {
                Signedness::TwosComplement
            } else {
                Signedness::Unsigned
            },
            match rng.below(3) {
                0 => OverflowMode::Wrap,
                1 => OverflowMode::Saturate,
                _ => OverflowMode::Error,
            },
            if rng.below(2) == 0 {
                RoundingMode::Round
            } else {
                RoundingMode::Floor
            },
        )
        .expect("generated dtype is valid")
    }

    fn decision(rng: &mut Rng64) -> MsbDecision {
        match rng.below(4) {
            0 => MsbDecision::Agree {
                msb: rng.below(32) as i32 - 16,
            },
            1 => MsbDecision::Saturate {
                msb: rng.below(32) as i32 - 16,
                guard: interval(rng),
                forced: rng.below(2) == 0,
            },
            2 => MsbDecision::Tradeoff {
                stat_msb: rng.below(16) as i32,
                prop_msb: rng.below(16) as i32,
                chosen: rng.below(16) as i32,
                saturate: rng.below(2) == 0,
            },
            _ => MsbDecision::Unresolved {
                reason: format!("reason {} \"quoted\"", rng.below(100)),
            },
        }
    }

    fn checkpoint(rng: &mut Rng64) -> Checkpoint {
        let id = SignalId::from_raw(u32::MAX);
        let names: Vec<String> = (0..rng.below(4)).map(|_| name(rng)).collect();
        Checkpoint {
            cursor: match rng.below(3) {
                0 => Cursor::Msb {
                    next: rng.below(8) as usize + 1,
                },
                1 => Cursor::Lsb {
                    next: rng.below(8) as usize + 1,
                },
                _ => Cursor::Apply,
            },
            msb_done: rng.below(8) as usize,
            lsb_done: rng.below(8) as usize,
            next_sequence: rng.below(8) as usize,
            msb_journal_start: rng.below(64) as usize,
            lsb_journal_start: (rng.below(2) == 0).then(|| rng.below(64) as usize),
            annotations: (0..rng.below(5))
                .map(|_| SignalAnnotation {
                    name: name(rng),
                    dtype: (rng.below(2) == 0).then(|| dtype(rng)),
                    range: (rng.below(2) == 0).then(|| interval(rng)),
                    error_sigma: (rng.below(2) == 0).then(|| rng.uniform(0.0, 1.0)),
                })
                .collect(),
            pinned_explosion: names.clone(),
            force_saturate: names.clone(),
            excluded: Vec::new(),
            feedback: names.clone(),
            troubled: names,
            msb_final: (rng.below(2) == 0).then(|| {
                (0..rng.below(3))
                    .map(|_| fixref::refine::MsbAnalysis {
                        id,
                        name: name(rng),
                        accesses: rng.next_u64() >> 16,
                        stat: (rng.below(2) == 0).then(|| interval(rng)),
                        stat_msb: (rng.below(2) == 0).then(|| rng.below(32) as i32 - 16),
                        prop: (rng.below(2) == 0).then(|| interval(rng)),
                        prop_msb: (rng.below(2) == 0).then(|| rng.below(32) as i32 - 16),
                        exploded: rng.below(2) == 0,
                        decision: decision(rng),
                        mode: OverflowMode::Saturate,
                        signedness: Signedness::TwosComplement,
                    })
                    .collect()
            }),
            lsb_final: (rng.below(2) == 0).then(|| {
                (0..rng.below(3))
                    .map(|_| fixref::refine::LsbAnalysis {
                        id,
                        name: name(rng),
                        assigns: rng.next_u64() >> 16,
                        max_abs: rng.uniform(0.0, 10.0),
                        mean: rng.uniform(-1.0, 1.0),
                        std: rng.uniform(0.0, 1.0),
                        lsb: (rng.below(2) == 0).then(|| -(rng.below(24) as i32)),
                        status: match rng.below(4) {
                            0 => LsbStatus::Resolved,
                            1 => LsbStatus::Exact,
                            2 => LsbStatus::Diverged,
                            _ => LsbStatus::NoData,
                        },
                        precision_loss: rng.below(2) == 0,
                        floor_mean_shift: (rng.below(2) == 0).then(|| rng.uniform(-0.1, 0.1)),
                        rounding: RoundingMode::Round,
                    })
                    .collect()
            }),
            cache: CacheState {
                warm: rng.below(2) == 0,
                dirty: (0..rng.below(3)).map(|_| name(rng)).collect(),
                data: (rng.below(2) == 0).then(|| {
                    let stats = (0..rng.below(3))
                        .map(|_| {
                            let mut stat = RangeStats::new();
                            for _ in 0..rng.below(4) {
                                stat.record(rng.uniform(-2.0, 2.0));
                            }
                            let mut err = ErrorStats::new();
                            for _ in 0..rng.below(4) {
                                err.record(rng.uniform(-1e-3, 1e-3));
                            }
                            SignalStats {
                                name: name(rng),
                                stat,
                                prop: interval(rng),
                                consumed: err,
                                produced: ErrorStats::new(),
                                overflows: rng.below(100),
                                reads: rng.next_u64() >> 20,
                                writes: rng.next_u64() >> 20,
                                granularity: (rng.below(2) == 0).then(|| rng.below(64) as i32 - 32),
                                non_dyadic: rng.below(2) == 0,
                            }
                        })
                        .collect();
                    let events = (0..rng.below(3))
                        .map(|_| OverflowEvent {
                            signal: id,
                            name: name(rng),
                            value: rng.uniform(-100.0, 100.0),
                            cycle: rng.next_u64() >> 20,
                        })
                        .collect();
                    (stats, events, rng.next_u64() >> 20)
                }),
            },
            journal: vec![
                Event::IterationStarted {
                    phase: if rng.below(2) == 0 {
                        Phase::Msb
                    } else {
                        Phase::Lsb
                    },
                    iteration: rng.below(8) as usize,
                },
                Event::CheckpointWritten {
                    sequence: rng.below(8) as usize,
                    phase: Phase::Msb,
                    iteration: rng.below(8) as usize,
                },
                Event::ShardFailed {
                    shard: rng.below(8) as usize,
                    scenario: name(rng),
                    attempts: rng.below(3) as usize + 1,
                    cause: "panicked: \"quoted\" cause\nsecond line".into(),
                },
            ],
        }
    }

    #[test]
    fn serialize_deserialize_is_the_identity() {
        let mut rng = Rng64::seed_from_u64(0xC0FFEE);
        for case in 0..50 {
            let cp = checkpoint(&mut rng);
            let text = cp.to_json();
            let back = Checkpoint::from_json(&text)
                .unwrap_or_else(|e| panic!("case {case} failed to parse: {e}\n{text}"));
            assert_eq!(back, cp, "case {case} round-trip diverged");
        }
    }
}
