//! Cross-check: the bit-true RTL interpreter over the recorded graph must
//! reproduce the refined equalizer's fixed-point simulation exactly —
//! cycle by cycle, bit for bit. This is the executable proof that the
//! VHDL generator's source of truth (graph + decided types) is faithful.

use fixref::codegen::{generate_vhdl, RtlInterpreter, VhdlOptions};
use fixref::dsp::lms::equalizer_stimulus;
use fixref::dsp::{LmsConfig, LmsEqualizer};
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::{Design, SignalRef};

fn refined_equalizer() -> (Design, LmsEqualizer) {
    let design = Design::with_seed(0x17E5);
    let config = LmsConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("valid")),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let eq_for_flow = eq.clone();
    flow.run(move |_, _| {
        eq_for_flow.init();
        for &x in &equalizer_stimulus(17, 28.0, 2000) {
            eq_for_flow.step(x);
        }
    })
    .expect("flow converges");
    (design, eq)
}

#[test]
fn rtl_interpreter_matches_simulation_bit_for_bit() {
    let (design, eq) = refined_equalizer();

    // Re-record the graph with all types in place (the refined dataflow).
    design.reset_stats();
    design.reset_state();
    design.clear_graph();
    design.record_graph(true);
    eq.init();
    for &x in &equalizer_stimulus(19, 28.0, 32) {
        eq.step(x);
    }
    design.record_graph(false);
    let graph = design.graph();

    let mut rtl = RtlInterpreter::new(&design, &graph).expect("fully typed design");
    // x plus (interpreter-visible) constants classified correctly: x is
    // the only multi-valued input.
    assert_eq!(rtl.inputs(), vec![eq.x().id()]);

    // Replay both from reset and compare every monitored signal per
    // cycle. Constant wires (the coefficients) re-evaluate every step, so
    // no separate loading pass is needed on the RTL side.
    design.reset_state();
    eq.init();
    let watch: Vec<_> = eq.signal_ids();
    for (cycle, &x) in equalizer_stimulus(23, 28.0, 400).iter().enumerate() {
        eq.step(x);
        rtl.set_input(eq.x().id(), x);
        rtl.step();
        rtl.tick();
        for &id in &watch {
            let (_, sim_fix) = design.peek(id);
            let rtl_val = rtl.value(id);
            assert_eq!(
                rtl_val,
                sim_fix,
                "cycle {cycle}: {} rtl {rtl_val} vs sim {sim_fix}",
                design.name_of(id)
            );
        }
    }
}

#[test]
fn slicer_select_reaches_the_vhdl() {
    // Regression for literal operands poisoning expression recording: the
    // slicer must appear as a real f_sel *use*, and y as a driven wire,
    // not an inferred input.
    let (design, eq) = refined_equalizer();
    design.clear_graph();
    design.record_graph(true);
    design.reset_state();
    eq.init();
    for &x in &equalizer_stimulus(19, 28.0, 32) {
        eq.step(x);
    }
    let vhdl = generate_vhdl(
        &design,
        &[eq.y().id()],
        &VhdlOptions::named("lms").with_input(eq.x().id()),
    )
    .expect("generates");
    assert!(vhdl.contains("y <= "), "y must be a driven wire\n{vhdl}");
    assert!(!vhdl.contains("y : in"), "y must not be an input\n{vhdl}");
    let f_sel_uses = vhdl
        .lines()
        .filter(|l| l.contains("f_sel(") && !l.trim_start().starts_with("function"))
        .count();
    assert!(f_sel_uses >= 1, "no f_sel use found\n{vhdl}");
}
