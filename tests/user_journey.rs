//! The full downstream-user journey through the public API: compose a
//! design from the reusable blocks, refine it, cross-check the refined
//! dataflow with the RTL interpreter, and emit VHDL plus a self-checking
//! testbench — every crate in one pass.

use fixref::codegen::{generate_testbench, generate_vhdl, RtlInterpreter, VhdlOptions};
use fixref::dsp::blocks::{Accumulator, FirBlock};
use fixref::fixed::DType;
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::{Design, SignalRef};

#[test]
fn compose_refine_interpret_generate() {
    // 1. Compose: ADC input -> smoothing FIR -> leaky accumulator.
    let design = Design::with_seed(0x10AD);
    let adc: DType = "<8,6,tc,st,rd>".parse().expect("valid");
    let x = design.sig_typed("x", adc);
    let fir = FirBlock::new(&design, "lp", &[0.25, 0.5, 0.25]);
    let acc = Accumulator::new(&design, "env", 0.75);

    // 2. Refine with a representative stimulus.
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let (xc, firc, accc) = (x.clone(), fir.clone(), acc.clone());
    let outcome = flow
        .run(move |d, _| {
            firc.init();
            for i in 0..1500 {
                xc.set(((i as f64) * 0.21).sin() * 0.9);
                let f = firc.step(xc.get());
                accc.step(f);
                d.tick();
            }
        })
        .expect("flow converges");
    assert!(outcome.verify.is_overflow_free());
    assert!(outcome.unrefined.len() <= 1, "{:?}", outcome.unrefined); // lp_v[0]

    // 3. Re-record the refined dataflow and cross-check with the RTL
    //    interpreter, bit for bit.
    design.reset_stats();
    design.reset_state();
    design.clear_graph();
    design.record_graph(true);
    fir.init();
    for i in 0..8 {
        x.set(0.1 * i as f64);
        let f = fir.step(x.get());
        acc.step(f);
        design.tick();
    }
    design.record_graph(false);
    let graph = design.graph();

    let mut rtl = RtlInterpreter::new(&design, &graph).expect("fully typed");
    design.reset_state();
    fir.init();
    for i in 0..200 {
        let v = ((i as f64) * 0.33).sin();
        x.set(v);
        let f = fir.step(x.get());
        acc.step(f);
        design.tick();
        rtl.set_input(x.id(), v);
        rtl.step();
        rtl.tick();
        let out_id = acc.state().id();
        assert_eq!(rtl.value(out_id), design.peek(out_id).1, "cycle {i}");
    }

    // 4. Emit the VHDL entity and a self-checking testbench.
    let opts = VhdlOptions::named("envelope").with_input(x.id());
    let outputs = vec![acc.state().id(), fir.output().id()];
    let vhdl = generate_vhdl(&design, &outputs, &opts).expect("generates");
    assert!(vhdl.contains("entity envelope is"));
    assert!(vhdl.contains("env_o : out signed"));
    assert!(vhdl.contains("rising_edge(clk)"));

    let trace: Vec<f64> = (0..12).map(|i| (i as f64 * 0.4).cos() * 0.8).collect();
    let tb = generate_testbench(&design, &outputs, &opts, &[(x.id(), trace)]).expect("generates");
    assert!(tb.contains("entity tb_envelope"));
    assert_eq!(tb.matches("mismatch").count(), 24); // 12 cycles x 2 outputs
}
