//! Crash-recovery and robustness suite for the refinement job server.
//!
//! The contract under test is the server's reason for existing: a job
//! accepted before a crash is neither lost nor duplicated, and a job
//! recovered after a restart finishes **bit-identically** to the same
//! job run on a server that never crashed — same final status, same
//! decided types, same annotations, same event journal (modulo the
//! leading `resumed_from_checkpoint` marker). Crashes are injected
//! deterministically via [`FaultPlan::server_crash_after_n_checkpoints`],
//! the stand-in for `kill -9` that stops the server abruptly with no
//! terminal journal records and no drain.

use fixref::obs::Event;
use fixref::refine::{FlowSpec, JobSpec};
use fixref::serve::{JobResult, JobState, Server, ServerConfig};
use fixref::sim::{DesignSpec, FaultPlan, RetryPolicy, ScenarioSet};

fn data_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fixref_serve_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lms_job(tenant: &str, flow: FlowSpec) -> JobSpec {
    JobSpec::new(
        tenant,
        DesignSpec::new("lms").with_input_dtype("<7,5,tc,st,rd>"),
        ScenarioSet::single(7, 28.0, 120),
    )
    .with_flow(flow)
}

fn timing_job(tenant: &str, flow: FlowSpec) -> JobSpec {
    JobSpec::new(
        tenant,
        DesignSpec::new("timing"),
        ScenarioSet::single(3, 20.0, 160),
    )
    .with_flow(flow)
}

fn swept_lms_job(tenant: &str, cache: bool) -> JobSpec {
    JobSpec::new(
        tenant,
        DesignSpec::new("lms").with_input_dtype("<7,5,tc,st,rd>"),
        ScenarioSet::grid(&[7, 11], &[28.0], &[], &[120]),
    )
    .with_flow(FlowSpec {
        shards: 2,
        cache,
        max_attempts: 2,
        ..FlowSpec::default()
    })
}

/// The bit-identity projection of a result: everything except attempt
/// counts (a recovered job legitimately consumed more attempts) and the
/// leading resume marker in the journal.
fn comparable(result: &JobResult) -> JobResult {
    let mut projected = result.clone();
    projected.attempts = 0;
    projected
        .journal
        .retain(|e| !matches!(e, Event::ResumedFromCheckpoint { .. }));
    projected
}

/// Runs `specs` on a fresh, fault-free server and returns the results.
fn baseline(name: &str, specs: &[JobSpec]) -> Vec<JobResult> {
    let server = Server::open(ServerConfig::new(data_dir(name))).expect("opens");
    let jobs: Vec<String> = specs
        .iter()
        .map(|s| server.submit(s.clone()).expect("accepted"))
        .collect();
    server.run_until_idle();
    jobs.iter()
        .map(|j| server.result(j).expect("has result"))
        .collect()
}

/// Submits `specs`, lets the injected server crash kill the first life
/// mid-job, restarts over the same data dir, finishes the queue, and
/// returns the results (in submission order).
fn crash_and_recover(name: &str, specs: &[JobSpec], crash_after: usize) -> Vec<JobResult> {
    let dir = data_dir(name);
    let mut config = ServerConfig::new(&dir);
    config.fault_plan = FaultPlan::seeded(0xC0A5).server_crash_after_n_checkpoints(crash_after);
    let server = Server::open(config).expect("opens");
    let jobs: Vec<String> = specs
        .iter()
        .map(|s| server.submit(s.clone()).expect("accepted"))
        .collect();
    server.run_until_idle();
    assert!(server.crashed(), "the injected crash must fire");
    assert!(
        server.queue_depth() >= 1,
        "the crash must leave work queued (crash_after too large?)"
    );
    // No drain, no shutdown: the crashed server is simply dropped, the
    // way kill -9 leaves things.
    drop(server);

    let server = Server::open(ServerConfig::new(&dir)).expect("re-opens");
    assert_eq!(
        server.queue_depth(),
        specs.len(),
        "every non-terminal job must be re-queued on restart"
    );
    let recovered_with_checkpoint = server
        .recorder()
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::JobRecovered {
                    from_checkpoint: true,
                    ..
                }
            )
        })
        .count();
    assert!(
        recovered_with_checkpoint >= 1,
        "the job killed mid-run must recover from its checkpoint"
    );
    server.run_until_idle();
    assert!(!server.crashed());
    jobs.iter()
        .map(|j| server.result(j).expect("has result after recovery"))
        .collect()
}

#[test]
fn sequential_jobs_recover_bit_identically_after_server_crash() {
    let specs = vec![
        lms_job("acme", FlowSpec::default()),
        lms_job(
            "acme",
            FlowSpec {
                backend: "compiled".into(),
                cache: true,
                ..FlowSpec::default()
            },
        ),
        timing_job("globex", FlowSpec::default()),
    ];
    // The first LMS job writes 3 checkpoints; crashing after 2 kills the
    // server mid-job-1 with jobs 2 and 3 still queued.
    let undisturbed = baseline("seq_baseline", &specs);
    let recovered = crash_and_recover("seq_crash", &specs, 2);
    assert_eq!(undisturbed.len(), recovered.len());
    for (u, r) in undisturbed.iter().zip(&recovered) {
        assert_eq!(u.status, "complete", "baseline must converge");
        assert_eq!(comparable(u), comparable(r), "job {}", u.job);
    }
    // The interrupted job really did resume rather than restart.
    assert!(recovered[0]
        .journal
        .iter()
        .any(|e| matches!(e, Event::ResumedFromCheckpoint { .. })));
}

#[test]
fn swept_jobs_recover_bit_identically_after_server_crash() {
    for cache in [false, true] {
        let specs = vec![swept_lms_job("acme", cache), swept_lms_job("globex", cache)];
        let name_base = format!("swept_baseline_{cache}");
        let name_crash = format!("swept_crash_{cache}");
        let undisturbed = baseline(&name_base, &specs);
        let recovered = crash_and_recover(&name_crash, &specs, 2);
        for (u, r) in undisturbed.iter().zip(&recovered) {
            assert_eq!(u.status, "complete");
            assert_eq!(
                u.coverage.as_deref(),
                Some("2 of 2 scenarios"),
                "swept baseline covers the grid"
            );
            assert_eq!(comparable(u), comparable(r), "job {} cache={cache}", u.job);
        }
    }
}

#[test]
fn admission_control_rejects_instead_of_buffering() {
    let mut config = ServerConfig::new(data_dir("admission"));
    config.queue_capacity = 2;
    config.tenant_queue_capacity = 1;
    let server = Server::open(config).expect("opens");

    // Structural rejections: unknown design kind, bad parameters, bad
    // backend — all refused at the door with a reason.
    let unknown = server
        .submit(JobSpec::new(
            "acme",
            DesignSpec::new("fft"),
            ScenarioSet::single(1, 20.0, 50),
        ))
        .expect_err("unknown kind");
    assert!(unknown.reason.contains("fft"), "{unknown}");
    let bad_backend = server
        .submit(lms_job(
            "acme",
            FlowSpec {
                backend: "quantum".into(),
                ..FlowSpec::default()
            },
        ))
        .expect_err("unknown backend");
    assert!(bad_backend.reason.contains("quantum"), "{bad_backend}");

    // Capacity rejections: per-tenant quota first, then the global cap.
    server
        .submit(lms_job("acme", FlowSpec::default()))
        .expect("fits");
    let quota = server
        .submit(lms_job("acme", FlowSpec::default()))
        .expect_err("tenant quota");
    assert!(quota.reason.contains("tenant quota"), "{quota}");
    server
        .submit(lms_job("globex", FlowSpec::default()))
        .expect("fits");
    let full = server
        .submit(lms_job("initech", FlowSpec::default()))
        .expect_err("queue full");
    assert!(full.reason.contains("queue full"), "{full}");

    // Rejections never occupied queue space; the accepted jobs finish.
    assert_eq!(server.queue_depth(), 2);
    assert_eq!(server.run_until_idle(), 2);
    let metrics = server.metrics().render_text();
    assert!(metrics.contains("serve.rejected"), "{metrics}");
    assert!(
        server
            .recorder()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::JobRejected { .. }))
            .count()
            >= 4
    );
}

#[test]
fn cancelled_queued_jobs_stay_cancelled_across_restart() {
    let dir = data_dir("cancel_queued");
    let server = Server::open(ServerConfig::new(&dir)).expect("opens");
    let keep = server
        .submit(lms_job("acme", FlowSpec::default()))
        .expect("ok");
    let drop_job = server
        .submit(lms_job("globex", FlowSpec::default()))
        .expect("ok");
    assert!(server.cancel(&drop_job), "queued job cancels");
    assert!(!server.cancel(&drop_job), "second cancel is a no-op");
    assert_eq!(server.queue_depth(), 1);
    drop(server); // no drain: restart must honour the journaled cancel

    let server = Server::open(ServerConfig::new(&dir)).expect("re-opens");
    assert_eq!(
        server.queue_depth(),
        1,
        "cancelled job must not be re-queued"
    );
    server.run_until_idle();
    assert_eq!(
        server.status(&keep).expect("known").state,
        JobState::Finished
    );
    let cancelled = server.status(&drop_job).expect("known");
    assert_eq!(cancelled.state, JobState::Cancelled);
    assert!(
        server.result(&drop_job).is_none(),
        "no result for a cancelled job"
    );
}

#[test]
fn cancelling_a_running_job_yields_best_so_far_partial() {
    let dir = data_dir("cancel_running");
    let server = std::sync::Arc::new(Server::open(ServerConfig::new(&dir)).expect("opens"));
    // A deliberately long job: a wide swept grid keeps the flow busy
    // well past the cancellation window.
    let job = server
        .submit(
            JobSpec::new(
                "acme",
                DesignSpec::new("timing"),
                ScenarioSet::grid(&[3, 5, 9, 13], &[20.0, 14.0], &[], &[4000]),
            )
            .with_flow(FlowSpec {
                shards: 2,
                ..FlowSpec::default()
            }),
        )
        .expect("accepted");
    let worker = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run_until_idle())
    };
    // Wait for the job to leave the queue, then cancel it mid-run.
    loop {
        let state = server.status(&job).expect("known").state;
        if state == JobState::Running {
            break;
        }
        assert!(
            !state.is_terminal(),
            "job finished before it could be cancelled"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(server.cancel(&job), "running job accepts cancellation");
    worker.join().expect("worker");
    let result = server.result(&job).expect("terminal result exists");
    assert_eq!(result.status, "partial", "reason: {:?}", result.reason);
    let reason = result.reason.expect("partial carries a reason");
    assert!(reason.contains("cancelled"), "{reason}");
    // Cancellation rode the budget-exhaustion path: the journal carries
    // the same best-so-far marker a budget-capped run would.
    assert!(result
        .journal
        .iter()
        .any(|e| matches!(e, Event::BudgetExhausted { .. })));
}

#[test]
fn soak_100_jobs_with_faults_loses_and_duplicates_nothing() {
    let dir = data_dir("soak");
    let tenants = ["acme", "globex", "initech", "umbrella"];
    let specs: Vec<JobSpec> = (0..100)
        .map(|i| {
            let tenant = tenants[i % tenants.len()];
            if i % 5 == 4 {
                // Every fifth job is swept, with a shard panic injected
                // on the first attempt and retried deterministically.
                swept_lms_job(tenant, i % 2 == 0)
            } else {
                lms_job(
                    tenant,
                    FlowSpec {
                        cache: i % 3 == 0,
                        ..FlowSpec::default()
                    },
                )
            }
        })
        .collect();

    // Life 1: shard panics on every swept job's first attempt, and the
    // whole server dies after 150 checkpoints (~mid-soak).
    let mut config = ServerConfig::new(&dir);
    config.queue_capacity = 128;
    config.tenant_queue_capacity = 128;
    config.retry = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    config.fault_plan = FaultPlan::seeded(0x50AC)
        .panic_on(0, 0)
        .server_crash_after_n_checkpoints(150);
    let server = Server::open(config.clone()).expect("opens");
    let jobs: Vec<String> = specs
        .iter()
        .map(|s| server.submit(s.clone()).expect("accepted"))
        .collect();
    assert_eq!(jobs.len(), 100);
    let finished_before_crash = server.run_until_idle();
    assert!(server.crashed(), "the injected crash must fire mid-soak");
    assert!(finished_before_crash < 100, "crash must interrupt the soak");
    drop(server);

    // Life 2: same faults minus the crash; the soak runs to completion.
    config.fault_plan = FaultPlan::seeded(0x50AC).panic_on(0, 0);
    let server = Server::open(config).expect("re-opens");
    server.run_until_idle();
    assert_eq!(server.queue_depth(), 0);

    // Zero lost: every accepted job is finished with a persisted result.
    let mut seen = std::collections::BTreeSet::new();
    for job in &jobs {
        let status = server.status(job).expect("known job");
        assert_eq!(status.state, JobState::Finished, "job {job}");
        let result = server.result(job).expect("result on disk");
        assert_eq!(result.status, "complete", "job {job}: {:?}", result.reason);
        assert!(seen.insert(result.job.clone()), "duplicate result {job}");
    }
    // Zero duplicated: the write-ahead log carries exactly one accepted
    // and one completed record per job, across both server lives.
    let (records, _torn) = fixref::serve::JobLog::replay(dir.join("jobs.wal")).expect("replays");
    let mut accepted = std::collections::BTreeMap::new();
    let mut completed = std::collections::BTreeMap::new();
    for r in &records {
        match r {
            fixref::serve::WalRecord::Accepted { job, .. } => {
                *accepted.entry(job.clone()).or_insert(0u32) += 1;
            }
            fixref::serve::WalRecord::Completed { job, .. } => {
                *completed.entry(job.clone()).or_insert(0u32) += 1;
            }
            _ => {}
        }
    }
    assert_eq!(accepted.len(), 100);
    assert_eq!(completed.len(), 100);
    assert!(accepted.values().all(|&n| n == 1), "duplicated acceptance");
    assert!(completed.values().all(|&n| n == 1), "duplicated completion");
}
