//! Deterministic fault-injection suite for the sweep's fault-tolerance
//! layer.
//!
//! Every degradation path is driven by a seeded [`FaultPlan`] through the
//! public test seam ([`SweepDriver::inject_faults`]): injected worker
//! panics exercise strict abort, retry and quarantine; NaN stimulus
//! bursts exercise the monitors' poisoning resistance; and run budgets
//! exercise the best-effort `Partial` outcome. Nothing here is timing- or
//! scheduling-dependent — each test asserts against exact journal events
//! and replays identically across worker counts (the CI matrix sets
//! `FIXREF_TEST_SHARDS` to 1, 2 and 8).

use std::time::Duration;

use fixref::obs::Event;
use fixref::refine::{
    FaultMode, FaultPolicy, FlowError, FlowStatus, RefinePolicy, RefinementFlow, RunBudget,
    SweepDriver,
};
use fixref::sim::{shard_count_from_env, FaultPlan, ScenarioSet};
use fixref_bench::{lms_paper_scenario, lms_seed_grid, lms_shard_builder, paper_input_type};
use fixref_dsp::LmsConfig;

const SAMPLES: usize = 400;

fn lms_config() -> LmsConfig {
    LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    }
}

fn sweep(scenarios: ScenarioSet) -> SweepDriver {
    SweepDriver::new(
        scenarios,
        shard_count_from_env(2),
        lms_shard_builder(lms_config()),
    )
}

fn flow_for(driver: &SweepDriver) -> RefinementFlow {
    let master = lms_shard_builder(lms_config())(&driver.scenarios().as_slice()[0]).design;
    RefinementFlow::new(master, RefinePolicy::default())
}

#[test]
fn strict_mode_fails_fast_naming_the_scenario() {
    let mut driver = sweep(lms_seed_grid(8, SAMPLES));
    driver.inject_faults(FaultPlan::seeded(41).panic_on(1, 0));
    let mut flow = flow_for(&driver);

    let err = flow.run_swept(&mut driver).expect_err("shard 1 panics");
    match &err {
        FlowError::ShardFailed {
            shard,
            scenario,
            cause,
        } => {
            assert_eq!(*shard, 1);
            assert!(
                scenario.starts_with("s1 seed=8 "),
                "scenario label names the shard: {scenario}"
            );
            assert!(
                cause.contains("injected fault"),
                "cause carries the panic payload: {cause}"
            );
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
    // The failure is journaled before the abort.
    let journal = flow.journal();
    assert!(journal
        .iter()
        .any(|e| matches!(e, Event::ShardFailed { shard: 1, .. })));
    assert_eq!(flow.recorder().counter("fault.shard_failures"), 1);
}

#[test]
fn degraded_mode_quarantines_and_reports_seven_of_eight_coverage() {
    let mut driver = sweep(lms_seed_grid(8, SAMPLES));
    driver.set_fault_policy(FaultPolicy {
        mode: FaultMode::Degraded,
        max_attempts: 1,
    });
    driver.inject_faults(FaultPlan::seeded(41).panic_on(1, 0));
    let mut flow = flow_for(&driver);

    let outcome = flow
        .run_swept(&mut driver)
        .expect("degraded sweep completes best-effort");

    let coverage = outcome.coverage.expect("sweep reports coverage");
    assert_eq!(coverage.completed, 7);
    assert_eq!(coverage.total, 8);
    assert_eq!(coverage.summary(), "7 of 8 scenarios");
    assert!(!coverage.is_full());
    assert_eq!(coverage.quarantined.len(), 1);
    assert!(coverage.quarantined[0].starts_with("s1 "));

    let journal = flow.journal();
    // Failed once, quarantined once — later iterations skip the shard
    // instead of re-failing it.
    assert_eq!(
        journal
            .iter()
            .filter(|e| matches!(e, Event::ShardFailed { shard: 1, .. }))
            .count(),
        1
    );
    assert_eq!(
        journal
            .iter()
            .filter(|e| matches!(e, Event::ShardQuarantined { shard: 1, .. }))
            .count(),
        1
    );
    // The quarantined shard never merges.
    assert!(!journal
        .iter()
        .any(|e| matches!(e, Event::ShardStarted { shard: 1, .. })));
    assert_eq!(flow.recorder().counter("retry.quarantined"), 1);
}

#[test]
fn transient_fault_is_retried_and_the_sweep_completes_fully() {
    let plan = FaultPlan::seeded(99).panic_on(2, 0); // attempt 0 only
    let run = || {
        let mut driver = sweep(lms_seed_grid(8, SAMPLES));
        driver.set_fault_policy(FaultPolicy {
            mode: FaultMode::Strict,
            max_attempts: 2,
        });
        driver.inject_faults(plan.clone());
        let mut flow = flow_for(&driver);
        let outcome = flow.run_swept(&mut driver).expect("retry recovers");
        (outcome, flow.journal())
    };

    let (outcome, journal) = run();
    let coverage = outcome.coverage.expect("coverage reported");
    assert!(coverage.is_full(), "retry restores full coverage");
    assert_eq!(coverage.summary(), "8 of 8 scenarios");
    assert!(journal.iter().any(|e| matches!(
        e,
        Event::ShardRetried {
            shard: 2,
            attempt: 1
        }
    )));
    assert!(!journal
        .iter()
        .any(|e| matches!(e, Event::ShardFailed { .. })));

    // The whole degraded machinery is deterministic: an identical rerun
    // reproduces the journal event-for-event.
    let (outcome2, journal2) = run();
    assert_eq!(journal, journal2);
    assert_eq!(outcome.types, outcome2.types);
}

#[test]
fn nan_stimulus_burst_fails_the_shard_structurally() {
    // The engine's range propagation rejects non-finite bounds, so a
    // NaN-poisoned shard fails *inside the isolation boundary* instead of
    // leaking NaN into the merged monitors.
    let mut driver = sweep(lms_seed_grid(2, SAMPLES));
    driver.inject_faults(FaultPlan::seeded(7).nan_burst(1, 16));
    let mut flow = flow_for(&driver);
    let err = flow
        .run_swept(&mut driver)
        .expect_err("poisoned shard fails");
    match &err {
        FlowError::ShardFailed { shard, cause, .. } => {
            assert_eq!(*shard, 1);
            assert!(cause.contains("NaN"), "cause names the poison: {cause}");
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
    assert_eq!(flow.recorder().counter("fault.nan_bursts"), 1);
}

#[test]
fn degraded_mode_survives_a_nan_burst_with_reduced_coverage() {
    let mut driver = sweep(lms_seed_grid(2, SAMPLES));
    driver.set_fault_policy(FaultPolicy {
        mode: FaultMode::Degraded,
        max_attempts: 1,
    });
    driver.inject_faults(FaultPlan::seeded(7).nan_burst(1, 16));
    let mut flow = flow_for(&driver);
    let outcome = flow
        .run_swept(&mut driver)
        .expect("surviving shard carries the flow");
    let coverage = outcome.coverage.expect("coverage reported");
    assert_eq!(coverage.summary(), "1 of 2 scenarios");
    assert!(coverage.quarantined[0].starts_with("s1 "));
    // The clean shard's monitors were never contaminated: every decided
    // type is finite and well-formed.
    assert!(!outcome.types.is_empty());
    assert!(flow.recorder().counter("fault.nan_bursts") >= 1);
}

#[test]
fn simulation_budget_returns_best_effort_partial() {
    let set = lms_paper_scenario(SAMPLES);
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    flow.set_budget(RunBudget::simulations(1));

    let outcome = flow
        .run(move |d, i| stimulus(d, i))
        .expect("budget exhaustion is not an error");

    assert_eq!(outcome.msb_iterations, 1, "exactly the budgeted simulation");
    assert_eq!(outcome.lsb_iterations, 0, "LSB phase never started");
    match &outcome.status {
        FlowStatus::Partial { reason } => {
            assert!(reason.contains("simulation budget"), "reason: {reason}")
        }
        FlowStatus::Complete => panic!("expected a partial outcome"),
    }
    assert!(flow.budget_exhausted().is_some());
    // Best-so-far annotations were still applied and journaled.
    assert!(!outcome.types.is_empty(), "best-effort types applied");
    assert!(flow
        .journal()
        .iter()
        .any(|e| matches!(e, Event::BudgetExhausted { .. })));
    assert_eq!(flow.recorder().counter("budget.exhausted"), 1);
}

#[test]
fn cancellation_rides_the_budget_path_and_returns_partial() {
    // A pre-cancelled token stops the flow at the first budget
    // checkpoint — exactly like a one-simulation budget: the same
    // BudgetExhausted journal event, the same `budget.exhausted`
    // counter, the same best-so-far Partial outcome. One code path for
    // "ran out" and "called off".
    let set = lms_paper_scenario(SAMPLES);
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let token = fixref::refine::CancelToken::new();
    flow.set_cancel_token(token.clone());
    token.cancel();

    let outcome = flow
        .run(move |d, i| stimulus(d, i))
        .expect("cancellation is not an error");

    assert_eq!(outcome.msb_iterations, 1, "one iteration always completes");
    assert_eq!(outcome.lsb_iterations, 0);
    match &outcome.status {
        FlowStatus::Partial { reason } => {
            assert!(reason.contains("cancelled"), "reason: {reason}")
        }
        FlowStatus::Complete => panic!("expected a partial outcome"),
    }
    assert!(!outcome.types.is_empty(), "best-effort types applied");
    assert!(flow
        .journal()
        .iter()
        .any(|e| matches!(e, Event::BudgetExhausted { .. })));
    assert_eq!(flow.recorder().counter("budget.exhausted"), 1);
}

#[test]
fn uncancelled_token_changes_nothing() {
    let set = lms_paper_scenario(SAMPLES);
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    flow.set_cancel_token(fixref::refine::CancelToken::new());
    let outcome = flow
        .run(move |d, i| stimulus(d, i))
        .expect("flow converges");
    assert!(matches!(outcome.status, FlowStatus::Complete));
}

#[test]
fn zero_wall_budget_still_runs_one_simulation_then_goes_partial() {
    let set = lms_paper_scenario(SAMPLES);
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    flow.set_budget(RunBudget::wall(Duration::ZERO));

    let outcome = flow
        .run(move |d, i| stimulus(d, i))
        .expect("wall exhaustion is not an error");
    assert_eq!(outcome.msb_iterations, 1);
    assert!(outcome.status.is_partial());
    assert!(flow
        .journal()
        .iter()
        .any(|e| matches!(e, Event::BudgetExhausted { .. })));
}
