//! Differential conformance suite for the scenario-sweep engine.
//!
//! The contract under test: the merged refinement outcome depends only on
//! the scenario set, never on how many workers simulate it — and a
//! single-scenario sweep is bit-identical to the plain sequential flow,
//! because folding one shard through the merge is the identity.
//!
//! The worker count for the "parallel" side comes from the
//! `FIXREF_TEST_SHARDS` environment variable (the CI matrix sets 1, 2
//! and 8), defaulting to 2.

use std::collections::BTreeSet;

use fixref::obs::Event;
use fixref::refine::{RefinePolicy, RefinementFlow, SweepDriver};
use fixref::sim::{shard_count_from_env, Design, ScenarioSet, SignalStats};
use fixref_bench::{
    lms_paper_scenario, lms_seed_grid, lms_shard_builder, paper_input_type, timing_shard_builder,
    LMS_SNR_DB, TIMING_SNR_DB,
};
use fixref_dsp::{LmsConfig, TimingConfig};
use fixref_fixed::DType;

/// Everything the outcome of a refinement run is judged by.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    /// Decided types by signal name.
    types: Vec<(String, String)>,
    /// The `type_applied` journal events, as a set.
    type_applied: BTreeSet<(String, String)>,
    /// Iteration counts.
    msb_iterations: usize,
    lsb_iterations: usize,
    /// The master design's merged per-signal monitors after verification
    /// (bitwise: exact min/max, error moments, counters).
    stats: Vec<SignalStats>,
}

fn fingerprint(
    design: &Design,
    flow: &RefinementFlow,
    outcome: &fixref::refine::FlowOutcome,
) -> Fingerprint {
    let mut types: Vec<(String, String)> = outcome
        .types
        .iter()
        .map(|(id, t)| (design.name_of(*id), t.to_string()))
        .collect();
    types.sort();
    let type_applied = flow
        .recorder()
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::TypeApplied { signal, dtype } => Some((signal, dtype)),
            _ => None,
        })
        .collect();
    Fingerprint {
        types,
        type_applied,
        msb_iterations: outcome.msb_iterations,
        lsb_iterations: outcome.lsb_iterations,
        stats: design.export_stats(),
    }
}

fn lms_config() -> LmsConfig {
    LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    }
}

fn timing_config() -> TimingConfig {
    TimingConfig {
        input_dtype: Some(DType::tc("T_in", 7, 5).expect("valid")),
        input_range: None,
        ..TimingConfig::default()
    }
}

/// Runs the full flow over `scenarios` with `workers` threads, using the
/// builder both for the shards and (on scenario 0) for the master design.
fn run_swept(
    builder: Box<fixref::refine::ShardBuilder>,
    force_saturate: &[&str],
    scenarios: &ScenarioSet,
    workers: usize,
) -> Fingerprint {
    let master = builder(&scenarios.as_slice()[0]).design;
    let mut flow = RefinementFlow::new(master.clone(), RefinePolicy::default());
    for name in force_saturate {
        flow.force_saturate(master.find(name).expect("declared"));
    }
    let mut sweep = SweepDriver::new(scenarios.clone(), workers, builder);
    let outcome = flow.run_swept(&mut sweep).expect("swept flow converges");
    fingerprint(&master, &flow, &outcome)
}

/// Runs the plain sequential flow on the shard the builder makes for the
/// set's single scenario — the pre-sweep baseline.
fn run_sequential(
    builder: Box<fixref::refine::ShardBuilder>,
    force_saturate: &[&str],
    scenarios: &ScenarioSet,
) -> Fingerprint {
    assert_eq!(scenarios.len(), 1, "sequential baseline is one scenario");
    let shard = builder(&scenarios.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    for name in force_saturate {
        flow.force_saturate(design.find(name).expect("declared"));
    }
    let outcome = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect("sequential flow converges");
    fingerprint(&design, &flow, &outcome)
}

const LMS_SAMPLES: usize = 1200;
const TIMING_SAMPLES: usize = 4000;

#[test]
fn lms_one_shard_sweep_is_bit_identical_to_sequential_flow() {
    let set = lms_paper_scenario(LMS_SAMPLES);
    let sequential = run_sequential(lms_shard_builder(lms_config()), &[], &set);
    let swept = run_swept(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        shard_count_from_env(2),
    );
    assert_eq!(sequential, swept);
}

#[test]
fn lms_sweep_outcome_is_invariant_under_shard_count() {
    let set = lms_seed_grid(3, LMS_SAMPLES);
    let one = run_swept(lms_shard_builder(lms_config()), &[], &set, 1);
    let many = run_swept(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        shard_count_from_env(2),
    );
    assert_eq!(one, many);
    assert!(!one.types.is_empty(), "refinement decided types");
}

#[test]
fn lms_multi_scenario_ranges_cover_every_scenario() {
    // The merged min/max can only widen as scenarios are added: every
    // single-scenario range must lie inside the grid's merged range.
    let grid = lms_seed_grid(3, LMS_SAMPLES);
    let merged = run_swept(lms_shard_builder(lms_config()), &[], &grid, 1);
    for scenario in &grid {
        let single = ScenarioSet::single(scenario.seed, LMS_SNR_DB, scenario.samples);
        let alone = run_swept(lms_shard_builder(lms_config()), &[], &single, 1);
        for s in &alone.stats {
            let m = merged
                .stats
                .iter()
                .find(|t| t.name == s.name)
                .expect("same signal set");
            if s.stat.count() > 0 {
                assert!(m.stat.min() <= s.stat.min(), "{}", s.name);
                assert!(m.stat.max() >= s.stat.max(), "{}", s.name);
            }
        }
    }
}

#[test]
fn timing_loop_one_shard_sweep_is_bit_identical_to_sequential_flow() {
    let saturate = ["terr", "lp", "lferr", "step", "mu"];
    let set = ScenarioSet::single(31, TIMING_SNR_DB, TIMING_SAMPLES);
    let sequential = run_sequential(timing_shard_builder(timing_config()), &saturate, &set);
    let swept = run_swept(
        timing_shard_builder(timing_config()),
        &saturate,
        &set,
        shard_count_from_env(2),
    );
    assert_eq!(sequential, swept);
}

#[test]
fn timing_loop_sweep_outcome_is_invariant_under_shard_count() {
    let saturate = ["terr", "lp", "lferr", "step", "mu"];
    let set = ScenarioSet::grid(&[31, 32], &[TIMING_SNR_DB], &[], &[TIMING_SAMPLES]);
    let one = run_swept(timing_shard_builder(timing_config()), &saturate, &set, 1);
    let many = run_swept(
        timing_shard_builder(timing_config()),
        &saturate,
        &set,
        shard_count_from_env(2),
    );
    assert_eq!(one, many);
    assert!(!one.types.is_empty(), "refinement decided types");
}
