//! Golden-file tests locking the exact stdout of the Table 1/2 printers.
//!
//! The binaries, the swept runs and these tests all render through
//! [`fixref_bench::table1_text`] / [`fixref_bench::table2_text`], so a
//! formatting or numeric drift anywhere in the pipeline shows up as a
//! diff against `tests/golden/*.txt`.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! cargo run -q -p fixref-bench --bin table1 > tests/golden/table1.txt
//! cargo run -q -p fixref-bench --bin table2 > tests/golden/table2.txt
//! ```

use fixref_bench::{
    lms_paper_scenario, run_table1, run_table1_swept, run_table2, run_table2_swept, table1_text,
    table2_text, LMS_SAMPLES,
};

/// Diffs `actual` against a golden file with a line-numbered report.
fn assert_matches_golden(actual: &str, golden_path: &str) {
    let path = format!("{}/tests/golden/{golden_path}", env!("CARGO_MANIFEST_DIR"));
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {path} unreadable: {e}"));
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "first divergence at {golden_path}:{}", i + 1);
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "{golden_path}: same prefix but different line counts"
    );
    panic!("{golden_path}: outputs differ only in trailing whitespace");
}

#[test]
fn table1_stdout_matches_golden_file() {
    let (history, interventions) = run_table1(LMS_SAMPLES).expect("converges");
    assert_matches_golden(&table1_text(&history, &interventions), "table1.txt");
}

#[test]
fn table2_stdout_matches_golden_file() {
    let history = run_table2(LMS_SAMPLES).expect("converges");
    assert_matches_golden(&table2_text(&history), "table2.txt");
}

#[test]
fn swept_table1_renders_the_same_golden_text() {
    let (history, interventions, _report) =
        run_table1_swept(&lms_paper_scenario(LMS_SAMPLES), 4).expect("converges");
    assert_matches_golden(&table1_text(&history, &interventions), "table1.txt");
}

#[test]
fn swept_table2_renders_the_same_golden_text() {
    let (history, _report) =
        run_table2_swept(&lms_paper_scenario(LMS_SAMPLES), 4).expect("converges");
    assert_matches_golden(&table2_text(&history), "table2.txt");
}
