//! End-to-end: describe → refine → generate VHDL, across all five crates.

use fixref::codegen::{generate_vhdl, VhdlOptions};
use fixref::dsp::lms::equalizer_stimulus;
use fixref::dsp::{LmsConfig, LmsEqualizer};
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::{Design, SignalRef};

fn refined_equalizer() -> (Design, LmsEqualizer) {
    let design = Design::with_seed(0xE2E);
    let config = LmsConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("valid")),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let eq_for_flow = eq.clone();
    flow.run(move |_, _| {
        eq_for_flow.init();
        for &x in &equalizer_stimulus(11, 28.0, 2000) {
            eq_for_flow.step(x);
        }
    })
    .expect("flow converges");
    (design, eq)
}

#[test]
fn refined_lms_generates_structural_vhdl() {
    let (design, eq) = refined_equalizer();
    let vhdl = generate_vhdl(
        &design,
        &[eq.y().id(), eq.w().id()],
        &VhdlOptions::named("lms_equalizer").with_input(eq.x().id()),
    )
    .expect("every signal typed after refinement");

    // Entity and architecture present and closed.
    assert!(vhdl.contains("entity lms_equalizer is"));
    assert!(vhdl.contains("end architecture rtl;"));
    // Clocked design: the delay line and feedback are registers.
    assert!(vhdl.contains("rising_edge(clk)"));
    // Input port for x; output ports for w and y.
    assert!(vhdl.contains("x : in  signed(6 downto 0)"), "{vhdl}");
    assert!(vhdl.contains("y_o : out signed"));
    assert!(vhdl.contains("w_o : out signed"));
    // The slicer lowers to f_sel, assignments quantize through f_quant.
    assert!(vhdl.contains("f_sel("));
    assert!(vhdl.contains("f_quant("));
    // Every equalizer signal appears declared (inputs excepted).
    for name in ["d_0", "d_1", "d_2", "v_1", "v_2", "v_3", "w", "b", "s"] {
        assert!(
            vhdl.contains(&format!("signal {name} :")),
            "{name} not declared\n{vhdl}"
        );
    }
    // Coefficients become constant drives, not ports.
    assert!(vhdl.contains("c_0 <= "));
    assert!(!vhdl.contains("c_0 : in"));
    // Balanced parentheses — a cheap structural well-formedness check.
    assert_eq!(
        vhdl.chars().filter(|&c| c == '(').count(),
        vhdl.chars().filter(|&c| c == ')').count()
    );
}

#[test]
fn vhdl_generation_is_deterministic_across_runs() {
    let make = || {
        let (design, eq) = refined_equalizer();
        generate_vhdl(
            &design,
            &[eq.y().id()],
            &VhdlOptions::named("lms_equalizer").with_input(eq.x().id()),
        )
        .expect("generates")
    };
    assert_eq!(make(), make());
}

#[test]
fn refined_design_still_simulates_bit_true() {
    // After refinement the same handles drive a fixed-point simulation
    // whose fixed path stays on each type's grid.
    let (design, eq) = refined_equalizer();
    design.reset_stats();
    design.reset_state();
    eq.init();
    for &x in &equalizer_stimulus(13, 28.0, 200) {
        eq.step(x);
        let w = eq.w().get();
        let t = design.dtype_of(eq.w().id()).expect("w typed");
        assert!(
            t.is_representable(w.fix()),
            "w fix {} off the {} grid",
            w.fix(),
            t
        );
    }
    // Decisions remain binary ±1 on the fixed path too.
    let y = eq.y().get();
    assert!(y.fix() == 1.0 || y.fix() == -1.0);
}

#[test]
fn conditionally_written_designs_are_rejected_with_guidance() {
    // The timing-recovery loop writes several signals only on strobes
    // (two structurally different definitions per signal); the generator
    // must reject it with the restructuring hint rather than emit
    // multi-driver VHDL.
    use fixref::codegen::CodegenError;
    use fixref::dsp::source::ShapedPamSource;
    use fixref::dsp::{TimingConfig, TimingRecovery};

    let design = Design::new();
    let config = TimingConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("valid")),
        input_range: None,
        ..TimingConfig::default()
    };
    let rx = TimingRecovery::new(&design, &config);
    // Type everything crudely so the only failure is the multi-def.
    for id in rx.signal_ids() {
        if design.dtype_of(id).is_none() {
            design.set_dtype(id, Some("<16,10,tc,st,rd>".parse().expect("valid")));
        }
    }
    design.record_graph(true);
    rx.init();
    let mut src = ShapedPamSource::new(31, 0.35, 2, 0.3, 0.0);
    for _ in 0..64 {
        rx.step(src.next_sample());
    }
    let err = generate_vhdl(&design, &[rx.y().id()], &VhdlOptions::named("timing")).unwrap_err();
    match err {
        CodegenError::MultipleDefinitions { name } => {
            assert!(!name.is_empty());
        }
        other => panic!("expected MultipleDefinitions, got {other}"),
    }
}
