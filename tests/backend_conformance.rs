//! Differential conformance suite for the evaluation backends.
//!
//! The contract under test: selecting [`SimBackend::Compiled`] or
//! [`SimBackend::Batched`] changes only wall-clock time — the refined
//! types, per-signal statistics, overflow events, journal and counters
//! are bit-identical to the interpreted backend (modulo the `backend.*`
//! bookkeeping the backends themselves add, which this suite strips
//! before comparing).
//!
//! Coverage: direct capture→lower→verify→replay equality on all six
//! example designs, plus flow-level comparisons for the LMS equalizer
//! and the timing-recovery loop — sequential and swept, cache off and
//! on. The swept worker count comes from `FIXREF_TEST_SHARDS` (the CI
//! matrix sets 1, 2 and 8), defaulting to 2.

use std::sync::Arc;

use fixref::codegen::lower_trace;
use fixref::dsp::lms::equalizer_stimulus;
use fixref::dsp::qam::{qam_stimulus, FfeConfig, QamFfe};
use fixref::dsp::source::ShapedPamSource;
use fixref::dsp::{
    Awgn, Biquad, CicDecimator, LmsConfig, LmsEqualizer, TimingConfig, TimingRecovery,
};
use fixref::obs::{DefaultRecorder, Event, HistogramSummary};
use fixref::refine::{RefinePolicy, RefinementFlow, SimBackend, SweepDriver};
use fixref::sim::{
    shard_count_from_env, BoundTrace, CompiledProgram, Design, OverflowEvent, ScenarioSet,
    SignalStats,
};
use fixref_bench::{
    lms_paper_scenario, lms_seed_grid, lms_shard_builder, paper_input_type, timing_shard_builder,
    LMS_SNR_DB, TIMING_SNR_DB,
};

const LMS_SAMPLES: usize = 1200;
const TIMING_SAMPLES: usize = 4000;

// ---------------------------------------------------------------------
// Direct replay conformance on the six example designs.
// ---------------------------------------------------------------------

/// Captures one recorded run of `drive` and tries to lower it, applying
/// the same gates as the flow backends: FXL001 static schedule, lowering,
/// verification replay. `None` means the backend would fall back to the
/// interpreter for this design.
fn try_compile_example(
    design: &Design,
    drive: &mut dyn FnMut(),
) -> Option<(CompiledProgram, BoundTrace)> {
    design.reset_stats();
    design.reset_state();
    design.clear_graph();
    design.record_graph(true);
    design.begin_capture();
    drive();
    design.record_graph(false);
    let schedule_ok = fixref::lint::check_static_schedule(design).is_empty();
    let trace = design.end_capture().expect("capture begun above");
    if !schedule_ok {
        return None;
    }
    let (program, bound) = lower_trace(design, &trace).ok()?;
    design
        .verify_compiled(&program, &bound)
        .then_some((program, bound))
}

/// Everything a single simulation run is judged by.
fn run_snapshot(
    design: &Design,
    run: impl FnOnce(),
) -> (Vec<SignalStats>, u64, Vec<OverflowEvent>) {
    design.reset_stats();
    design.reset_state();
    run();
    (
        design.export_stats(),
        design.cycle(),
        design.peek_overflow_events(),
    )
}

/// Asserts the compiled backend is bit-identical to the interpreter on
/// this design: either the tape compiles and its replay reproduces the
/// interpreted run on every monitored quantity, or the design is refused
/// (the backend's journaled fallback) and re-interpretation is
/// deterministic — which is what the fallback's bit-identity rests on.
/// `expect_compiled` pins which of the two paths the design must take,
/// so a lowering regression cannot silently demote a design to fallback.
fn assert_replay_conformance(
    name: &str,
    design: &Design,
    drive: &mut dyn FnMut(),
    expect_compiled: bool,
) {
    let interpreted = match try_compile_example(design, drive) {
        Some((program, trace)) => {
            assert!(expect_compiled, "{name}: expected fallback but compiled");
            let interpreted = run_snapshot(design, &mut *drive);
            let replayed = run_snapshot(design, || {
                design.replay_compiled(&program, &trace);
            });
            assert_eq!(interpreted, replayed, "{name}: compiled replay diverged");
            interpreted
        }
        None => {
            assert!(
                !expect_compiled,
                "{name}: expected to compile but was refused"
            );
            run_snapshot(design, &mut *drive)
        }
    };
    let again = run_snapshot(design, drive);
    assert_eq!(
        interpreted, again,
        "{name}: interpreter is not deterministic"
    );
}

#[test]
fn quickstart_replay_is_bit_identical() {
    let design = Design::new();
    let x = design.sig_typed("x", "<8,6,tc,st,rd>".parse().expect("valid"));
    let scaled = design.sig("scaled");
    let acc = design.reg("acc");
    let y = design.sig("y");
    design.declare_static_schedule();
    let d = design.clone();
    let mut drive = move || {
        for i in 0..2000 {
            x.set((i as f64 * 0.05).sin() * 0.9);
            scaled.set(x.get() * 0.75);
            acc.set(acc.get() * 0.9 + scaled.get());
            y.set(acc.get() + scaled.get());
            d.tick();
        }
    };
    assert_replay_conformance("quickstart", &design, &mut drive, true);
}

#[test]
fn lms_equalizer_replay_is_bit_identical() {
    let design = Design::with_seed(0xDA7E_1999);
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);
    let mut drive = move || {
        eq.init();
        for &x in &equalizer_stimulus(7, LMS_SNR_DB, LMS_SAMPLES) {
            eq.step(x);
        }
    };
    assert_replay_conformance("lms_equalizer", &design, &mut drive, true);
}

#[test]
fn timing_recovery_replay_is_bit_identical() {
    let design = Design::with_seed(0x0DEC_7BA5);
    let config = TimingConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("valid")),
        input_range: None,
        ..TimingConfig::default()
    };
    let rx = TimingRecovery::new(&design, &config);
    let mut drive = move || {
        rx.init();
        let mut src = ShapedPamSource::new(31, 0.35, 2, 0.3, 100.0);
        let mut noise = Awgn::from_snr_db(9, TIMING_SNR_DB, 1.0);
        for _ in 0..TIMING_SAMPLES {
            rx.step(noise.add(src.next_sample()).clamp(-1.9, 1.9));
        }
    };
    assert_replay_conformance("timing_recovery", &design, &mut drive, false);
}

#[test]
fn iir_refinement_replay_is_bit_identical() {
    let proto = Biquad::lowpass(0.05, 0.707);
    let [b0, b1, b2] = proto.b;
    let [a1, a2] = proto.a;
    let design = Design::new();
    let x = design.sig_typed("x", "<10,8,tc,st,rd>".parse().expect("valid"));
    let x1 = design.reg("x1");
    let x2 = design.reg("x2");
    let y1 = design.reg("y1");
    let y2 = design.reg("y2");
    let y = design.sig("y");
    design.declare_static_schedule();
    let d = design.clone();
    let mut drive = move || {
        for i in 0..2000 {
            let t = i as f64;
            x.set(0.45 * (0.05 * t).sin() + 0.45 * (2.4 * t).sin());
            y.set(b0 * x.get() + b1 * x1.get() + b2 * x2.get() - a1 * y1.get() - a2 * y2.get());
            x2.set(x1.get());
            x1.set(x.get());
            y2.set(y1.get());
            y1.set(y.get());
            d.tick();
        }
    };
    assert_replay_conformance("iir_refinement", &design, &mut drive, true);
}

#[test]
fn cic_decimator_replay_is_bit_identical() {
    let design = Design::new();
    let mut cic = CicDecimator::new(&design, 3, 8, 1, 8, 6);
    let mut drive = move || {
        for i in 0..2048u32 {
            let x = 0.015625
                * (((i.wrapping_mul(2654435761).wrapping_add(i) >> 7) % 128) as f64 - 64.0);
            cic.push(x);
        }
    };
    assert_replay_conformance("cic_decimator", &design, &mut drive, false);
}

#[test]
fn qam_ffe_replay_is_bit_identical() {
    let design = Design::with_seed(0x0A11_CAFE);
    let config = FfeConfig {
        input_dtype: Some("<9,7,tc,st,rd>".parse().expect("valid")),
        input_range: None,
        ..FfeConfig::default()
    };
    let ffe = QamFfe::new(&design, &config);
    let mut drive = move || {
        ffe.init();
        for &x in &qam_stimulus(3, 26.0, 1500) {
            ffe.step(x);
        }
    };
    assert_replay_conformance("qam_ffe", &design, &mut drive, true);
}

// ---------------------------------------------------------------------
// Flow-level conformance: backends through RefinementFlow / SweepDriver.
// ---------------------------------------------------------------------

/// Everything the outcome of a refinement run is judged by, with the
/// backends' own `backend.*` bookkeeping stripped out.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    types: Vec<(String, String)>,
    msb_iterations: usize,
    lsb_iterations: usize,
    stats: Vec<SignalStats>,
    overflow_events: Vec<OverflowEvent>,
    journal: Vec<Event>,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSummary)>,
}

fn is_backend_event(e: &Event) -> bool {
    matches!(
        e,
        Event::BackendCompiled { .. } | Event::BackendFallback { .. }
    )
}

fn fingerprint(
    design: &Design,
    recorder: &Arc<DefaultRecorder>,
    outcome: &fixref::refine::FlowOutcome,
) -> Fingerprint {
    let mut types: Vec<(String, String)> = outcome
        .types
        .iter()
        .map(|(id, t)| (design.name_of(*id), t.to_string()))
        .collect();
    types.sort();
    Fingerprint {
        types,
        msb_iterations: outcome.msb_iterations,
        lsb_iterations: outcome.lsb_iterations,
        stats: design.export_stats(),
        overflow_events: design.peek_overflow_events(),
        journal: recorder
            .events()
            .into_iter()
            .filter(|e| !is_backend_event(e))
            .collect(),
        counters: recorder
            .counters()
            .into_iter()
            .filter(|(name, _)| !name.starts_with("backend."))
            .collect(),
        histograms: recorder.histograms(),
    }
}

fn lms_config() -> LmsConfig {
    LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    }
}

fn timing_config() -> TimingConfig {
    TimingConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("valid")),
        input_range: None,
        ..TimingConfig::default()
    }
}

/// Runs the full sequential flow on the builder's shard for the single
/// scenario, under the given backend and cache setting.
fn run_sequential(
    builder: Box<fixref::refine::ShardBuilder>,
    force_saturate: &[&str],
    scenarios: &ScenarioSet,
    backend: SimBackend,
    cache: bool,
) -> Fingerprint {
    let shard = builder(&scenarios.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    flow.set_backend(backend);
    if cache {
        flow.enable_cache();
    }
    for name in force_saturate {
        flow.force_saturate(design.find(name).expect("declared"));
    }
    let outcome = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect("sequential flow converges");
    fingerprint(&design, flow.recorder(), &outcome)
}

/// Runs the full swept flow under the given driver backend.
/// `expect_compiled` pins whether the sweep must actually compile its
/// scenario tapes (designs that refuse the FXL001 gate, like the timing
/// loop, run the journaled fallback instead and must NOT compile).
fn run_swept(
    builder: Box<fixref::refine::ShardBuilder>,
    force_saturate: &[&str],
    scenarios: &ScenarioSet,
    workers: usize,
    backend: SimBackend,
    cache: bool,
    expect_compiled: bool,
) -> Fingerprint {
    let master = builder(&scenarios.as_slice()[0]).design;
    let mut flow = RefinementFlow::new(master.clone(), RefinePolicy::default());
    if cache {
        flow.enable_cache();
    }
    for name in force_saturate {
        flow.force_saturate(master.find(name).expect("declared"));
    }
    let mut sweep = SweepDriver::new(scenarios.clone(), workers, builder);
    sweep.set_backend(backend);
    let outcome = flow.run_swept(&mut sweep).expect("swept flow converges");
    if backend != SimBackend::Interpreted {
        assert_eq!(
            sweep.has_compiled_program(),
            expect_compiled,
            "sweep compiled-tape state disagrees with what this design must do"
        );
    }
    fingerprint(&master, flow.recorder(), &outcome)
}

#[test]
fn lms_sequential_compiled_matches_interpreted() {
    let set = lms_paper_scenario(LMS_SAMPLES);
    for cache in [false, true] {
        let interpreted = run_sequential(
            lms_shard_builder(lms_config()),
            &[],
            &set,
            SimBackend::Interpreted,
            cache,
        );
        let compiled = run_sequential(
            lms_shard_builder(lms_config()),
            &[],
            &set,
            SimBackend::Compiled,
            cache,
        );
        assert_eq!(interpreted, compiled, "cache={cache}");
        assert!(!interpreted.types.is_empty(), "refinement decided types");
    }
}

#[test]
fn timing_sequential_compiled_matches_interpreted() {
    let saturate = ["terr", "lp", "lferr", "step", "mu"];
    let set = ScenarioSet::single(31, TIMING_SNR_DB, TIMING_SAMPLES);
    let interpreted = run_sequential(
        timing_shard_builder(timing_config()),
        &saturate,
        &set,
        SimBackend::Interpreted,
        false,
    );
    let compiled = run_sequential(
        timing_shard_builder(timing_config()),
        &saturate,
        &set,
        SimBackend::Compiled,
        false,
    );
    assert_eq!(interpreted, compiled);
}

#[test]
fn lms_swept_backends_match_interpreted() {
    let set = lms_seed_grid(3, LMS_SAMPLES);
    let workers = shard_count_from_env(2);
    let interpreted = run_swept(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        workers,
        SimBackend::Interpreted,
        false,
        false,
    );
    for backend in [SimBackend::Compiled, SimBackend::Batched] {
        let other = run_swept(
            lms_shard_builder(lms_config()),
            &[],
            &set,
            workers,
            backend,
            false,
            true,
        );
        assert_eq!(interpreted, other, "backend {backend:?}");
    }
    assert!(!interpreted.types.is_empty(), "refinement decided types");
}

#[test]
fn lms_swept_batched_matches_interpreted_with_cache() {
    let set = lms_seed_grid(3, LMS_SAMPLES);
    let workers = shard_count_from_env(2);
    let interpreted = run_swept(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        workers,
        SimBackend::Interpreted,
        true,
        false,
    );
    let batched = run_swept(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        workers,
        SimBackend::Batched,
        true,
        true,
    );
    assert_eq!(interpreted, batched);
}

#[test]
fn timing_swept_batched_matches_interpreted() {
    let saturate = ["terr", "lp", "lferr", "step", "mu"];
    let set = ScenarioSet::grid(&[31, 32], &[TIMING_SNR_DB], &[], &[TIMING_SAMPLES]);
    let workers = shard_count_from_env(2);
    let interpreted = run_swept(
        timing_shard_builder(timing_config()),
        &saturate,
        &set,
        workers,
        SimBackend::Interpreted,
        false,
        false,
    );
    let batched = run_swept(
        timing_shard_builder(timing_config()),
        &saturate,
        &set,
        workers,
        SimBackend::Batched,
        false,
        false,
    );
    assert_eq!(interpreted, batched);
}

#[test]
fn batched_sweep_is_invariant_under_shard_count() {
    let set = lms_seed_grid(3, LMS_SAMPLES);
    let one = run_swept(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        1,
        SimBackend::Batched,
        false,
        true,
    );
    let many = run_swept(
        lms_shard_builder(lms_config()),
        &[],
        &set,
        shard_count_from_env(2),
        SimBackend::Batched,
        false,
        true,
    );
    assert_eq!(one, many);
}
