//! Flow-level observability tests: the paper's §6 LMS claims expressed as
//! journal queries, and the metrics-report JSON round trip behind the
//! `table1 --json` / `table2 --json` bins.

use fixref::dsp::lms::equalizer_stimulus;
use fixref::dsp::{LmsConfig, LmsEqualizer};
use fixref::obs::{parse_journal, to_jsonl, Event, MetricsReport, Phase};
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::Design;
use fixref_bench::{run_table1_report, LMS_SAMPLES};

/// Runs the full refinement flow on the paper's LMS equalizer and returns
/// the flow (journal + recorder attached).
fn refined_lms() -> RefinementFlow {
    let design = Design::with_seed(0xDA7E_1999);
    let config = LmsConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("valid")),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);
    let mut flow = RefinementFlow::new(design, RefinePolicy::default());
    flow.run(move |_, _| {
        eq.init();
        for &x in &equalizer_stimulus(7, 28.0, 4000) {
            eq.step(x);
        }
    })
    .expect("the LMS flow converges");
    flow
}

#[test]
fn lms_journal_contains_the_papers_single_auto_range() {
    let flow = refined_lms();
    let pins = flow
        .recorder()
        .query(|e| matches!(e, Event::AutoRange { .. }));
    assert_eq!(pins.len(), 1, "exactly one automatic range pin: {pins:?}");
    let Event::AutoRange {
        signal,
        lo,
        hi,
        iteration,
    } = &pins[0]
    else {
        unreachable!()
    };
    // The paper pins b.range(-0.2, 0.2) by hand; the flow derives the pin
    // from b's observed excursion on this stimulus.
    assert_eq!(signal, "b");
    assert_eq!(*iteration, 1);
    assert!((-0.5..-0.2).contains(lo), "lo = {lo}");
    assert!((0.1..0.3).contains(hi), "hi = {hi}");
}

#[test]
fn lms_journal_proves_the_iteration_counts() {
    let flow = refined_lms();
    let rec = flow.recorder();
    let converged: Vec<(Phase, usize)> = rec
        .query(|e| matches!(e, Event::PhaseConverged { .. }))
        .into_iter()
        .map(|e| match e {
            Event::PhaseConverged { phase, iterations } => (phase, iterations),
            _ => unreachable!(),
        })
        .collect();
    // Paper §6: the explosion on b costs one extra MSB iteration; a
    // single LSB pass then resolves every fractional wordlength.
    assert_eq!(converged, vec![(Phase::Msb, 2), (Phase::Lsb, 1)]);

    // The same counts are visible as per-iteration spans with cycles.
    let spans = rec.spans();
    let iters = |prefix: &str| {
        spans
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .inspect(|s| assert!(s.cycles > 0, "{} has no cycles", s.name))
            .count()
    };
    assert_eq!(iters("flow.msb.iter."), 2);
    assert_eq!(iters("flow.lsb.iter."), 1);
}

#[test]
fn lms_journal_round_trips_through_jsonl() {
    let flow = refined_lms();
    let journal = flow.journal();
    assert!(!journal.is_empty());
    let text = to_jsonl(&journal);
    let back = parse_journal(&text).expect("flow journal is valid JSONL");
    assert_eq!(back, journal);
}

#[test]
fn table1_report_json_round_trips() {
    // The exact JSON the `table1 --json` bin prints and writes to
    // BENCH_table1.json must parse back into an equal report.
    let (_, _, report) = run_table1_report(LMS_SAMPLES).expect("table1 converges");
    let rendered = report.render_json();
    let back = MetricsReport::parse_json(&rendered).expect("bin output is valid JSON");
    assert_eq!(back, report);
    assert_eq!(back.name, "table1");
    assert!(back
        .spans
        .iter()
        .any(|s| s.name.starts_with("flow.msb.iter.")));
    assert!(back
        .event_counts
        .iter()
        .any(|(k, n)| k == "auto_range" && *n == 1));
}
