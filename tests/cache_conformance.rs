//! Differential conformance suite for the incremental evaluation cache.
//!
//! The contract under test: enabling the evaluation cache — monitor
//! replay on clean iterations, dirty-cone partial re-simulation on
//! designs with a declared static schedule — changes *nothing* about the
//! refinement outcome. Decided types, the `type_applied` journal,
//! iteration counts and the merged per-signal monitors must be bitwise
//! identical with the cache on, off, and across the sweep's worker
//! counts (the CI matrix sets `FIXREF_TEST_SHARDS` to 1, 2 and 8).
//!
//! Deliberately *outside* the fingerprint: recorder counters
//! (`cache.hits`, and `sim.*` — passive signals skip their own monitor
//! bookkeeping) and the cache's own journal events, which legitimately
//! differ between cached and uncached runs.

use std::collections::BTreeSet;

use fixref::obs::Event;
use fixref::refine::{RefinePolicy, RefinementFlow, SweepDriver};
use fixref::sim::{shard_count_from_env, Design, ScenarioSet, SignalStats};
use fixref_bench::{
    lms_paper_scenario, lms_shard_builder, paper_input_type, timing_shard_builder, TIMING_SNR_DB,
};
use fixref_dsp::{LmsConfig, TimingConfig};
use fixref_fixed::DType;

/// Everything the outcome of a refinement run is judged by.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    /// Decided types by signal name.
    types: Vec<(String, String)>,
    /// The `type_applied` journal events, as a set.
    type_applied: BTreeSet<(String, String)>,
    /// Iteration counts.
    msb_iterations: usize,
    lsb_iterations: usize,
    /// The master design's merged per-signal monitors after verification
    /// (bitwise: exact min/max, error moments, counters).
    stats: Vec<SignalStats>,
}

/// A fingerprint plus the cache accounting needed to prove the cached
/// run actually reused monitors rather than silently running cold.
struct CachedRun {
    fingerprint: Fingerprint,
    cache_hits: u64,
    invalidations: usize,
}

fn fingerprint(
    design: &Design,
    flow: &RefinementFlow,
    outcome: &fixref::refine::FlowOutcome,
) -> Fingerprint {
    let mut types: Vec<(String, String)> = outcome
        .types
        .iter()
        .map(|(id, t)| (design.name_of(*id), t.to_string()))
        .collect();
    types.sort();
    let type_applied = flow
        .recorder()
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::TypeApplied { signal, dtype } => Some((signal, dtype)),
            _ => None,
        })
        .collect();
    Fingerprint {
        types,
        type_applied,
        msb_iterations: outcome.msb_iterations,
        lsb_iterations: outcome.lsb_iterations,
        stats: design.export_stats(),
    }
}

fn lms_config() -> LmsConfig {
    LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    }
}

fn timing_config() -> TimingConfig {
    TimingConfig {
        input_dtype: Some(DType::tc("T_in", 7, 5).expect("valid")),
        input_range: None,
        ..TimingConfig::default()
    }
}

/// Runs the plain sequential flow on the shard the builder makes for the
/// set's single scenario, with or without the evaluation cache.
fn run_sequential(
    builder: Box<fixref::refine::ShardBuilder>,
    force_saturate: &[&str],
    scenarios: &ScenarioSet,
    cached: bool,
) -> CachedRun {
    assert_eq!(scenarios.len(), 1, "sequential baseline is one scenario");
    let shard = builder(&scenarios.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    if cached {
        flow.enable_cache();
    }
    for name in force_saturate {
        flow.force_saturate(design.find(name).expect("declared"));
    }
    let outcome = flow
        .run(move |d: &Design, i: usize| stimulus(d, i))
        .expect("sequential flow converges");
    CachedRun {
        fingerprint: fingerprint(&design, &flow, &outcome),
        cache_hits: flow.recorder().counter("cache.hits"),
        invalidations: flow
            .recorder()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::CacheInvalidated { .. }))
            .count(),
    }
}

/// Runs the full flow over `scenarios` with `workers` threads, with or
/// without the sweep's evaluation cache.
fn run_swept(
    builder: Box<fixref::refine::ShardBuilder>,
    force_saturate: &[&str],
    scenarios: &ScenarioSet,
    workers: usize,
    cached: bool,
) -> CachedRun {
    let master = builder(&scenarios.as_slice()[0]).design;
    let mut flow = RefinementFlow::new(master.clone(), RefinePolicy::default());
    for name in force_saturate {
        flow.force_saturate(master.find(name).expect("declared"));
    }
    let mut sweep = SweepDriver::new(scenarios.clone(), workers, builder);
    if cached {
        sweep.enable_cache();
    }
    let outcome = flow.run_swept(&mut sweep).expect("swept flow converges");
    let (hits, _misses) = sweep.cache_stats();
    CachedRun {
        fingerprint: fingerprint(&master, &flow, &outcome),
        cache_hits: hits,
        invalidations: flow
            .recorder()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::CacheInvalidated { .. }))
            .count(),
    }
}

const LMS_SAMPLES: usize = 1200;
const TIMING_SAMPLES: usize = 4000;
const TIMING_SATURATE: [&str; 5] = ["terr", "lp", "lferr", "step", "mu"];

#[test]
fn lms_cached_sequential_flow_is_bit_identical_to_uncached() {
    let set = lms_paper_scenario(LMS_SAMPLES);
    let plain = run_sequential(lms_shard_builder(lms_config()), &[], &set, false);
    let cached = run_sequential(lms_shard_builder(lms_config()), &[], &set, true);
    assert_eq!(plain.fingerprint, cached.fingerprint);
    // The cached run really reused monitors (the LMS declares a static
    // schedule, so partial and replay plans are both reachable) ...
    assert!(cached.cache_hits > 0, "cache never hit");
    // ... and annotation changes invalidated it along the way.
    assert!(cached.invalidations > 0, "no invalidation was journaled");
    // The uncached run kept no cache at all.
    assert_eq!(plain.cache_hits, 0);
}

#[test]
fn timing_loop_cached_sequential_flow_is_bit_identical_to_uncached() {
    // The timing loop does NOT declare a static schedule (its strobe
    // steers data-dependent control flow), so the cache may only replay
    // fully-clean iterations — never partial cones. The outcome must
    // still match bitwise.
    let set = ScenarioSet::single(31, TIMING_SNR_DB, TIMING_SAMPLES);
    let plain = run_sequential(
        timing_shard_builder(timing_config()),
        &TIMING_SATURATE,
        &set,
        false,
    );
    let cached = run_sequential(
        timing_shard_builder(timing_config()),
        &TIMING_SATURATE,
        &set,
        true,
    );
    assert_eq!(plain.fingerprint, cached.fingerprint);
    assert!(cached.cache_hits > 0, "replay never happened");
}

#[test]
fn lms_cached_sweep_is_bit_identical_to_uncached_across_shard_counts() {
    let workers = shard_count_from_env(2);
    let set = lms_paper_scenario(LMS_SAMPLES);
    let plain = run_swept(lms_shard_builder(lms_config()), &[], &set, workers, false);
    let cached = run_swept(lms_shard_builder(lms_config()), &[], &set, workers, true);
    assert_eq!(plain.fingerprint, cached.fingerprint);
    assert!(cached.cache_hits > 0, "sweep cache never hit");
    // The cached sweep also matches the cached sequential flow (one
    // scenario: the sweep merge is the identity).
    let sequential = run_sequential(lms_shard_builder(lms_config()), &[], &set, true);
    assert_eq!(sequential.fingerprint, cached.fingerprint);
}

#[test]
fn timing_loop_cached_sweep_is_bit_identical_to_uncached_across_shard_counts() {
    let workers = shard_count_from_env(2);
    let set = ScenarioSet::grid(&[31, 32], &[TIMING_SNR_DB], &[], &[TIMING_SAMPLES]);
    let plain = run_swept(
        timing_shard_builder(timing_config()),
        &TIMING_SATURATE,
        &set,
        workers,
        false,
    );
    let cached = run_swept(
        timing_shard_builder(timing_config()),
        &TIMING_SATURATE,
        &set,
        workers,
        true,
    );
    assert_eq!(plain.fingerprint, cached.fingerprint);
    assert!(cached.cache_hits > 0, "sweep cache never hit");
}
