//! Conformance suite for the `fixref-verify` bounded model checker.
//!
//! Pins the verdict-annotated report of every example design against the
//! golden baselines in `tests/golden/verify_*.txt`, and proves the
//! headline claims end to end: the LMS adaptation loop's FXL002 warning
//! is discharged by a machine-checked proof, the under-ranged wrap-mode
//! IIR is refuted with a counterexample the sweep engine replays
//! bit-identically, and the untyped timing loop is reported
//! `unknown(state_too_large)` instead of being guessed at.
//!
//! CI runs this suite under several `FIXREF_TEST_SHARDS` values; every
//! assertion compares against checked-in bytes, so any worker-count
//! dependence in the verification pipeline shows up as a golden diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! cargo run --release -p fixref-bench --bin verify
//! # then split each `=== name ===` section into tests/golden/verify_<name>.txt
//! ```

use fixref::fixed::{DType, OverflowMode};
use fixref::lint::{Code, Verdict};
use fixref::sim::Design;
use fixref::verify::Hazard;
use fixref_bench::verify_example_designs;

/// Diffs `actual` against a golden file with a line-numbered report.
fn assert_matches_golden(actual: &str, golden_path: &str) {
    let path = format!("{}/tests/golden/{golden_path}", env!("CARGO_MANIFEST_DIR"));
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {path} unreadable: {e}"));
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "first divergence at {golden_path}:{}", i + 1);
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "line-count mismatch against {golden_path}"
    );
    panic!("whitespace-only divergence against {golden_path}");
}

#[test]
fn every_example_report_matches_its_golden_baseline() {
    let examples = verify_example_designs();
    assert_eq!(examples.len(), 6, "example inventory drifted");
    for example in &examples {
        assert_matches_golden(
            &example.verified.render_text(),
            &format!("verify_{}.txt", example.name),
        );
    }
}

#[test]
fn lms_feedback_warning_is_discharged_by_proof() {
    let examples = verify_example_designs();
    let lms = examples
        .iter()
        .find(|e| e.name == "lms_equalizer")
        .expect("lms example present");
    // The paper's {b, w} adaptation loop trips both the feedback
    // heuristic (FXL002) and the interval-propagation MSB rule (FXL004):
    // decorrelated range analysis diverges on the multiplicative
    // feedback. The bit-exact recursion is a contraction, and the model
    // checker settles it — every flagged diagnostic is proved safe.
    let fxl002 = &lms.verified.report.with_code(Code::UnclampedFeedback)[0];
    assert_eq!(fxl002.verdict, Some(Verdict::Proved));
    for d in lms
        .verified
        .report
        .with_code(Code::WrapNarrowerThanPropagated)
    {
        assert_eq!(d.verdict, Some(Verdict::Proved), "FXL004 {}", d.signal);
    }
    // The proof is a closed reachable set, not a bounded sample.
    let outcome = &lms.verified.outcomes[0];
    assert!(outcome.states > 1, "closure explored a real state space");
}

#[test]
fn under_ranged_iir_counterexample_replays_bit_identically() {
    let examples = verify_example_designs();
    let iir = examples
        .iter()
        .find(|e| e.name == "iir_refinement")
        .expect("iir example present");
    let outcome = iir
        .verified
        .counterexamples()
        .next()
        .expect("the under-ranged recursion must be refuted");
    let witness = outcome.witness.as_ref().expect("witness attached");
    assert!(matches!(witness.hazard, Hazard::Overflow { ref signal } if signal == "y1"));

    // Lower the witness to the sweep engine's scenario form and replay it
    // through a fresh simulation of the same datapath: the overflow must
    // reproduce at the witness's final tick, and the register trace must
    // match the predicted one bit for bit.
    let scenarios = witness.to_scenario_set(1999);
    assert_eq!(scenarios.len(), 1);
    let scenario = scenarios.get(0).expect("one scenario");
    assert_eq!(scenario.samples, witness.steps);
    let stream = scenario.stimulus_for("x").expect("stream carried over");

    let wrap = |spec: &str| {
        spec.parse::<DType>()
            .expect("literal is valid")
            .with_overflow(OverflowMode::Wrap)
    };
    let d = Design::new();
    let x = d.sig_typed("x", wrap("<3,2,tc,st,rd>"));
    let y1 = d.reg_typed("y1", wrap("<4,2,tc,st,rd>"));
    let mut overflow_tick = None;
    for (t, &v) in stream.iter().enumerate() {
        x.set(v);
        let before = d.report_for(&y1).overflows;
        y1.set(y1.get() * 0.9 + x.get());
        d.tick();
        if overflow_tick.is_none() && d.report_for(&y1).overflows > before {
            overflow_tick = Some(t);
        }
        let expected = witness.trace[t]
            .iter()
            .find(|(n, _)| n == "y1")
            .map(|&(_, v)| v)
            .expect("y1 in trace");
        assert_eq!(
            y1.get().fix(),
            expected,
            "replay diverged from witness at tick {t}"
        );
    }
    assert_eq!(
        overflow_tick,
        Some(witness.steps - 1),
        "the simulator must overflow exactly at the witness's final tick"
    );
}

#[test]
fn untyped_timing_loop_is_reported_unknown_honestly() {
    let examples = verify_example_designs();
    let timing = examples
        .iter()
        .find(|e| e.name == "timing_recovery")
        .expect("timing example present");
    // Floating-point loop state has no finite alphabet: the only honest
    // verdicts are Unknown, never Proved.
    assert!(!timing.verified.outcomes.is_empty());
    for o in &timing.verified.outcomes {
        assert!(
            matches!(&o.verdict, Verdict::Unknown { reason } if reason == "state_too_large"),
            "expected unknown(state_too_large), got {}",
            o.render()
        );
    }
}

#[test]
fn floor_rounded_integrator_is_proved_limit_cycle_free() {
    let examples = verify_example_designs();
    let cic = examples
        .iter()
        .find(|e| e.name == "cic_decimator")
        .expect("cic example present");
    // Unsigned floor truncation only moves state toward zero, so every
    // zero-input trajectory drains: the FXL005 heuristic is proved
    // spurious for this integrator.
    let fxl005 = &cic.verified.report.with_code(Code::TruncationInFeedback)[0];
    assert_eq!(fxl005.verdict, Some(Verdict::Proved));
}

#[test]
fn verification_reports_are_bit_identical_across_runs() {
    // The checker must be a pure function of the recorded graph: two full
    // passes over the example designs (fresh simulations each) render
    // byte-identical reports, witnesses included.
    let first: Vec<String> = verify_example_designs()
        .iter()
        .map(|e| e.verified.render_text())
        .collect();
    let second: Vec<String> = verify_example_designs()
        .iter()
        .map(|e| e.verified.render_text())
        .collect();
    assert_eq!(first, second);
}
