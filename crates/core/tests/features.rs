//! Tests of the optional refinement features: unsigned type decisions and
//! the adaptive round-vs-floor rule.

use fixref_core::{RefinePolicy, RefinementFlow};
use fixref_fixed::{DType, RoundingMode, Signedness};
use fixref_sim::{Design, SignalId, SignalRef};

/// A magnitude-processing pipeline: `mag = |x|`, `env = 0.9*env + 0.1*mag`
/// — both strictly non-negative.
fn build_magnitude() -> (Design, SignalId, SignalId, SignalId) {
    let d = Design::with_seed(77);
    let t: DType = "<8,6,tc,st,rd>".parse().expect("valid");
    let x = d.sig_typed("x", t);
    let mag = d.sig("mag");
    let env = d.reg("env");
    (d.clone(), x.id(), mag.id(), env.id())
}

fn magnitude_stim(x: SignalId, mag: SignalId, env: SignalId) -> impl FnMut(&Design, usize) {
    move |d: &Design, _| {
        let x = d.sig_handle(x);
        let mag = d.sig_handle(mag);
        let env = d.reg_handle(env);
        for i in 0..1500 {
            x.set((i as f64 * 0.13).sin() * 1.2);
            mag.set(x.get().abs());
            env.set(env.get() * 0.9 + mag.get() * 0.1);
            d.tick();
        }
    }
}

#[test]
fn unsigned_disabled_by_default() {
    let (d, x, mag, env) = build_magnitude();
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let outcome = flow.run(magnitude_stim(x, mag, env)).expect("converges");
    for (_, t) in &outcome.types {
        assert_eq!(t.signedness(), Signedness::TwosComplement);
    }
}

#[test]
fn unsigned_types_decided_for_nonnegative_signals() {
    let (d, x, mag, env) = build_magnitude();
    let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default().with_unsigned());
    let outcome = flow.run(magnitude_stim(x, mag, env)).expect("converges");

    let mag_t = outcome.type_of(mag).expect("mag typed");
    let env_t = outcome.type_of(env).expect("env typed");
    assert_eq!(mag_t.signedness(), Signedness::Unsigned, "{mag_t}");
    assert_eq!(env_t.signedness(), Signedness::Unsigned, "{env_t}");
    // Unsigned must not lose range: verification is still clean.
    assert!(outcome.verify.is_overflow_free());
    assert_eq!(mag_t.min_value(), 0.0);
}

#[test]
fn unsigned_saves_a_bit_over_twos_complement() {
    // Same workload refined both ways: the unsigned types spend one bit
    // less for the same coverage.
    let run = |policy: RefinePolicy| {
        let (d, x, mag, env) = build_magnitude();
        let mut flow = RefinementFlow::new(d, policy);
        let outcome = flow.run(magnitude_stim(x, mag, env)).expect("converges");
        let t = outcome.type_of(mag).expect("typed").clone();
        (t.n(), t.max_value())
    };
    let (n_tc, max_tc) = run(RefinePolicy::default());
    let (n_ns, max_ns) = run(RefinePolicy::default().with_unsigned());
    assert_eq!(n_ns, n_tc - 1, "unsigned saves the sign bit");
    // Coverage of the positive side is comparable.
    assert!((max_ns - max_tc).abs() < max_tc * 0.51 + 1e-9);
}

#[test]
fn signed_signals_never_become_unsigned() {
    // x swings negative: even with the policy enabled it stays tc.
    let d = Design::with_seed(78);
    let x = d.sig("x");
    let y = d.sig("y");
    let (xi, yi) = (x.id(), y.id());
    let mut flow = RefinementFlow::new(d, RefinePolicy::default().with_unsigned());
    let outcome = flow
        .run(move |d: &Design, _| {
            let x = d.sig_handle(xi);
            let y = d.sig_handle(yi);
            for i in 0..500 {
                x.set((i as f64 * 0.2).sin());
                y.set(x.get() * 0.5);
            }
        })
        .expect("converges");
    for (_, t) in &outcome.types {
        assert_eq!(t.signedness(), Signedness::TwosComplement, "{t}");
    }
}

#[test]
fn adaptive_floor_rule_tracks_shift_fraction() {
    // With a generous fraction every resolved signal floors; with a tiny
    // fraction nothing does. The default k = 1 puts the half-LSB shift at
    // 0.25σ..0.5σ, so 1.0 accepts and 0.01 rejects.
    let run = |policy: RefinePolicy| {
        let (d, x, mag, env) = build_magnitude();
        let mut flow = RefinementFlow::new(d, policy);
        let outcome = flow.run(magnitude_stim(x, mag, env)).expect("converges");
        outcome
            .types
            .iter()
            .map(|(_, t)| t.rounding())
            .collect::<Vec<_>>()
    };
    let generous = run(RefinePolicy::default().with_floor_below(1.0));
    assert!(generous.contains(&RoundingMode::Floor), "{generous:?}");
    let strict = run(RefinePolicy::default().with_floor_below(0.01));
    assert!(
        strict.iter().all(|r| *r == RoundingMode::Round),
        "{strict:?}"
    );
}

#[test]
fn floor_everywhere_biases_the_mean_error() {
    // Refine twice; with floor types the verification run's produced mean
    // error must be biased relative to round types.
    let run = |rounding: RoundingMode| {
        let (d, x, mag, env) = build_magnitude();
        let policy = RefinePolicy::default().with_rounding(rounding);
        let mut flow = RefinementFlow::new(d.clone(), policy);
        flow.run(magnitude_stim(x, mag, env)).expect("converges");
        // The verification run already happened inside run(); read env's
        // produced mean from the design.
        d.report_by_id(env).produced.mean().abs()
    };
    let round_bias = run(RoundingMode::Round);
    let floor_bias = run(RoundingMode::Floor);
    assert!(
        floor_bias > round_bias * 3.0,
        "floor bias {floor_bias} vs round {round_bias}"
    );
}
