//! The pre-flight verification gate: machine-checked proofs discharge
//! denied lint findings, and counterexamples abort the flow with a
//! replayable witness attached.

use fixref_core::{FlowError, RefinePolicy, RefinementFlow};
use fixref_fixed::{DType, OverflowMode};
use fixref_lint::{Code, LintConfig};
use fixref_sim::{Design, SignalId, SignalRef};
use fixref_verify::VerifyOptions;

fn wrap(spec: &str) -> DType {
    spec.parse::<DType>()
        .expect("valid dtype")
        .with_overflow(OverflowMode::Wrap)
}

/// A wrap-mode accumulator `y = q(gain*y + x)` — stable (provably
/// in-range) for `gain = 0.5`, wrapping within a few ticks for
/// `gain = 0.9`.
fn accumulator(seed: u64) -> (Design, SignalId, SignalId) {
    let d = Design::with_seed(seed);
    let x = d.sig_typed("x", wrap("<3,2,tc,st,rd>"));
    let y = d.reg_typed("y", wrap("<4,2,tc,st,rd>"));
    (d.clone(), x.id(), y.id())
}

fn stimulus(xid: SignalId, yid: SignalId, gain: f64) -> impl FnMut(&Design, usize) {
    move |d: &Design, _iter: usize| {
        let x = d.sig_handle(xid);
        let y = d.reg_handle(yid);
        for i in 0..64 {
            x.set(((i % 7) as f64 - 3.0) * 0.25);
            y.set(y.get() * gain + x.get());
            d.tick();
        }
    }
}

#[test]
fn proof_discharges_a_denied_unclamped_feedback_finding() {
    // Without verification the denied FXL002 aborts the flow...
    let (d, x, y) = accumulator(3);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    flow.set_lint_config(LintConfig::new().deny(Code::UnclampedFeedback));
    let err = flow.run_msb(stimulus(x, y, 0.5)).expect_err("gate denies");
    assert!(matches!(err, FlowError::LintDenied { ref code, .. } if code == "FXL002"));

    // ...with verification the model checker closes the 16-state space,
    // proves the cycle safe and the same deny is discharged.
    let (d, x, y) = accumulator(3);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    flow.set_lint_config(LintConfig::new().deny(Code::UnclampedFeedback));
    flow.enable_verification(VerifyOptions::default());
    flow.run_msb(stimulus(x, y, 0.5))
        .expect("proved finding no longer denies");
    assert!(flow.recorder().counter("verify.proved") >= 1);
    assert!(flow.recorder().counter("verify.discharged") >= 1);
    assert!(flow.journal().iter().any(|e| e.kind() == "verify_proved"));
}

#[test]
fn counterexample_aborts_the_flow_with_a_replayable_witness() {
    let (d, x, y) = accumulator(4);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    flow.enable_verification(VerifyOptions::default());
    let err = flow
        .run_msb(stimulus(x, y, 0.9))
        .expect_err("the growing accumulator must be refuted");
    let FlowError::LintRefuted {
        code,
        signal,
        witness,
    } = err
    else {
        panic!("expected LintRefuted, got {err}");
    };
    assert_eq!(code, "FXL002");
    assert_eq!(signal, "y");
    assert!(witness.steps > 0);
    // The witness lowers straight to a sweep-engine stimulus.
    let scenarios = witness.to_scenario_set(11);
    assert_eq!(scenarios.len(), 1);
    let sc = scenarios.get(0).expect("one scenario");
    assert_eq!(sc.samples, witness.steps);
    assert!(sc.stimulus_for("x").is_some());
    assert!(flow.recorder().counter("verify.counterexamples") >= 1);
    assert!(flow.recorder().counter("verify.flow_gate_failures") >= 1);
    assert!(flow
        .journal()
        .iter()
        .any(|e| e.kind() == "verify_counterexample"));
}
