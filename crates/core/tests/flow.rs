//! End-to-end tests of the refinement flow on a miniature adaptive system
//! exhibiting the paper's two failure modes: MSB range explosion on a
//! feedback accumulator and LSB error divergence on a sensitive feedback
//! signal.

use fixref_core::{
    render_lsb_table, render_msb_table, FlowError, Intervention, LsbStatus, RefinePolicy,
    RefinementFlow,
};
use fixref_fixed::DType;
use fixref_sim::{Design, SignalId, SignalRef};

/// Builds the miniature system:
///   x   : typed input (<8,6,tc>), amplitude ~1
///   acc : LMS-style adaptive coefficient, acc += 0.1*x*(x - acc*x) —
///         converges to 1 in simulation, but EXPLODES under interval
///         propagation (multiplicative feedback, like the paper's `b`)
///   y   : output, y = acc + x (explodes transitively until acc is pinned)
fn build(seed: u64) -> (Design, SignalId, SignalId, SignalId) {
    let d = Design::with_seed(seed);
    let t_in: DType = "<8,6,tc,st,rd>".parse().expect("valid dtype");
    let x = d.sig_typed("x", t_in);
    let acc = d.reg("acc");
    let y = d.sig("y");
    (d.clone(), x.id(), acc.id(), y.id())
}

fn stimulus(xid: SignalId, accid: SignalId, yid: SignalId) -> impl FnMut(&Design, usize) {
    move |d: &Design, _iter: usize| {
        let x = d.sig_handle(xid);
        let acc = d.reg_handle(accid);
        let y = d.sig_handle(yid);
        for i in 0..600 {
            x.set((i as f64 * 0.17).sin() * 0.9);
            let xv = x.get();
            acc.set(acc.get() + 0.1 * xv.clone() * (xv.clone() - acc.get() * xv));
            y.set(acc.get() + x.get());
            d.tick();
        }
    }
}

#[test]
fn msb_phase_converges_in_two_iterations_with_auto_range() {
    let (d, x, acc, y) = build(1);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let (history, interventions) = flow.run_msb(stimulus(x, acc, y)).expect("converges");

    // Iteration 1 finds the explosion, iteration 2 resolves — exactly the
    // paper's Table 1 narrative.
    assert_eq!(history.len(), 2, "expected 2 MSB iterations");
    let first = &history[0];
    let acc_first = first.iter().find(|a| a.name == "acc").expect("acc present");
    assert!(
        acc_first.exploded,
        "adaptive coefficient must explode interval propagation"
    );

    let last = history.last().expect("non-empty history");
    for a in last {
        assert!(
            a.decision.is_resolved(),
            "{} unresolved: {}",
            a.name,
            a.decision
        );
        assert!(!a.exploded, "{} still exploded", a.name);
    }

    // Exactly one auto-range intervention, on acc — y's inherited
    // explosion resolves by itself, like `w` in the paper's Table 1.
    assert_eq!(interventions.len(), 1, "interventions: {interventions:?}");
    match &interventions[0] {
        Intervention::AutoRange {
            name,
            lo,
            hi,
            iteration,
            ..
        } => {
            assert_eq!(name, "acc");
            assert_eq!(*iteration, 1);
            assert!(*lo < 0.0 && *hi > 0.0);
        }
        other => panic!("expected AutoRange, got {other}"),
    }
}

#[test]
fn msb_phase_errors_without_auto_range() {
    let (d, x, acc, y) = build(2);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default().manual_interventions());
    let err = flow
        .run_msb(stimulus(x, acc, y))
        .expect_err("cannot converge");
    match err {
        FlowError::NotConverged {
            phase, unresolved, ..
        } => {
            assert_eq!(phase, "msb");
            assert_eq!(unresolved, vec!["acc".to_string()]);
        }
        other => panic!("expected NotConverged, got {other}"),
    }
}

#[test]
fn lsb_phase_resolves_all_signals() {
    let (d, x, acc, y) = build(3);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let (_, _) = flow.run_msb(stimulus(x, acc, y)).expect("msb converges");
    let (history, _) = flow.run_lsb(stimulus(x, acc, y)).expect("lsb converges");
    let last = history.last().expect("non-empty");
    for a in last {
        assert_ne!(a.status, LsbStatus::NoData, "{} has no data", a.name);
        assert_ne!(a.status, LsbStatus::Diverged, "{} diverged", a.name);
    }
    // x is quantized at f=6: its produced sigma is ~2^-6/sqrt(12) and its
    // decided LSB (k=4) lands at -6..-7.
    let xa = last.iter().find(|a| a.name == "x").expect("x present");
    let l = xa.lsb.expect("resolved");
    assert!((-8..=-5).contains(&l), "x lsb {l}");
}

#[test]
fn full_run_types_everything_and_verifies_clean() {
    let (d, x, acc, y) = build(4);
    let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
    let outcome = flow.run(stimulus(x, acc, y)).expect("flow converges");

    assert_eq!(outcome.msb_iterations, 2);
    assert_eq!(outcome.lsb_iterations, 1);
    // x is locked (input type), acc and y get decided types.
    assert_eq!(outcome.types.len(), 2);
    assert!(
        outcome.unrefined.is_empty(),
        "unrefined: {:?}",
        outcome.unrefined
    );
    assert!(outcome.type_of(acc).is_some());
    assert!(outcome.type_of(y).is_some());
    assert!(
        outcome.type_of(x).is_none(),
        "locked input must not be re-typed"
    );

    // Sanity of the decided formats: y ~ amplitude 2 -> msb 1; fractional
    // bits in a plausible band around the input's 6.
    let ty = outcome.type_of(y).expect("typed");
    assert!((0..=2).contains(&ty.msb()), "y msb {}", ty.msb());
    assert!((4..=10).contains(&ty.f()), "y f {}", ty.f());

    // Verification with all types applied is overflow-free.
    assert!(
        outcome.verify.is_overflow_free(),
        "overflows: {:?}",
        outcome.verify.overflows
    );

    // The design now carries the types.
    assert!(d.dtype_of(y).is_some());

    // Tables render with every signal.
    let msb_table = render_msb_table(outcome.msb());
    assert!(msb_table.contains("acc") && msb_table.contains("(st)"));
    let lsb_table = render_lsb_table(outcome.lsb());
    assert!(lsb_table.contains('y'));
}

#[test]
fn flow_is_deterministic() {
    let run = |seed| {
        let (d, x, acc, y) = build(seed);
        let mut flow = RefinementFlow::new(d, RefinePolicy::default());
        let outcome = flow.run(stimulus(x, acc, y)).expect("converges");
        outcome
            .types
            .iter()
            .map(|(id, t)| (id.raw(), t.n(), t.f()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn force_saturate_marks_signal_saturated() {
    let (d, x, acc, y) = build(5);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    flow.force_saturate(y);
    let outcome = flow.run(stimulus(x, acc, y)).expect("converges");
    let ya = outcome
        .msb()
        .iter()
        .find(|a| a.name == "y")
        .expect("y present");
    assert!(ya.decision.is_saturated());
    assert!(
        !ya.decision.is_forced_saturation(),
        "knowledge-based, not explosion-forced"
    );
    let ty = outcome.type_of(y).expect("typed");
    assert_eq!(ty.overflow(), fixref_fixed::OverflowMode::Saturate);
    // Counted in the (forced, other) split like the complex example.
    let (forced, other) = outcome.saturation_counts();
    assert_eq!(forced, 1, "acc was pinned after explosion");
    assert_eq!(other, 1, "y is the knowledge-based saturation");
}

#[test]
fn excluded_signals_stay_floating() {
    let (d, x, acc, y) = build(6);
    let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
    flow.exclude(y);
    let outcome = flow.run(stimulus(x, acc, y)).expect("converges");
    assert!(outcome.type_of(y).is_none());
    assert!(d.dtype_of(y).is_none());
    assert!(outcome.type_of(acc).is_some());
}

#[test]
fn lsb_divergence_triggers_auto_error() {
    // A chaotic feedback signal: the logistic map amplifies the input's
    // quantization error exponentially, so the float and fixed paths
    // decorrelate completely — the statistics become irrelevant, the
    // paper's divergence case.
    let d = Design::with_seed(7);
    let t_in: DType = "<8,6,tc,st,rd>".parse().expect("valid");
    let x = d.sig_typed("x", t_in);
    let drift = d.reg("drift");
    let (xid, did) = (x.id(), drift.id());

    let sim = move |d: &Design, _: usize| {
        let x = d.sig_handle(xid);
        let drift = d.reg_handle(did);
        for i in 0..600 {
            x.set((i as f64 * 0.3).sin() * 0.5);
            let seeded = drift.get() + 0.01 * x.get();
            let next = 3.9 * seeded.clone() * (1.0 - seeded);
            drift.set(next.min(0.99.into()).max(0.01.into()));
            d.tick();
        }
    };

    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let (_, _) = flow.run_msb(sim).expect("msb converges");
    let (history, interventions) = flow.run_lsb(sim).expect("lsb converges after error()");

    assert!(
        history.len() >= 2,
        "divergence must cost at least one extra iteration"
    );
    let first = &history[0];
    let drift_first = first
        .iter()
        .find(|a| a.name == "drift")
        .expect("drift present");
    assert_eq!(drift_first.status, LsbStatus::Diverged);

    assert!(interventions
        .iter()
        .any(|iv| matches!(iv, Intervention::AutoError { name, .. } if name == "drift")));

    let last = history.last().expect("non-empty");
    let drift_last = last
        .iter()
        .find(|a| a.name == "drift")
        .expect("drift present");
    assert_eq!(drift_last.status, LsbStatus::Resolved);
    assert!(drift_last.lsb.is_some());
}

#[test]
fn mean_msb_overhead_reports_tradeoff_cost() {
    let (d, x, acc, y) = build(8);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let outcome = flow.run(stimulus(x, acc, y)).expect("converges");
    // Overhead is defined over the non-saturated refined signals; it is a
    // small non-negative number of bits (paper: 0.22 on the big design).
    if let Some(overhead) = outcome.mean_msb_overhead() {
        assert!((0.0..=3.0).contains(&overhead), "overhead {overhead}");
    }
}

#[test]
fn preflight_lint_journals_the_accumulator_feedback_warning() {
    use fixref_obs::Event;
    let (d, x, acc, y) = build(11);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    flow.run(stimulus(x, acc, y)).expect("converges");
    let journal = flow.journal();
    // The acc <- acc feedback cycle has no clamp at lint time, so the
    // default (all-warn) gate reports FXL002 and moves on.
    assert!(
        journal.iter().any(|e| matches!(
            e,
            Event::LintDiagnostic { code, signal, .. } if code == "FXL002" && signal == "acc"
        )),
        "missing FXL002 on acc: {journal:?}"
    );
    assert!(journal.iter().any(|e| matches!(
        e,
        Event::LintCompleted { warnings, .. } if *warnings > 0
    )));
    assert!(flow.recorder().counter("lint.warnings") > 0);
    // Nothing was denied.
    assert!(!journal
        .iter()
        .any(|e| matches!(e, Event::LintGateFailed { .. })));
}

#[test]
fn denied_lint_code_aborts_the_flow_before_iteration_two() {
    use fixref_lint::{Code, LintConfig};
    use fixref_obs::Event;
    let (d, x, acc, y) = build(12);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    flow.set_lint_config(LintConfig::new().deny(Code::UnclampedFeedback));
    let err = flow.run(stimulus(x, acc, y)).expect_err("gate denies");
    match err {
        FlowError::LintDenied {
            code,
            findings,
            signals,
        } => {
            assert_eq!(code, "FXL002");
            assert_eq!(findings, 1);
            assert_eq!(signals, vec!["acc".to_string()]);
        }
        other => panic!("expected LintDenied, got {other}"),
    }
    assert!(flow.journal().iter().any(|e| matches!(
        e,
        Event::LintGateFailed { context, code, .. }
            if context == "flow.preflight" && code == "FXL002"
    )));
    // Only the recorded first iteration ran.
    assert_eq!(flow.recorder().counter("lint.flow_gate_failures"), 1);
}

#[test]
fn allowed_codes_are_suppressed_from_the_journal() {
    use fixref_lint::{Code, LintConfig};
    use fixref_obs::Event;
    let (d, x, acc, y) = build(13);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    flow.set_lint_config(
        LintConfig::new()
            .allow(Code::UnclampedFeedback)
            .allow(Code::DeadOrMultiplyDefined),
    );
    flow.run(stimulus(x, acc, y)).expect("converges");
    assert!(!flow
        .journal()
        .iter()
        .any(|e| matches!(e, Event::LintDiagnostic { .. })));
}
