//! Property-based tests of the refinement rules' safety invariants.

use fixref_core::{analyze_lsb, analyze_msb, LsbStatus, RefinePolicy};
use fixref_fixed::{ErrorStats, Interval, OverflowMode, RangeStats};
use fixref_sim::{SignalId, SignalKind, SignalReport};
use proptest::prelude::*;

fn report(stat_vals: &[f64], prop: Interval, errors: &[f64]) -> SignalReport {
    let mut stat = RangeStats::new();
    for &v in stat_vals {
        stat.record(v);
    }
    let mut produced = ErrorStats::new();
    for &e in errors {
        produced.record(e);
    }
    SignalReport {
        id: SignalId::from_raw(0),
        name: "p".into(),
        kind: SignalKind::Wire,
        dtype: None,
        range_override: None,
        error_override: None,
        stat,
        prop,
        consumed: ErrorStats::new(),
        produced,
        overflows: 0,
        reads: 0,
        writes: stat_vals.len().max(errors.len()) as u64,
        finest_lsb: None,
    }
}

fn arb_interval_around(vals: &[f64]) -> Interval {
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Interval::new(lo, hi)
}

proptest! {
    /// SAFETY: whatever rule fires, the decided MSB always covers the
    /// observed (statistic) range — no decision may allow an observed
    /// value to overflow silently.
    #[test]
    fn decided_msb_covers_observed_range(
        vals in prop::collection::vec(-100.0f64..100.0, 1..40),
        widen in 1.0f64..1e6,
    ) {
        prop_assume!(vals.iter().any(|v| *v != 0.0));
        let stat_itv = arb_interval_around(&vals);
        // Propagation is conservative: at least as wide as the statistic.
        let prop = Interval::new(stat_itv.lo * widen.min(1e4), stat_itv.hi * widen.min(1e4))
            .union(&stat_itv);
        let a = analyze_msb(&report(&vals, prop, &[]), &RefinePolicy::default());
        let m = a.decided_msb().expect("nonzero range resolves");
        let pow = (m as f64).exp2();
        prop_assert!(
            -pow <= stat_itv.lo && stat_itv.hi < pow,
            "msb {} does not cover {:?} (decision {})",
            m, stat_itv, a.decision
        );
    }

    /// Exploded propagation always resolves through saturation (never
    /// blocks on a signal that has observations).
    #[test]
    fn explosion_resolves_via_saturation(vals in prop::collection::vec(-10.0f64..10.0, 1..40)) {
        prop_assume!(vals.iter().any(|v| *v != 0.0));
        let a = analyze_msb(
            &report(&vals, Interval::UNBOUNDED, &[]),
            &RefinePolicy::default(),
        );
        prop_assert!(a.exploded);
        prop_assert!(a.decision.is_forced_saturation());
        prop_assert_eq!(a.mode, OverflowMode::Saturate);
    }

    /// The decided LSB is monotone in k: a larger k never yields a finer
    /// LSB, and the result is always inside the policy clamp.
    #[test]
    fn lsb_monotone_in_k(
        sigma_exp in -20.0f64..-4.0,
        k1 in 0.25f64..8.0,
        k2 in 0.25f64..8.0,
    ) {
        let sigma = sigma_exp.exp2();
        // Synthesize a zero-mean error sequence with roughly that sigma.
        let errors: Vec<f64> = (0..2000)
            .map(|i| ((i as f64 + 0.5) / 2000.0 - 0.5) * sigma * 12f64.sqrt())
            .collect();
        let vals = vec![1.0, -1.0];
        let (ka, kb) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        let pa = RefinePolicy::default().with_k_lsb(ka);
        let pb = RefinePolicy::default().with_k_lsb(kb);
        let la = analyze_lsb(&report(&vals, Interval::EMPTY, &errors), &pa);
        let lb = analyze_lsb(&report(&vals, Interval::EMPTY, &errors), &pb);
        let (la, lb) = (la.lsb.expect("resolved"), lb.lsb.expect("resolved"));
        prop_assert!(la <= lb, "k {} -> {}, k {} -> {}", ka, la, kb, lb);
        for l in [la, lb] {
            prop_assert!((pa.min_lsb..=pa.max_lsb).contains(&l));
        }
    }

    /// The LSB rule is exact on synthetic uniform noise: the decided step
    /// never exceeds k·σ (the paper's bound).
    #[test]
    fn lsb_respects_the_bound(sigma_exp in -18.0f64..-4.0, k in 0.5f64..4.0) {
        let sigma = sigma_exp.exp2();
        let errors: Vec<f64> = (0..4000)
            .map(|i| ((i as f64 + 0.5) / 4000.0 - 0.5) * sigma * 12f64.sqrt())
            .collect();
        let policy = RefinePolicy::default().with_k_lsb(k);
        let a = analyze_lsb(&report(&[1.0], Interval::EMPTY, &errors), &policy);
        let l = a.lsb.expect("resolved");
        // 2^L <= k * sigma_measured (within the estimator's tolerance).
        prop_assert!(
            (l as f64).exp2() <= k * a.std * (1.0 + 1e-6),
            "2^{} > {}*{}", l, k, a.std
        );
        // And maximal: one bit coarser would break the bound.
        prop_assert!(((l + 1) as f64).exp2() > k * a.std);
    }

    /// Errors comparable to the signal amplitude are always flagged
    /// divergent, never silently resolved.
    #[test]
    fn huge_errors_flagged_divergent(amp in 0.1f64..10.0, ratio in 0.6f64..3.0) {
        let vals = vec![amp, -amp];
        let errors: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { amp * ratio } else { -amp * ratio })
            .collect();
        let a = analyze_lsb(
            &report(&vals, Interval::EMPTY, &errors),
            &RefinePolicy::default(),
        );
        prop_assert_eq!(a.status, LsbStatus::Diverged);
        prop_assert_eq!(a.lsb, None);
    }
}
