//! Randomized tests of the refinement rules' safety invariants, driven
//! by the in-tree deterministic PRNG (seeded sweeps replacing the
//! original proptest harness; same invariants, no external deps).

use fixref_core::{analyze_lsb, analyze_msb, LsbStatus, RefinePolicy};
use fixref_fixed::{ErrorStats, Interval, OverflowMode, RangeStats, Rng64};
use fixref_sim::{SignalId, SignalKind, SignalReport};

const CASES: usize = 200;

fn report(stat_vals: &[f64], prop: Interval, errors: &[f64]) -> SignalReport {
    let mut stat = RangeStats::new();
    for &v in stat_vals {
        stat.record(v);
    }
    let mut produced = ErrorStats::new();
    for &e in errors {
        produced.record(e);
    }
    SignalReport {
        id: SignalId::from_raw(0),
        name: "p".into(),
        kind: SignalKind::Wire,
        dtype: None,
        range_override: None,
        error_override: None,
        stat,
        prop,
        consumed: ErrorStats::new(),
        produced,
        overflows: 0,
        reads: 0,
        writes: stat_vals.len().max(errors.len()) as u64,
        finest_lsb: None,
    }
}

fn interval_around(vals: &[f64]) -> Interval {
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Interval::new(lo, hi)
}

fn pick_vals(rng: &mut Rng64, lo_len: usize, hi_len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let len = lo_len + rng.below((hi_len - lo_len) as u64) as usize;
    (0..len).map(|_| rng.uniform(lo, hi)).collect()
}

/// SAFETY: whatever rule fires, the decided MSB always covers the
/// observed (statistic) range — no decision may allow an observed
/// value to overflow silently.
#[test]
fn decided_msb_covers_observed_range() {
    let mut rng = Rng64::seed_from_u64(0xC04E_0001);
    for _ in 0..CASES {
        let vals = pick_vals(&mut rng, 1, 40, -100.0, 100.0);
        let widen = rng.uniform(1.0, 1e6);
        if !vals.iter().any(|v| *v != 0.0) {
            continue;
        }
        let stat_itv = interval_around(&vals);
        // Propagation is conservative: at least as wide as the statistic.
        let prop = Interval::new(stat_itv.lo * widen.min(1e4), stat_itv.hi * widen.min(1e4))
            .union(&stat_itv);
        let a = analyze_msb(&report(&vals, prop, &[]), &RefinePolicy::default());
        let m = a.decided_msb().expect("nonzero range resolves");
        let pow = (m as f64).exp2();
        assert!(
            -pow <= stat_itv.lo && stat_itv.hi < pow,
            "msb {} does not cover {:?} (decision {})",
            m,
            stat_itv,
            a.decision
        );
    }
}

/// Exploded propagation always resolves through saturation (never
/// blocks on a signal that has observations).
#[test]
fn explosion_resolves_via_saturation() {
    let mut rng = Rng64::seed_from_u64(0xC04E_0002);
    for _ in 0..CASES {
        let vals = pick_vals(&mut rng, 1, 40, -10.0, 10.0);
        if !vals.iter().any(|v| *v != 0.0) {
            continue;
        }
        let a = analyze_msb(
            &report(&vals, Interval::UNBOUNDED, &[]),
            &RefinePolicy::default(),
        );
        assert!(a.exploded);
        assert!(a.decision.is_forced_saturation());
        assert_eq!(a.mode, OverflowMode::Saturate);
    }
}

/// The decided LSB is monotone in k: a larger k never yields a finer
/// LSB, and the result is always inside the policy clamp.
#[test]
fn lsb_monotone_in_k() {
    let mut rng = Rng64::seed_from_u64(0xC04E_0003);
    for _ in 0..CASES {
        let sigma_exp = rng.uniform(-20.0, -4.0);
        let k1 = rng.uniform(0.25, 8.0);
        let k2 = rng.uniform(0.25, 8.0);
        let sigma = sigma_exp.exp2();
        // Synthesize a zero-mean error sequence with roughly that sigma.
        let errors: Vec<f64> = (0..2000)
            .map(|i| ((i as f64 + 0.5) / 2000.0 - 0.5) * sigma * 12f64.sqrt())
            .collect();
        let vals = vec![1.0, -1.0];
        let (ka, kb) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        let pa = RefinePolicy::default().with_k_lsb(ka);
        let pb = RefinePolicy::default().with_k_lsb(kb);
        let la = analyze_lsb(&report(&vals, Interval::EMPTY, &errors), &pa);
        let lb = analyze_lsb(&report(&vals, Interval::EMPTY, &errors), &pb);
        let (la, lb) = (la.lsb.expect("resolved"), lb.lsb.expect("resolved"));
        assert!(la <= lb, "k {} -> {}, k {} -> {}", ka, la, kb, lb);
        for l in [la, lb] {
            assert!((pa.min_lsb..=pa.max_lsb).contains(&l));
        }
    }
}

/// The LSB rule is exact on synthetic uniform noise: the decided step
/// never exceeds k·σ (the paper's bound).
#[test]
fn lsb_respects_the_bound() {
    let mut rng = Rng64::seed_from_u64(0xC04E_0004);
    for _ in 0..CASES {
        let sigma_exp = rng.uniform(-18.0, -4.0);
        let k = rng.uniform(0.5, 4.0);
        let sigma = sigma_exp.exp2();
        let errors: Vec<f64> = (0..4000)
            .map(|i| ((i as f64 + 0.5) / 4000.0 - 0.5) * sigma * 12f64.sqrt())
            .collect();
        let policy = RefinePolicy::default().with_k_lsb(k);
        let a = analyze_lsb(&report(&[1.0], Interval::EMPTY, &errors), &policy);
        let l = a.lsb.expect("resolved");
        // 2^L <= k * sigma_measured (within the estimator's tolerance).
        assert!(
            (l as f64).exp2() <= k * a.std * (1.0 + 1e-6),
            "2^{} > {}*{}",
            l,
            k,
            a.std
        );
        // And maximal: one bit coarser would break the bound.
        assert!(((l + 1) as f64).exp2() > k * a.std);
    }
}

/// Errors comparable to the signal amplitude are always flagged
/// divergent, never silently resolved.
#[test]
fn huge_errors_flagged_divergent() {
    let mut rng = Rng64::seed_from_u64(0xC04E_0005);
    for _ in 0..CASES {
        let amp = rng.uniform(0.1, 10.0);
        let ratio = rng.uniform(0.6, 3.0);
        let vals = vec![amp, -amp];
        let errors: Vec<f64> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    amp * ratio
                } else {
                    -amp * ratio
                }
            })
            .collect();
        let a = analyze_lsb(
            &report(&vals, Interval::EMPTY, &errors),
            &RefinePolicy::default(),
        );
        assert_eq!(a.status, LsbStatus::Diverged);
        assert_eq!(a.lsb, None);
    }
}
