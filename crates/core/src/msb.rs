//! MSB-side refinement rules (paper §5.1).
//!
//! Two range estimates exist per signal after a monitored simulation:
//! the *statistic* range (observed min/max — tight but stimuli-dependent)
//! and the *propagated* range (interval arithmetic — safe but possibly
//! pessimistic). Writing `C(min, max)` for the MSB needed to hold a range,
//! the rules compare `C(stat)` with `C(prop)`:
//!
//! * **(a)** `C(stat) == C(prop)` — both techniques guarantee no
//!   overflow: take that MSB with a non-saturated mode;
//! * **(b)** `C(prop) ≫ C(stat)` (or propagation exploded) — propagation
//!   is very pessimistic (typically an accumulator / feedback signal):
//!   switch to saturation at the statistic MSB, report the guard range
//!   the hardware saturation logic must absorb, and/or pin the range with
//!   an explicit `range()` annotation;
//! * **(c)** `C(prop) > C(stat)` by a small gap — a trade-off: either the
//!   safe propagated MSB (non-saturated) or the tight statistic MSB with
//!   saturation; "still it is possible that simulation didn't trigger the
//!   worst case".

use std::fmt;

use fixref_fixed::{msb_for_range, Interval, OverflowMode, Signedness};
use fixref_sim::{SignalId, SignalReport};

use crate::policy::RefinePolicy;

/// The outcome of applying the MSB rules to one signal.
#[derive(Debug, Clone, PartialEq)]
pub enum MsbDecision {
    /// Rule (a): statistic and propagation agree — non-saturated mode.
    Agree {
        /// The agreed MSB position.
        msb: i32,
    },
    /// Rule (b): propagation pessimistic or exploded — saturate.
    Saturate {
        /// The decided MSB (statistic MSB plus the policy margin).
        msb: i32,
        /// The range the saturation hardware must absorb: the propagated
        /// range when finite, otherwise the widened statistic range.
        guard: Interval,
        /// True when forced by a genuine range explosion (feedback),
        /// false when propagation was merely pessimistic.
        forced: bool,
    },
    /// Rule (c): small gap — trade-off resolved per policy.
    Tradeoff {
        /// MSB from the statistic range.
        stat_msb: i32,
        /// MSB from the propagated range.
        prop_msb: i32,
        /// The decided MSB.
        chosen: i32,
        /// Whether the decision uses saturation (statistic side chosen).
        saturate: bool,
    },
    /// The signal carried no usable range information (never assigned, or
    /// only zeros with an empty propagated range).
    Unresolved {
        /// Why no decision could be made.
        reason: String,
    },
}

impl MsbDecision {
    /// The decided MSB position, if the rules reached one.
    pub fn msb(&self) -> Option<i32> {
        match self {
            MsbDecision::Agree { msb } => Some(*msb),
            MsbDecision::Saturate { msb, .. } => Some(*msb),
            MsbDecision::Tradeoff { chosen, .. } => Some(*chosen),
            MsbDecision::Unresolved { .. } => None,
        }
    }

    /// Whether the decision requires saturation hardware.
    pub fn is_saturated(&self) -> bool {
        matches!(
            self,
            MsbDecision::Saturate { .. } | MsbDecision::Tradeoff { saturate: true, .. }
        )
    }

    /// Whether the decision was forced by range explosion on a feedback
    /// path (needs a `range()` annotation to stabilize propagation).
    pub fn is_forced_saturation(&self) -> bool {
        matches!(self, MsbDecision::Saturate { forced: true, .. })
    }

    /// Whether the rules reached a usable MSB.
    pub fn is_resolved(&self) -> bool {
        self.msb().is_some()
    }
}

impl fmt::Display for MsbDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsbDecision::Agree { msb } => write!(f, "agree(msb={msb})"),
            MsbDecision::Saturate { msb, forced, .. } => {
                write!(
                    f,
                    "saturate(msb={msb}{})",
                    if *forced { ", forced" } else { "" }
                )
            }
            MsbDecision::Tradeoff {
                stat_msb,
                prop_msb,
                chosen,
                saturate,
            } => write!(
                f,
                "tradeoff(stat={stat_msb}, prop={prop_msb}, chosen={chosen}, sat={saturate})"
            ),
            MsbDecision::Unresolved { reason } => write!(f, "unresolved({reason})"),
        }
    }
}

/// The complete MSB analysis of one signal — one row of the paper's
/// Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MsbAnalysis {
    /// The analyzed signal.
    pub id: SignalId,
    /// Its name.
    pub name: String,
    /// `#n`: the number of monitored assignments.
    pub accesses: u64,
    /// Statistic range (observed min/max), if any value was seen.
    pub stat: Option<Interval>,
    /// MSB required by the statistic range.
    pub stat_msb: Option<i32>,
    /// Propagated range (the explicit `range()` annotation when present).
    pub prop: Option<Interval>,
    /// MSB required by the propagated range; `None` when the propagation
    /// exploded or produced nothing.
    pub prop_msb: Option<i32>,
    /// Whether the propagated range exploded (unbounded or above the
    /// policy's explosion MSB).
    pub exploded: bool,
    /// The rule decision.
    pub decision: MsbDecision,
    /// Overflow mode implied by the decision (saturate vs the policy's
    /// non-saturated mode).
    pub mode: OverflowMode,
    /// Decided signal representation: unsigned when the policy allows it
    /// and neither estimate ever went negative.
    pub signedness: Signedness,
}

impl MsbAnalysis {
    /// The decided MSB, if resolved.
    pub fn decided_msb(&self) -> Option<i32> {
        self.decision.msb()
    }

    /// MSB overhead of the decision versus the pure statistic estimate —
    /// the quantity the paper averages to "0.22 bits per signal" in the
    /// complex example.
    pub fn overhead_bits(&self) -> Option<i32> {
        Some(self.decided_msb()? - self.stat_msb?)
    }
}

/// Applies the §5.1 rules to one monitored signal.
///
/// Ranges containing only zero resolve through the other estimate; a
/// signal with no information at all comes back
/// [`MsbDecision::Unresolved`].
pub fn analyze_msb(report: &SignalReport, policy: &RefinePolicy) -> MsbAnalysis {
    let stat = report.stat.interval();
    let prop_itv = report.effective_prop();
    let prop = if prop_itv.is_empty() {
        None
    } else {
        Some(prop_itv)
    };

    // Unsigned representation is safe only when both estimates stay
    // non-negative (an unseen negative excursion would alias).
    let signedness = if policy.allow_unsigned
        && stat.is_none_or(|i| i.lo >= 0.0)
        && prop.is_none_or(|i| i.lo >= 0.0)
        && (stat.is_some() || prop.is_some())
    {
        Signedness::Unsigned
    } else {
        Signedness::TwosComplement
    };

    let stat_msb = stat.and_then(|i| msb_for_range(i.lo, i.hi, signedness));
    let prop_msb_raw = prop.and_then(|i| msb_for_range(i.lo, i.hi, signedness));
    let gap_explosion = match (stat_msb, prop_msb_raw) {
        (Some(s), Some(p)) => p - s >= policy.explosion_gap,
        _ => false,
    };
    let exploded = prop.is_some_and(|i| i.is_exploded())
        || prop_msb_raw.is_some_and(|m| m > policy.explosion_msb)
        || gap_explosion;
    let prop_msb = if exploded { None } else { prop_msb_raw };

    let decision = decide(stat_msb, prop_msb, exploded, stat, prop, policy);
    let mode = if decision.is_saturated() {
        OverflowMode::Saturate
    } else {
        policy.nonsaturated_mode
    };

    MsbAnalysis {
        id: report.id,
        name: report.name.clone(),
        accesses: report.writes,
        stat,
        stat_msb,
        prop,
        prop_msb,
        exploded,
        decision,
        mode,
        signedness,
    }
}

fn decide(
    stat_msb: Option<i32>,
    prop_msb: Option<i32>,
    exploded: bool,
    stat: Option<Interval>,
    prop: Option<Interval>,
    policy: &RefinePolicy,
) -> MsbDecision {
    match (stat_msb, prop_msb) {
        (Some(s), _) if exploded => MsbDecision::Saturate {
            msb: s + policy.saturation_margin,
            guard: guard_range(stat, None),
            forced: true,
        },
        (Some(s), Some(p)) => {
            let gap = p - s;
            if gap <= 0 {
                // Propagation can undercut the statistic only through an
                // explicit (designer) range annotation; the annotation is
                // authoritative for propagation, the statistic for safety.
                MsbDecision::Agree { msb: s.max(p) }
            } else if gap >= policy.pessimism_gap {
                MsbDecision::Saturate {
                    msb: s + policy.saturation_margin,
                    guard: guard_range(stat, prop),
                    forced: false,
                }
            } else {
                let (chosen, saturate) = if policy.tradeoff_prefers_propagation {
                    (p, false)
                } else {
                    (s + policy.saturation_margin, true)
                };
                MsbDecision::Tradeoff {
                    stat_msb: s,
                    prop_msb: p,
                    chosen,
                    saturate,
                }
            }
        }
        // Only propagation knows a range (e.g. a constant zero signal with
        // a declared type, or a never-exercised path).
        (None, Some(p)) => MsbDecision::Agree { msb: p },
        (Some(s), None) => MsbDecision::Saturate {
            msb: s + policy.saturation_margin,
            guard: guard_range(stat, None),
            forced: exploded,
        },
        (None, None) => MsbDecision::Unresolved {
            reason: if exploded {
                "range propagation exploded and no statistic range was observed".to_string()
            } else {
                "no range information (signal never assigned a nonzero value)".to_string()
            },
        },
    }
}

/// The guard range the saturation hardware must absorb: the finite
/// propagated range when available, otherwise the statistic range widened
/// by one binade.
fn guard_range(stat: Option<Interval>, prop: Option<Interval>) -> Interval {
    if let Some(p) = prop {
        if p.is_bounded() {
            return p;
        }
    }
    match stat {
        Some(s) => s.shift(1),
        None => Interval::EMPTY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::{ErrorStats, RangeStats};
    use fixref_sim::SignalKind;

    fn report(stat: Option<(f64, f64)>, prop: Interval) -> SignalReport {
        let mut st = RangeStats::new();
        if let Some((lo, hi)) = stat {
            st.record(lo);
            st.record(hi);
        }
        SignalReport {
            id: SignalId::from_raw(0),
            name: "s".into(),
            kind: SignalKind::Wire,
            dtype: None,
            range_override: None,
            error_override: None,
            stat: st,
            prop,
            consumed: ErrorStats::new(),
            produced: ErrorStats::new(),
            overflows: 0,
            reads: 0,
            writes: st.count(),
            finest_lsb: None,
        }
    }

    #[test]
    fn rule_a_agreement() {
        let r = report(Some((-1.4, 1.5)), Interval::new(-1.5, 1.5));
        let a = analyze_msb(&r, &RefinePolicy::default());
        assert_eq!(a.decision, MsbDecision::Agree { msb: 1 });
        assert_eq!(a.mode, OverflowMode::Error);
        assert_eq!(a.overhead_bits(), Some(0));
        assert!(!a.exploded);
        assert!(a.decision.is_resolved());
        assert!(!a.decision.is_saturated());
    }

    #[test]
    fn rule_b_pessimistic_propagation_saturates() {
        // stat needs msb -2 (|x| <= 0.2), prop says +3: gap 5 >= 4.
        let r = report(Some((-0.2, 0.2)), Interval::new(-8.0, 7.0));
        let a = analyze_msb(&r, &RefinePolicy::default());
        match &a.decision {
            MsbDecision::Saturate { msb, guard, forced } => {
                assert_eq!(*msb, -2);
                assert!(!forced);
                assert_eq!(*guard, Interval::new(-8.0, 7.0));
            }
            other => panic!("expected saturate, got {other}"),
        }
        assert_eq!(a.mode, OverflowMode::Saturate);
    }

    #[test]
    fn rule_b_explosion_forces_saturation() {
        let r = report(Some((-0.11, 0.11)), Interval::UNBOUNDED);
        let a = analyze_msb(&r, &RefinePolicy::default());
        assert!(a.exploded);
        assert!(a.decision.is_forced_saturation());
        assert_eq!(a.decided_msb(), Some(-3));
        // Guard falls back to the widened statistic range.
        match &a.decision {
            MsbDecision::Saturate { guard, .. } => {
                assert_eq!(*guard, Interval::new(-0.22, 0.22))
            }
            other => panic!("expected saturate, got {other}"),
        }
    }

    #[test]
    fn finite_but_huge_prop_counts_as_explosion() {
        let r = report(Some((-1.0, 1.0)), Interval::new(-1e9, 1e9)); // msb 30 > 24
        let a = analyze_msb(&r, &RefinePolicy::default());
        assert!(a.exploded);
        assert!(a.decision.is_forced_saturation());
    }

    #[test]
    fn rule_c_tradeoff_prefers_propagation_by_default() {
        // stat msb 0 (|x| <= 0.9), prop msb 2 (<= 3.5): gap 2 < 4.
        let r = report(Some((-0.9, 0.9)), Interval::new(-3.5, 3.5));
        let a = analyze_msb(&r, &RefinePolicy::default());
        match a.decision {
            MsbDecision::Tradeoff {
                stat_msb,
                prop_msb,
                chosen,
                saturate,
            } => {
                assert_eq!((stat_msb, prop_msb, chosen), (0, 2, 2));
                assert!(!saturate);
            }
            ref other => panic!("expected tradeoff, got {other}"),
        }
        assert_eq!(a.overhead_bits(), Some(2));
    }

    #[test]
    fn rule_c_tradeoff_statistic_side_saturates() {
        let policy = RefinePolicy {
            tradeoff_prefers_propagation: false,
            ..RefinePolicy::default()
        };
        let r = report(Some((-0.9, 0.9)), Interval::new(-3.5, 3.5));
        let a = analyze_msb(&r, &policy);
        match a.decision {
            MsbDecision::Tradeoff {
                chosen, saturate, ..
            } => {
                assert_eq!(chosen, 0);
                assert!(saturate);
            }
            ref other => panic!("expected tradeoff, got {other}"),
        }
        assert_eq!(a.mode, OverflowMode::Saturate);
    }

    #[test]
    fn annotation_tighter_than_statistic_resolves_to_statistic() {
        // Designer pinned [-0.5,0.5] but simulation saw ±0.9: the safe
        // answer covers both.
        let mut r = report(Some((-0.9, 0.9)), Interval::new(-0.5, 0.5));
        r.range_override = Some(Interval::new(-0.5, 0.5));
        let a = analyze_msb(&r, &RefinePolicy::default());
        assert_eq!(a.decision, MsbDecision::Agree { msb: 0 });
    }

    #[test]
    fn prop_only_signal_resolves() {
        // Never assigned a nonzero value, but carries a declared range.
        let r = report(None, Interval::new(-2.0, 2.0));
        let a = analyze_msb(&r, &RefinePolicy::default());
        assert_eq!(a.decision, MsbDecision::Agree { msb: 2 });
        assert_eq!(a.stat_msb, None);
        assert_eq!(a.overhead_bits(), None);
    }

    #[test]
    fn no_information_is_unresolved() {
        let r = report(None, Interval::EMPTY);
        let a = analyze_msb(&r, &RefinePolicy::default());
        assert!(matches!(a.decision, MsbDecision::Unresolved { .. }));
        assert!(!a.decision.is_resolved());
        assert_eq!(a.decided_msb(), None);
    }

    #[test]
    fn stat_only_zeros_with_exploded_prop_is_unresolved() {
        let mut r = report(None, Interval::UNBOUNDED);
        r.stat.record(0.0); // only zeros: no msb derivable
        let a = analyze_msb(&r, &RefinePolicy::default());
        assert!(matches!(a.decision, MsbDecision::Unresolved { .. }));
        assert!(a.exploded);
    }

    #[test]
    fn saturation_margin_applies() {
        let policy = RefinePolicy {
            saturation_margin: 2,
            ..RefinePolicy::default()
        };
        let r = report(Some((-0.2, 0.2)), Interval::UNBOUNDED);
        let a = analyze_msb(&r, &policy);
        assert_eq!(a.decided_msb(), Some(0)); // -2 + 2
    }

    #[test]
    fn display_variants() {
        assert!(MsbDecision::Agree { msb: 1 }.to_string().contains("agree"));
        assert!(MsbDecision::Saturate {
            msb: 0,
            guard: Interval::EMPTY,
            forced: true
        }
        .to_string()
        .contains("forced"));
        assert!(MsbDecision::Unresolved { reason: "x".into() }
            .to_string()
            .contains("unresolved"));
    }
}
