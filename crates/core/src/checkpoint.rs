//! Checkpoint/resume for the refinement flow.
//!
//! After every completed MSB/LSB iteration the flow can snapshot its
//! complete decision state — signal annotations, phase cursor, decided
//! analyses, evaluation-cache contents and the full event journal — into
//! a self-contained JSON file. [`crate::RefinementFlow::resume_from`]
//! rebuilds a flow from that file and fast-forwards to the first
//! incomplete iteration; the resumed run's journal and final annotations
//! are bit-identical to the uninterrupted run, modulo the leading
//! `resumed_from_checkpoint` marker event.
//!
//! The format is hand-rolled JSON over the same zero-dependency
//! [`fixref_obs::Json`] model the event journal uses. Signal identity is
//! stored **by name**: a checkpoint is valid for any design built from
//! the same description, and every name is re-resolved (and every
//! embedded `SignalId` rebound) against the resuming design. What is
//! *not* stored is the signal-flow graph — it is only consulted during
//! the first (recorded) MSB iteration, which by construction has already
//! completed in any checkpointed run — and the shard-level recorders of a
//! swept flow, whose re-merged events are deterministic replays of the
//! live sweep.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use fixref_fixed::{
    DType, ErrorStats, Interval, OverflowMode, RangeStats, RoundingMode, Signedness,
};
use fixref_obs::json::{escape, fmt_f64};
use fixref_obs::{Event, Json};
use fixref_sim::{OverflowEvent, SignalAnnotation, SignalId, SignalStats};

use crate::lsb::{LsbAnalysis, LsbStatus};
use crate::msb::{MsbAnalysis, MsbDecision};

/// Current checkpoint format version.
const VERSION: u64 = 1;

/// The next work item of an interrupted flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cursor {
    /// Resume the MSB phase at iteration `next`.
    Msb {
        /// 1-based next MSB iteration.
        next: usize,
    },
    /// Resume the LSB phase at iteration `next` (the MSB phase is done).
    Lsb {
        /// 1-based next LSB iteration.
        next: usize,
    },
    /// Both phases are done: resume at type application + verification.
    Apply,
}

/// The checkpointed evaluation-cache state.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheState {
    /// Whether the driver's cache held a warm entry.
    pub warm: bool,
    /// Names of the signals pending invalidation (the design's dirty
    /// set), sorted.
    pub dirty: Vec<String>,
    /// The warm cache's monitor snapshot `(stats, overflow events,
    /// cycles)`, when the driver could serialize one (sequential caching
    /// driver only — the sweep driver re-warms by re-simulating).
    pub data: Option<(Vec<SignalStats>, Vec<OverflowEvent>, u64)>,
}

impl CacheState {
    /// State for a cache-less or cold driver.
    pub fn cold() -> Self {
        CacheState {
            warm: false,
            dirty: Vec::new(),
            data: None,
        }
    }
}

/// A complete flow snapshot, written after each completed iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The next work item.
    pub cursor: Cursor,
    /// Completed MSB iterations.
    pub msb_done: usize,
    /// Completed LSB iterations.
    pub lsb_done: usize,
    /// Sequence number the *next* checkpoint will carry.
    pub next_sequence: usize,
    /// Journal index where the MSB phase began.
    pub msb_journal_start: usize,
    /// Journal index where the LSB phase began, once entered.
    pub lsb_journal_start: Option<usize>,
    /// Per-signal annotations (types, pinned ranges, injected sigmas).
    pub annotations: Vec<SignalAnnotation>,
    /// Names of signals auto-pinned after a range explosion, sorted.
    pub pinned_explosion: Vec<String>,
    /// Names of knowledge-based saturation choices, sorted.
    pub force_saturate: Vec<String>,
    /// Names of signals excluded from refinement, sorted.
    pub excluded: Vec<String>,
    /// Names of the feedback signals detected in the first MSB iteration,
    /// sorted.
    pub feedback: Vec<String>,
    /// Names of signals currently flagged troubled in the cursor's phase,
    /// sorted.
    pub troubled: Vec<String>,
    /// Final MSB analyses (present once the MSB phase converged).
    pub msb_final: Option<Vec<MsbAnalysis>>,
    /// Final LSB analyses (present only at the `Apply` cursor).
    pub lsb_final: Option<Vec<LsbAnalysis>>,
    /// Evaluation-cache state.
    pub cache: CacheState,
    /// The complete event journal at capture time.
    pub journal: Vec<Event>,
}

/// Why a checkpoint could not be written, read or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure reading the checkpoint file.
    Io(String),
    /// The file did not parse as a version-1 checkpoint.
    Parse(String),
    /// The checkpoint references a signal the resuming design does not
    /// declare — the design was not built from the same description.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint/design mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// ---------------------------------------------------------------------------
// File store
// ---------------------------------------------------------------------------

impl Checkpoint {
    /// Atomically persists the checkpoint at `path`: the document is
    /// written to a `*.tmp` sibling, fsynced, and renamed over the
    /// destination. A crash at any point leaves either the previous
    /// complete checkpoint or the new complete checkpoint — never a
    /// truncated one. (A stray `*.tmp` from a crashed write is inert:
    /// readers only ever open the destination path.)
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure; the
    /// destination is untouched in that case.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut file = fs::File::create(&tmp).map_err(io)?;
        file.write_all(self.to_json().as_bytes()).map_err(io)?;
        file.sync_all().map_err(io)?;
        drop(file);
        fs::rename(&tmp, path).map_err(io)?;
        // Best-effort directory sync so the rename itself is durable;
        // not all filesystems support opening a directory for sync.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and decodes the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read,
    /// [`CheckpointError::Parse`] when it is not a complete version-1
    /// document (e.g. a torn write from a non-atomic writer).
    pub fn read(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Checkpoint::from_json(&text)
    }
}

/// A directory of named checkpoints with atomic persistence — the store
/// the job server keeps one checkpoint per job in. Names are sanitized
/// to a flat `<name>.ckpt` file each; saves go through
/// [`Checkpoint::write_atomic`].
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", dir.display())))?;
        Ok(CheckpointStore { dir })
    }

    /// The file path a named checkpoint lives at. Path separators and
    /// other non-filename characters in `name` are flattened to `_` so a
    /// job id can never escape the store directory.
    pub fn path_of(&self, name: &str) -> PathBuf {
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}.ckpt"))
    }

    /// Atomically saves `cp` under `name`.
    ///
    /// # Errors
    ///
    /// Same as [`Checkpoint::write_atomic`].
    pub fn save(&self, name: &str, cp: &Checkpoint) -> Result<(), CheckpointError> {
        cp.write_atomic(self.path_of(name))
    }

    /// Loads the checkpoint saved under `name`.
    ///
    /// # Errors
    ///
    /// Same as [`Checkpoint::read`].
    pub fn load(&self, name: &str) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::read(self.path_of(name))
    }

    /// Whether a checkpoint is saved under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.path_of(name).is_file()
    }

    /// Removes the checkpoint saved under `name` (no-op when absent).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on a filesystem failure other than the
    /// file not existing.
    pub fn remove(&self, name: &str) -> Result<(), CheckpointError> {
        let path = self.path_of(name);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CheckpointError::Io(format!("{}: {e}", path.display()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn cursor_json(c: Cursor) -> String {
    match c {
        Cursor::Msb { next } => format!("{{\"phase\":\"msb\",\"next\":{next}}}"),
        Cursor::Lsb { next } => format!("{{\"phase\":\"lsb\",\"next\":{next}}}"),
        Cursor::Apply => "{\"phase\":\"apply\"}".to_string(),
    }
}

fn str_arr(items: &[String]) -> String {
    let body: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", body.join(","))
}

fn itv_json(i: &Interval) -> String {
    format!("[{},{}]", fmt_f64(i.lo), fmt_f64(i.hi))
}

fn opt_itv_json(o: &Option<Interval>) -> String {
    o.as_ref().map(itv_json).unwrap_or_else(|| "null".into())
}

fn opt_i32_json(o: Option<i32>) -> String {
    o.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
}

fn opt_f64_json(o: Option<f64>) -> String {
    o.map(fmt_f64).unwrap_or_else(|| "null".into())
}

fn opt_usize_json(o: Option<usize>) -> String {
    o.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
}

fn dtype_json(t: &DType) -> String {
    format!(
        "{{\"name\":\"{}\",\"n\":{},\"f\":{},\"vt\":\"{}\",\"ovf\":\"{}\",\"rnd\":\"{}\"}}",
        escape(t.name()),
        t.n(),
        t.f(),
        t.signedness().token(),
        t.overflow().token(),
        t.rounding().token()
    )
}

fn annotation_json(a: &SignalAnnotation) -> String {
    format!(
        "{{\"name\":\"{}\",\"dtype\":{},\"range\":{},\"error_sigma\":{}}}",
        escape(&a.name),
        a.dtype
            .as_ref()
            .map(dtype_json)
            .unwrap_or_else(|| "null".into()),
        opt_itv_json(&a.range),
        opt_f64_json(a.error_sigma),
    )
}

fn decision_json(d: &MsbDecision) -> String {
    match d {
        MsbDecision::Agree { msb } => format!("{{\"kind\":\"agree\",\"msb\":{msb}}}"),
        MsbDecision::Saturate { msb, guard, forced } => format!(
            "{{\"kind\":\"saturate\",\"msb\":{msb},\"guard\":{},\"forced\":{forced}}}",
            itv_json(guard)
        ),
        MsbDecision::Tradeoff {
            stat_msb,
            prop_msb,
            chosen,
            saturate,
        } => format!(
            "{{\"kind\":\"tradeoff\",\"stat_msb\":{stat_msb},\"prop_msb\":{prop_msb},\
             \"chosen\":{chosen},\"saturate\":{saturate}}}"
        ),
        MsbDecision::Unresolved { reason } => {
            format!(
                "{{\"kind\":\"unresolved\",\"reason\":\"{}\"}}",
                escape(reason)
            )
        }
    }
}

fn msb_json(a: &MsbAnalysis) -> String {
    format!(
        "{{\"name\":\"{}\",\"accesses\":{},\"stat\":{},\"stat_msb\":{},\"prop\":{},\
         \"prop_msb\":{},\"exploded\":{},\"decision\":{},\"mode\":\"{}\",\"signedness\":\"{}\"}}",
        escape(&a.name),
        a.accesses,
        opt_itv_json(&a.stat),
        opt_i32_json(a.stat_msb),
        opt_itv_json(&a.prop),
        opt_i32_json(a.prop_msb),
        a.exploded,
        decision_json(&a.decision),
        a.mode.token(),
        a.signedness.token(),
    )
}

fn lsb_status_token(s: &LsbStatus) -> &'static str {
    match s {
        LsbStatus::Resolved => "resolved",
        LsbStatus::Exact => "exact",
        LsbStatus::Diverged => "diverged",
        LsbStatus::NoData => "no-data",
    }
}

fn lsb_json(a: &LsbAnalysis) -> String {
    format!(
        "{{\"name\":\"{}\",\"assigns\":{},\"max_abs\":{},\"mean\":{},\"std\":{},\"lsb\":{},\
         \"status\":\"{}\",\"precision_loss\":{},\"floor_mean_shift\":{},\"rounding\":\"{}\"}}",
        escape(&a.name),
        a.assigns,
        fmt_f64(a.max_abs),
        fmt_f64(a.mean),
        fmt_f64(a.std),
        opt_i32_json(a.lsb),
        lsb_status_token(&a.status),
        a.precision_loss,
        opt_f64_json(a.floor_mean_shift),
        a.rounding.token(),
    )
}

fn stats_json(s: &SignalStats) -> String {
    let (min, max, count) = s.stat.to_raw();
    let (cc, cm, cm2, cx) = s.consumed.to_raw();
    let (pc, pm, pm2, px) = s.produced.to_raw();
    format!(
        "{{\"name\":\"{}\",\"stat\":[{},{},{count}],\"prop\":{},\
         \"consumed\":[{cc},{},{},{}],\"produced\":[{pc},{},{},{}],\
         \"overflows\":{},\"reads\":{},\"writes\":{},\"granularity\":{},\"non_dyadic\":{}}}",
        escape(&s.name),
        fmt_f64(min),
        fmt_f64(max),
        itv_json(&s.prop),
        fmt_f64(cm),
        fmt_f64(cm2),
        fmt_f64(cx),
        fmt_f64(pm),
        fmt_f64(pm2),
        fmt_f64(px),
        s.overflows,
        s.reads,
        s.writes,
        opt_i32_json(s.granularity),
        s.non_dyadic,
    )
}

fn overflow_json(e: &OverflowEvent) -> String {
    format!(
        "{{\"name\":\"{}\",\"value\":{},\"cycle\":{}}}",
        escape(&e.name),
        fmt_f64(e.value),
        e.cycle
    )
}

impl Checkpoint {
    /// Serializes the checkpoint to its JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str(&format!("{{\"version\":{VERSION}"));
        out.push_str(&format!(",\"cursor\":{}", cursor_json(self.cursor)));
        out.push_str(&format!(",\"msb_done\":{}", self.msb_done));
        out.push_str(&format!(",\"lsb_done\":{}", self.lsb_done));
        out.push_str(&format!(",\"next_sequence\":{}", self.next_sequence));
        out.push_str(&format!(
            ",\"msb_journal_start\":{}",
            self.msb_journal_start
        ));
        out.push_str(&format!(
            ",\"lsb_journal_start\":{}",
            opt_usize_json(self.lsb_journal_start)
        ));
        let annotations: Vec<String> = self.annotations.iter().map(annotation_json).collect();
        out.push_str(&format!(",\"annotations\":[{}]", annotations.join(",")));
        out.push_str(&format!(
            ",\"pinned_explosion\":{}",
            str_arr(&self.pinned_explosion)
        ));
        out.push_str(&format!(
            ",\"force_saturate\":{}",
            str_arr(&self.force_saturate)
        ));
        out.push_str(&format!(",\"excluded\":{}", str_arr(&self.excluded)));
        out.push_str(&format!(",\"feedback\":{}", str_arr(&self.feedback)));
        out.push_str(&format!(",\"troubled\":{}", str_arr(&self.troubled)));
        match &self.msb_final {
            None => out.push_str(",\"msb_final\":null"),
            Some(list) => {
                let items: Vec<String> = list.iter().map(msb_json).collect();
                out.push_str(&format!(",\"msb_final\":[{}]", items.join(",")));
            }
        }
        match &self.lsb_final {
            None => out.push_str(",\"lsb_final\":null"),
            Some(list) => {
                let items: Vec<String> = list.iter().map(lsb_json).collect();
                out.push_str(&format!(",\"lsb_final\":[{}]", items.join(",")));
            }
        }
        let data = match &self.cache.data {
            None => "null".to_string(),
            Some((stats, events, cycles)) => {
                let stats: Vec<String> = stats.iter().map(stats_json).collect();
                let events: Vec<String> = events.iter().map(overflow_json).collect();
                format!(
                    "{{\"stats\":[{}],\"overflow\":[{}],\"cycles\":{cycles}}}",
                    stats.join(","),
                    events.join(",")
                )
            }
        };
        out.push_str(&format!(
            ",\"cache\":{{\"warm\":{},\"dirty\":{},\"data\":{data}}}",
            self.cache.warm,
            str_arr(&self.cache.dirty)
        ));
        let journal: Vec<String> = self.journal.iter().map(Event::to_json).collect();
        out.push_str(&format!(",\"journal\":[{}]", journal.join(",")));
        out.push('}');
        out
    }

    /// Parses a checkpoint document produced by [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] on malformed documents or unsupported
    /// versions.
    pub fn from_json(text: &str) -> Result<Checkpoint, CheckpointError> {
        let v = Json::parse(text).map_err(|e| perr(e.to_string()))?;
        let version = get_u64(&v, "version")?;
        if version != VERSION {
            return Err(perr(format!("unsupported checkpoint version {version}")));
        }
        let cursor = cursor_of(get(&v, "cursor")?)?;
        let annotations = get_arr(&v, "annotations")?
            .iter()
            .map(annotation_of)
            .collect::<Result<Vec<_>, _>>()?;
        let msb_final = match opt_member(&v, "msb_final") {
            None => None,
            Some(j) => Some(
                j.as_arr()
                    .ok_or_else(|| perr("msb_final is not an array".to_string()))?
                    .iter()
                    .map(msb_of)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let lsb_final = match opt_member(&v, "lsb_final") {
            None => None,
            Some(j) => Some(
                j.as_arr()
                    .ok_or_else(|| perr("lsb_final is not an array".to_string()))?
                    .iter()
                    .map(lsb_of)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let cache_v = get(&v, "cache")?;
        let data = match opt_member(cache_v, "data") {
            None => None,
            Some(d) => {
                let stats = get_arr(d, "stats")?
                    .iter()
                    .map(stats_of)
                    .collect::<Result<Vec<_>, _>>()?;
                let overflow = get_arr(d, "overflow")?
                    .iter()
                    .map(overflow_event_of)
                    .collect::<Result<Vec<_>, _>>()?;
                Some((stats, overflow, get_u64(d, "cycles")?))
            }
        };
        let cache = CacheState {
            warm: get_bool(cache_v, "warm")?,
            dirty: str_list(get(cache_v, "dirty")?)?,
            data,
        };
        let journal = get_arr(&v, "journal")?
            .iter()
            .map(|j| Event::from_value(j).map_err(|e| perr(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint {
            cursor,
            msb_done: get_usize(&v, "msb_done")?,
            lsb_done: get_usize(&v, "lsb_done")?,
            next_sequence: get_usize(&v, "next_sequence")?,
            msb_journal_start: get_usize(&v, "msb_journal_start")?,
            lsb_journal_start: match opt_member(&v, "lsb_journal_start") {
                None => None,
                Some(j) => Some(
                    j.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| perr("lsb_journal_start is not an integer".to_string()))?,
                ),
            },
            annotations,
            pinned_explosion: str_list(get(&v, "pinned_explosion")?)?,
            force_saturate: str_list(get(&v, "force_saturate")?)?,
            excluded: str_list(get(&v, "excluded")?)?,
            feedback: str_list(get(&v, "feedback")?)?,
            troubled: str_list(get(&v, "troubled")?)?,
            msb_final,
            lsb_final,
            cache,
            journal,
        })
    }
}

// ---------------------------------------------------------------------------
// Parser helpers
// ---------------------------------------------------------------------------

fn perr(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Parse(msg.into())
}

fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, CheckpointError> {
    v.get(key)
        .ok_or_else(|| perr(format!("missing member {key:?}")))
}

/// Member lookup treating an explicit `null` the same as absence.
fn opt_member<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    match v.get(key) {
        None | Some(Json::Null) => None,
        Some(j) => Some(j),
    }
}

fn get_u64(v: &Json, key: &str) -> Result<u64, CheckpointError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| perr(format!("member {key:?} is not a non-negative integer")))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, CheckpointError> {
    get_u64(v, key).map(|n| n as usize)
}

fn get_f64(v: &Json, key: &str) -> Result<f64, CheckpointError> {
    get(v, key)?
        .as_f64()
        .ok_or_else(|| perr(format!("member {key:?} is not a number")))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, CheckpointError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| perr(format!("member {key:?} is not a string")))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, CheckpointError> {
    match get(v, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(perr(format!("member {key:?} is not a boolean"))),
    }
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], CheckpointError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| perr(format!("member {key:?} is not an array")))
}

fn i32_of(j: &Json, what: &str) -> Result<i32, CheckpointError> {
    j.as_f64()
        .filter(|n| n.fract() == 0.0 && (i32::MIN as f64..=i32::MAX as f64).contains(n))
        .map(|n| n as i32)
        .ok_or_else(|| perr(format!("{what} is not an integer")))
}

fn get_i32(v: &Json, key: &str) -> Result<i32, CheckpointError> {
    i32_of(get(v, key)?, key)
}

fn opt_i32_of(v: &Json, key: &str) -> Result<Option<i32>, CheckpointError> {
    opt_member(v, key).map(|j| i32_of(j, key)).transpose()
}

fn opt_f64_of(v: &Json, key: &str) -> Result<Option<f64>, CheckpointError> {
    opt_member(v, key)
        .map(|j| {
            j.as_f64()
                .ok_or_else(|| perr(format!("member {key:?} is not a number")))
        })
        .transpose()
}

fn str_list(j: &Json) -> Result<Vec<String>, CheckpointError> {
    j.as_arr()
        .ok_or_else(|| perr("expected a string array".to_string()))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| perr("expected a string array".to_string()))
        })
        .collect()
}

/// `[lo, hi]` → [`Interval`]. Built as a raw pair (not via
/// [`Interval::new`]) because the empty interval legitimately serializes
/// as `["Infinity","-Infinity"]`.
fn itv_of(j: &Json, what: &str) -> Result<Interval, CheckpointError> {
    let arr = j
        .as_arr()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| perr(format!("{what} is not a two-element array")))?;
    let lo = arr[0]
        .as_f64()
        .ok_or_else(|| perr(format!("{what} bound is not a number")))?;
    let hi = arr[1]
        .as_f64()
        .ok_or_else(|| perr(format!("{what} bound is not a number")))?;
    Ok(Interval { lo, hi })
}

fn opt_itv_of(v: &Json, key: &str) -> Result<Option<Interval>, CheckpointError> {
    opt_member(v, key).map(|j| itv_of(j, key)).transpose()
}

fn signedness_of(s: &str) -> Result<Signedness, CheckpointError> {
    match s {
        "tc" => Ok(Signedness::TwosComplement),
        "ns" => Ok(Signedness::Unsigned),
        _ => Err(perr(format!("unknown signedness token {s:?}"))),
    }
}

fn overflow_of(s: &str) -> Result<OverflowMode, CheckpointError> {
    match s {
        "wp" => Ok(OverflowMode::Wrap),
        "st" => Ok(OverflowMode::Saturate),
        "er" => Ok(OverflowMode::Error),
        _ => Err(perr(format!("unknown overflow token {s:?}"))),
    }
}

fn rounding_of(s: &str) -> Result<RoundingMode, CheckpointError> {
    match s {
        "rd" => Ok(RoundingMode::Round),
        "fl" => Ok(RoundingMode::Floor),
        _ => Err(perr(format!("unknown rounding token {s:?}"))),
    }
}

fn status_of(s: &str) -> Result<LsbStatus, CheckpointError> {
    match s {
        "resolved" => Ok(LsbStatus::Resolved),
        "exact" => Ok(LsbStatus::Exact),
        "diverged" => Ok(LsbStatus::Diverged),
        "no-data" => Ok(LsbStatus::NoData),
        _ => Err(perr(format!("unknown LSB status token {s:?}"))),
    }
}

fn cursor_of(j: &Json) -> Result<Cursor, CheckpointError> {
    match get_str(j, "phase")? {
        "msb" => Ok(Cursor::Msb {
            next: get_usize(j, "next")?,
        }),
        "lsb" => Ok(Cursor::Lsb {
            next: get_usize(j, "next")?,
        }),
        "apply" => Ok(Cursor::Apply),
        other => Err(perr(format!("unknown cursor phase {other:?}"))),
    }
}

fn dtype_of(j: &Json) -> Result<DType, CheckpointError> {
    DType::new(
        get_str(j, "name")?,
        get_i32(j, "n")?,
        get_i32(j, "f")?,
        signedness_of(get_str(j, "vt")?)?,
        overflow_of(get_str(j, "ovf")?)?,
        rounding_of(get_str(j, "rnd")?)?,
    )
    .map_err(|e| perr(e.to_string()))
}

fn annotation_of(j: &Json) -> Result<SignalAnnotation, CheckpointError> {
    Ok(SignalAnnotation {
        name: get_str(j, "name")?.to_string(),
        dtype: opt_member(j, "dtype").map(dtype_of).transpose()?,
        range: opt_itv_of(j, "range")?,
        error_sigma: opt_f64_of(j, "error_sigma")?,
    })
}

fn decision_of(j: &Json) -> Result<MsbDecision, CheckpointError> {
    match get_str(j, "kind")? {
        "agree" => Ok(MsbDecision::Agree {
            msb: get_i32(j, "msb")?,
        }),
        "saturate" => Ok(MsbDecision::Saturate {
            msb: get_i32(j, "msb")?,
            guard: itv_of(get(j, "guard")?, "guard")?,
            forced: get_bool(j, "forced")?,
        }),
        "tradeoff" => Ok(MsbDecision::Tradeoff {
            stat_msb: get_i32(j, "stat_msb")?,
            prop_msb: get_i32(j, "prop_msb")?,
            chosen: get_i32(j, "chosen")?,
            saturate: get_bool(j, "saturate")?,
        }),
        "unresolved" => Ok(MsbDecision::Unresolved {
            reason: get_str(j, "reason")?.to_string(),
        }),
        other => Err(perr(format!("unknown MSB decision kind {other:?}"))),
    }
}

/// The placeholder id carried by deserialized analyses and overflow
/// events until [`crate::RefinementFlow::resume_from`] rebinds them by
/// name against the resuming design.
fn unbound_id() -> SignalId {
    SignalId::from_raw(u32::MAX)
}

fn msb_of(j: &Json) -> Result<MsbAnalysis, CheckpointError> {
    Ok(MsbAnalysis {
        id: unbound_id(),
        name: get_str(j, "name")?.to_string(),
        accesses: get_u64(j, "accesses")?,
        stat: opt_itv_of(j, "stat")?,
        stat_msb: opt_i32_of(j, "stat_msb")?,
        prop: opt_itv_of(j, "prop")?,
        prop_msb: opt_i32_of(j, "prop_msb")?,
        exploded: get_bool(j, "exploded")?,
        decision: decision_of(get(j, "decision")?)?,
        mode: overflow_of(get_str(j, "mode")?)?,
        signedness: signedness_of(get_str(j, "signedness")?)?,
    })
}

fn lsb_of(j: &Json) -> Result<LsbAnalysis, CheckpointError> {
    Ok(LsbAnalysis {
        id: unbound_id(),
        name: get_str(j, "name")?.to_string(),
        assigns: get_u64(j, "assigns")?,
        max_abs: get_f64(j, "max_abs")?,
        mean: get_f64(j, "mean")?,
        std: get_f64(j, "std")?,
        lsb: opt_i32_of(j, "lsb")?,
        status: status_of(get_str(j, "status")?)?,
        precision_loss: get_bool(j, "precision_loss")?,
        floor_mean_shift: opt_f64_of(j, "floor_mean_shift")?,
        rounding: rounding_of(get_str(j, "rounding")?)?,
    })
}

fn error_stats_of(j: &Json, what: &str) -> Result<ErrorStats, CheckpointError> {
    let arr = j
        .as_arr()
        .filter(|a| a.len() == 4)
        .ok_or_else(|| perr(format!("{what} is not a four-element array")))?;
    let num = |i: usize| -> Result<f64, CheckpointError> {
        arr[i]
            .as_f64()
            .ok_or_else(|| perr(format!("{what}[{i}] is not a number")))
    };
    let count = arr[0]
        .as_u64()
        .ok_or_else(|| perr(format!("{what}[0] is not a count")))?;
    Ok(ErrorStats::from_raw(count, num(1)?, num(2)?, num(3)?))
}

fn stats_of(j: &Json) -> Result<SignalStats, CheckpointError> {
    let stat = {
        let arr = get(j, "stat")?
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| perr("stat is not a three-element array".to_string()))?;
        let min = arr[0]
            .as_f64()
            .ok_or_else(|| perr("stat[0] is not a number".to_string()))?;
        let max = arr[1]
            .as_f64()
            .ok_or_else(|| perr("stat[1] is not a number".to_string()))?;
        let count = arr[2]
            .as_u64()
            .ok_or_else(|| perr("stat[2] is not a count".to_string()))?;
        RangeStats::from_raw(min, max, count)
    };
    Ok(SignalStats {
        name: get_str(j, "name")?.to_string(),
        stat,
        prop: itv_of(get(j, "prop")?, "prop")?,
        consumed: error_stats_of(get(j, "consumed")?, "consumed")?,
        produced: error_stats_of(get(j, "produced")?, "produced")?,
        overflows: get_u64(j, "overflows")?,
        reads: get_u64(j, "reads")?,
        writes: get_u64(j, "writes")?,
        granularity: opt_i32_of(j, "granularity")?,
        non_dyadic: get_bool(j, "non_dyadic")?,
    })
}

fn overflow_event_of(j: &Json) -> Result<OverflowEvent, CheckpointError> {
    Ok(OverflowEvent {
        signal: unbound_id(),
        name: get_str(j, "name")?.to_string(),
        value: get_f64(j, "value")?,
        cycle: get_u64(j, "cycle")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_obs::Phase;

    fn sample() -> Checkpoint {
        Checkpoint {
            cursor: Cursor::Msb { next: 2 },
            msb_done: 1,
            lsb_done: 0,
            next_sequence: 1,
            msb_journal_start: 3,
            lsb_journal_start: None,
            annotations: vec![SignalAnnotation {
                name: "b".into(),
                dtype: Some(
                    DType::new(
                        "T_b",
                        8,
                        6,
                        Signedness::TwosComplement,
                        OverflowMode::Saturate,
                        RoundingMode::Round,
                    )
                    .expect("valid"),
                ),
                range: Some(Interval { lo: -0.2, hi: 0.2 }),
                error_sigma: Some(1.5e-3),
            }],
            pinned_explosion: vec!["b".into()],
            force_saturate: vec![],
            excluded: vec![],
            feedback: vec!["b".into()],
            troubled: vec!["b".into(), "w".into()],
            msb_final: Some(vec![MsbAnalysis {
                id: unbound_id(),
                name: "b".into(),
                accesses: 1200,
                stat: Some(Interval {
                    lo: -0.19,
                    hi: 0.18,
                }),
                stat_msb: Some(-2),
                prop: Some(Interval::EMPTY),
                prop_msb: None,
                exploded: false,
                decision: MsbDecision::Saturate {
                    msb: -1,
                    guard: Interval { lo: -0.4, hi: 0.4 },
                    forced: true,
                },
                mode: OverflowMode::Saturate,
                signedness: Signedness::TwosComplement,
            }]),
            lsb_final: None,
            cache: CacheState {
                warm: true,
                dirty: vec!["b".into()],
                data: Some((
                    vec![SignalStats {
                        name: "b".into(),
                        stat: RangeStats::from_raw(-0.19, 0.18, 1200),
                        prop: Interval::UNBOUNDED,
                        consumed: ErrorStats::from_raw(1200, 1e-4, 2e-6, 8e-4),
                        produced: ErrorStats::from_raw(1200, -2e-5, 3e-6, 9e-4),
                        overflows: 2,
                        reads: 2400,
                        writes: 1200,
                        granularity: Some(-9),
                        non_dyadic: false,
                    }],
                    vec![OverflowEvent {
                        signal: unbound_id(),
                        name: "b".into(),
                        value: 1.25,
                        cycle: 77,
                    }],
                    1200,
                )),
            },
            journal: vec![
                Event::IterationStarted {
                    phase: Phase::Msb,
                    iteration: 1,
                },
                Event::CheckpointWritten {
                    sequence: 0,
                    phase: Phase::Msb,
                    iteration: 1,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let cp = sample();
        let text = cp.to_json();
        let back = Checkpoint::from_json(&text).expect("parses");
        assert_eq!(back, cp);
    }

    #[test]
    fn empty_and_unbounded_intervals_survive() {
        let mut cp = sample();
        cp.annotations[0].range = Some(Interval::EMPTY);
        let back = Checkpoint::from_json(&cp.to_json()).expect("parses");
        assert_eq!(back.annotations[0].range, Some(Interval::EMPTY));
    }

    #[test]
    fn version_is_checked() {
        let doc = sample()
            .to_json()
            .replacen("\"version\":1", "\"version\":9", 1);
        assert!(matches!(
            Checkpoint::from_json(&doc),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn store_saves_atomically_and_sanitizes_names() {
        let dir = std::env::temp_dir().join("fixref_ckpt_store_test");
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("store opens");
        let cp = sample();

        // Path traversal and separators flatten to plain filenames.
        let path = store.path_of("../evil/job 1");
        assert_eq!(path.parent(), Some(dir.as_path()));
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(".._evil_job_1.ckpt")
        );

        assert!(!store.contains("j-1"));
        store.save("j-1", &cp).expect("saves");
        assert!(store.contains("j-1"));
        assert_eq!(store.load("j-1").expect("loads"), cp);
        // Overwrites replace the whole file, leaving no tmp sibling.
        store.save("j-1", &cp).expect("overwrites");
        let mut tmp = store.path_of("j-1").into_os_string();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists());

        store.remove("j-1").expect("removes");
        assert!(!store.contains("j-1"));
        store.remove("j-1").expect("idempotent remove");
        assert!(matches!(store.load("j-1"), Err(CheckpointError::Io(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_files_are_a_parse_error_not_a_panic() {
        let dir = std::env::temp_dir().join("fixref_ckpt_torn_test");
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("store opens");
        store.save("torn", &sample()).expect("saves");
        let path = store.path_of("torn");
        let text = fs::read_to_string(&path).expect("reads back");
        fs::write(&path, &text[..text.len() / 3]).expect("tears");
        assert!(matches!(store.load("torn"), Err(CheckpointError::Parse(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
