//! The hybrid fixed-point refinement engine — the primary contribution of
//! *"A Methodology and Design Environment for DSP ASIC Fixed Point
//! Refinement"* (Cmar, Rijnders, Schaumont, Vernalde, Bolsens — IMEC,
//! DATE 1999).
//!
//! Floating-point DSP algorithms must be refined to fixed-point types
//! before ASIC implementation. This crate decides, per signal and from the
//! monitoring data gathered by [`fixref_sim`], the two independent halves
//! of every fixed-point type:
//!
//! * **MSB side** ([`msb`]): the integer wordlength and overflow mode,
//!   by comparing the *statistic* (simulated min/max) and *propagated*
//!   (interval-arithmetic) ranges under the refinement rules of paper
//!   §5.1 — agree ⇒ non-saturated; propagation pessimistic/exploded ⇒
//!   saturate (with hardware guard range); otherwise a trade-off;
//! * **LSB side** ([`lsb`]): the fractional wordlength and rounding mode,
//!   from the dual-simulation error statistics under the rule
//!   `2^LSB ≤ k·σ` of paper §5.2, with divergence detection and the
//!   `error()` escape hatch for sensitive feedback signals.
//!
//! [`flow`] drives the whole refinement loop of paper Fig. 4 — simulate,
//! analyze, intervene (automatic `range()` / `error()` annotations),
//! re-simulate — typically converging in two MSB iterations plus one LSB
//! iteration, and finally applies the decided [`DType`](fixref_fixed::DType)s
//! back onto the design for verification.
//!
//! [`baseline`] implements the two families the paper positions itself
//! against: the pure *simulation-based* wordlength search (Sung & Kum) and
//! the pure *analytical* worst-case derivation (Willems et al.);
//! [`compare`] races all three on the same workload.
//!
//! # Example
//!
//! ```
//! use fixref_core::{RefinementFlow, RefinePolicy};
//! use fixref_sim::{Design, SignalRef};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Design::new();
//! let x = d.sig("x");
//! let y = d.sig("y");
//! x.range(-1.0, 1.0);
//!
//! let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
//! let outcome = flow.run(move |_, _| {
//!     for i in 0..256 {
//!         x.set((i as f64 * 0.1).sin());
//!         y.set(x.get() * 0.25);
//!     }
//! })?;
//! assert!(outcome.msb_iterations >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod checkpoint;
pub mod compare;
pub mod flow;
pub mod jobspec;
pub mod lsb;
pub mod msb;
pub mod policy;
pub mod precision;
pub mod report;
pub mod sweep;

pub use cache::{CachePlan, EvalCache};
pub use checkpoint::{CacheState, Checkpoint, CheckpointError, CheckpointStore, Cursor};
pub use flow::{
    CancelToken, FlowError, FlowOutcome, FlowStatus, Intervention, RefinementFlow, RunBudget,
    SequentialDriver, SimBackend, SimDriver, SimFault, SweepCoverage, VerifyOutcome,
};
pub use jobspec::{FlowSpec, JobSpec};
pub use lsb::{analyze_lsb, LsbAnalysis, LsbStatus};
pub use msb::{analyze_msb, MsbAnalysis, MsbDecision};
pub use policy::RefinePolicy;
pub use precision::{analyze_precision, render_precision_table, PrecisionCheck, PrecisionStatus};
pub use report::{lsb_table_csv, msb_table_csv, render_lsb_table, render_msb_table};
pub use sweep::{
    FaultMode, FaultPolicy, ShardBuilder, ShardSim, ShardStimulus, ShardSummary, SweepDriver,
};
