//! The refinement flow driver (paper §5, Fig. 4).
//!
//! The flow owns a [`Design`] plus a stimulus closure and iterates:
//!
//! 1. **MSB phase** — simulate with monitoring, apply the §5.1 rules;
//!    exploded feedback signals receive an automatic `range()` annotation
//!    derived from their observed range (the paper's manual
//!    `b.range(-0.2, 0.2)` step) and the phase repeats. Two iterations
//!    suffice for both of the paper's designs.
//! 2. **LSB phase** — simulate, apply the §5.2 rule; divergent feedback
//!    signals receive an automatic `error()` annotation and the phase
//!    repeats (one extra iteration for the complex example's NCO).
//! 3. **Type application** — each resolved signal gets the
//!    `DType` combining its decided MSB, LSB, overflow and rounding modes.
//! 4. **Verification** — one more monitored run with every type in place;
//!    overflow events or precision regressions are reported.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fixref_fixed::{DType, Interval};
use fixref_lint::{LintConfig, Linter, Severity as LintSeverity, Verdict};
use fixref_obs::{DefaultRecorder, Event, Phase, Recorder};
use fixref_sim::tape::{BoundTrace, CompiledProgram};
use fixref_sim::{Design, FaultPlan, OverflowEvent, SignalId, SignalStats};
use fixref_verify::{Verifier, VerifyOptions, Witness};

use crate::cache::{CachePlan, EvalCache};
use crate::checkpoint::{CacheState, Checkpoint, CheckpointError, Cursor};
use crate::lsb::{analyze_lsb, LsbAnalysis, LsbStatus};
use crate::msb::{analyze_msb, MsbAnalysis, MsbDecision};
use crate::policy::RefinePolicy;

/// The flow's error type.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A phase did not converge within the policy's iteration budget.
    NotConverged {
        /// `"msb"` or `"lsb"`.
        phase: &'static str,
        /// Iterations spent.
        iterations: usize,
        /// Names of the signals still unresolved.
        unresolved: Vec<String>,
    },
    /// The pre-flight lint gate found diagnostics whose code the flow's
    /// [`LintConfig`] maps to deny.
    LintDenied {
        /// The denied diagnostic code (`"FXL001"`, …).
        code: String,
        /// Number of findings with that code.
        findings: usize,
        /// The signals those findings are anchored to.
        signals: Vec<String>,
    },
    /// The pre-flight verification pass found a machine-checked
    /// counterexample for a lint finding: a concrete stimulus drives the
    /// design into the flagged hazard, so refinement on the current
    /// annotations would bake in a broken word length.
    LintRefuted {
        /// The refuted diagnostic code (`"FXL002"`, …).
        code: String,
        /// The diagnostic's anchor signal.
        signal: String,
        /// The counterexample: input streams plus the register trace.
        /// `witness.to_scenario_set(seed)` yields a replayable stimulus
        /// for the sweep engine. (Boxed: traces are long, errors travel.)
        witness: Box<Witness>,
    },
    /// A scenario shard failed under a `Strict` fault policy.
    ShardFailed {
        /// 0-based scenario index of the failed shard.
        shard: usize,
        /// The scenario label (`Scenario::label`) naming seed, SNR and
        /// sample count.
        scenario: String,
        /// The captured panic message or failure cause.
        cause: String,
    },
    /// The flow was interrupted by an injected crash
    /// ([`FaultPlan::abort_after_checkpoint`]) — the deterministic
    /// stand-in for a killed process. Resume with
    /// [`RefinementFlow::resume_from`].
    Interrupted {
        /// Sequence number of the last checkpoint processed before the
        /// abort.
        checkpoint: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NotConverged {
                phase,
                iterations,
                unresolved,
            } => write!(
                f,
                "{phase} refinement did not converge after {iterations} iterations \
                 (unresolved: {})",
                unresolved.join(", ")
            ),
            FlowError::LintDenied {
                code,
                findings,
                signals,
            } => write!(
                f,
                "pre-flight lint gate denied {code}: {findings} finding(s) on {}",
                signals.join(", ")
            ),
            FlowError::LintRefuted {
                code,
                signal,
                witness,
            } => write!(
                f,
                "pre-flight verification refuted {code} at {signal}: {} in {} tick(s)",
                witness.hazard.describe(),
                witness.steps
            ),
            FlowError::ShardFailed {
                shard,
                scenario,
                cause,
            } => write!(f, "shard {shard} ({scenario}) failed: {cause}"),
            FlowError::Interrupted { checkpoint } => {
                write!(f, "flow interrupted after checkpoint {checkpoint}")
            }
        }
    }
}

impl Error for FlowError {}

/// A shard failure surfaced through [`SimDriver::simulate`] — the
/// driver-level form a `Strict` sweep converts into
/// [`FlowError::ShardFailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFault {
    /// 0-based scenario index of the failed shard.
    pub shard: usize,
    /// The scenario label.
    pub scenario: String,
    /// Attempts made before giving up.
    pub attempts: usize,
    /// The captured panic message or failure cause.
    pub cause: String,
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} ({}) failed after {} attempt(s): {}",
            self.shard, self.scenario, self.attempts, self.cause
        )
    }
}

/// How much of a scenario sweep actually contributed to the merged
/// statistics — `N of M scenarios`, with the quarantined stragglers named.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCoverage {
    /// Scenarios whose shards completed and merged in the last live sweep.
    pub completed: usize,
    /// Total scenarios in the sweep.
    pub total: usize,
    /// Labels of quarantined scenarios (failed repeatedly; no longer
    /// re-simulated).
    pub quarantined: Vec<String>,
}

impl SweepCoverage {
    /// Whether every scenario contributed.
    pub fn is_full(&self) -> bool {
        self.completed == self.total && self.quarantined.is_empty()
    }

    /// The `"N of M scenarios"` rendering used in reports.
    pub fn summary(&self) -> String {
        format!("{} of {} scenarios", self.completed, self.total)
    }
}

impl fmt::Display for SweepCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())?;
        if !self.quarantined.is_empty() {
            write!(f, " (quarantined: {})", self.quarantined.join("; "))?;
        }
        Ok(())
    }
}

/// Whether a flow ran to completion or returned best-so-far results.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FlowStatus {
    /// Every phase ran to convergence and verification completed.
    #[default]
    Complete,
    /// A [`RunBudget`] ran out: the outcome carries the best-so-far
    /// annotations and analyses instead of an error.
    Partial {
        /// Which budget ran out and where.
        reason: String,
    },
}

impl FlowStatus {
    /// Whether the outcome is best-so-far rather than complete.
    pub fn is_partial(&self) -> bool {
        matches!(self, FlowStatus::Partial { .. })
    }
}

/// Deadline budgets for a refinement run. When a budget runs out the flow
/// stops iterating, journals [`Event::BudgetExhausted`], and returns its
/// best-so-far annotation set with [`FlowStatus::Partial`] — never an
/// error. At least one iteration always completes before the budgets are
/// consulted, so there is always *something* to return.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock ceiling measured from the first budgeted phase entry.
    pub wall: Option<Duration>,
    /// Ceiling on monitored simulations (MSB + LSB iterations and the
    /// verification run all count one each).
    pub max_simulations: Option<u64>,
}

impl RunBudget {
    /// A wall-clock-only budget.
    pub fn wall(limit: Duration) -> Self {
        RunBudget {
            wall: Some(limit),
            max_simulations: None,
        }
    }

    /// A simulation-count-only budget.
    pub fn simulations(limit: u64) -> Self {
        RunBudget {
            wall: None,
            max_simulations: Some(limit),
        }
    }
}

/// A shareable cooperative cancellation flag for a running flow.
///
/// Cancellation rides the *budget* code path: the flow observes the
/// token exactly where it checks its [`RunBudget`]s (the top of each
/// iteration, after at least one has completed), journals the same
/// [`Event::BudgetExhausted`], and returns best-so-far results with
/// [`FlowStatus::Partial`] — one code path for "ran out" and "called
/// off", so cancelled jobs report coverage and annotations with
/// identical semantics to budget-exhausted ones. Clones share the flag;
/// cancelling is sticky and thread-safe.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (sticky; safe from any thread).
    pub fn cancel(&self) {
        self.flag.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// An automatic annotation the flow inserted.
#[derive(Debug, Clone, PartialEq)]
pub enum Intervention {
    /// `range(lo, hi)` pinned on an exploded (or knowledge-saturated)
    /// feedback signal.
    AutoRange {
        /// The annotated signal.
        signal: SignalId,
        /// Its name.
        name: String,
        /// Lower pinned bound.
        lo: f64,
        /// Upper pinned bound.
        hi: f64,
        /// Which MSB iteration inserted it (1-based).
        iteration: usize,
    },
    /// `error(σ)` injected on an LSB-divergent feedback signal.
    AutoError {
        /// The annotated signal.
        signal: SignalId,
        /// Its name.
        name: String,
        /// Injected error standard deviation.
        sigma: f64,
        /// Which LSB iteration inserted it (1-based).
        iteration: usize,
    },
}

impl fmt::Display for Intervention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intervention::AutoRange {
                name,
                lo,
                hi,
                iteration,
                ..
            } => write!(f, "iter {iteration}: {name}.range({lo}, {hi})"),
            Intervention::AutoError {
                name,
                sigma,
                iteration,
                ..
            } => write!(f, "iter {iteration}: {name}.error(sigma={sigma:.3e})"),
        }
    }
}

/// The result of the final verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyOutcome {
    /// Per-signal overflow counts observed with all types applied.
    pub overflows: Vec<(String, u64)>,
    /// Sum of all overflow counts.
    pub total_overflows: u64,
    /// Excursions absorbed by saturating types (informational: this is
    /// the saturation hardware doing its job, not a failure).
    pub saturation_events: u64,
    /// Signals whose produced error exceeded their consumed error
    /// (precision loss the designer should confirm).
    pub precision_loss: Vec<String>,
}

impl VerifyOutcome {
    /// Whether verification saw no overflow at all.
    pub fn is_overflow_free(&self) -> bool {
        self.total_overflows == 0
    }
}

/// The complete outcome of a refinement run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Number of MSB iterations used.
    pub msb_iterations: usize,
    /// Number of LSB iterations used.
    pub lsb_iterations: usize,
    /// Per-iteration MSB analyses (last entry = final decisions).
    pub msb_history: Vec<Vec<MsbAnalysis>>,
    /// Per-iteration LSB analyses (last entry = final decisions).
    pub lsb_history: Vec<Vec<LsbAnalysis>>,
    /// Automatic annotations inserted along the way.
    pub interventions: Vec<Intervention>,
    /// The decided types, per signal.
    pub types: Vec<(SignalId, DType)>,
    /// Signals left floating (unresolved or explicitly excluded).
    pub unrefined: Vec<String>,
    /// The verification run's findings.
    pub verify: VerifyOutcome,
    /// Whether the flow ran to completion or stopped on an exhausted
    /// [`RunBudget`] with best-so-far results.
    pub status: FlowStatus,
    /// Scenario-sweep coverage of the final merged statistics (swept runs
    /// only; `None` for the sequential driver).
    pub coverage: Option<SweepCoverage>,
}

impl FlowOutcome {
    /// The final MSB analyses.
    pub fn msb(&self) -> &[MsbAnalysis] {
        self.msb_history.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// The final LSB analyses.
    pub fn lsb(&self) -> &[LsbAnalysis] {
        self.lsb_history.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// The decided type of a signal, if any.
    pub fn type_of(&self, id: SignalId) -> Option<&DType> {
        self.types.iter().find(|(s, _)| *s == id).map(|(_, t)| t)
    }

    /// Mean MSB overhead (decided minus statistic) over the non-saturated
    /// refined signals — the paper's "0.22 bits per signal" metric.
    pub fn mean_msb_overhead(&self) -> Option<f64> {
        let final_msb = self.msb();
        let overheads: Vec<f64> = final_msb
            .iter()
            .filter(|a| a.decision.is_resolved() && !a.decision.is_saturated())
            .filter_map(|a| a.overhead_bits().map(|o| o as f64))
            .collect();
        if overheads.is_empty() {
            None
        } else {
            Some(overheads.iter().sum::<f64>() / overheads.len() as f64)
        }
    }

    /// Count of saturated signals, split into (forced-by-explosion,
    /// other-saturations) — the complex example's "2 + 5" breakdown.
    pub fn saturation_counts(&self) -> (usize, usize) {
        let mut forced = 0;
        let mut other = 0;
        for a in self.msb() {
            if a.decision.is_forced_saturation() {
                forced += 1;
            } else if a.decision.is_saturated() {
                other += 1;
            }
        }
        (forced, other)
    }
}

/// How the flow obtains one monitored simulation of its design.
///
/// The refinement rules only consume the design's *monitors* (range and
/// error statistics, propagated intervals, the signal-flow graph), so the
/// flow is agnostic about how a simulation was produced. The built-in
/// sequential driver runs the stimulus closure on the flow's own design;
/// the scenario-sweep driver ([`crate::sweep::SweepDriver`]) fans the
/// stimulus out over a worker pool of per-scenario designs and folds the
/// shard statistics back into the flow's design. With a single scenario
/// the two are bit-identical.
pub trait SimDriver {
    /// Runs one full monitored simulation for `iteration` and leaves the
    /// resulting statistics on `design`. Responsible for resetting stats
    /// and state first, and — when `record_graph` is set — for leaving a
    /// freshly recorded signal-flow graph on the design. Journals and
    /// counters go to `recorder`. Returns the number of cycles simulated
    /// (summed over shards for a swept run), or [`SimFault`] when a shard
    /// failed under a `Strict` fault policy (the sequential driver never
    /// fails — a panic in its stimulus propagates).
    ///
    /// # Errors
    ///
    /// [`SimFault`] naming the failed shard and scenario.
    fn simulate(
        &mut self,
        design: &Design,
        recorder: &Arc<DefaultRecorder>,
        iteration: usize,
        record_graph: bool,
    ) -> Result<u64, SimFault>;

    /// Coverage of the most recent live sweep, for drivers that fan out
    /// over scenarios. The sequential driver reports `None`.
    fn coverage(&self) -> Option<SweepCoverage> {
        None
    }

    /// Whether the driver holds a warm evaluation cache (checkpointing
    /// records this so a resumed flow can restore it).
    fn cache_is_warm(&self) -> bool {
        false
    }

    /// The warm cache's monitor snapshot `(stats, overflow events,
    /// cycles)` for checkpointing, when one exists.
    fn cache_snapshot(&self) -> Option<(Vec<SignalStats>, Vec<OverflowEvent>, u64)> {
        None
    }

    /// Called once before the first simulation of a resumed flow when the
    /// checkpoint recorded a warm cache with `dirty` pending invalidated
    /// signals. Drivers whose cache is *not* serialized (the sweep driver)
    /// use this to re-journal the `CacheInvalidated` event the original
    /// run would have emitted; the sequential driver restores its cache
    /// directly and needs no help.
    fn resume_invalidation(&mut self, _dirty: usize) {}
}

/// Which evaluation engine the closure-based drivers use for monitored
/// simulations.
///
/// Every backend is bit-identical to [`SimBackend::Interpreted`] — same
/// statistics, overflow events and journal counters — or it is not used:
/// a design whose first recorded iteration cannot be compiled (lint's
/// FXL001 static-schedule verdict refuses it, lowering exceeds its
/// budget, or the verification replay catches host control flow the tape
/// cannot represent) falls back to the interpreter and journals
/// [`Event::BackendFallback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// Run the host-code description for every simulation (the paper's
    /// engine). Always available.
    #[default]
    Interpreted,
    /// After the first recorded iteration, lower the captured execution
    /// trace to a flat op tape and replay that for subsequent
    /// iterations — no host-code walk, no per-assignment registry
    /// lookups.
    Compiled,
    /// [`SimBackend::Compiled`], plus scenario sweeps batch same-shaped
    /// scenario lanes through one structure-of-arrays pass. Sequential
    /// (non-swept) runs treat this exactly like `Compiled`.
    Batched,
}

impl SimBackend {
    /// The name used in `backend.*` events and counters.
    pub fn name(self) -> &'static str {
        match self {
            SimBackend::Interpreted => "interpreted",
            SimBackend::Compiled => "compiled",
            SimBackend::Batched => "batched",
        }
    }
}

/// A compiled program plus its run binding, held by a driver once the
/// record iteration compiled successfully.
pub(crate) struct CompiledUnit {
    pub(crate) program: CompiledProgram,
    pub(crate) trace: BoundTrace,
}

/// Attempts to lower the captured record iteration into a compiled unit,
/// enforcing the gates every backend user shares: lint's FXL001
/// static-schedule verdict, the lowering budget, and the bitwise
/// verification replay. `Ok` carries the unit; `Err` carries the
/// human-readable fallback reason.
pub(crate) fn compile_capture(
    design: &Design,
    trace: &fixref_sim::ExecTrace,
) -> Result<CompiledUnit, String> {
    let violations = fixref_lint::check_static_schedule(design);
    if !violations.is_empty() {
        return Err(format!(
            "FXL001 static-schedule verdict refused the design ({} violation(s))",
            violations.len()
        ));
    }
    let (program, bound) = fixref_codegen::lower_trace(design, trace).map_err(|e| e.to_string())?;
    if !design.verify_compiled(&program, &bound) {
        return Err(
            "verification replay diverged from the capture (host control flow is not \
             tape-representable)"
                .to_string(),
        );
    }
    Ok(CompiledUnit {
        program,
        trace: bound,
    })
}

/// The built-in driver: one sequential simulation of the flow's design,
/// exactly as the paper's engine runs it.
///
/// With [`SequentialDriver::with_cache`] the driver keeps an
/// [`EvalCache`] across simulations: iterations whose annotations did
/// not change replay the cached monitors without running the stimulus,
/// and — on designs with a declared static schedule — iterations with a
/// small dirty set re-simulate only the dirty fan-out cone (see
/// [`crate::cache`] for the soundness argument). The refinement outcome
/// is bit-identical either way.
pub struct SequentialDriver<F> {
    sim: F,
    cache: Option<EvalCache>,
    backend: SimBackend,
    /// The compiled record iteration, once the backend compiled one.
    compiled: Option<CompiledUnit>,
    /// Whether the one-shot [`Event::BackendFallback`] was journaled.
    fallback_noted: bool,
}

impl<F: FnMut(&Design, usize)> SequentialDriver<F> {
    /// A plain driver: every simulation runs the stimulus in full.
    pub fn new(sim: F) -> Self {
        SequentialDriver {
            sim,
            cache: None,
            backend: SimBackend::default(),
            compiled: None,
            fallback_noted: false,
        }
    }

    /// A caching driver: clean iterations splice cached monitors instead
    /// of re-simulating.
    pub fn with_cache(sim: F) -> Self {
        SequentialDriver {
            cache: Some(EvalCache::new()),
            ..Self::new(sim)
        }
    }

    /// A caching driver whose cache starts pre-warmed from a checkpoint's
    /// monitor snapshot — the resume path's way of making cached replays
    /// bit-identical to the uninterrupted run.
    pub fn with_restored_cache(sim: F, cache: EvalCache) -> Self {
        SequentialDriver {
            cache: Some(cache),
            ..Self::new(sim)
        }
    }

    /// Selects the evaluation backend. [`SimBackend::Batched`] behaves
    /// like [`SimBackend::Compiled`] on the sequential driver (there are
    /// no scenario lanes to batch).
    pub fn set_backend(&mut self, backend: SimBackend) {
        self.backend = backend;
    }

    /// The driver's cache, when caching is enabled.
    pub fn cache(&self) -> Option<&EvalCache> {
        self.cache.as_ref()
    }

    /// Whether a compiled program is armed for subsequent iterations.
    pub fn has_compiled_program(&self) -> bool {
        self.compiled.is_some()
    }

    /// Journals the one-shot fallback-to-interpreted event.
    fn note_fallback(&mut self, recorder: &DefaultRecorder, reason: &str) {
        if !self.fallback_noted {
            self.fallback_noted = true;
            recorder.record_event(Event::BackendFallback {
                backend: self.backend.name().to_string(),
                reason: reason.to_string(),
            });
            recorder.inc("backend.fallbacks", 1);
        }
    }

    /// Runs the record iteration interpreted while capturing an execution
    /// trace, then tries to compile the capture for subsequent
    /// iterations.
    fn record_and_compile(
        &mut self,
        design: &Design,
        recorder: &DefaultRecorder,
        iteration: usize,
    ) {
        design.clear_graph();
        design.record_graph(true);
        design.begin_capture();
        (self.sim)(design, iteration);
        design.record_graph(false);
        let trace = design
            .end_capture()
            .expect("capture begun by this driver is still active");
        match compile_capture(design, &trace) {
            Ok(unit) => {
                recorder.record_event(Event::BackendCompiled {
                    backend: self.backend.name().to_string(),
                    kinds: unit.program.kinds.len(),
                    instructions: unit.program.instruction_count(),
                    cycles: unit.trace.cycles,
                });
                recorder.inc("backend.programs", 1);
                self.compiled = Some(unit);
            }
            Err(reason) => self.note_fallback(recorder, &reason),
        }
    }
}

impl<F: FnMut(&Design, usize)> SimDriver for SequentialDriver<F> {
    fn cache_is_warm(&self) -> bool {
        self.cache.as_ref().is_some_and(EvalCache::is_warm)
    }

    fn cache_snapshot(&self) -> Option<(Vec<SignalStats>, Vec<OverflowEvent>, u64)> {
        self.cache.as_ref().and_then(EvalCache::snapshot)
    }

    fn simulate(
        &mut self,
        design: &Design,
        recorder: &Arc<DefaultRecorder>,
        iteration: usize,
        record_graph: bool,
    ) -> Result<u64, SimFault> {
        let plan = match &self.cache {
            None => CachePlan::Cold,
            Some(cache) => cache.plan(design, record_graph, recorder.as_ref()),
        };
        let signals = design.num_signals() as u64;
        design.reset_stats();
        design.reset_state();
        let compiled_wanted = self.backend != SimBackend::Interpreted;
        Ok(match plan {
            CachePlan::Replay => {
                let cache = self.cache.as_mut().expect("replay implies a cache");
                let cycles = cache.replay(design);
                cache.note(recorder.as_ref(), signals, 0);
                cycles
            }
            CachePlan::Partial { clean } => {
                design.set_passive(&clean);
                match (compiled_wanted, &self.compiled) {
                    (true, Some(unit)) => {
                        design.replay_compiled(&unit.program, &unit.trace);
                        recorder.inc("backend.compiled_runs", 1);
                    }
                    _ => (self.sim)(design, iteration),
                }
                design.clear_passive();
                let cache = self.cache.as_mut().expect("partial implies a cache");
                cache.splice_clean(design, &clean);
                cache.note(
                    recorder.as_ref(),
                    clean.len() as u64,
                    signals - clean.len() as u64,
                );
                cache.store(design);
                design.cycle()
            }
            CachePlan::Cold => {
                if record_graph && compiled_wanted {
                    self.record_and_compile(design, recorder, iteration);
                } else if record_graph {
                    design.clear_graph();
                    design.record_graph(true);
                    (self.sim)(design, iteration);
                    design.record_graph(false);
                } else if let (true, Some(unit)) = (compiled_wanted, &self.compiled) {
                    design.replay_compiled(&unit.program, &unit.trace);
                    recorder.inc("backend.compiled_runs", 1);
                } else {
                    (self.sim)(design, iteration);
                }
                if let Some(cache) = &mut self.cache {
                    cache.note(recorder.as_ref(), 0, signals);
                    cache.store(design);
                }
                design.cycle()
            }
        })
    }
}

/// In-memory continuation state decoded from a [`Checkpoint`], consumed by
/// the next `run*` call to fast-forward past completed iterations.
struct ResumeState {
    cursor: Cursor,
    feedback: Vec<SignalId>,
    troubled: Vec<String>,
    lsb_final: Option<Vec<LsbAnalysis>>,
}

/// The refinement flow driver.
///
/// See the crate-level example; the typical call is [`RefinementFlow::run`]
/// with a stimulus closure that exercises the design for a representative
/// number of samples.
pub struct RefinementFlow {
    design: Design,
    policy: RefinePolicy,
    /// Signals typed before the flow started (the partial type definition
    /// of Fig. 4, typically the inputs): checked, never re-decided.
    locked: HashSet<SignalId>,
    /// Knowledge-based saturation choices (the complex example's "5
    /// signals ... knowledge-based choice").
    force_saturate: HashSet<SignalId>,
    /// Signals excluded from refinement entirely.
    excluded: HashSet<SignalId>,
    /// Signals auto-pinned with `range()` because their propagation
    /// exploded (decided as forced saturation).
    pinned_explosion: HashSet<SignalId>,
    /// The flow's observability sink: every iteration span, intervention
    /// and convergence event lands here, and the design's simulation
    /// counters share it. The intervention lists the phase methods return
    /// are derived from this journal.
    recorder: Arc<DefaultRecorder>,
    /// When set, the closure-based entry points (`run`, `run_msb`, …)
    /// drive their simulations through a caching [`SequentialDriver`].
    cache_enabled: bool,
    /// Evaluation backend for the closure-based entry points (see
    /// [`SimBackend`]).
    backend: SimBackend,
    /// Per-code allow/warn/deny configuration of the pre-flight lint
    /// gate. The default warns on everything, so no existing flow fails.
    lint: LintConfig,
    /// When set, the pre-flight gate model-checks every checkable lint
    /// finding: proofs discharge denied warnings, counterexamples abort
    /// the flow with the witness attached. `None` (the default) keeps the
    /// gate purely heuristic and byte-identical to earlier releases.
    verify: Option<VerifyOptions>,
    /// Checkpoint sink: when set, the flow snapshots its state here after
    /// every completed MSB/LSB iteration.
    checkpoint: Option<PathBuf>,
    /// Injected faults for deterministic degradation testing (empty in
    /// production).
    fault_plan: FaultPlan,
    /// Continuation state decoded by [`RefinementFlow::resume_from`],
    /// consumed by the next `run*` call.
    resume: Option<ResumeState>,
    /// Monitor snapshot restoring the evaluation cache on resume.
    resume_cache: Option<(Vec<SignalStats>, Vec<OverflowEvent>, u64)>,
    /// Dirty-signal count whose `CacheInvalidated` event the resumed
    /// driver must re-journal (sweep driver only).
    pending_resume_invalidation: Option<usize>,
    /// Sequence number of the next checkpoint to write.
    next_checkpoint_seq: usize,
    /// Journal index where the MSB phase began (for the final
    /// intervention list and for checkpoints).
    msb_journal_start: usize,
    /// Journal index where the LSB phase began, once entered.
    lsb_journal_start: Option<usize>,
    /// Completed MSB iterations across interrupt/resume boundaries.
    msb_done_total: usize,
    /// Completed LSB iterations across interrupt/resume boundaries.
    lsb_done_total: usize,
    /// Final MSB analyses, kept for checkpoints written during the LSB
    /// phase.
    msb_final_store: Option<Vec<MsbAnalysis>>,
    /// Deadline budgets for `run*` calls.
    budget: RunBudget,
    /// Wall-clock anchor for the budget (armed on first budgeted check).
    budget_clock: Option<Instant>,
    /// Monitored simulations completed so far under the budget.
    budget_sims: u64,
    /// Set when a budget ran out: the exhaustion reason.
    budget_hit: Option<String>,
    /// Cooperative cancellation, observed at the same points the budgets
    /// are. `None` means the flow cannot be cancelled.
    cancel: Option<CancelToken>,
}

impl RefinementFlow {
    /// Creates a flow over a design. Signals that already carry a type
    /// (the "partial type definition") are locked: they are monitored and
    /// checked but their types are not re-decided.
    pub fn new(design: Design, policy: RefinePolicy) -> Self {
        Self::with_recorder(design, policy, Arc::new(DefaultRecorder::new()))
    }

    /// Creates a flow that reports into an existing recorder (for sharing
    /// one metrics sink across flows, or inspecting the journal after the
    /// run). The recorder is also attached to the design, so simulation
    /// counters (`sim.ticks`, `sim.assignments`, …) land in the same sink
    /// as the flow's own events and spans.
    pub fn with_recorder(
        design: Design,
        policy: RefinePolicy,
        recorder: Arc<DefaultRecorder>,
    ) -> Self {
        design.attach_recorder(recorder.clone());
        let locked = design
            .reports()
            .into_iter()
            .filter(|r| r.dtype.is_some())
            .map(|r| r.id)
            .collect();
        RefinementFlow {
            design,
            policy,
            locked,
            force_saturate: HashSet::new(),
            excluded: HashSet::new(),
            pinned_explosion: HashSet::new(),
            recorder,
            cache_enabled: false,
            backend: SimBackend::default(),
            lint: LintConfig::new(),
            verify: None,
            checkpoint: None,
            fault_plan: FaultPlan::default(),
            resume: None,
            resume_cache: None,
            pending_resume_invalidation: None,
            next_checkpoint_seq: 0,
            msb_journal_start: 0,
            lsb_journal_start: None,
            msb_done_total: 0,
            lsb_done_total: 0,
            msb_final_store: None,
            budget: RunBudget::default(),
            budget_clock: None,
            budget_sims: 0,
            budget_hit: None,
            cancel: None,
        }
    }

    /// Enables the incremental evaluation cache for the closure-based
    /// entry points: iterations whose annotations did not change splice
    /// the previous run's monitors instead of re-simulating. The decided
    /// types, merged ranges and `type_applied` journal are bit-identical
    /// with or without the cache; cache hit/miss counts land on the
    /// recorder as `cache.hits` / `cache.misses`.
    pub fn enable_cache(&mut self) {
        self.cache_enabled = true;
    }

    /// Selects the evaluation backend for the closure-based entry points
    /// (`run`, `run_msb`, …): [`SimBackend::Compiled`] lowers the first
    /// recorded iteration to an op tape and replays it for subsequent
    /// iterations, falling back to the interpreter (with a journaled
    /// [`Event::BackendFallback`]) whenever the design refuses a static
    /// schedule or the tape fails its verification replay. The refined
    /// types, statistics and journal counters are bit-identical across
    /// backends. Swept entry points batch scenario lanes when
    /// [`SimBackend::Batched`] is selected on their [`SweepDriver`]
    /// (see [`crate::sweep::SweepDriver::set_backend`]).
    pub fn set_backend(&mut self, backend: SimBackend) {
        self.backend = backend;
    }

    /// The selected evaluation backend.
    pub fn backend(&self) -> SimBackend {
        self.backend
    }

    /// Configures the pre-flight lint gate. After the first (recorded)
    /// MSB iteration the flow lints the design: every diagnostic is
    /// journaled as [`Event::LintDiagnostic`], `Allow`ed codes are
    /// suppressed, and if any finding carries a `Deny` code the flow
    /// aborts with [`FlowError::LintDenied`] before spending further
    /// iterations. The default configuration warns on everything.
    pub fn set_lint_config(&mut self, config: LintConfig) {
        self.lint = config;
    }

    /// The pre-flight lint gate's configuration.
    pub fn lint_config(&self) -> &LintConfig {
        &self.lint
    }

    /// Turns on formal verification inside the pre-flight gate. Every
    /// checkable finding (FXL002/FXL004 overflow, FXL005 limit cycle) is
    /// model-checked with the given budgets: a finding *proved* safe no
    /// longer trips a `Deny` code, and a finding with a machine-checked
    /// counterexample aborts the flow with [`FlowError::LintRefuted`] —
    /// witness attached — regardless of the configured action. Undecided
    /// findings keep their heuristic treatment.
    pub fn enable_verification(&mut self, options: VerifyOptions) {
        self.verify = Some(options);
    }

    /// The verification budgets, when verification is enabled.
    pub fn verification(&self) -> Option<&VerifyOptions> {
        self.verify.as_ref()
    }

    /// The pre-flight lint gate: lints the design right after the first
    /// recorded MSB iteration (graph and monitor counters are fresh),
    /// journals every finding, mirrors severity counts onto the
    /// `lint.*` recorder counters, and aborts on any denied code.
    fn preflight_lint(&self) -> Result<(), FlowError> {
        let mut report = Linter::with_config(self.lint.clone()).run(&self.design);
        if let Some(options) = &self.verify {
            let verified = Verifier::with_options(*options).verify_design(
                &self.design,
                &report,
                Some(self.recorder.as_ref()),
            );
            if let Some(refuted) = verified.counterexamples().next() {
                self.recorder.inc("verify.flow_gate_failures", 1);
                return Err(FlowError::LintRefuted {
                    code: refuted.code.as_str().into(),
                    signal: refuted.signal.clone(),
                    witness: Box::new(
                        refuted
                            .witness
                            .clone()
                            .expect("counterexample outcomes carry a witness"),
                    ),
                });
            }
            report = verified.report;
        }
        for d in &report.diagnostics {
            self.recorder.record_event(Event::LintDiagnostic {
                code: d.code.as_str().into(),
                severity: d.severity.as_str().into(),
                signal: d.signal.clone(),
                message: d.message.clone(),
            });
        }
        let errors = report.count(LintSeverity::Error);
        let warnings = report.count(LintSeverity::Warning);
        let infos = report.count(LintSeverity::Info);
        self.recorder.record_event(Event::LintCompleted {
            errors,
            warnings,
            infos,
        });
        for (counter, n) in [
            ("lint.errors", errors),
            ("lint.warnings", warnings),
            ("lint.infos", infos),
        ] {
            if n > 0 {
                self.recorder.inc(counter, n as u64);
            }
        }
        // A denied finding that verification proved safe is discharged:
        // the machine-checked proof outranks the heuristic pattern.
        let all_denied = report.denied(&self.lint);
        let discharged = all_denied
            .iter()
            .filter(|d| d.verdict == Some(Verdict::Proved))
            .count();
        if discharged > 0 {
            self.recorder.inc("verify.discharged", discharged as u64);
        }
        let denied: Vec<&fixref_lint::Diagnostic> = all_denied
            .into_iter()
            .filter(|d| d.verdict != Some(Verdict::Proved))
            .collect();
        if let Some(first) = denied.first() {
            let code = first.code;
            let offenders: Vec<&&fixref_lint::Diagnostic> =
                denied.iter().filter(|d| d.code == code).collect();
            self.recorder.record_event(Event::LintGateFailed {
                context: "flow.preflight".into(),
                code: code.as_str().into(),
                findings: offenders.len(),
            });
            self.recorder.inc("lint.flow_gate_failures", 1);
            return Err(FlowError::LintDenied {
                code: code.as_str().into(),
                findings: offenders.len(),
                signals: offenders.iter().map(|d| d.signal.clone()).collect(),
            });
        }
        Ok(())
    }

    /// Builds the sequential driver honoring
    /// [`RefinementFlow::enable_cache`], pre-warming its cache from a
    /// checkpoint snapshot when resuming.
    fn driver_for<F: FnMut(&Design, usize)>(&mut self, sim: F) -> SequentialDriver<F> {
        let mut driver = if self.cache_enabled {
            match self.resume_cache.take() {
                Some((stats, overflow, cycles)) => {
                    // The restored cache re-emits its own CacheInvalidated
                    // on the first plan, so no explicit resume
                    // invalidation is needed for the sequential driver.
                    self.pending_resume_invalidation = None;
                    SequentialDriver::with_restored_cache(
                        sim,
                        EvalCache::restore(stats, overflow, cycles),
                    )
                }
                None => SequentialDriver::with_cache(sim),
            }
        } else {
            SequentialDriver::new(sim)
        };
        driver.set_backend(self.backend);
        driver
    }

    /// Directs the flow to write a checkpoint file at `path` after every
    /// completed MSB/LSB iteration (and at each phase boundary). The file
    /// is a self-contained JSON snapshot — annotations, phase cursor,
    /// decided analyses, cache state and the full event journal — from
    /// which [`RefinementFlow::resume_from`] replays the run
    /// bit-identically.
    pub fn checkpoint_to(&mut self, path: impl Into<PathBuf>) {
        self.checkpoint = Some(path.into());
    }

    /// Installs an injected-fault plan (test seam). The plan's
    /// checkpoint-write failures and post-checkpoint aborts are honored by
    /// this flow; its shard panics and NaN bursts are honored by the
    /// sweep driver carrying the same plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Sets the deadline budgets for subsequent `run*` calls. See
    /// [`RunBudget`].
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
        self.budget_clock = None;
        self.budget_sims = 0;
        self.budget_hit = None;
    }

    /// The exhaustion reason when a [`RunBudget`] ran out during the last
    /// `run*` call, if any.
    pub fn budget_exhausted(&self) -> Option<&str> {
        self.budget_hit.as_deref()
    }

    /// Attaches a cooperative cancellation token. A cancelled flow stops
    /// at the next budget checkpoint and returns best-so-far results
    /// with [`FlowStatus::Partial`] — the same path as budget
    /// exhaustion.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Checks the budgets at the top of an iteration (after at least one
    /// iteration of the phase has completed overall). On exhaustion,
    /// journals [`Event::BudgetExhausted`], bumps `budget.exhausted`, and
    /// records the reason. Returns `true` when the phase should stop with
    /// best-so-far results.
    fn budget_spent(&mut self, phase: Phase) -> bool {
        if self.budget_hit.is_some() {
            return true;
        }
        let clock = *self.budget_clock.get_or_insert_with(Instant::now);
        let reason = self
            .cancel
            .as_ref()
            .filter(|t| t.is_cancelled())
            .map(|_| format!("cancelled after {} simulation(s)", self.budget_sims));
        let reason = reason.or_else(|| {
            self.budget.max_simulations.and_then(|max| {
                (self.budget_sims >= max).then(|| {
                    format!(
                        "simulation budget of {max} spent ({} run)",
                        self.budget_sims
                    )
                })
            })
        });
        let reason = reason.or_else(|| {
            self.budget.wall.and_then(|limit| {
                let elapsed = clock.elapsed();
                (elapsed >= limit).then(|| {
                    format!(
                        "wall-clock budget of {:.3}s spent ({:.3}s elapsed)",
                        limit.as_secs_f64(),
                        elapsed.as_secs_f64()
                    )
                })
            })
        });
        match reason {
            Some(reason) => {
                self.recorder.record_event(Event::BudgetExhausted {
                    phase,
                    simulations: self.budget_sims,
                    reason: reason.clone(),
                });
                self.recorder.inc("budget.exhausted", 1);
                self.budget_hit = Some(reason);
                true
            }
            None => false,
        }
    }

    /// Maps a driver-level shard fault to the flow's error type.
    fn shard_error(f: SimFault) -> FlowError {
        FlowError::ShardFailed {
            shard: f.shard,
            scenario: f.scenario,
            cause: f.cause,
        }
    }

    /// Snapshots the flow into a [`Checkpoint`]. `cursor` names the next
    /// work item; `feedback` / `troubled` carry the in-loop state of the
    /// phase the cursor points into; `lsb_final` is present only at the
    /// LSB-convergence checkpoint.
    fn capture(
        &self,
        driver: &dyn SimDriver,
        cursor: Cursor,
        feedback: &HashSet<SignalId>,
        troubled: &HashSet<String>,
        lsb_final: Option<&[LsbAnalysis]>,
    ) -> Checkpoint {
        let sorted_names = |ids: &HashSet<SignalId>| -> Vec<String> {
            let mut v: Vec<String> = ids.iter().map(|id| self.design.name_of(*id)).collect();
            v.sort();
            v
        };
        let mut troubled: Vec<String> = troubled.iter().cloned().collect();
        troubled.sort();
        let mut dirty: Vec<String> = self
            .design
            .peek_dirty()
            .iter()
            .map(|id| self.design.name_of(*id))
            .collect();
        dirty.sort();
        let (msb_done, lsb_done) = match cursor {
            Cursor::Msb { next } => (next.saturating_sub(1), 0),
            Cursor::Lsb { next } => (self.msb_done_total, next.saturating_sub(1)),
            Cursor::Apply => (self.msb_done_total, self.lsb_done_total),
        };
        Checkpoint {
            cursor,
            msb_done,
            lsb_done,
            next_sequence: self.next_checkpoint_seq,
            msb_journal_start: self.msb_journal_start,
            lsb_journal_start: self.lsb_journal_start,
            annotations: self.design.annotations(),
            pinned_explosion: sorted_names(&self.pinned_explosion),
            force_saturate: sorted_names(&self.force_saturate),
            excluded: sorted_names(&self.excluded),
            feedback: sorted_names(feedback),
            troubled,
            msb_final: self.msb_final_store.clone(),
            lsb_final: lsb_final.map(<[LsbAnalysis]>::to_vec),
            cache: CacheState {
                warm: driver.cache_is_warm(),
                dirty,
                data: driver.cache_snapshot(),
            },
            journal: self.recorder.events(),
        }
    }

    /// Writes a checkpoint after a completed iteration. The
    /// `checkpoint_written` journal event is recorded *before* the
    /// snapshot is captured, so the checkpoint's embedded journal includes
    /// its own marker and a resumed journal lines up with the
    /// uninterrupted one. Write failures (real or injected) are journaled
    /// as [`Event::CheckpointFailed`] and are non-fatal; an injected
    /// post-checkpoint abort surfaces as [`FlowError::Interrupted`].
    fn write_checkpoint(
        &mut self,
        driver: &dyn SimDriver,
        cursor: Cursor,
        completed: (Phase, usize),
        feedback: &HashSet<SignalId>,
        troubled: &HashSet<String>,
        lsb_final: Option<&[LsbAnalysis]>,
    ) -> Result<(), FlowError> {
        let Some(path) = self.checkpoint.clone() else {
            return Ok(());
        };
        let (phase, iteration) = completed;
        let sequence = self.next_checkpoint_seq;
        self.next_checkpoint_seq += 1;
        self.recorder.record_event(Event::CheckpointWritten {
            sequence,
            phase,
            iteration,
        });
        self.recorder.inc("checkpoint.writes", 1);
        let cp = self.capture(driver, cursor, feedback, troubled, lsb_final);
        let written = if self.fault_plan.fails_checkpoint_write(sequence) {
            Err("injected checkpoint write failure".to_string())
        } else {
            cp.write_atomic(&path).map_err(|e| e.to_string())
        };
        if let Err(cause) = written {
            self.recorder
                .record_event(Event::CheckpointFailed { sequence, cause });
            self.recorder.inc("fault.checkpoint_write_failures", 1);
        }
        if self.fault_plan.abort_checkpoint() == Some(sequence) {
            return Err(FlowError::Interrupted {
                checkpoint: sequence,
            });
        }
        Ok(())
    }

    /// Resumes an interrupted flow from the checkpoint file at `path`.
    ///
    /// `design` must declare the same signals as the checkpointed design
    /// (run the same builder). The flow re-applies the checkpointed
    /// annotations, replays the journal behind a leading
    /// [`Event::ResumedFromCheckpoint`] marker, keeps checkpointing to the
    /// same `path`, and arms the continuation so the next `run*` call
    /// fast-forwards to the first incomplete iteration. The resumed run's
    /// journal and final annotations are bit-identical to the
    /// uninterrupted run, modulo that leading marker.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on unreadable/unparseable files or when the
    /// design does not declare a checkpointed signal.
    pub fn resume_from(
        design: Design,
        policy: RefinePolicy,
        path: impl AsRef<Path>,
    ) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let cp = Checkpoint::read(path)?;
        let mut flow = Self::resume_from_checkpoint(design, policy, &cp)?;
        flow.checkpoint = Some(path.to_path_buf());
        Ok(flow)
    }

    /// [`RefinementFlow::resume_from`] over an already-decoded
    /// [`Checkpoint`] (no checkpoint sink is armed — call
    /// [`RefinementFlow::checkpoint_to`] to keep checkpointing).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] when the design does not declare a
    /// checkpointed signal.
    pub fn resume_from_checkpoint(
        design: Design,
        policy: RefinePolicy,
        cp: &Checkpoint,
    ) -> Result<Self, CheckpointError> {
        let mut flow = RefinementFlow::new(design, policy);
        let find = |name: &str| -> Result<SignalId, CheckpointError> {
            flow.design.find(name).ok_or_else(|| {
                CheckpointError::Mismatch(format!("signal {name:?} not present in the design"))
            })
        };
        for n in &cp.pinned_explosion {
            let id = find(n)?;
            flow.pinned_explosion.insert(id);
        }
        for n in &cp.force_saturate {
            let id = find(n)?;
            flow.force_saturate.insert(id);
        }
        for n in &cp.excluded {
            let id = find(n)?;
            flow.excluded.insert(id);
        }
        let feedback = cp
            .feedback
            .iter()
            .map(|n| find(n))
            .collect::<Result<Vec<_>, _>>()?;
        // Re-apply the checkpointed annotations, then restore the *exact*
        // dirty set the interrupted run had pending — annotation
        // application dirties by its own rules, which would otherwise
        // desynchronize the evaluation cache's invalidation journal.
        flow.design
            .apply_annotations(&cp.annotations)
            .map_err(|e| CheckpointError::Mismatch(e.to_string()))?;
        let _ = flow.design.take_dirty();
        let dirty = cp
            .cache
            .dirty
            .iter()
            .map(|n| find(n))
            .collect::<Result<Vec<_>, _>>()?;
        flow.design.mark_dirty(&dirty);

        let rebind_msb = |list: &Vec<MsbAnalysis>| -> Result<Vec<MsbAnalysis>, CheckpointError> {
            list.iter()
                .map(|a| {
                    let mut a = a.clone();
                    a.id = find(&a.name)?;
                    Ok(a)
                })
                .collect()
        };
        let rebind_lsb = |list: &Vec<LsbAnalysis>| -> Result<Vec<LsbAnalysis>, CheckpointError> {
            list.iter()
                .map(|a| {
                    let mut a = a.clone();
                    a.id = find(&a.name)?;
                    Ok(a)
                })
                .collect()
        };
        let msb_final = cp.msb_final.as_ref().map(rebind_msb).transpose()?;
        let lsb_final = cp.lsb_final.as_ref().map(rebind_lsb).transpose()?;
        let resume_cache = cp
            .cache
            .data
            .as_ref()
            .map(|(stats, events, cycles)| -> Result<_, CheckpointError> {
                let events = events
                    .iter()
                    .map(|e| {
                        Ok(OverflowEvent {
                            signal: find(&e.name)?,
                            name: e.name.clone(),
                            value: e.value,
                            cycle: e.cycle,
                        })
                    })
                    .collect::<Result<Vec<_>, CheckpointError>>()?;
                Ok((stats.clone(), events, *cycles))
            })
            .transpose()?;

        // The resumed journal: the marker first, then the checkpointed
        // journal replayed verbatim — so every stored journal index gains
        // exactly one.
        let (phase, iteration) = cp
            .journal
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::CheckpointWritten {
                    phase, iteration, ..
                } => Some((*phase, *iteration)),
                _ => None,
            })
            .unwrap_or((Phase::Msb, 0));
        flow.recorder.record_event(Event::ResumedFromCheckpoint {
            sequence: cp.next_sequence.saturating_sub(1),
            phase,
            iteration,
            events: cp.journal.len(),
        });
        flow.recorder.inc("checkpoint.resumes", 1);
        for e in &cp.journal {
            flow.recorder.record_event(e.clone());
        }

        flow.next_checkpoint_seq = cp.next_sequence;
        flow.msb_done_total = cp.msb_done;
        flow.lsb_done_total = cp.lsb_done;
        flow.msb_journal_start = cp.msb_journal_start + 1;
        flow.lsb_journal_start = cp.lsb_journal_start.map(|s| s + 1);
        flow.msb_final_store = msb_final;
        flow.pending_resume_invalidation =
            (cp.cache.warm && !cp.cache.dirty.is_empty()).then_some(cp.cache.dirty.len());
        flow.resume_cache = resume_cache;
        flow.resume = Some(ResumeState {
            cursor: cp.cursor,
            feedback,
            troubled: cp.troubled.clone(),
            lsb_final,
        });
        Ok(flow)
    }

    /// The policy in use.
    pub fn policy(&self) -> &RefinePolicy {
        &self.policy
    }

    /// The flow's recorder (shared with the design).
    pub fn recorder(&self) -> &Arc<DefaultRecorder> {
        &self.recorder
    }

    /// The structured event journal accumulated so far.
    pub fn journal(&self) -> Vec<Event> {
        self.recorder.events()
    }

    /// Converts `AutoRange` / `AutoError` journal events back into the
    /// [`Intervention`] values the phase methods return (signals are
    /// resolved by name against the design).
    fn interventions_from(&self, events: &[Event]) -> Vec<Intervention> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::AutoRange {
                    signal,
                    lo,
                    hi,
                    iteration,
                } => Some(Intervention::AutoRange {
                    signal: self.design.find(signal)?,
                    name: signal.clone(),
                    lo: *lo,
                    hi: *hi,
                    iteration: *iteration,
                }),
                Event::AutoError {
                    signal,
                    sigma,
                    iteration,
                } => Some(Intervention::AutoError {
                    signal: self.design.find(signal)?,
                    name: signal.clone(),
                    sigma: *sigma,
                    iteration: *iteration,
                }),
                _ => None,
            })
            .collect()
    }

    /// Interventions recorded from journal position `start` onward.
    fn interventions_since(&self, start: usize) -> Vec<Intervention> {
        let events = self.recorder.events();
        self.interventions_from(&events[start.min(events.len())..])
    }

    /// Marks a signal for saturation regardless of the rule outcome
    /// (designer knowledge, e.g. a loop-filter integrator known to clip).
    pub fn force_saturate(&mut self, id: SignalId) {
        self.force_saturate.insert(id);
    }

    /// Excludes a signal from refinement (left floating point).
    pub fn exclude(&mut self, id: SignalId) {
        self.excluded.insert(id);
    }

    fn refinable(&self, id: SignalId) -> bool {
        !self.locked.contains(&id) && !self.excluded.contains(&id)
    }

    /// Applies the post-rule decision overrides: explosion-pinned signals
    /// and knowledge-based choices are decided as saturated regardless of
    /// what the rules would now say (the paper marks `b` "(st)" after
    /// `b.range(-0.2, 0.2)`).
    fn override_decision(&self, a: &mut MsbAnalysis) {
        let forced = self.pinned_explosion.contains(&a.id);
        let knowledge = self.force_saturate.contains(&a.id);
        if !forced && !knowledge {
            return;
        }
        // The decided MSB comes from the pinned range when present (the
        // annotation is what the saturation hardware implements), else the
        // statistic.
        let msb = a
            .prop_msb
            .filter(|_| self.design.range_of(a.id).is_some())
            .or(a.stat_msb);
        if let Some(m) = msb {
            let guard = a
                .prop
                .filter(|p| p.is_bounded())
                .or_else(|| a.stat.map(|i| i.shift(1)))
                .unwrap_or(Interval::EMPTY);
            a.decision = MsbDecision::Saturate {
                msb: m + self.policy.saturation_margin,
                guard,
                forced,
            };
            a.mode = fixref_fixed::OverflowMode::Saturate;
        }
    }

    /// Runs the MSB phase: iterate simulation + rules until no refinable
    /// signal's range propagation explodes.
    ///
    /// Feedback signals are identified from the signal-flow graph recorded
    /// during the first iteration; only those receive automatic `range()`
    /// pins — downstream signals whose explosion was inherited resolve by
    /// themselves once the loop roots are pinned (as `w` does in the
    /// paper's Table 1 once `b` is annotated).
    ///
    /// # Errors
    ///
    /// [`FlowError::NotConverged`] when explosions persist after the
    /// iteration budget (only possible with `auto_range` disabled or an
    /// adversarial stimulus).
    pub fn run_msb(
        &mut self,
        sim: impl FnMut(&Design, usize),
    ) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<Intervention>), FlowError> {
        let mut driver = self.driver_for(sim);
        self.run_msb_with(&mut driver)
    }

    /// [`RefinementFlow::run_msb`] over an explicit [`SimDriver`] — the
    /// entry point the scenario-sweep engine uses.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_msb`].
    pub fn run_msb_with(
        &mut self,
        driver: &mut dyn SimDriver,
    ) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<Intervention>), FlowError> {
        if let Some(n) = self.pending_resume_invalidation.take() {
            driver.resume_invalidation(n);
        }
        let mut history = Vec::new();
        let mut feedback: HashSet<SignalId> = HashSet::new();
        // Signals seen exploded in an earlier iteration, to journal their
        // later resolution.
        let mut troubled: HashSet<String> = HashSet::new();
        let mut start = 1;
        let journal_start;
        match self.resume.take() {
            Some(r) if matches!(r.cursor, Cursor::Msb { .. }) => {
                if let Cursor::Msb { next } = r.cursor {
                    start = next.max(1);
                }
                feedback = r.feedback.iter().copied().collect();
                troubled = r.troubled.iter().cloned().collect();
                journal_start = self.msb_journal_start;
            }
            other => {
                if other.is_none() {
                    self.msb_done_total = 0;
                }
                self.resume = other;
                journal_start = self.recorder.events().len();
                self.msb_journal_start = journal_start;
            }
        }
        let done_before = self.msb_done_total;

        for iteration in start..=self.policy.max_iterations.max(1) {
            if self.budget_sims >= 1 && self.budget_spent(Phase::Msb) {
                return Ok((history, self.interventions_since(journal_start)));
            }
            self.recorder.record_event(Event::IterationStarted {
                phase: Phase::Msb,
                iteration,
            });
            let span = self
                .recorder
                .span_begin(&format!("flow.msb.iter.{iteration}"));
            let record = iteration == 1;
            let cycles = driver
                .simulate(&self.design, &self.recorder, iteration, record)
                .map_err(Self::shard_error)?;
            self.budget_sims += 1;
            if record {
                let graph = self.design.graph();
                for sig in graph.defined_signals() {
                    if graph.fan_in(sig).contains(&sig) {
                        feedback.insert(sig);
                    }
                }
                self.preflight_lint()?;
            }

            let mut analyses: Vec<MsbAnalysis> = self
                .design
                .reports()
                .into_iter()
                .map(|r| {
                    let mut a = analyze_msb(&r, &self.policy);
                    self.override_decision(&mut a);
                    a
                })
                .collect();
            self.recorder.span_end(span, cycles);

            for a in &analyses {
                if a.exploded && self.refinable(a.id) {
                    self.recorder.record_event(Event::IntervalExploded {
                        signal: a.name.clone(),
                        iteration,
                    });
                } else if troubled.remove(&a.name) {
                    self.recorder.record_event(Event::SignalResolved {
                        signal: a.name.clone(),
                        phase: Phase::Msb,
                        iteration,
                    });
                }
            }
            for a in &analyses {
                if a.exploded && self.refinable(a.id) {
                    troubled.insert(a.name.clone());
                }
            }

            // Which refinable signals still need a range() pin? Exploded
            // feedback roots plus knowledge-based saturation choices. A
            // non-feedback exploded signal is pinned only if no feedback
            // root explains it (defensive fallback).
            let any_feedback_exploded = analyses
                .iter()
                .any(|a| a.exploded && feedback.contains(&a.id) && self.refinable(a.id));
            let pins: Vec<(SignalId, String, Interval)> = analyses
                .iter()
                .filter(|a| self.refinable(a.id))
                .filter(|a| self.design.range_of(a.id).is_none())
                .filter(|a| {
                    let explosion_pin =
                        a.exploded && (feedback.contains(&a.id) || !any_feedback_exploded);
                    explosion_pin || self.force_saturate.contains(&a.id)
                })
                .filter_map(|a| {
                    let s = a.stat?;
                    let m = self.policy.auto_range_margin;
                    let widened = Interval::new(s.lo - s.max_abs() * m, s.hi + s.max_abs() * m);
                    Some((a.id, a.name.clone(), widened))
                })
                .collect();

            // Re-apply overrides for signals pinned THIS iteration so the
            // recorded history shows them as needing saturation.
            for (id, ..) in &pins {
                if !self.force_saturate.contains(id) {
                    self.pinned_explosion.insert(*id);
                }
            }
            for a in &mut analyses {
                self.override_decision(a);
            }

            let still_exploded: Vec<String> = analyses
                .iter()
                .filter(|a| a.exploded && self.refinable(a.id))
                .filter(|a| self.design.range_of(a.id).is_none())
                .map(|a| a.name.clone())
                .collect();
            history.push(analyses);
            self.msb_done_total = done_before + history.len();

            if pins.is_empty() {
                if still_exploded.is_empty() {
                    self.recorder.record_event(Event::PhaseConverged {
                        phase: Phase::Msb,
                        iterations: iteration,
                    });
                    self.msb_final_store = history.last().cloned();
                    // The next work item is the LSB phase, whose troubled
                    // set starts empty.
                    self.write_checkpoint(
                        &*driver,
                        Cursor::Lsb { next: 1 },
                        (Phase::Msb, iteration),
                        &feedback,
                        &HashSet::new(),
                        None,
                    )?;
                    return Ok((history, self.interventions_since(journal_start)));
                }
                return Err(self.fail_phase(Phase::Msb, iteration, still_exploded));
            }
            if !self.policy.auto_range {
                let unresolved = pins.into_iter().map(|(_, n, _)| n).collect();
                return Err(self.fail_phase(Phase::Msb, iteration, unresolved));
            }
            for (id, name, itv) in pins {
                self.design.set_range(id, itv.lo, itv.hi);
                self.recorder.record_event(Event::AutoRange {
                    signal: name,
                    lo: itv.lo,
                    hi: itv.hi,
                    iteration,
                });
            }
            self.write_checkpoint(
                &*driver,
                Cursor::Msb {
                    next: iteration + 1,
                },
                (Phase::Msb, iteration),
                &feedback,
                &troubled,
                None,
            )?;
        }

        let unresolved = history
            .last()
            .map(|a| {
                a.iter()
                    .filter(|x| x.exploded && self.refinable(x.id))
                    .map(|x| x.name.clone())
                    .collect()
            })
            .unwrap_or_default();
        Err(self.fail_phase(Phase::Msb, self.policy.max_iterations, unresolved))
    }

    /// Journals a [`Event::PhaseFailed`] and builds the matching error.
    fn fail_phase(&self, phase: Phase, iterations: usize, unresolved: Vec<String>) -> FlowError {
        self.recorder.record_event(Event::PhaseFailed {
            phase,
            iterations,
            unresolved: unresolved.join(", "),
        });
        FlowError::NotConverged {
            phase: match phase {
                Phase::Msb => "msb",
                Phase::Lsb => "lsb",
            },
            iterations,
            unresolved,
        }
    }

    /// Runs the LSB phase: iterate simulation + the §5.2 rule until no
    /// refinable signal's error statistics diverge.
    ///
    /// # Errors
    ///
    /// [`FlowError::NotConverged`] when divergence persists after the
    /// iteration budget.
    pub fn run_lsb(
        &mut self,
        sim: impl FnMut(&Design, usize),
    ) -> Result<(Vec<Vec<LsbAnalysis>>, Vec<Intervention>), FlowError> {
        let mut driver = self.driver_for(sim);
        self.run_lsb_with(&mut driver)
    }

    /// [`RefinementFlow::run_lsb`] over an explicit [`SimDriver`] — the
    /// entry point the scenario-sweep engine uses.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_lsb`].
    pub fn run_lsb_with(
        &mut self,
        driver: &mut dyn SimDriver,
    ) -> Result<(Vec<Vec<LsbAnalysis>>, Vec<Intervention>), FlowError> {
        if let Some(n) = self.pending_resume_invalidation.take() {
            driver.resume_invalidation(n);
        }
        let mut history = Vec::new();
        // Signals seen divergent in an earlier iteration, to journal their
        // later resolution.
        let mut troubled: HashSet<String> = HashSet::new();
        let mut start = 1;
        let journal_start;
        match self.resume.take() {
            Some(r) if matches!(r.cursor, Cursor::Lsb { .. }) => {
                if let Cursor::Lsb { next } = r.cursor {
                    start = next.max(1);
                }
                troubled = r.troubled.iter().cloned().collect();
                journal_start = self
                    .lsb_journal_start
                    .unwrap_or_else(|| self.recorder.events().len());
                self.lsb_journal_start = Some(journal_start);
            }
            other => {
                if other.is_none() {
                    self.lsb_done_total = 0;
                }
                self.resume = other;
                journal_start = self.recorder.events().len();
                self.lsb_journal_start = Some(journal_start);
            }
        }
        let done_before = self.lsb_done_total;

        for iteration in start..=self.policy.max_iterations.max(1) {
            if self.budget_sims >= 1 && self.budget_spent(Phase::Lsb) {
                return Ok((history, self.interventions_since(journal_start)));
            }
            self.recorder.record_event(Event::IterationStarted {
                phase: Phase::Lsb,
                iteration,
            });
            let span = self
                .recorder
                .span_begin(&format!("flow.lsb.iter.{iteration}"));
            let cycles = driver
                .simulate(&self.design, &self.recorder, iteration, false)
                .map_err(Self::shard_error)?;
            self.budget_sims += 1;

            let analyses: Vec<LsbAnalysis> = self
                .design
                .reports()
                .iter()
                .map(|r| analyze_lsb(r, &self.policy))
                .collect();
            self.recorder.span_end(span, cycles);

            for a in &analyses {
                if a.status == LsbStatus::Diverged && self.refinable(a.id) {
                    troubled.insert(a.name.clone());
                } else if troubled.remove(&a.name) {
                    self.recorder.record_event(Event::SignalResolved {
                        signal: a.name.clone(),
                        phase: Phase::Lsb,
                        iteration,
                    });
                }
            }

            // Divergence cascades downstream of its root; annotate ONE
            // signal per iteration — registers (state elements, like the
            // paper's NCO accumulator) before wires, ranked by their
            // persistent σ-to-amplitude ratio — and let the next run show
            // whether the rest resolves by itself.
            let mut diverged: Vec<(SignalId, String, bool, f64)> = analyses
                .iter()
                .filter(|a| a.status == LsbStatus::Diverged && self.refinable(a.id))
                .filter(|a| self.design.error_of(a.id).is_none())
                .map(|a| {
                    let r = self.design.report_by_id(a.id);
                    let amplitude = r
                        .stat
                        .interval()
                        .map(|i| i.max_abs())
                        .unwrap_or(0.0)
                        .max(1e-30);
                    let is_reg = r.kind == fixref_sim::SignalKind::Register;
                    (a.id, a.name.clone(), is_reg, a.std / amplitude)
                })
                .collect();
            diverged.sort_by(|a, b| b.2.cmp(&a.2).then(b.3.total_cmp(&a.3)));
            let diverged: Vec<(SignalId, String)> = diverged
                .into_iter()
                .take(1)
                .map(|(id, name, _, _)| (id, name))
                .collect();

            // σ consensus of the healthy signals guides the injected error
            // magnitude; the policy fallback covers the cold start.
            let sigma_guess = {
                let mut sigmas: Vec<f64> = analyses
                    .iter()
                    .filter(|a| a.status == LsbStatus::Resolved)
                    .map(|a| a.std)
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .collect();
                sigmas.sort_by(|a, b| a.total_cmp(b));
                if sigmas.is_empty() {
                    (self.policy.fallback_error_lsb as f64).exp2() / 12f64.sqrt()
                } else {
                    sigmas[sigmas.len() / 2]
                }
            };

            history.push(analyses);
            self.lsb_done_total = done_before + history.len();

            if diverged.is_empty() {
                self.recorder.record_event(Event::PhaseConverged {
                    phase: Phase::Lsb,
                    iterations: iteration,
                });
                self.write_checkpoint(
                    &*driver,
                    Cursor::Apply,
                    (Phase::Lsb, iteration),
                    &HashSet::new(),
                    &HashSet::new(),
                    history.last().map(Vec::as_slice),
                )?;
                return Ok((history, self.interventions_since(journal_start)));
            }
            if !self.policy.auto_error {
                let unresolved = diverged.into_iter().map(|(_, n)| n).collect();
                return Err(self.fail_phase(Phase::Lsb, iteration, unresolved));
            }
            for (id, name) in diverged {
                self.design.set_error_sigma(id, sigma_guess);
                self.recorder.record_event(Event::AutoError {
                    signal: name,
                    sigma: sigma_guess,
                    iteration,
                });
            }
            self.write_checkpoint(
                &*driver,
                Cursor::Lsb {
                    next: iteration + 1,
                },
                (Phase::Lsb, iteration),
                &HashSet::new(),
                &troubled,
                None,
            )?;
        }

        let unresolved = history
            .last()
            .map(|a| {
                a.iter()
                    .filter(|x| x.status == LsbStatus::Diverged && self.refinable(x.id))
                    .map(|x| x.name.clone())
                    .collect()
            })
            .unwrap_or_default();
        Err(self.fail_phase(Phase::Lsb, self.policy.max_iterations, unresolved))
    }

    /// Combines final MSB and LSB analyses into concrete types and applies
    /// them to the design. Returns the applied `(signal, type)` pairs and
    /// the names of signals left floating.
    pub fn apply_types(
        &mut self,
        msb: &[MsbAnalysis],
        lsb: &[LsbAnalysis],
    ) -> (Vec<(SignalId, DType)>, Vec<String>) {
        let mut types = Vec::new();
        let mut unrefined = Vec::new();
        // Exact signals (constant coefficients) carry no error statistics;
        // giving them the finest LSB any *resolved* signal needs keeps
        // their contribution below the datapath's own noise floor without
        // blowing their wordlength to the literal's f64 granularity.
        let finest_resolved = lsb
            .iter()
            .filter(|l| l.status == LsbStatus::Resolved)
            .filter_map(|l| l.lsb)
            .min();
        for m in msb {
            if !self.refinable(m.id) {
                continue;
            }
            let l = lsb.iter().find(|l| l.id == m.id);
            let decided_lsb = l.and_then(|l| {
                let raw = l.lsb?;
                Some(match (l.status == LsbStatus::Exact, finest_resolved) {
                    (true, Some(fin)) => raw.max(fin),
                    _ => raw,
                })
            });
            let decided = m
                .decided_msb()
                .zip(decided_lsb)
                .and_then(|(msb_pos, lsb_pos)| {
                    // The LSB may be coarser than the MSB demands for
                    // near-constant signals; never invert the positions.
                    let lsb_pos = lsb_pos.min(msb_pos);
                    DType::from_positions(
                        format!("{}_q", m.name),
                        msb_pos,
                        lsb_pos,
                        m.signedness,
                        m.mode,
                        l.map(|l| l.rounding).unwrap_or(self.policy.rounding),
                    )
                    .ok()
                });
            // A constant-zero signal (like the paper listing's `v[0] = 0`)
            // carries no range or error information — any format holds it,
            // so it gets a minimal one-bit type.
            let decided = decided.or_else(|| {
                let all_zero = m.stat.map(|i| i.lo == 0.0 && i.hi == 0.0).unwrap_or(false);
                if all_zero {
                    DType::from_positions(
                        format!("{}_q", m.name),
                        0,
                        0,
                        fixref_fixed::Signedness::TwosComplement,
                        self.policy.nonsaturated_mode,
                        self.policy.rounding,
                    )
                    .ok()
                } else {
                    None
                }
            });
            match decided {
                Some(t) => {
                    self.recorder.record_event(Event::TypeApplied {
                        signal: m.name.clone(),
                        dtype: t.to_string(),
                    });
                    self.design.set_dtype(m.id, Some(t.clone()));
                    types.push((m.id, t));
                }
                None => unrefined.push(m.name.clone()),
            }
        }
        (types, unrefined)
    }

    /// Runs one monitored simulation with all decided types applied and
    /// collects overflow and precision findings.
    ///
    /// # Errors
    ///
    /// [`FlowError::ShardFailed`] when a swept verification shard fails
    /// under a `Strict` fault policy (never for the sequential driver).
    pub fn verify(&mut self, sim: impl FnMut(&Design, usize)) -> Result<VerifyOutcome, FlowError> {
        let mut driver = self.driver_for(sim);
        self.verify_with(&mut driver)
    }

    /// [`RefinementFlow::verify`] over an explicit [`SimDriver`] — the
    /// entry point the scenario-sweep engine uses.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::verify`].
    pub fn verify_with(&mut self, driver: &mut dyn SimDriver) -> Result<VerifyOutcome, FlowError> {
        let span = self.recorder.span_begin("flow.verify");
        let _ = self.design.take_overflow_events();
        let cycles = driver
            .simulate(&self.design, &self.recorder, 0, false)
            .map_err(Self::shard_error)?;
        self.budget_sims += 1;
        self.recorder.span_end(span, cycles);
        let mut overflows = Vec::new();
        let mut total = 0;
        let mut saturation_events = 0;
        let mut precision_loss = Vec::new();
        for r in self.design.reports() {
            if r.overflows > 0 {
                // A saturating type absorbing excursions is doing its job;
                // only wrap/error types overflowing is a failure.
                let saturating = r
                    .dtype
                    .as_ref()
                    .map(|d| d.overflow() == fixref_fixed::OverflowMode::Saturate)
                    .unwrap_or(false);
                if saturating {
                    saturation_events += r.overflows;
                } else {
                    total += r.overflows;
                    overflows.push((r.name.clone(), r.overflows));
                }
            }
            if r.dtype.is_some() && r.precision_loss() && !self.locked.contains(&r.id) {
                precision_loss.push(r.name.clone());
            }
        }
        self.recorder.record_event(Event::VerifyCompleted {
            overflows: total,
            saturation_events,
        });
        Ok(VerifyOutcome {
            overflows,
            total_overflows: total,
            saturation_events,
            precision_loss,
        })
    }

    /// The full flow: MSB phase, LSB phase, type application,
    /// verification.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NotConverged`] from either phase,
    /// [`FlowError::ShardFailed`] from a `Strict` sweep, and
    /// [`FlowError::Interrupted`] from an injected post-checkpoint abort.
    pub fn run(&mut self, sim: impl FnMut(&Design, usize)) -> Result<FlowOutcome, FlowError> {
        let mut driver = self.driver_for(sim);
        self.run_with(&mut driver)
    }

    /// The full flow over an explicit [`SimDriver`]. A resumed flow
    /// fast-forwards here: completed phases are reconstituted from the
    /// checkpoint instead of re-running.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run`].
    pub fn run_with(&mut self, driver: &mut dyn SimDriver) -> Result<FlowOutcome, FlowError> {
        let resume_cursor = self.resume.as_ref().map(|r| r.cursor);
        let (msb_history, lsb_history) = match resume_cursor {
            None | Some(Cursor::Msb { .. }) => {
                let (msb_history, _) = self.run_msb_with(driver)?;
                if self.budget_hit.is_some() {
                    // Best-so-far: skip the LSB phase entirely; every
                    // signal stays unrefined in apply_types.
                    (msb_history, Vec::new())
                } else {
                    let (lsb_history, _) = self.run_lsb_with(driver)?;
                    (msb_history, lsb_history)
                }
            }
            Some(Cursor::Lsb { .. }) => {
                let msb_final = self.msb_final_store.clone().unwrap_or_default();
                let (lsb_history, _) = self.run_lsb_with(driver)?;
                (vec![msb_final], lsb_history)
            }
            Some(Cursor::Apply) => {
                let r = self.resume.take().expect("cursor just observed");
                if let Some(n) = self.pending_resume_invalidation.take() {
                    driver.resume_invalidation(n);
                }
                let msb_final = self.msb_final_store.clone().unwrap_or_default();
                (vec![msb_final], vec![r.lsb_final.unwrap_or_default()])
            }
        };

        let empty_msb = Vec::new();
        let empty_lsb = Vec::new();
        let final_msb = msb_history.last().unwrap_or(&empty_msb);
        let final_lsb = lsb_history.last().unwrap_or(&empty_lsb);
        let (types, unrefined) = self.apply_types(final_msb, final_lsb);
        let skip_verify =
            self.budget_hit.is_some() || (self.budget_sims >= 1 && self.budget_spent(Phase::Lsb));
        let verify = if skip_verify {
            VerifyOutcome::default()
        } else {
            self.verify_with(driver)?
        };
        let interventions = self.interventions_since(self.msb_journal_start);
        let status = match &self.budget_hit {
            Some(reason) => FlowStatus::Partial {
                reason: reason.clone(),
            },
            None => FlowStatus::Complete,
        };

        Ok(FlowOutcome {
            msb_iterations: self.msb_done_total,
            lsb_iterations: self.lsb_done_total,
            msb_history,
            lsb_history,
            interventions,
            types,
            unrefined,
            verify,
            status,
            coverage: driver.coverage(),
        })
    }

    /// The full flow driven by the scenario-sweep engine: every
    /// simulation fans out over the sweep's worker pool (one independent
    /// design per scenario) and the refinement rules run on the merged
    /// statistics. With a single scenario whose stimulus matches the
    /// sequential closure, the outcome is bit-identical to
    /// [`RefinementFlow::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NotConverged`] from either phase.
    pub fn run_swept(
        &mut self,
        sweep: &mut crate::sweep::SweepDriver,
    ) -> Result<FlowOutcome, FlowError> {
        self.run_with(sweep)
    }

    /// The MSB phase driven by the scenario-sweep engine.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_msb`].
    pub fn run_msb_swept(
        &mut self,
        sweep: &mut crate::sweep::SweepDriver,
    ) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<Intervention>), FlowError> {
        self.run_msb_with(sweep)
    }

    /// The LSB phase driven by the scenario-sweep engine.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_lsb`].
    pub fn run_lsb_swept(
        &mut self,
        sweep: &mut crate::sweep::SweepDriver,
    ) -> Result<(Vec<Vec<LsbAnalysis>>, Vec<Intervention>), FlowError> {
        self.run_lsb_with(sweep)
    }
}

impl fmt::Debug for RefinementFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RefinementFlow")
            .field("locked", &self.locked.len())
            .field("force_saturate", &self.force_saturate.len())
            .field("excluded", &self.excluded.len())
            .finish()
    }
}

impl FlowOutcome {
    /// Renders a compact human-readable summary of the whole refinement:
    /// iteration counts, interventions, decided types and verification
    /// findings — the one-call report the examples print.
    pub fn render_summary(&self, design: &Design) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "refined in {} MSB + {} LSB iterations",
            self.msb_iterations, self.lsb_iterations
        );
        if !self.interventions.is_empty() {
            let _ = writeln!(out, "automatic annotations:");
            for iv in &self.interventions {
                let _ = writeln!(out, "  {iv}");
            }
        }
        let (forced, other) = self.saturation_counts();
        let _ = writeln!(
            out,
            "saturations: {forced} forced by range explosion, {other} other"
        );
        let _ = writeln!(out, "decided types:");
        for (id, t) in &self.types {
            let _ = writeln!(out, "  {:<12} -> {t}", design.name_of(*id));
        }
        if !self.unrefined.is_empty() {
            let _ = writeln!(out, "left floating: {}", self.unrefined.join(", "));
        }
        let _ = writeln!(
            out,
            "verification: {} overflows, {} saturation events{}",
            self.verify.total_overflows,
            self.verify.saturation_events,
            if self.verify.precision_loss.is_empty() {
                String::new()
            } else {
                format!(
                    ", precision loss on {}",
                    self.verify.precision_loss.join(", ")
                )
            }
        );
        out
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use fixref_sim::SignalRef;

    #[test]
    fn summary_covers_all_sections() {
        let d = Design::with_seed(4);
        let t: DType = "<8,6,tc,st,rd>".parse().expect("valid");
        let x = d.sig_typed("x", t);
        let acc = d.reg("acc");
        let (xi, ai) = (x.id(), acc.id());
        let mut flow = RefinementFlow::new(d.clone(), crate::RefinePolicy::default());
        let outcome = flow
            .run(move |dd: &Design, _| {
                let x = dd.sig_handle(xi);
                let acc = dd.reg_handle(ai);
                for i in 0..600 {
                    x.set((i as f64 * 0.17).sin());
                    // Adaptive-style multiplicative feedback: explodes.
                    let xv = x.get();
                    acc.set(acc.get() + 0.1 * xv.clone() * (xv - acc.get()));
                    dd.tick();
                }
            })
            .expect("converges");
        let s = outcome.render_summary(&d);
        assert!(s.contains("MSB + "));
        assert!(s.contains("decided types:"));
        assert!(s.contains("acc"));
        assert!(s.contains("verification:"));
        assert!(s.contains("automatic annotations:"));
    }
}
