//! The refinement flow driver (paper §5, Fig. 4).
//!
//! The flow owns a [`Design`] plus a stimulus closure and iterates:
//!
//! 1. **MSB phase** — simulate with monitoring, apply the §5.1 rules;
//!    exploded feedback signals receive an automatic `range()` annotation
//!    derived from their observed range (the paper's manual
//!    `b.range(-0.2, 0.2)` step) and the phase repeats. Two iterations
//!    suffice for both of the paper's designs.
//! 2. **LSB phase** — simulate, apply the §5.2 rule; divergent feedback
//!    signals receive an automatic `error()` annotation and the phase
//!    repeats (one extra iteration for the complex example's NCO).
//! 3. **Type application** — each resolved signal gets the
//!    `DType` combining its decided MSB, LSB, overflow and rounding modes.
//! 4. **Verification** — one more monitored run with every type in place;
//!    overflow events or precision regressions are reported.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use fixref_fixed::{DType, Interval};
use fixref_lint::{LintConfig, Linter, Severity as LintSeverity};
use fixref_obs::{DefaultRecorder, Event, Phase, Recorder};
use fixref_sim::{Design, SignalId};

use crate::cache::{CachePlan, EvalCache};
use crate::lsb::{analyze_lsb, LsbAnalysis, LsbStatus};
use crate::msb::{analyze_msb, MsbAnalysis, MsbDecision};
use crate::policy::RefinePolicy;

/// The flow's error type.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A phase did not converge within the policy's iteration budget.
    NotConverged {
        /// `"msb"` or `"lsb"`.
        phase: &'static str,
        /// Iterations spent.
        iterations: usize,
        /// Names of the signals still unresolved.
        unresolved: Vec<String>,
    },
    /// The pre-flight lint gate found diagnostics whose code the flow's
    /// [`LintConfig`] maps to deny.
    LintDenied {
        /// The denied diagnostic code (`"FXL001"`, …).
        code: String,
        /// Number of findings with that code.
        findings: usize,
        /// The signals those findings are anchored to.
        signals: Vec<String>,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NotConverged {
                phase,
                iterations,
                unresolved,
            } => write!(
                f,
                "{phase} refinement did not converge after {iterations} iterations \
                 (unresolved: {})",
                unresolved.join(", ")
            ),
            FlowError::LintDenied {
                code,
                findings,
                signals,
            } => write!(
                f,
                "pre-flight lint gate denied {code}: {findings} finding(s) on {}",
                signals.join(", ")
            ),
        }
    }
}

impl Error for FlowError {}

/// An automatic annotation the flow inserted.
#[derive(Debug, Clone, PartialEq)]
pub enum Intervention {
    /// `range(lo, hi)` pinned on an exploded (or knowledge-saturated)
    /// feedback signal.
    AutoRange {
        /// The annotated signal.
        signal: SignalId,
        /// Its name.
        name: String,
        /// Lower pinned bound.
        lo: f64,
        /// Upper pinned bound.
        hi: f64,
        /// Which MSB iteration inserted it (1-based).
        iteration: usize,
    },
    /// `error(σ)` injected on an LSB-divergent feedback signal.
    AutoError {
        /// The annotated signal.
        signal: SignalId,
        /// Its name.
        name: String,
        /// Injected error standard deviation.
        sigma: f64,
        /// Which LSB iteration inserted it (1-based).
        iteration: usize,
    },
}

impl fmt::Display for Intervention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intervention::AutoRange {
                name,
                lo,
                hi,
                iteration,
                ..
            } => write!(f, "iter {iteration}: {name}.range({lo}, {hi})"),
            Intervention::AutoError {
                name,
                sigma,
                iteration,
                ..
            } => write!(f, "iter {iteration}: {name}.error(sigma={sigma:.3e})"),
        }
    }
}

/// The result of the final verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyOutcome {
    /// Per-signal overflow counts observed with all types applied.
    pub overflows: Vec<(String, u64)>,
    /// Sum of all overflow counts.
    pub total_overflows: u64,
    /// Excursions absorbed by saturating types (informational: this is
    /// the saturation hardware doing its job, not a failure).
    pub saturation_events: u64,
    /// Signals whose produced error exceeded their consumed error
    /// (precision loss the designer should confirm).
    pub precision_loss: Vec<String>,
}

impl VerifyOutcome {
    /// Whether verification saw no overflow at all.
    pub fn is_overflow_free(&self) -> bool {
        self.total_overflows == 0
    }
}

/// The complete outcome of a refinement run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Number of MSB iterations used.
    pub msb_iterations: usize,
    /// Number of LSB iterations used.
    pub lsb_iterations: usize,
    /// Per-iteration MSB analyses (last entry = final decisions).
    pub msb_history: Vec<Vec<MsbAnalysis>>,
    /// Per-iteration LSB analyses (last entry = final decisions).
    pub lsb_history: Vec<Vec<LsbAnalysis>>,
    /// Automatic annotations inserted along the way.
    pub interventions: Vec<Intervention>,
    /// The decided types, per signal.
    pub types: Vec<(SignalId, DType)>,
    /// Signals left floating (unresolved or explicitly excluded).
    pub unrefined: Vec<String>,
    /// The verification run's findings.
    pub verify: VerifyOutcome,
}

impl FlowOutcome {
    /// The final MSB analyses.
    pub fn msb(&self) -> &[MsbAnalysis] {
        self.msb_history.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// The final LSB analyses.
    pub fn lsb(&self) -> &[LsbAnalysis] {
        self.lsb_history.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// The decided type of a signal, if any.
    pub fn type_of(&self, id: SignalId) -> Option<&DType> {
        self.types.iter().find(|(s, _)| *s == id).map(|(_, t)| t)
    }

    /// Mean MSB overhead (decided minus statistic) over the non-saturated
    /// refined signals — the paper's "0.22 bits per signal" metric.
    pub fn mean_msb_overhead(&self) -> Option<f64> {
        let final_msb = self.msb();
        let overheads: Vec<f64> = final_msb
            .iter()
            .filter(|a| a.decision.is_resolved() && !a.decision.is_saturated())
            .filter_map(|a| a.overhead_bits().map(|o| o as f64))
            .collect();
        if overheads.is_empty() {
            None
        } else {
            Some(overheads.iter().sum::<f64>() / overheads.len() as f64)
        }
    }

    /// Count of saturated signals, split into (forced-by-explosion,
    /// other-saturations) — the complex example's "2 + 5" breakdown.
    pub fn saturation_counts(&self) -> (usize, usize) {
        let mut forced = 0;
        let mut other = 0;
        for a in self.msb() {
            if a.decision.is_forced_saturation() {
                forced += 1;
            } else if a.decision.is_saturated() {
                other += 1;
            }
        }
        (forced, other)
    }
}

/// How the flow obtains one monitored simulation of its design.
///
/// The refinement rules only consume the design's *monitors* (range and
/// error statistics, propagated intervals, the signal-flow graph), so the
/// flow is agnostic about how a simulation was produced. The built-in
/// sequential driver runs the stimulus closure on the flow's own design;
/// the scenario-sweep driver ([`crate::sweep::SweepDriver`]) fans the
/// stimulus out over a worker pool of per-scenario designs and folds the
/// shard statistics back into the flow's design. With a single scenario
/// the two are bit-identical.
pub trait SimDriver {
    /// Runs one full monitored simulation for `iteration` and leaves the
    /// resulting statistics on `design`. Responsible for resetting stats
    /// and state first, and — when `record_graph` is set — for leaving a
    /// freshly recorded signal-flow graph on the design. Journals and
    /// counters go to `recorder`. Returns the number of cycles simulated
    /// (summed over shards for a swept run).
    fn simulate(
        &mut self,
        design: &Design,
        recorder: &Arc<DefaultRecorder>,
        iteration: usize,
        record_graph: bool,
    ) -> u64;
}

/// The built-in driver: one sequential simulation of the flow's design,
/// exactly as the paper's engine runs it.
///
/// With [`SequentialDriver::with_cache`] the driver keeps an
/// [`EvalCache`] across simulations: iterations whose annotations did
/// not change replay the cached monitors without running the stimulus,
/// and — on designs with a declared static schedule — iterations with a
/// small dirty set re-simulate only the dirty fan-out cone (see
/// [`crate::cache`] for the soundness argument). The refinement outcome
/// is bit-identical either way.
pub struct SequentialDriver<F> {
    sim: F,
    cache: Option<EvalCache>,
}

impl<F: FnMut(&Design, usize)> SequentialDriver<F> {
    /// A plain driver: every simulation runs the stimulus in full.
    pub fn new(sim: F) -> Self {
        SequentialDriver { sim, cache: None }
    }

    /// A caching driver: clean iterations splice cached monitors instead
    /// of re-simulating.
    pub fn with_cache(sim: F) -> Self {
        SequentialDriver {
            sim,
            cache: Some(EvalCache::new()),
        }
    }

    /// The driver's cache, when caching is enabled.
    pub fn cache(&self) -> Option<&EvalCache> {
        self.cache.as_ref()
    }
}

impl<F: FnMut(&Design, usize)> SimDriver for SequentialDriver<F> {
    fn simulate(
        &mut self,
        design: &Design,
        recorder: &Arc<DefaultRecorder>,
        iteration: usize,
        record_graph: bool,
    ) -> u64 {
        let plan = match &self.cache {
            None => CachePlan::Cold,
            Some(cache) => cache.plan(design, record_graph, recorder.as_ref()),
        };
        let signals = design.num_signals() as u64;
        design.reset_stats();
        design.reset_state();
        match plan {
            CachePlan::Replay => {
                let cache = self.cache.as_mut().expect("replay implies a cache");
                let cycles = cache.replay(design);
                cache.note(recorder.as_ref(), signals, 0);
                cycles
            }
            CachePlan::Partial { clean } => {
                design.set_passive(&clean);
                (self.sim)(design, iteration);
                design.clear_passive();
                let cache = self.cache.as_mut().expect("partial implies a cache");
                cache.splice_clean(design, &clean);
                cache.note(
                    recorder.as_ref(),
                    clean.len() as u64,
                    signals - clean.len() as u64,
                );
                cache.store(design);
                design.cycle()
            }
            CachePlan::Cold => {
                if record_graph {
                    design.clear_graph();
                    design.record_graph(true);
                }
                (self.sim)(design, iteration);
                if record_graph {
                    design.record_graph(false);
                }
                if let Some(cache) = &mut self.cache {
                    cache.note(recorder.as_ref(), 0, signals);
                    cache.store(design);
                }
                design.cycle()
            }
        }
    }
}

/// The refinement flow driver.
///
/// See the crate-level example; the typical call is [`RefinementFlow::run`]
/// with a stimulus closure that exercises the design for a representative
/// number of samples.
pub struct RefinementFlow {
    design: Design,
    policy: RefinePolicy,
    /// Signals typed before the flow started (the partial type definition
    /// of Fig. 4, typically the inputs): checked, never re-decided.
    locked: HashSet<SignalId>,
    /// Knowledge-based saturation choices (the complex example's "5
    /// signals ... knowledge-based choice").
    force_saturate: HashSet<SignalId>,
    /// Signals excluded from refinement entirely.
    excluded: HashSet<SignalId>,
    /// Signals auto-pinned with `range()` because their propagation
    /// exploded (decided as forced saturation).
    pinned_explosion: HashSet<SignalId>,
    /// The flow's observability sink: every iteration span, intervention
    /// and convergence event lands here, and the design's simulation
    /// counters share it. The intervention lists the phase methods return
    /// are derived from this journal.
    recorder: Arc<DefaultRecorder>,
    /// When set, the closure-based entry points (`run`, `run_msb`, …)
    /// drive their simulations through a caching [`SequentialDriver`].
    cache_enabled: bool,
    /// Per-code allow/warn/deny configuration of the pre-flight lint
    /// gate. The default warns on everything, so no existing flow fails.
    lint: LintConfig,
}

impl RefinementFlow {
    /// Creates a flow over a design. Signals that already carry a type
    /// (the "partial type definition") are locked: they are monitored and
    /// checked but their types are not re-decided.
    pub fn new(design: Design, policy: RefinePolicy) -> Self {
        Self::with_recorder(design, policy, Arc::new(DefaultRecorder::new()))
    }

    /// Creates a flow that reports into an existing recorder (for sharing
    /// one metrics sink across flows, or inspecting the journal after the
    /// run). The recorder is also attached to the design, so simulation
    /// counters (`sim.ticks`, `sim.assignments`, …) land in the same sink
    /// as the flow's own events and spans.
    pub fn with_recorder(
        design: Design,
        policy: RefinePolicy,
        recorder: Arc<DefaultRecorder>,
    ) -> Self {
        design.attach_recorder(recorder.clone());
        let locked = design
            .reports()
            .into_iter()
            .filter(|r| r.dtype.is_some())
            .map(|r| r.id)
            .collect();
        RefinementFlow {
            design,
            policy,
            locked,
            force_saturate: HashSet::new(),
            excluded: HashSet::new(),
            pinned_explosion: HashSet::new(),
            recorder,
            cache_enabled: false,
            lint: LintConfig::new(),
        }
    }

    /// Enables the incremental evaluation cache for the closure-based
    /// entry points: iterations whose annotations did not change splice
    /// the previous run's monitors instead of re-simulating. The decided
    /// types, merged ranges and `type_applied` journal are bit-identical
    /// with or without the cache; cache hit/miss counts land on the
    /// recorder as `cache.hits` / `cache.misses`.
    pub fn enable_cache(&mut self) {
        self.cache_enabled = true;
    }

    /// Configures the pre-flight lint gate. After the first (recorded)
    /// MSB iteration the flow lints the design: every diagnostic is
    /// journaled as [`Event::LintDiagnostic`], `Allow`ed codes are
    /// suppressed, and if any finding carries a `Deny` code the flow
    /// aborts with [`FlowError::LintDenied`] before spending further
    /// iterations. The default configuration warns on everything.
    pub fn set_lint_config(&mut self, config: LintConfig) {
        self.lint = config;
    }

    /// The pre-flight lint gate's configuration.
    pub fn lint_config(&self) -> &LintConfig {
        &self.lint
    }

    /// The pre-flight lint gate: lints the design right after the first
    /// recorded MSB iteration (graph and monitor counters are fresh),
    /// journals every finding, mirrors severity counts onto the
    /// `lint.*` recorder counters, and aborts on any denied code.
    fn preflight_lint(&self) -> Result<(), FlowError> {
        let report = Linter::with_config(self.lint.clone()).run(&self.design);
        for d in &report.diagnostics {
            self.recorder.record_event(Event::LintDiagnostic {
                code: d.code.as_str().into(),
                severity: d.severity.as_str().into(),
                signal: d.signal.clone(),
                message: d.message.clone(),
            });
        }
        let errors = report.count(LintSeverity::Error);
        let warnings = report.count(LintSeverity::Warning);
        let infos = report.count(LintSeverity::Info);
        self.recorder.record_event(Event::LintCompleted {
            errors,
            warnings,
            infos,
        });
        for (counter, n) in [
            ("lint.errors", errors),
            ("lint.warnings", warnings),
            ("lint.infos", infos),
        ] {
            if n > 0 {
                self.recorder.inc(counter, n as u64);
            }
        }
        let denied = report.denied(&self.lint);
        if let Some(first) = denied.first() {
            let code = first.code;
            let offenders: Vec<&&fixref_lint::Diagnostic> =
                denied.iter().filter(|d| d.code == code).collect();
            self.recorder.record_event(Event::LintGateFailed {
                context: "flow.preflight".into(),
                code: code.as_str().into(),
                findings: offenders.len(),
            });
            self.recorder.inc("lint.flow_gate_failures", 1);
            return Err(FlowError::LintDenied {
                code: code.as_str().into(),
                findings: offenders.len(),
                signals: offenders.iter().map(|d| d.signal.clone()).collect(),
            });
        }
        Ok(())
    }

    /// Builds the sequential driver honoring
    /// [`RefinementFlow::enable_cache`].
    fn driver_for<F: FnMut(&Design, usize)>(&self, sim: F) -> SequentialDriver<F> {
        if self.cache_enabled {
            SequentialDriver::with_cache(sim)
        } else {
            SequentialDriver::new(sim)
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> &RefinePolicy {
        &self.policy
    }

    /// The flow's recorder (shared with the design).
    pub fn recorder(&self) -> &Arc<DefaultRecorder> {
        &self.recorder
    }

    /// The structured event journal accumulated so far.
    pub fn journal(&self) -> Vec<Event> {
        self.recorder.events()
    }

    /// Converts `AutoRange` / `AutoError` journal events back into the
    /// [`Intervention`] values the phase methods return (signals are
    /// resolved by name against the design).
    fn interventions_from(&self, events: &[Event]) -> Vec<Intervention> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::AutoRange {
                    signal,
                    lo,
                    hi,
                    iteration,
                } => Some(Intervention::AutoRange {
                    signal: self.design.find(signal)?,
                    name: signal.clone(),
                    lo: *lo,
                    hi: *hi,
                    iteration: *iteration,
                }),
                Event::AutoError {
                    signal,
                    sigma,
                    iteration,
                } => Some(Intervention::AutoError {
                    signal: self.design.find(signal)?,
                    name: signal.clone(),
                    sigma: *sigma,
                    iteration: *iteration,
                }),
                _ => None,
            })
            .collect()
    }

    /// Interventions recorded from journal position `start` onward.
    fn interventions_since(&self, start: usize) -> Vec<Intervention> {
        let events = self.recorder.events();
        self.interventions_from(&events[start.min(events.len())..])
    }

    /// Marks a signal for saturation regardless of the rule outcome
    /// (designer knowledge, e.g. a loop-filter integrator known to clip).
    pub fn force_saturate(&mut self, id: SignalId) {
        self.force_saturate.insert(id);
    }

    /// Excludes a signal from refinement (left floating point).
    pub fn exclude(&mut self, id: SignalId) {
        self.excluded.insert(id);
    }

    fn refinable(&self, id: SignalId) -> bool {
        !self.locked.contains(&id) && !self.excluded.contains(&id)
    }

    /// Applies the post-rule decision overrides: explosion-pinned signals
    /// and knowledge-based choices are decided as saturated regardless of
    /// what the rules would now say (the paper marks `b` "(st)" after
    /// `b.range(-0.2, 0.2)`).
    fn override_decision(&self, a: &mut MsbAnalysis) {
        let forced = self.pinned_explosion.contains(&a.id);
        let knowledge = self.force_saturate.contains(&a.id);
        if !forced && !knowledge {
            return;
        }
        // The decided MSB comes from the pinned range when present (the
        // annotation is what the saturation hardware implements), else the
        // statistic.
        let msb = a
            .prop_msb
            .filter(|_| self.design.range_of(a.id).is_some())
            .or(a.stat_msb);
        if let Some(m) = msb {
            let guard = a
                .prop
                .filter(|p| p.is_bounded())
                .or_else(|| a.stat.map(|i| i.shift(1)))
                .unwrap_or(Interval::EMPTY);
            a.decision = MsbDecision::Saturate {
                msb: m + self.policy.saturation_margin,
                guard,
                forced,
            };
            a.mode = fixref_fixed::OverflowMode::Saturate;
        }
    }

    /// Runs the MSB phase: iterate simulation + rules until no refinable
    /// signal's range propagation explodes.
    ///
    /// Feedback signals are identified from the signal-flow graph recorded
    /// during the first iteration; only those receive automatic `range()`
    /// pins — downstream signals whose explosion was inherited resolve by
    /// themselves once the loop roots are pinned (as `w` does in the
    /// paper's Table 1 once `b` is annotated).
    ///
    /// # Errors
    ///
    /// [`FlowError::NotConverged`] when explosions persist after the
    /// iteration budget (only possible with `auto_range` disabled or an
    /// adversarial stimulus).
    pub fn run_msb(
        &mut self,
        sim: impl FnMut(&Design, usize),
    ) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<Intervention>), FlowError> {
        self.run_msb_with(&mut self.driver_for(sim))
    }

    /// [`RefinementFlow::run_msb`] over an explicit [`SimDriver`] — the
    /// entry point the scenario-sweep engine uses.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_msb`].
    pub fn run_msb_with(
        &mut self,
        driver: &mut dyn SimDriver,
    ) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<Intervention>), FlowError> {
        let mut history = Vec::new();
        let journal_start = self.recorder.events().len();
        let mut feedback: HashSet<SignalId> = HashSet::new();
        // Signals seen exploded in an earlier iteration, to journal their
        // later resolution.
        let mut troubled: HashSet<String> = HashSet::new();

        for iteration in 1..=self.policy.max_iterations.max(1) {
            self.recorder.record_event(Event::IterationStarted {
                phase: Phase::Msb,
                iteration,
            });
            let span = self
                .recorder
                .span_begin(&format!("flow.msb.iter.{iteration}"));
            let record = iteration == 1;
            let cycles = driver.simulate(&self.design, &self.recorder, iteration, record);
            if record {
                let graph = self.design.graph();
                for sig in graph.defined_signals() {
                    if graph.fan_in(sig).contains(&sig) {
                        feedback.insert(sig);
                    }
                }
                self.preflight_lint()?;
            }

            let mut analyses: Vec<MsbAnalysis> = self
                .design
                .reports()
                .into_iter()
                .map(|r| {
                    let mut a = analyze_msb(&r, &self.policy);
                    self.override_decision(&mut a);
                    a
                })
                .collect();
            self.recorder.span_end(span, cycles);

            for a in &analyses {
                if a.exploded && self.refinable(a.id) {
                    self.recorder.record_event(Event::IntervalExploded {
                        signal: a.name.clone(),
                        iteration,
                    });
                } else if troubled.remove(&a.name) {
                    self.recorder.record_event(Event::SignalResolved {
                        signal: a.name.clone(),
                        phase: Phase::Msb,
                        iteration,
                    });
                }
            }
            for a in &analyses {
                if a.exploded && self.refinable(a.id) {
                    troubled.insert(a.name.clone());
                }
            }

            // Which refinable signals still need a range() pin? Exploded
            // feedback roots plus knowledge-based saturation choices. A
            // non-feedback exploded signal is pinned only if no feedback
            // root explains it (defensive fallback).
            let any_feedback_exploded = analyses
                .iter()
                .any(|a| a.exploded && feedback.contains(&a.id) && self.refinable(a.id));
            let pins: Vec<(SignalId, String, Interval)> = analyses
                .iter()
                .filter(|a| self.refinable(a.id))
                .filter(|a| self.design.range_of(a.id).is_none())
                .filter(|a| {
                    let explosion_pin =
                        a.exploded && (feedback.contains(&a.id) || !any_feedback_exploded);
                    explosion_pin || self.force_saturate.contains(&a.id)
                })
                .filter_map(|a| {
                    let s = a.stat?;
                    let m = self.policy.auto_range_margin;
                    let widened = Interval::new(s.lo - s.max_abs() * m, s.hi + s.max_abs() * m);
                    Some((a.id, a.name.clone(), widened))
                })
                .collect();

            // Re-apply overrides for signals pinned THIS iteration so the
            // recorded history shows them as needing saturation.
            for (id, ..) in &pins {
                if !self.force_saturate.contains(id) {
                    self.pinned_explosion.insert(*id);
                }
            }
            for a in &mut analyses {
                self.override_decision(a);
            }

            let still_exploded: Vec<String> = analyses
                .iter()
                .filter(|a| a.exploded && self.refinable(a.id))
                .filter(|a| self.design.range_of(a.id).is_none())
                .map(|a| a.name.clone())
                .collect();
            history.push(analyses);

            if pins.is_empty() {
                if still_exploded.is_empty() {
                    self.recorder.record_event(Event::PhaseConverged {
                        phase: Phase::Msb,
                        iterations: iteration,
                    });
                    return Ok((history, self.interventions_since(journal_start)));
                }
                return Err(self.fail_phase(Phase::Msb, iteration, still_exploded));
            }
            if !self.policy.auto_range {
                let unresolved = pins.into_iter().map(|(_, n, _)| n).collect();
                return Err(self.fail_phase(Phase::Msb, iteration, unresolved));
            }
            for (id, name, itv) in pins {
                self.design.set_range(id, itv.lo, itv.hi);
                self.recorder.record_event(Event::AutoRange {
                    signal: name,
                    lo: itv.lo,
                    hi: itv.hi,
                    iteration,
                });
            }
        }

        let unresolved = history
            .last()
            .map(|a| {
                a.iter()
                    .filter(|x| x.exploded && self.refinable(x.id))
                    .map(|x| x.name.clone())
                    .collect()
            })
            .unwrap_or_default();
        Err(self.fail_phase(Phase::Msb, self.policy.max_iterations, unresolved))
    }

    /// Journals a [`Event::PhaseFailed`] and builds the matching error.
    fn fail_phase(&self, phase: Phase, iterations: usize, unresolved: Vec<String>) -> FlowError {
        self.recorder.record_event(Event::PhaseFailed {
            phase,
            iterations,
            unresolved: unresolved.join(", "),
        });
        FlowError::NotConverged {
            phase: match phase {
                Phase::Msb => "msb",
                Phase::Lsb => "lsb",
            },
            iterations,
            unresolved,
        }
    }

    /// Runs the LSB phase: iterate simulation + the §5.2 rule until no
    /// refinable signal's error statistics diverge.
    ///
    /// # Errors
    ///
    /// [`FlowError::NotConverged`] when divergence persists after the
    /// iteration budget.
    pub fn run_lsb(
        &mut self,
        sim: impl FnMut(&Design, usize),
    ) -> Result<(Vec<Vec<LsbAnalysis>>, Vec<Intervention>), FlowError> {
        self.run_lsb_with(&mut self.driver_for(sim))
    }

    /// [`RefinementFlow::run_lsb`] over an explicit [`SimDriver`] — the
    /// entry point the scenario-sweep engine uses.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_lsb`].
    pub fn run_lsb_with(
        &mut self,
        driver: &mut dyn SimDriver,
    ) -> Result<(Vec<Vec<LsbAnalysis>>, Vec<Intervention>), FlowError> {
        let mut history = Vec::new();
        let journal_start = self.recorder.events().len();
        // Signals seen divergent in an earlier iteration, to journal their
        // later resolution.
        let mut troubled: HashSet<String> = HashSet::new();

        for iteration in 1..=self.policy.max_iterations.max(1) {
            self.recorder.record_event(Event::IterationStarted {
                phase: Phase::Lsb,
                iteration,
            });
            let span = self
                .recorder
                .span_begin(&format!("flow.lsb.iter.{iteration}"));
            let cycles = driver.simulate(&self.design, &self.recorder, iteration, false);

            let analyses: Vec<LsbAnalysis> = self
                .design
                .reports()
                .iter()
                .map(|r| analyze_lsb(r, &self.policy))
                .collect();
            self.recorder.span_end(span, cycles);

            for a in &analyses {
                if a.status == LsbStatus::Diverged && self.refinable(a.id) {
                    troubled.insert(a.name.clone());
                } else if troubled.remove(&a.name) {
                    self.recorder.record_event(Event::SignalResolved {
                        signal: a.name.clone(),
                        phase: Phase::Lsb,
                        iteration,
                    });
                }
            }

            // Divergence cascades downstream of its root; annotate ONE
            // signal per iteration — registers (state elements, like the
            // paper's NCO accumulator) before wires, ranked by their
            // persistent σ-to-amplitude ratio — and let the next run show
            // whether the rest resolves by itself.
            let mut diverged: Vec<(SignalId, String, bool, f64)> = analyses
                .iter()
                .filter(|a| a.status == LsbStatus::Diverged && self.refinable(a.id))
                .filter(|a| self.design.error_of(a.id).is_none())
                .map(|a| {
                    let r = self.design.report_by_id(a.id);
                    let amplitude = r
                        .stat
                        .interval()
                        .map(|i| i.max_abs())
                        .unwrap_or(0.0)
                        .max(1e-30);
                    let is_reg = r.kind == fixref_sim::SignalKind::Register;
                    (a.id, a.name.clone(), is_reg, a.std / amplitude)
                })
                .collect();
            diverged.sort_by(|a, b| b.2.cmp(&a.2).then(b.3.total_cmp(&a.3)));
            let diverged: Vec<(SignalId, String)> = diverged
                .into_iter()
                .take(1)
                .map(|(id, name, _, _)| (id, name))
                .collect();

            // σ consensus of the healthy signals guides the injected error
            // magnitude; the policy fallback covers the cold start.
            let sigma_guess = {
                let mut sigmas: Vec<f64> = analyses
                    .iter()
                    .filter(|a| a.status == LsbStatus::Resolved)
                    .map(|a| a.std)
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .collect();
                sigmas.sort_by(|a, b| a.total_cmp(b));
                if sigmas.is_empty() {
                    (self.policy.fallback_error_lsb as f64).exp2() / 12f64.sqrt()
                } else {
                    sigmas[sigmas.len() / 2]
                }
            };

            history.push(analyses);

            if diverged.is_empty() {
                self.recorder.record_event(Event::PhaseConverged {
                    phase: Phase::Lsb,
                    iterations: iteration,
                });
                return Ok((history, self.interventions_since(journal_start)));
            }
            if !self.policy.auto_error {
                let unresolved = diverged.into_iter().map(|(_, n)| n).collect();
                return Err(self.fail_phase(Phase::Lsb, iteration, unresolved));
            }
            for (id, name) in diverged {
                self.design.set_error_sigma(id, sigma_guess);
                self.recorder.record_event(Event::AutoError {
                    signal: name,
                    sigma: sigma_guess,
                    iteration,
                });
            }
        }

        let unresolved = history
            .last()
            .map(|a| {
                a.iter()
                    .filter(|x| x.status == LsbStatus::Diverged && self.refinable(x.id))
                    .map(|x| x.name.clone())
                    .collect()
            })
            .unwrap_or_default();
        Err(self.fail_phase(Phase::Lsb, self.policy.max_iterations, unresolved))
    }

    /// Combines final MSB and LSB analyses into concrete types and applies
    /// them to the design. Returns the applied `(signal, type)` pairs and
    /// the names of signals left floating.
    pub fn apply_types(
        &mut self,
        msb: &[MsbAnalysis],
        lsb: &[LsbAnalysis],
    ) -> (Vec<(SignalId, DType)>, Vec<String>) {
        let mut types = Vec::new();
        let mut unrefined = Vec::new();
        // Exact signals (constant coefficients) carry no error statistics;
        // giving them the finest LSB any *resolved* signal needs keeps
        // their contribution below the datapath's own noise floor without
        // blowing their wordlength to the literal's f64 granularity.
        let finest_resolved = lsb
            .iter()
            .filter(|l| l.status == LsbStatus::Resolved)
            .filter_map(|l| l.lsb)
            .min();
        for m in msb {
            if !self.refinable(m.id) {
                continue;
            }
            let l = lsb.iter().find(|l| l.id == m.id);
            let decided_lsb = l.and_then(|l| {
                let raw = l.lsb?;
                Some(match (l.status == LsbStatus::Exact, finest_resolved) {
                    (true, Some(fin)) => raw.max(fin),
                    _ => raw,
                })
            });
            let decided = m
                .decided_msb()
                .zip(decided_lsb)
                .and_then(|(msb_pos, lsb_pos)| {
                    // The LSB may be coarser than the MSB demands for
                    // near-constant signals; never invert the positions.
                    let lsb_pos = lsb_pos.min(msb_pos);
                    DType::from_positions(
                        format!("{}_q", m.name),
                        msb_pos,
                        lsb_pos,
                        m.signedness,
                        m.mode,
                        l.map(|l| l.rounding).unwrap_or(self.policy.rounding),
                    )
                    .ok()
                });
            // A constant-zero signal (like the paper listing's `v[0] = 0`)
            // carries no range or error information — any format holds it,
            // so it gets a minimal one-bit type.
            let decided = decided.or_else(|| {
                let all_zero = m.stat.map(|i| i.lo == 0.0 && i.hi == 0.0).unwrap_or(false);
                if all_zero {
                    DType::from_positions(
                        format!("{}_q", m.name),
                        0,
                        0,
                        fixref_fixed::Signedness::TwosComplement,
                        self.policy.nonsaturated_mode,
                        self.policy.rounding,
                    )
                    .ok()
                } else {
                    None
                }
            });
            match decided {
                Some(t) => {
                    self.recorder.record_event(Event::TypeApplied {
                        signal: m.name.clone(),
                        dtype: t.to_string(),
                    });
                    self.design.set_dtype(m.id, Some(t.clone()));
                    types.push((m.id, t));
                }
                None => unrefined.push(m.name.clone()),
            }
        }
        (types, unrefined)
    }

    /// Runs one monitored simulation with all decided types applied and
    /// collects overflow and precision findings.
    pub fn verify(&mut self, sim: impl FnMut(&Design, usize)) -> VerifyOutcome {
        self.verify_with(&mut self.driver_for(sim))
    }

    /// [`RefinementFlow::verify`] over an explicit [`SimDriver`] — the
    /// entry point the scenario-sweep engine uses.
    pub fn verify_with(&mut self, driver: &mut dyn SimDriver) -> VerifyOutcome {
        let span = self.recorder.span_begin("flow.verify");
        let _ = self.design.take_overflow_events();
        let cycles = driver.simulate(&self.design, &self.recorder, 0, false);
        self.recorder.span_end(span, cycles);
        let mut overflows = Vec::new();
        let mut total = 0;
        let mut saturation_events = 0;
        let mut precision_loss = Vec::new();
        for r in self.design.reports() {
            if r.overflows > 0 {
                // A saturating type absorbing excursions is doing its job;
                // only wrap/error types overflowing is a failure.
                let saturating = r
                    .dtype
                    .as_ref()
                    .map(|d| d.overflow() == fixref_fixed::OverflowMode::Saturate)
                    .unwrap_or(false);
                if saturating {
                    saturation_events += r.overflows;
                } else {
                    total += r.overflows;
                    overflows.push((r.name.clone(), r.overflows));
                }
            }
            if r.dtype.is_some() && r.precision_loss() && !self.locked.contains(&r.id) {
                precision_loss.push(r.name.clone());
            }
        }
        self.recorder.record_event(Event::VerifyCompleted {
            overflows: total,
            saturation_events,
        });
        VerifyOutcome {
            overflows,
            total_overflows: total,
            saturation_events,
            precision_loss,
        }
    }

    /// The full flow: MSB phase, LSB phase, type application,
    /// verification.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NotConverged`] from either phase.
    pub fn run(&mut self, sim: impl FnMut(&Design, usize)) -> Result<FlowOutcome, FlowError> {
        self.run_with(&mut self.driver_for(sim))
    }

    /// The full flow over an explicit [`SimDriver`].
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NotConverged`] from either phase.
    pub fn run_with(&mut self, driver: &mut dyn SimDriver) -> Result<FlowOutcome, FlowError> {
        let (msb_history, mut interventions) = self.run_msb_with(driver)?;
        let (lsb_history, lsb_iv) = self.run_lsb_with(driver)?;
        interventions.extend(lsb_iv);

        let empty_msb = Vec::new();
        let empty_lsb = Vec::new();
        let final_msb = msb_history.last().unwrap_or(&empty_msb);
        let final_lsb = lsb_history.last().unwrap_or(&empty_lsb);
        let (types, unrefined) = self.apply_types(final_msb, final_lsb);
        let verify = self.verify_with(driver);

        Ok(FlowOutcome {
            msb_iterations: msb_history.len(),
            lsb_iterations: lsb_history.len(),
            msb_history,
            lsb_history,
            interventions,
            types,
            unrefined,
            verify,
        })
    }

    /// The full flow driven by the scenario-sweep engine: every
    /// simulation fans out over the sweep's worker pool (one independent
    /// design per scenario) and the refinement rules run on the merged
    /// statistics. With a single scenario whose stimulus matches the
    /// sequential closure, the outcome is bit-identical to
    /// [`RefinementFlow::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NotConverged`] from either phase.
    pub fn run_swept(
        &mut self,
        sweep: &mut crate::sweep::SweepDriver,
    ) -> Result<FlowOutcome, FlowError> {
        self.run_with(sweep)
    }

    /// The MSB phase driven by the scenario-sweep engine.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_msb`].
    pub fn run_msb_swept(
        &mut self,
        sweep: &mut crate::sweep::SweepDriver,
    ) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<Intervention>), FlowError> {
        self.run_msb_with(sweep)
    }

    /// The LSB phase driven by the scenario-sweep engine.
    ///
    /// # Errors
    ///
    /// Same as [`RefinementFlow::run_lsb`].
    pub fn run_lsb_swept(
        &mut self,
        sweep: &mut crate::sweep::SweepDriver,
    ) -> Result<(Vec<Vec<LsbAnalysis>>, Vec<Intervention>), FlowError> {
        self.run_lsb_with(sweep)
    }
}

impl fmt::Debug for RefinementFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RefinementFlow")
            .field("locked", &self.locked.len())
            .field("force_saturate", &self.force_saturate.len())
            .field("excluded", &self.excluded.len())
            .finish()
    }
}

impl FlowOutcome {
    /// Renders a compact human-readable summary of the whole refinement:
    /// iteration counts, interventions, decided types and verification
    /// findings — the one-call report the examples print.
    pub fn render_summary(&self, design: &Design) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "refined in {} MSB + {} LSB iterations",
            self.msb_iterations, self.lsb_iterations
        );
        if !self.interventions.is_empty() {
            let _ = writeln!(out, "automatic annotations:");
            for iv in &self.interventions {
                let _ = writeln!(out, "  {iv}");
            }
        }
        let (forced, other) = self.saturation_counts();
        let _ = writeln!(
            out,
            "saturations: {forced} forced by range explosion, {other} other"
        );
        let _ = writeln!(out, "decided types:");
        for (id, t) in &self.types {
            let _ = writeln!(out, "  {:<12} -> {t}", design.name_of(*id));
        }
        if !self.unrefined.is_empty() {
            let _ = writeln!(out, "left floating: {}", self.unrefined.join(", "));
        }
        let _ = writeln!(
            out,
            "verification: {} overflows, {} saturation events{}",
            self.verify.total_overflows,
            self.verify.saturation_events,
            if self.verify.precision_loss.is_empty() {
                String::new()
            } else {
                format!(
                    ", precision loss on {}",
                    self.verify.precision_loss.join(", ")
                )
            }
        );
        out
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use fixref_sim::SignalRef;

    #[test]
    fn summary_covers_all_sections() {
        let d = Design::with_seed(4);
        let t: DType = "<8,6,tc,st,rd>".parse().expect("valid");
        let x = d.sig_typed("x", t);
        let acc = d.reg("acc");
        let (xi, ai) = (x.id(), acc.id());
        let mut flow = RefinementFlow::new(d.clone(), crate::RefinePolicy::default());
        let outcome = flow
            .run(move |dd: &Design, _| {
                let x = dd.sig_handle(xi);
                let acc = dd.reg_handle(ai);
                for i in 0..600 {
                    x.set((i as f64 * 0.17).sin());
                    // Adaptive-style multiplicative feedback: explodes.
                    let xv = x.get();
                    acc.set(acc.get() + 0.1 * xv.clone() * (xv - acc.get()));
                    dd.tick();
                }
            })
            .expect("converges");
        let s = outcome.render_summary(&d);
        assert!(s.contains("MSB + "));
        assert!(s.contains("decided types:"));
        assert!(s.contains("acc"));
        assert!(s.contains("verification:"));
        assert!(s.contains("automatic annotations:"));
    }
}
