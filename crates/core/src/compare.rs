//! Strategy comparison scaffolding.
//!
//! The paper's core claim (§1, §7) is qualitative: the hybrid method
//! "marries the advantages of a pure simulation based approach and a pure
//! analysis based approach" — converging in a few iterations *and* avoiding
//! wordlength overestimation. [`StrategyResult`] captures the two axes
//! (cost in simulations, quality in decided bits) for each strategy so the
//! benchmark harness can print them side by side.

use std::fmt::Write as _;

use fixref_fixed::DType;
use fixref_sim::SignalId;

/// One strategy's cost/quality summary on a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyResult {
    /// Strategy name (`hybrid`, `simulation`, `analytical`).
    pub strategy: String,
    /// Full simulations consumed (iterations for the hybrid, probes for
    /// the search, 0–1 for the analytical method).
    pub simulations: usize,
    /// Number of signals the strategy managed to type.
    pub typed_signals: usize,
    /// Mean decided total wordlength over the typed signals.
    pub mean_wordlength: Option<f64>,
    /// Mean decided MSB position over the typed signals.
    pub mean_msb: Option<f64>,
    /// Achieved quality (e.g. output SQNR in dB) with the decided types,
    /// when measured.
    pub quality: Option<f64>,
    /// Free-form notes (unresolved signals, divergence, annotations).
    pub notes: String,
}

impl StrategyResult {
    /// Summarizes a set of decided types under a strategy name.
    pub fn from_types(
        strategy: impl Into<String>,
        simulations: usize,
        types: &[(SignalId, DType)],
    ) -> Self {
        let n = types.len();
        let (mean_wordlength, mean_msb) = if n == 0 {
            (None, None)
        } else {
            (
                Some(types.iter().map(|(_, t)| t.n() as f64).sum::<f64>() / n as f64),
                Some(types.iter().map(|(_, t)| t.msb() as f64).sum::<f64>() / n as f64),
            )
        };
        StrategyResult {
            strategy: strategy.into(),
            simulations,
            typed_signals: n,
            mean_wordlength,
            mean_msb,
            quality: None,
            notes: String::new(),
        }
    }

    /// Attaches a measured quality figure.
    pub fn with_quality(mut self, q: f64) -> Self {
        self.quality = Some(q);
        self
    }

    /// Attaches free-form notes.
    pub fn with_notes(mut self, notes: impl Into<String>) -> Self {
        self.notes = notes.into();
        self
    }
}

/// Renders strategy results as an aligned text table.
pub fn render_comparison(results: &[StrategyResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>7} {:>10} {:>9} {:>10}  notes",
        "strategy", "sims", "typed", "mean n", "mean msb", "quality"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for r in results {
        let fmt_o = |v: Option<f64>| match v {
            Some(x) => format!("{x:>10.2}"),
            None => format!("{:>10}", "-"),
        };
        let fmt_m = |v: Option<f64>| match v {
            Some(x) => format!("{x:>9.2}"),
            None => format!("{:>9}", "-"),
        };
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>7} {} {} {}  {}",
            r.strategy,
            r.simulations,
            r.typed_signals,
            fmt_o(r.mean_wordlength),
            fmt_m(r.mean_msb),
            fmt_o(r.quality),
            r.notes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::DType;

    fn types(specs: &[(i32, i32)]) -> Vec<(SignalId, DType)> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(n, f))| {
                (
                    SignalId::from_raw(i as u32),
                    DType::tc(format!("t{i}"), n, f).expect("valid"),
                )
            })
            .collect()
    }

    #[test]
    fn from_types_computes_means() {
        let r = StrategyResult::from_types("hybrid", 3, &types(&[(8, 6), (10, 6), (12, 6)]));
        assert_eq!(r.typed_signals, 3);
        assert_eq!(r.mean_wordlength, Some(10.0));
        // msbs: 1, 3, 5 -> mean 3
        assert_eq!(r.mean_msb, Some(3.0));
        assert_eq!(r.simulations, 3);
        assert_eq!(r.quality, None);
    }

    #[test]
    fn empty_types_give_none() {
        let r = StrategyResult::from_types("analytical", 0, &[]);
        assert_eq!(r.mean_wordlength, None);
        assert_eq!(r.mean_msb, None);
        assert_eq!(r.typed_signals, 0);
    }

    #[test]
    fn render_includes_all_strategies() {
        let rows = vec![
            StrategyResult::from_types("hybrid", 3, &types(&[(8, 6)])).with_quality(39.1),
            StrategyResult::from_types("simulation", 40, &types(&[(7, 6)])),
            StrategyResult::from_types("analytical", 1, &types(&[(14, 12)]))
                .with_notes("needs input ranges"),
        ];
        let t = render_comparison(&rows);
        assert!(t.contains("hybrid"));
        assert!(t.contains("simulation"));
        assert!(t.contains("analytical"));
        assert!(t.contains("39.10"));
        assert!(t.contains("needs input ranges"));
        assert_eq!(t.lines().count(), 5);
    }
}
