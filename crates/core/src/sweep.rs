//! The scenario-sweep simulation driver.
//!
//! [`SweepDriver`] implements [`SimDriver`](crate::flow::SimDriver) by
//! fanning each refinement-iteration simulation out over a
//! [`ScenarioSet`]: every scenario gets a **freshly built, private**
//! [`Design`] on a worker thread (designs are deliberately not `Send`, so
//! they never cross threads — only their plain-data statistic snapshots
//! do), and the per-shard monitors are folded back into the flow's master
//! design **in scenario order**. The refinement rules then run on the
//! merged statistics exactly as if one sequential simulation had seen the
//! concatenated stimuli.
//!
//! # Determinism
//!
//! Three properties make the sweep reproducible and conformant:
//!
//! 1. the pool returns shard results in scenario order regardless of the
//!    worker count, and the fold (statistics merge, journal
//!    concatenation, recorder absorption) follows that order — so the
//!    merged state is a pure function of the scenario set;
//! 2. the statistics merge has an exact empty identity
//!    (`merge(empty, x) == x` bitwise), so with a single scenario the
//!    master ends up with *exactly* the shard's monitors — bit-identical
//!    to having simulated sequentially;
//! 3. each shard design is rebuilt from scratch every iteration and
//!    re-annotated from the master's current refinement state, so shard
//!    RNG streams and quantization behavior match what the sequential
//!    flow would have produced after its own `reset_state`.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use std::time::Instant;

use fixref_obs::{DefaultRecorder, Event, Recorder};
use fixref_sim::{
    replay_compiled_batch, run_shards_isolated, Design, FaultPlan, Graph, OverflowEvent,
    RetryPolicy, Scenario, ScenarioSet, ShardOutcome, SignalId, SignalKind, SignalStats,
};

use crate::cache::{plan_for, CachePlan};
use crate::flow::{compile_capture, CompiledUnit, SimBackend, SimDriver, SimFault, SweepCoverage};

/// How the sweep reacts to a shard that fails all its attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Any exhausted shard aborts the simulation with a structured
    /// [`SimFault`] (surfaced by the flow as
    /// [`FlowError::ShardFailed`](crate::flow::FlowError::ShardFailed)).
    #[default]
    Strict,
    /// Exhausted shards are quarantined and the sweep merges the
    /// survivors; the flow completes best-effort and reports the reduced
    /// coverage in [`FlowOutcome::coverage`](crate::flow::FlowOutcome).
    Degraded,
}

/// Retry and degradation policy for shard failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Strict (fail fast) or degraded (best-effort merge).
    pub mode: FaultMode,
    /// Attempts per shard and simulation (at least 1); retries re-seed
    /// the scenario deterministically via
    /// [`FaultPlan::retry_seed`].
    pub max_attempts: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            mode: FaultMode::Strict,
            max_attempts: 1,
        }
    }
}

/// The stimulus closure driving one shard, called as
/// `stimulus(&design, iteration)`.
pub type ShardStimulus = Box<dyn FnMut(&Design, usize)>;

/// One shard's simulation bundle: a freshly built design plus the
/// stimulus closure that drives it for its scenario.
pub struct ShardSim {
    /// The shard's private design — must declare (at least) every signal
    /// of the flow's master design, with identical names and seeds.
    pub design: Design,
    /// The stimulus, called as `stimulus(&design, iteration)`.
    pub stimulus: ShardStimulus,
}

/// Builds one [`ShardSim`] per scenario, on the worker thread that runs
/// it. Must be `Send + Sync` (shared across workers); the designs it
/// builds are not.
pub type ShardBuilder = dyn Fn(&Scenario) -> ShardSim + Send + Sync;

/// Wall-clock and cycle accounting for one shard of the last sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// The scenario this shard simulated.
    pub scenario: Scenario,
    /// Clock cycles the shard's design ticked.
    pub cycles: u64,
    /// Wall-clock nanoseconds spent building, annotating and simulating
    /// the shard (as measured on its worker thread).
    pub wall_ns: u128,
}

/// What a worker hands back across the thread boundary: plain data only.
struct ShardResult {
    stats: Vec<SignalStats>,
    overflow_events: Vec<OverflowEvent>,
    graph: Option<Graph>,
    recorder: Arc<DefaultRecorder>,
    cycles: u64,
    wall_ns: u128,
    /// The shard's lowered op tape (record iteration under a compiled
    /// backend only): `Ok` carries the verified unit, `Err` the
    /// human-readable fallback reason.
    compiled: Option<Result<CompiledUnit, String>>,
}

/// Upper bound on scenario lanes batched through one structure-of-arrays
/// pass; larger groups split so the per-lane working set stays cache-
/// resident on the worker.
const MAX_LANES: usize = 64;

/// The sweep's compiled execution state: one verified `(program, bound
/// trace)` unit per scenario, plus the lane grouping the batched replay
/// executes. Invalidated whenever a new record iteration runs, a shard
/// fails, or a scenario is quarantined.
struct CompiledSweep {
    /// One compiled unit per scenario, indexed by scenario index.
    units: Vec<CompiledUnit>,
    /// Scenario indices grouped by exact `(program, schedule)` shape —
    /// see [`group_lanes`]. Each group replays as one batch.
    groups: Vec<Vec<usize>>,
}

/// Groups scenario indices whose compiled tapes have bit-identical
/// `(program, schedule)` shapes (fingerprint first, then exact word
/// equality), splitting groups at `cap` lanes. Order within a group and
/// across groups follows scenario order.
fn group_lanes(units: &[CompiledUnit], cap: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<(u64, Vec<u64>, Vec<usize>)> = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        let fp = unit.trace.fingerprint(&unit.program);
        let words = unit.trace.shape_words(&unit.program);
        match groups
            .iter_mut()
            .find(|(f, w, g)| *f == fp && *w == words && g.len() < cap)
        {
            Some((_, _, g)) => g.push(i),
            None => groups.push((fp, words, vec![i])),
        }
    }
    groups.into_iter().map(|(_, _, g)| g).collect()
}

/// One shard's monitors retained for cache replay. A Replay simulation
/// re-runs the scenario-order merge over these instead of the worker
/// pool; absorbing the retained shard recorders reproduces a fresh run's
/// counters and journal bitwise.
struct CachedShard {
    stats: Vec<SignalStats>,
    overflow_events: Vec<OverflowEvent>,
    recorder: Arc<DefaultRecorder>,
    cycles: u64,
    wall_ns: u128,
}

/// The sweep's evaluation cache: per-shard monitor snapshots of the last
/// live simulation, shared with worker threads during partial runs.
#[derive(Default)]
struct SweepCache {
    shards: Arc<Vec<CachedShard>>,
    hits: u64,
    misses: u64,
}

impl SweepCache {
    fn is_warm(&self) -> bool {
        !self.shards.is_empty()
    }
}

/// A [`SimDriver`](crate::flow::SimDriver) that runs every simulation as
/// a parallel scenario sweep. See the module docs for the determinism
/// contract; see [`RefinementFlow::run_swept`](crate::RefinementFlow::run_swept)
/// for the typical entry point.
pub struct SweepDriver {
    scenarios: ScenarioSet,
    workers: usize,
    builder: Box<ShardBuilder>,
    last_shards: Vec<ShardSummary>,
    cache: Option<SweepCache>,
    fault_policy: FaultPolicy,
    faults: FaultPlan,
    quarantined: BTreeSet<usize>,
    coverage: Option<SweepCoverage>,
    pending_invalidation: Option<usize>,
    backend: SimBackend,
    compiled: Option<Arc<CompiledSweep>>,
    fallback_noted: bool,
}

impl std::fmt::Debug for SweepDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepDriver")
            .field("scenarios", &self.scenarios.len())
            .field("workers", &self.workers)
            .finish()
    }
}

impl SweepDriver {
    /// Creates a sweep over `scenarios` with at most `workers` threads
    /// (`1` = run shards sequentially on the calling thread).
    pub fn new(scenarios: ScenarioSet, workers: usize, builder: Box<ShardBuilder>) -> Self {
        SweepDriver {
            scenarios,
            workers: workers.max(1),
            builder,
            last_shards: Vec::new(),
            cache: None,
            fault_policy: FaultPolicy::default(),
            faults: FaultPlan::default(),
            quarantined: BTreeSet::new(),
            coverage: None,
            pending_invalidation: None,
            backend: SimBackend::default(),
            compiled: None,
            fallback_noted: false,
        }
    }

    /// Selects the evaluation backend for this sweep.
    ///
    /// Under [`SimBackend::Compiled`] every shard of the record iteration
    /// captures its execution trace, lowers it to a flat op tape, and
    /// replays that tape on subsequent iterations instead of re-running
    /// the stimulus. [`SimBackend::Batched`] additionally groups
    /// scenarios whose tapes have identical `(program, schedule)` shapes
    /// and evaluates up to 64 lanes per group through one
    /// structure-of-arrays pass. The merged statistics, refined types and
    /// journal are bit-identical to the interpreted sweep (modulo the
    /// `backend.*` events/counters themselves).
    ///
    /// The sweep falls back to the interpreter — journaling a one-shot
    /// [`Event::BackendFallback`] — whenever fault injection is active,
    /// a scenario is quarantined, lint's FXL001 static-schedule verdict
    /// refuses a shard design, or a capture fails its verification
    /// replay.
    pub fn set_backend(&mut self, backend: SimBackend) {
        self.backend = backend;
    }

    /// The selected evaluation backend.
    pub fn backend(&self) -> SimBackend {
        self.backend
    }

    /// Whether the record iteration produced compiled tapes that the
    /// next simulations will replay.
    pub fn has_compiled_program(&self) -> bool {
        self.compiled.is_some()
    }

    /// Journals the one-shot fallback-to-interpreted event.
    fn note_fallback(&mut self, recorder: &DefaultRecorder, reason: &str) {
        if !self.fallback_noted {
            self.fallback_noted = true;
            recorder.record_event(Event::BackendFallback {
                backend: self.backend.name().to_string(),
                reason: reason.to_string(),
            });
            recorder.inc("backend.fallbacks", 1);
        }
    }

    /// Sets the shard fault policy (strict vs degraded, retry budget).
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.fault_policy = FaultPolicy {
            mode: policy.mode,
            max_attempts: policy.max_attempts.max(1),
        };
    }

    /// The active shard fault policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Installs a seeded fault plan (test seam): injected worker panics
    /// and NaN stimulus bursts fire deterministically on the configured
    /// shards and attempts.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Indices of the scenarios quarantined so far (degraded mode only).
    pub fn quarantined(&self) -> Vec<usize> {
        self.quarantined.iter().copied().collect()
    }

    /// Enables the incremental evaluation cache: simulations whose
    /// annotations did not change re-merge the retained per-shard
    /// monitors in scenario order instead of re-running the worker pool,
    /// and — under a declared static schedule — dirty-cone partial runs
    /// passivate the clean signals on every shard. Merged statistics and
    /// the decided types are bit-identical with or without the cache.
    pub fn enable_cache(&mut self) {
        if self.cache.is_none() {
            self.cache = Some(SweepCache::default());
        }
    }

    /// `(hits, misses)` of the evaluation cache, counted per signal and
    /// simulation (zeros when caching is disabled).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache
            .as_ref()
            .map(|c| (c.hits, c.misses))
            .unwrap_or((0, 0))
    }

    /// Replays the retained shard monitors through the scenario-order
    /// merge without touching the worker pool.
    fn replay_merge(&mut self, design: &Design, recorder: &Arc<DefaultRecorder>) -> u64 {
        let shards = self
            .cache
            .as_ref()
            .expect("replay implies a cache")
            .shards
            .clone();
        self.last_shards.clear();
        let mut total_cycles = 0u64;
        for (scenario, cached) in self.scenarios.iter().zip(shards.iter()) {
            recorder.record_event(Event::ShardStarted {
                shard: scenario.index,
                seed: scenario.seed,
                snr_db: scenario.snr_db,
                samples: scenario.samples,
            });
            recorder.absorb(&cached.recorder);
            design
                .absorb_stats(&cached.stats)
                .expect("cached stats were exported from conforming shards");
            design.absorb_overflow_events(cached.overflow_events.clone());
            recorder.record_event(Event::ShardMerged {
                shard: scenario.index,
                cycles: cached.cycles,
                signals: cached.stats.len(),
            });
            total_cycles = total_cycles.saturating_add(cached.cycles);
            self.last_shards.push(ShardSummary {
                scenario: scenario.clone(),
                cycles: cached.cycles,
                wall_ns: cached.wall_ns,
            });
        }
        total_cycles
    }

    /// The scenario set.
    pub fn scenarios(&self) -> &ScenarioSet {
        &self.scenarios
    }

    /// The worker budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Changes the worker budget; the merged results are unaffected.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Per-shard accounting of the most recent simulation (empty before
    /// the first run).
    pub fn shard_summaries(&self) -> &[ShardSummary] {
        &self.last_shards
    }

    /// Replays the compiled scenario tapes lane-grouped through the
    /// structure-of-arrays executor, then folds the shards back with the
    /// same scenario-order merge (and journal bracketing) as a live run.
    ///
    /// One worker job per lane group: the job builds every lane's design
    /// fresh (the builder's post-build state is what the capture started
    /// from), re-applies the master's annotations, passivates the clean
    /// set on partial runs, and drives all lanes through
    /// [`replay_compiled_batch`]. The stimulus closure is never called.
    fn simulate_batched(
        &mut self,
        design: &Design,
        recorder: &Arc<DefaultRecorder>,
        compiled: &Arc<CompiledSweep>,
        clean_names: &Arc<HashSet<String>>,
        signals: u64,
    ) -> Result<u64, SimFault> {
        let all: Vec<Scenario> = self.scenarios.iter().cloned().collect();
        let annotations = design.annotations();
        let cached_shards: Arc<Vec<CachedShard>> = self
            .cache
            .as_ref()
            .map(|c| c.shards.clone())
            .unwrap_or_default();
        let builder = &self.builder;
        let reps: Vec<Scenario> = compiled.groups.iter().map(|g| all[g[0]].clone()).collect();

        let outcomes = run_shards_isolated(
            &reps,
            self.workers,
            RetryPolicy::attempts(self.fault_policy.max_attempts),
            |rep, _attempt| {
                let started = Instant::now();
                let group = compiled
                    .groups
                    .iter()
                    .find(|g| g[0] == rep.index)
                    .expect("every representative indexes its own group");
                let partial = !clean_names.is_empty();
                let mut shards: Vec<Design> = Vec::with_capacity(group.len());
                let mut recorders: Vec<Arc<DefaultRecorder>> = Vec::with_capacity(group.len());
                for &si in group.iter() {
                    let shard_recorder = Arc::new(DefaultRecorder::new());
                    let ShardSim { design: shard, .. } = builder(&all[si]);
                    shard.attach_recorder(shard_recorder.clone());
                    shard
                        .apply_annotations(&annotations)
                        .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
                    if partial {
                        let clean_ids: Vec<SignalId> =
                            clean_names.iter().filter_map(|n| shard.find(n)).collect();
                        shard.set_passive(&clean_ids);
                    }
                    shards.push(shard);
                    recorders.push(shard_recorder);
                }
                {
                    let lanes: Vec<(&Design, &fixref_sim::BoundTrace)> = group
                        .iter()
                        .zip(shards.iter())
                        .map(|(&si, shard)| (shard, &compiled.units[si].trace))
                        .collect();
                    replay_compiled_batch(&compiled.units[group[0]].program, &lanes);
                }
                let mut results: Vec<(usize, ShardResult)> = Vec::with_capacity(group.len());
                for ((&si, shard), shard_recorder) in group.iter().zip(shards.iter()).zip(recorders)
                {
                    if partial {
                        shard.clear_passive();
                        let cached = &cached_shards[si];
                        let clean_stats: Vec<SignalStats> = cached
                            .stats
                            .iter()
                            .filter(|s| clean_names.contains(&s.name))
                            .cloned()
                            .collect();
                        shard
                            .splice_stats(&clean_stats)
                            .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
                        shard.splice_overflow_events(
                            cached
                                .overflow_events
                                .iter()
                                .filter(|e| clean_names.contains(&e.name))
                                .cloned()
                                .collect(),
                        );
                    }
                    results.push((
                        si,
                        ShardResult {
                            stats: shard.export_stats(),
                            overflow_events: shard.take_overflow_events(),
                            graph: None,
                            recorder: shard_recorder,
                            cycles: shard.cycle(),
                            wall_ns: started.elapsed().as_nanos(),
                            compiled: None,
                        },
                    ));
                }
                results
            },
        );

        // Re-spread the group results into scenario order, handling group
        // failures under the same fault policy as live shards. A failed
        // group drops the compiled tapes entirely: replays are only
        // trusted while they cover every scenario.
        let mut slots: Vec<Option<ShardResult>> = Vec::new();
        slots.resize_with(all.len(), || None);
        let mut failures = 0usize;
        for (group, outcome) in compiled.groups.iter().zip(outcomes) {
            let attempts = match &outcome {
                ShardOutcome::Completed { attempts, .. } => *attempts,
                ShardOutcome::Failed(failure) => failure.attempts,
            };
            for attempt in 1..attempts {
                recorder.record_event(Event::ShardRetried {
                    shard: group[0],
                    attempt,
                });
                recorder.inc("retry.attempts", 1);
            }
            match outcome {
                ShardOutcome::Completed { value, .. } => {
                    for (si, result) in value {
                        slots[si] = Some(result);
                    }
                }
                ShardOutcome::Failed(failure) => match self.fault_policy.mode {
                    FaultMode::Strict => {
                        if let Some(cache) = &mut self.cache {
                            cache.shards = Arc::new(Vec::new());
                        }
                        self.compiled = None;
                        let scenario = &all[group[0]];
                        recorder.record_event(Event::ShardFailed {
                            shard: scenario.index,
                            scenario: scenario.label(),
                            attempts: failure.attempts,
                            cause: failure.error.to_string(),
                        });
                        recorder.inc("fault.shard_failures", 1);
                        return Err(SimFault {
                            shard: scenario.index,
                            scenario: scenario.label(),
                            attempts: failure.attempts,
                            cause: failure.error.to_string(),
                        });
                    }
                    FaultMode::Degraded => {
                        self.compiled = None;
                        for &si in group.iter() {
                            let scenario = &all[si];
                            failures += 1;
                            recorder.record_event(Event::ShardFailed {
                                shard: scenario.index,
                                scenario: scenario.label(),
                                attempts: failure.attempts,
                                cause: failure.error.to_string(),
                            });
                            recorder.inc("fault.shard_failures", 1);
                            self.quarantined.insert(si);
                            recorder.record_event(Event::ShardQuarantined {
                                shard: scenario.index,
                                scenario: scenario.label(),
                            });
                            recorder.inc("retry.quarantined", 1);
                        }
                    }
                },
            }
        }

        recorder.inc("backend.compiled_runs", 1);
        self.last_shards.clear();
        let mut total_cycles = 0u64;
        let mut completed = 0usize;
        let mut lanes_merged = 0u64;
        let mut retained: Vec<CachedShard> = Vec::with_capacity(all.len());
        for (scenario, slot) in all.iter().zip(slots) {
            let Some(result) = slot else { continue };
            completed += 1;
            lanes_merged += 1;
            recorder.record_event(Event::ShardStarted {
                shard: scenario.index,
                seed: scenario.seed,
                snr_db: scenario.snr_db,
                samples: scenario.samples,
            });
            recorder.absorb(&result.recorder);
            let merged_signals = result.stats.len();
            design
                .absorb_stats(&result.stats)
                .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
            design.absorb_overflow_events(result.overflow_events.clone());
            recorder.record_event(Event::ShardMerged {
                shard: scenario.index,
                cycles: result.cycles,
                signals: merged_signals,
            });
            total_cycles = total_cycles.saturating_add(result.cycles);
            self.last_shards.push(ShardSummary {
                scenario: scenario.clone(),
                cycles: result.cycles,
                wall_ns: result.wall_ns,
            });
            if self.cache.is_some() {
                retained.push(CachedShard {
                    stats: result.stats,
                    overflow_events: result.overflow_events,
                    recorder: result.recorder,
                    cycles: result.cycles,
                    wall_ns: result.wall_ns,
                });
            }
        }
        recorder.inc("backend.batched_lanes", lanes_merged);
        self.coverage = Some(SweepCoverage {
            completed,
            total: self.scenarios.len(),
            quarantined: self
                .scenarios
                .iter()
                .filter(|s| self.quarantined.contains(&s.index))
                .map(Scenario::label)
                .collect(),
        });
        if let Some(cache) = &mut self.cache {
            if failures == 0 && self.quarantined.is_empty() {
                cache.shards = Arc::new(retained);
            } else {
                cache.shards = Arc::new(Vec::new());
            }
            let spliced = clean_names.len() as u64;
            cache.hits += spliced;
            cache.misses += signals - spliced;
            if spliced > 0 {
                recorder.inc("cache.hits", spliced);
            }
            recorder.inc("cache.misses", signals - spliced);
        }
        Ok(total_cycles)
    }
}

impl SimDriver for SweepDriver {
    /// Fans the simulation out and folds the surviving shards back in
    /// scenario order.
    ///
    /// Worker panics — injected faults, stimulus bugs, builder contract
    /// violations — are caught per shard: each failed shard is retried up
    /// to the policy's attempt budget (with a deterministic re-seed), and
    /// a shard that exhausts its attempts either aborts the simulation
    /// ([`FaultMode::Strict`]) or is quarantined for the rest of the flow
    /// ([`FaultMode::Degraded`]).
    ///
    /// # Panics
    ///
    /// Panics only on *master-side* contract violations (the merged
    /// statistics do not match the master design's signals).
    fn simulate(
        &mut self,
        design: &Design,
        recorder: &Arc<DefaultRecorder>,
        iteration: usize,
        record_graph: bool,
    ) -> Result<u64, SimFault> {
        // A resumed flow replays the cold run's cache-invalidation marker
        // before planning: the serialized checkpoint does not carry the
        // per-shard monitor cache, so the plan below degrades to Cold and
        // would otherwise skip the event.
        if let Some(dirty) = self.pending_invalidation.take() {
            if self.cache.is_some() && dirty > 0 {
                recorder.record_event(Event::CacheInvalidated {
                    reason: "annotations".into(),
                    dirty,
                });
            }
        }
        // Plan against the master's dirty set, graph and static-schedule
        // declaration; the shard designs mirror the master by the builder
        // contract.
        let plan = match &self.cache {
            None => CachePlan::Cold,
            Some(cache) => plan_for(design, record_graph, cache.is_warm(), recorder.as_ref()),
        };
        let signals = design.num_signals() as u64;
        design.reset_stats();
        design.reset_state();

        if plan == CachePlan::Replay {
            let cycles = self.replay_merge(design, recorder);
            let cache = self.cache.as_mut().expect("replay implies a cache");
            cache.hits += signals;
            recorder.inc("cache.hits", signals);
            // A replay re-merges a fully-covered live run (the cache is
            // cleared whenever a shard fails or is quarantined).
            self.coverage = Some(SweepCoverage {
                completed: self.scenarios.len(),
                total: self.scenarios.len(),
                quarantined: Vec::new(),
            });
            return Ok(cycles);
        }

        if record_graph {
            design.clear_graph();
            // A new record iteration supersedes any previously compiled
            // tapes (the structural recording may have changed).
            self.compiled = None;
        }
        // Passivation set for a partial run, resolved per shard by name
        // (shard ids match the master's only by builder convention, names
        // are the contract).
        let clean_names: Arc<HashSet<String>> = Arc::new(match &plan {
            CachePlan::Partial { clean } => clean.iter().map(|s| design.name_of(*s)).collect(),
            _ => HashSet::new(),
        });
        let cached_shards: Arc<Vec<CachedShard>> = self
            .cache
            .as_ref()
            .map(|c| c.shards.clone())
            .unwrap_or_default();

        let compiled_wanted = self.backend != SimBackend::Interpreted;
        // Replay iterations with compiled tapes skip the stimulus
        // entirely and batch scenario lanes through the op tapes.
        if compiled_wanted && !record_graph {
            if !self.faults.is_empty() {
                self.note_fallback(recorder, "fault injection is active");
            } else if let Some(compiled) = self.compiled.clone() {
                return self.simulate_batched(design, recorder, &compiled, &clean_names, signals);
            }
        }
        // The record iteration under a compiled backend captures every
        // shard's execution trace for lowering; fault injection and
        // reduced coverage refuse the capture up front.
        let capture_here = if record_graph && compiled_wanted {
            if !self.faults.is_empty() {
                self.note_fallback(recorder, "fault injection is active");
                false
            } else if !self.quarantined.is_empty() {
                self.note_fallback(recorder, "quarantined scenarios reduce coverage");
                false
            } else {
                true
            }
        } else {
            false
        };

        // Snapshot the master's refinement state once; every shard
        // re-applies it to its fresh design.
        let annotations = design.annotations();
        let builder = &self.builder;
        let faults = self.faults.clone();

        // Quarantined scenarios sit the sweep out; the structural graph
        // recording falls to the first shard that still runs.
        let active: Vec<Scenario> = self
            .scenarios
            .iter()
            .filter(|s| !self.quarantined.contains(&s.index))
            .cloned()
            .collect();
        let graph_shard = active.first().map_or(usize::MAX, |s| s.index);

        let outcomes = run_shards_isolated(
            &active,
            self.workers,
            RetryPolicy::attempts(self.fault_policy.max_attempts),
            |scenario, attempt| {
                let started = Instant::now();
                if faults.should_panic(scenario.index, attempt) {
                    panic!(
                        "injected fault: worker panic on shard {} attempt {}",
                        scenario.index, attempt
                    );
                }
                // Retries re-seed the scenario deterministically so a
                // data-dependent failure is not replayed verbatim
                // (attempt 0 keeps the original seed).
                let mut scenario = scenario.clone();
                scenario.seed = faults.retry_seed(scenario.seed, attempt);
                let shard_recorder = Arc::new(DefaultRecorder::new());
                let ShardSim {
                    design: shard,
                    mut stimulus,
                } = builder(&scenario);
                shard.attach_recorder(shard_recorder.clone());
                shard
                    .apply_annotations(&annotations)
                    .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
                // Only one shard records a graph *for the master* — all
                // shards execute the same description, so one structural
                // recording suffices and the master inherits it below.
                // Under a compiled backend every shard records privately:
                // the capture's assign steps reference recorded nodes,
                // and each shard lowers its own stimulus trace.
                let record_here = record_graph && scenario.index == graph_shard;
                if record_here || capture_here {
                    shard.clear_graph();
                    shard.record_graph(true);
                }
                if capture_here {
                    shard.begin_capture();
                }
                let partial = !clean_names.is_empty();
                if partial {
                    let clean_ids: Vec<SignalId> =
                        clean_names.iter().filter_map(|n| shard.find(n)).collect();
                    shard.set_passive(&clean_ids);
                }
                if let Some(burst) = faults.nan_burst_for(scenario.index) {
                    // Poison the stimulus head with non-finite samples.
                    // The engine's range propagation rejects NaN bounds
                    // outright, so the poisoned shard fails *structurally*
                    // (caught below) instead of leaking NaN into the
                    // merged monitors.
                    let wire = shard
                        .reports()
                        .iter()
                        .find(|r| r.kind == SignalKind::Wire)
                        .and_then(|r| shard.find(&r.name));
                    if let Some(id) = wire {
                        let sig = shard.sig_handle(id);
                        for _ in 0..burst {
                            sig.set(f64::NAN);
                        }
                    }
                }
                stimulus(&shard, iteration);
                if partial {
                    shard.clear_passive();
                    // Splice the clean signals' monitors from this shard's
                    // previous run; live (cone) monitors stay as recorded.
                    let cached = &cached_shards[scenario.index];
                    let clean_stats: Vec<SignalStats> = cached
                        .stats
                        .iter()
                        .filter(|s| clean_names.contains(&s.name))
                        .cloned()
                        .collect();
                    shard
                        .splice_stats(&clean_stats)
                        .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
                    shard.splice_overflow_events(
                        cached
                            .overflow_events
                            .iter()
                            .filter(|e| clean_names.contains(&e.name))
                            .cloned()
                            .collect(),
                    );
                }
                if record_here || capture_here {
                    shard.record_graph(false);
                }
                let compiled = capture_here.then(|| {
                    let trace = shard
                        .end_capture()
                        .expect("capture begun by this job is still active");
                    compile_capture(&shard, &trace)
                });
                ShardResult {
                    stats: shard.export_stats(),
                    overflow_events: shard.take_overflow_events(),
                    graph: record_here.then(|| shard.graph()),
                    recorder: shard_recorder,
                    cycles: shard.cycle(),
                    wall_ns: started.elapsed().as_nanos(),
                    compiled,
                }
            },
        );

        // Deterministic merge: strict scenario order, each surviving
        // shard bracketed by ShardStarted / ShardMerged in the journal;
        // retries and failures journaled in the same order.
        self.last_shards.clear();
        let mut total_cycles = 0u64;
        let mut completed = 0usize;
        let mut failures = 0usize;
        let mut retained: Vec<CachedShard> = Vec::with_capacity(outcomes.len());
        let mut units: Vec<CompiledUnit> =
            Vec::with_capacity(if capture_here { active.len() } else { 0 });
        let mut compile_failure: Option<String> = None;
        for (scenario, outcome) in active.iter().zip(outcomes) {
            if self.faults.nan_burst_for(scenario.index).is_some() {
                recorder.inc("fault.nan_bursts", 1);
            }
            let attempts = match &outcome {
                ShardOutcome::Completed { attempts, .. } => *attempts,
                ShardOutcome::Failed(failure) => failure.attempts,
            };
            for attempt in 1..attempts {
                recorder.record_event(Event::ShardRetried {
                    shard: scenario.index,
                    attempt,
                });
                recorder.inc("retry.attempts", 1);
            }
            let mut result = match outcome {
                ShardOutcome::Completed { value, .. } => value,
                ShardOutcome::Failed(failure) => {
                    failures += 1;
                    recorder.record_event(Event::ShardFailed {
                        shard: scenario.index,
                        scenario: scenario.label(),
                        attempts: failure.attempts,
                        cause: failure.error.to_string(),
                    });
                    recorder.inc("fault.shard_failures", 1);
                    match self.fault_policy.mode {
                        FaultMode::Strict => {
                            // Invalidate the cache before aborting: the
                            // master's monitors hold a partial merge.
                            if let Some(cache) = &mut self.cache {
                                cache.shards = Arc::new(Vec::new());
                            }
                            return Err(SimFault {
                                shard: scenario.index,
                                scenario: scenario.label(),
                                attempts: failure.attempts,
                                cause: failure.error.to_string(),
                            });
                        }
                        FaultMode::Degraded => {
                            self.quarantined.insert(scenario.index);
                            recorder.record_event(Event::ShardQuarantined {
                                shard: scenario.index,
                                scenario: scenario.label(),
                            });
                            recorder.inc("retry.quarantined", 1);
                            continue;
                        }
                    }
                }
            };
            completed += 1;
            match result.compiled.take() {
                Some(Ok(unit)) => units.push(unit),
                Some(Err(reason)) if compile_failure.is_none() => {
                    compile_failure = Some(reason);
                }
                _ => {}
            }
            recorder.record_event(Event::ShardStarted {
                shard: scenario.index,
                seed: scenario.seed,
                snr_db: scenario.snr_db,
                samples: scenario.samples,
            });
            recorder.absorb(&result.recorder);
            let signals = result.stats.len();
            design
                .absorb_stats(&result.stats)
                .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
            design.absorb_overflow_events(result.overflow_events.clone());
            if let Some(graph) = result.graph {
                design.install_graph(graph);
            }
            recorder.record_event(Event::ShardMerged {
                shard: scenario.index,
                cycles: result.cycles,
                signals,
            });
            total_cycles = total_cycles.saturating_add(result.cycles);
            self.last_shards.push(ShardSummary {
                scenario: scenario.clone(),
                cycles: result.cycles,
                wall_ns: result.wall_ns,
            });
            if self.cache.is_some() {
                retained.push(CachedShard {
                    stats: result.stats,
                    overflow_events: result.overflow_events,
                    recorder: result.recorder,
                    cycles: result.cycles,
                    wall_ns: result.wall_ns,
                });
            }
        }
        // A capture only becomes the sweep's compiled program when every
        // scenario both survived and lowered: a batched replay must cover
        // exactly what the interpreter would have simulated.
        if capture_here {
            if failures == 0 && self.quarantined.is_empty() && units.len() == self.scenarios.len() {
                let cap = match self.backend {
                    SimBackend::Batched => MAX_LANES,
                    _ => 1,
                };
                let groups = group_lanes(&units, cap);
                for group in &groups {
                    let unit = &units[group[0]];
                    recorder.record_event(Event::BackendCompiled {
                        backend: self.backend.name().to_string(),
                        kinds: unit.program.kinds.len(),
                        instructions: unit.program.instruction_count(),
                        cycles: unit.trace.cycles,
                    });
                }
                recorder.inc("backend.programs", groups.len() as u64);
                self.compiled = Some(Arc::new(CompiledSweep { units, groups }));
            } else {
                let reason = compile_failure.unwrap_or_else(|| {
                    "record iteration lost shards before compilation".to_string()
                });
                self.note_fallback(recorder, &reason);
            }
        }
        self.coverage = Some(SweepCoverage {
            completed,
            total: self.scenarios.len(),
            quarantined: self
                .scenarios
                .iter()
                .filter(|s| self.quarantined.contains(&s.index))
                .map(Scenario::label)
                .collect(),
        });
        if let Some(cache) = &mut self.cache {
            // Retain the shard monitors only for a fully-covered run: a
            // degraded merge must never be replayed as if it were whole.
            if failures == 0 && self.quarantined.is_empty() {
                cache.shards = Arc::new(retained);
            } else {
                cache.shards = Arc::new(Vec::new());
            }
            let spliced = clean_names.len() as u64;
            cache.hits += spliced;
            cache.misses += signals - spliced;
            if spliced > 0 {
                recorder.inc("cache.hits", spliced);
            }
            recorder.inc("cache.misses", signals - spliced);
        }
        Ok(total_cycles)
    }

    fn coverage(&self) -> Option<SweepCoverage> {
        self.coverage.clone()
    }

    fn resume_invalidation(&mut self, dirty: usize) {
        self.pending_invalidation = Some(dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RefinePolicy, RefinementFlow};

    /// A tiny first-order IIR smoother. The design seed is fixed (it
    /// drives `error()` injection, which must match the master's); the
    /// *scenario* seed varies the stimulus noise instead.
    fn build_design() -> Design {
        let d = Design::with_seed(0xD0_5EED);
        d.sig("x");
        d.reg("acc");
        d.sig("y");
        d
    }

    fn drive(d: &Design, seed: u64, samples: usize) {
        let x = d.sig_handle(d.find("x").unwrap());
        let acc = d.reg_handle(d.find("acc").unwrap());
        let y = d.sig_handle(d.find("y").unwrap());
        let mut rng = fixref_fixed::Rng64::seed_from_u64(seed);
        for i in 0..samples {
            x.set((i as f64 * 0.11).sin() * 0.8 + rng.symmetric(0.05));
            acc.set(acc.get() * 0.9 + x.get() * 0.1);
            y.set(acc.get() * 0.5);
            d.tick();
        }
    }

    fn sweep(scenarios: ScenarioSet, workers: usize) -> SweepDriver {
        SweepDriver::new(
            scenarios,
            workers,
            Box::new(|s: &Scenario| {
                let d = build_design();
                let (seed, samples) = (s.seed, s.samples);
                ShardSim {
                    stimulus: Box::new(move |d: &Design, _| drive(d, seed, samples)),
                    design: d,
                }
            }),
        )
    }

    fn run_flow(driver: &mut SweepDriver) -> (Vec<(String, String)>, Vec<Event>) {
        let master = build_design();
        let mut flow = RefinementFlow::new(master.clone(), RefinePolicy::default());
        let outcome = flow.run_swept(driver).expect("converges");
        let types = outcome
            .types
            .iter()
            .map(|(id, t)| (master.name_of(*id), t.to_string()))
            .collect();
        (types, flow.journal())
    }

    #[test]
    fn single_scenario_sweep_matches_sequential_flow_bit_identically() {
        // Sequential reference.
        let master = build_design();
        let mut flow = RefinementFlow::new(master.clone(), RefinePolicy::default());
        let seq = flow
            .run(|d: &Design, _| drive(d, 7, 400))
            .expect("converges");

        // One-scenario sweep.
        let mut driver = sweep(ScenarioSet::single(7, 28.0, 400), 1);
        let swept_master = build_design();
        let mut swept_flow = RefinementFlow::new(swept_master.clone(), RefinePolicy::default());
        let swept = swept_flow.run_swept(&mut driver).expect("converges");

        assert_eq!(seq.types.len(), swept.types.len());
        for ((ida, ta), (idb, tb)) in seq.types.iter().zip(&swept.types) {
            assert_eq!(master.name_of(*ida), swept_master.name_of(*idb));
            assert_eq!(ta.to_string(), tb.to_string());
        }
        // The merged monitors themselves are bit-identical.
        for (a, b) in master.reports().iter().zip(swept_master.reports()) {
            assert_eq!(a.stat, b.stat, "stat of {}", a.name);
            assert_eq!(a.prop, b.prop, "prop of {}", a.name);
            assert_eq!(a.consumed, b.consumed, "consumed of {}", a.name);
            assert_eq!(a.produced, b.produced, "produced of {}", a.name);
        }
    }

    #[test]
    fn worker_count_does_not_change_the_merged_outcome() {
        let scenarios = ScenarioSet::grid(&[3, 5, 11, 17], &[24.0], &[], &[300]);
        let (types1, journal1) = run_flow(&mut sweep(scenarios.clone(), 1));
        let (types4, journal4) = run_flow(&mut sweep(scenarios, 4));
        assert_eq!(types1, types4);
        assert_eq!(journal1, journal4);
    }

    /// Drops the `backend.*` journal entries: the compiled path journals
    /// its own compilation, everything else must match bitwise.
    fn strip_backend_events(journal: Vec<Event>) -> Vec<Event> {
        journal
            .into_iter()
            .filter(|e| {
                !matches!(
                    e,
                    Event::BackendCompiled { .. } | Event::BackendFallback { .. }
                )
            })
            .collect()
    }

    #[test]
    fn batched_backend_sweep_matches_interpreted_bit_identically() {
        let scenarios = ScenarioSet::grid(&[3, 5, 11, 17], &[24.0], &[], &[300]);
        let (types_i, journal_i) = run_flow(&mut sweep(scenarios.clone(), 2));

        let mut batched = sweep(scenarios, 2);
        batched.set_backend(SimBackend::Batched);
        let (types_b, journal_b) = run_flow(&mut batched);

        assert!(
            batched.has_compiled_program(),
            "the record iteration should have compiled every scenario"
        );
        assert_eq!(types_i, types_b);
        assert_eq!(
            strip_backend_events(journal_i),
            strip_backend_events(journal_b)
        );
    }

    #[test]
    fn compiled_backend_falls_back_under_fault_injection() {
        let scenarios = ScenarioSet::grid(&[3, 5], &[24.0], &[], &[200]);
        let mut driver = sweep(scenarios, 2);
        driver.set_backend(SimBackend::Compiled);
        driver.set_fault_policy(FaultPolicy {
            mode: FaultMode::Strict,
            max_attempts: 2,
        });
        driver.inject_faults(FaultPlan::seeded(9).panic_on(1, 0));
        let (_, journal) = run_flow(&mut driver);
        assert!(
            !driver.has_compiled_program(),
            "fault injection must refuse the capture"
        );
        assert!(journal
            .iter()
            .any(|e| matches!(e, Event::BackendFallback { .. })));
    }

    #[test]
    fn shard_events_bracket_every_scenario_in_order() {
        let scenarios = ScenarioSet::grid(&[1, 2, 3], &[20.0], &[], &[200]);
        let n = scenarios.len();
        let mut driver = sweep(scenarios, 2);
        let (_, journal) = run_flow(&mut driver);
        let started: Vec<usize> = journal
            .iter()
            .filter_map(|e| match e {
                Event::ShardStarted { shard, .. } => Some(*shard),
                _ => None,
            })
            .collect();
        // Every simulation (MSB iters + LSB iters + verify) brackets all
        // scenarios in 0..n order.
        assert!(started.len() >= n);
        assert_eq!(started.len() % n, 0);
        for chunk in started.chunks(n) {
            assert_eq!(chunk, (0..n).collect::<Vec<_>>());
        }
        assert_eq!(driver.shard_summaries().len(), n);
        assert!(driver.shard_summaries().iter().all(|s| s.cycles > 0));
    }
}
