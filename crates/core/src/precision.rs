//! Consumed-vs-produced precision checks (paper §5.2).
//!
//! "Already quantized signals are checked for correctness of
//! quantization. They bring different values of `e_c` and `e_p` … which
//! yields information on consumed precision and produced precision." The
//! classification:
//!
//! * `e_p ≈ e_c` — the signal's own quantization is transparent (it
//!   quantizes below the incoming noise floor);
//! * `e_p > e_c` — a **precision loss** due to this signal's quantization:
//!   "the designer must resolve whether it is intentional or not";
//! * `e_p < e_c` on a signal simulated with the `error()` method — the
//!   injected model hides incoming error: "precision loss which might
//!   cause instability … is detected in the feedback path".

use std::fmt;
use std::fmt::Write as _;

use fixref_sim::{SignalId, SignalReport};

/// The §5.2 classification of one signal's error budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionStatus {
    /// Produced ≈ consumed: quantization transparent (or floating).
    Preserving,
    /// Produced σ clearly above consumed σ: this signal's quantizer
    /// dominates — intentional?
    QuantizationLoss,
    /// Produced below consumed under an `error()` annotation: the model
    /// masks incoming error; verify the feedback path's stability.
    FeedbackSuspect,
}

impl fmt::Display for PrecisionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrecisionStatus::Preserving => "preserving",
            PrecisionStatus::QuantizationLoss => "quantization-loss",
            PrecisionStatus::FeedbackSuspect => "feedback-suspect",
        })
    }
}

/// One signal's consumed/produced error comparison.
#[derive(Debug, Clone)]
pub struct PrecisionCheck {
    /// The checked signal.
    pub id: SignalId,
    /// Its name.
    pub name: String,
    /// Consumed error σ (`e_c`): the float-vs-fixed difference of the
    /// values arriving at this signal.
    pub consumed_std: f64,
    /// Produced error σ (`e_p`): the difference after this signal's own
    /// quantization (or `error()` injection).
    pub produced_std: f64,
    /// `e_p / e_c` (∞ when nothing was consumed but something produced).
    pub ratio: f64,
    /// The classification.
    pub status: PrecisionStatus,
}

/// Tolerance band treated as "equal" in the comparison.
const TOLERANCE: f64 = 1.25;

/// Classifies one monitored signal per §5.2.
pub fn analyze_precision(report: &SignalReport) -> PrecisionCheck {
    let c = report.consumed.std();
    let p = report.produced.std();
    let ratio = if c > 0.0 {
        p / c
    } else if p > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    let status = if ratio > TOLERANCE {
        PrecisionStatus::QuantizationLoss
    } else if ratio < 1.0 / TOLERANCE && report.error_override.is_some() {
        PrecisionStatus::FeedbackSuspect
    } else {
        PrecisionStatus::Preserving
    };
    PrecisionCheck {
        id: report.id,
        name: report.name.clone(),
        consumed_std: c,
        produced_std: p,
        ratio,
        status,
    }
}

/// Classifies every signal of a design (call after a monitored run with
/// the decided types applied).
pub fn analyze_precision_all(reports: &[SignalReport]) -> Vec<PrecisionCheck> {
    reports.iter().map(analyze_precision).collect()
}

/// Renders precision checks as an aligned table, flagged rows first.
pub fn render_precision_table(checks: &[PrecisionCheck]) -> String {
    let mut rows: Vec<&PrecisionCheck> = checks.iter().collect();
    rows.sort_by_key(|c| match c.status {
        PrecisionStatus::FeedbackSuspect => 0,
        PrecisionStatus::QuantizationLoss => 1,
        PrecisionStatus::Preserving => 2,
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>8}  status",
        "name", "consumed", "produced", "ratio"
    );
    let _ = writeln!(out, "{}", "-".repeat(60));
    for c in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12.3e} {:>12.3e} {:>8.2}  {}",
            c.name, c.consumed_std, c.produced_std, c.ratio, c.status
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::{ErrorStats, Interval, RangeStats};
    use fixref_sim::SignalKind;

    fn report(consumed: &[f64], produced: &[f64], error_override: Option<f64>) -> SignalReport {
        let mut c = ErrorStats::new();
        for &e in consumed {
            c.record(e);
        }
        let mut p = ErrorStats::new();
        for &e in produced {
            p.record(e);
        }
        SignalReport {
            id: SignalId::from_raw(0),
            name: "s".into(),
            kind: SignalKind::Wire,
            dtype: None,
            range_override: None,
            error_override,
            stat: RangeStats::new(),
            prop: Interval::EMPTY,
            consumed: c,
            produced: p,
            overflows: 0,
            reads: 0,
            writes: consumed.len() as u64,
            finest_lsb: None,
        }
    }

    fn alternating(a: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| if i % 2 == 0 { a } else { -a }).collect()
    }

    #[test]
    fn transparent_signal_preserves() {
        let e = alternating(0.01, 100);
        let c = analyze_precision(&report(&e, &e, None));
        assert_eq!(c.status, PrecisionStatus::Preserving);
        assert!((c.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominating_quantizer_flags_loss() {
        let c = analyze_precision(&report(
            &alternating(0.001, 100),
            &alternating(0.02, 100),
            None,
        ));
        assert_eq!(c.status, PrecisionStatus::QuantizationLoss);
        assert!(c.ratio > 10.0);
    }

    #[test]
    fn error_override_masking_flags_feedback() {
        // Produced far below consumed, under error(): the injected model
        // hides the incoming difference.
        let c = analyze_precision(&report(
            &alternating(0.1, 100),
            &alternating(0.001, 100),
            Some(0.001),
        ));
        assert_eq!(c.status, PrecisionStatus::FeedbackSuspect);
        // Without the override it reads as benign smoothing.
        let c = analyze_precision(&report(
            &alternating(0.1, 100),
            &alternating(0.001, 100),
            None,
        ));
        assert_eq!(c.status, PrecisionStatus::Preserving);
    }

    #[test]
    fn zero_consumed_nonzero_produced_is_loss() {
        let c = analyze_precision(&report(&[0.0; 50], &alternating(0.01, 50), None));
        assert_eq!(c.status, PrecisionStatus::QuantizationLoss);
        assert!(c.ratio.is_infinite());
    }

    #[test]
    fn table_orders_flags_first() {
        let checks = vec![
            analyze_precision(&report(
                &alternating(0.01, 10),
                &alternating(0.01, 10),
                None,
            )),
            analyze_precision(&report(
                &alternating(0.001, 10),
                &alternating(0.05, 10),
                None,
            )),
            analyze_precision(&report(
                &alternating(0.1, 10),
                &alternating(0.001, 10),
                Some(0.001),
            )),
        ];
        let t = render_precision_table(&checks);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[2].contains("feedback-suspect"), "{t}");
        assert!(lines[3].contains("quantization-loss"), "{t}");
        assert!(lines[4].contains("preserving"), "{t}");
    }
}
