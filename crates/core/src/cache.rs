//! Incremental evaluation cache for refinement iterations.
//!
//! Every refinement iteration of [`RefinementFlow`](crate::RefinementFlow)
//! re-simulates the whole design, yet most iterations change only a
//! handful of annotations (one `range()` pin, one `error()` injection).
//! The cache exploits that: the [`Design`] tracks which signals' behavior
//! an annotation change may have altered (its *dirty set*), and before
//! each simulation the driver builds a [`CachePlan`]:
//!
//! * **Replay** — nothing is dirty: the previous run would repeat
//!   bit-identically (all stimuli are functions of the iteration-stable
//!   scenario, and the error-injection RNG restarts from the design seed
//!   on every `reset_state`), so the cached monitors are spliced back and
//!   the stimulus is skipped entirely. This is always sound.
//! * **Partial** — some signals are dirty and the design has declared a
//!   *static schedule* ([`Design::declare_static_schedule`]): the dirty
//!   fan-out cone is computed from the recorded signal-flow graph
//!   ([`Graph::affected_cone`](fixref_sim::Graph::affected_cone)); cone
//!   signals simulate live while the clean remainder runs *passive*
//!   (values, quantization and RNG draws still execute — so live signals
//!   see bit-identical inputs — but the clean signals' own monitors are
//!   skipped and their cached statistics spliced back afterwards).
//! * **Cold** — no usable cache: a graph recording was requested, the
//!   cache is empty, the design has no recorded graph, or dirty signals
//!   exist without a static-schedule declaration (data-dependent control
//!   flow makes dataflow cones unsound — the timing-recovery loop's
//!   strobe is the canonical example).
//!
//! Invalidation granularity: `range()`/`dtype` changes dirty one signal;
//! `error()` sigma changes dirty *all* signals, because error injection
//! consumes a design-wide shared RNG stream — inserting draws shifts
//! every subsequent draw.

use std::collections::HashSet;

use fixref_obs::{Event, Recorder};
use fixref_sim::{Design, OverflowEvent, SignalId, SignalStats};

/// How the next simulation may reuse cached monitors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachePlan {
    /// Run everything live.
    Cold,
    /// Nothing is dirty: splice every cached monitor and skip the
    /// stimulus.
    Replay,
    /// Re-simulate with the listed clean signals passive and splice
    /// their cached monitors afterwards.
    Partial {
        /// Signals outside the dirty fan-out cone.
        clean: Vec<SignalId>,
    },
}

/// Decides how a simulation over `design` may reuse a warm cache, and
/// drains the design's dirty set (the decision consumes it).
///
/// Emits [`Event::CacheInvalidated`] when annotation changes dirtied a
/// warm cache.
pub(crate) fn plan_for(
    design: &Design,
    record_graph: bool,
    warm: bool,
    recorder: &dyn Recorder,
) -> CachePlan {
    let dirty = design.take_dirty();
    if warm && !dirty.is_empty() {
        recorder.record_event(Event::CacheInvalidated {
            reason: "annotations".into(),
            dirty: dirty.len(),
        });
    }
    if record_graph || !warm {
        return CachePlan::Cold;
    }
    if dirty.is_empty() {
        return CachePlan::Replay;
    }
    let graph = design.graph();
    if graph.is_empty() || !design.has_static_schedule() {
        return CachePlan::Cold;
    }
    // The Partial plan trusts the declared static schedule to make
    // dataflow cones sound. Verify the declaration against the recorded
    // run before trusting it: a strobe or data-dependent definition means
    // the cone under-approximates what the dirty annotations can reach,
    // so the only sound downgrade is a full live run. (Not Replay — with
    // dirty signals a replay would splice stale monitors.)
    let violations = fixref_lint::check_static_schedule(design);
    if !violations.is_empty() {
        recorder.record_event(Event::LintGateFailed {
            context: "cache.partial".into(),
            code: "FXL001".into(),
            findings: violations.len(),
        });
        recorder.inc("lint.cache_gate_failures", 1);
        return CachePlan::Cold;
    }
    let cone: HashSet<SignalId> = graph.affected_cone(&dirty).into_iter().collect();
    let clean: Vec<SignalId> = (0..design.num_signals() as u32)
        .map(SignalId::from_raw)
        .filter(|s| !cone.contains(s))
        .collect();
    if clean.is_empty() {
        CachePlan::Cold
    } else {
        CachePlan::Partial { clean }
    }
}

/// The sequential driver's monitor cache: the previous run's exported
/// statistics, overflow events and cycle count, plus hit/miss accounting
/// (one hit per signal spliced from cache, one miss per signal simulated
/// live).
#[derive(Debug, Default)]
pub struct EvalCache {
    stats: Option<Vec<SignalStats>>,
    overflow_events: Vec<OverflowEvent>,
    cycles: u64,
    hits: u64,
    misses: u64,
}

impl EvalCache {
    /// Creates an empty (cold) cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Whether the cache holds a previous run's monitors.
    pub fn is_warm(&self) -> bool {
        self.stats.is_some()
    }

    /// Signals answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Signals simulated live so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Decides how the next simulation may reuse this cache; drains the
    /// design's dirty set.
    pub fn plan(&self, design: &Design, record_graph: bool, recorder: &dyn Recorder) -> CachePlan {
        plan_for(design, record_graph, self.is_warm(), recorder)
    }

    /// Snapshots the design's monitors after a live run.
    pub fn store(&mut self, design: &Design) {
        self.stats = Some(design.export_stats());
        self.overflow_events = design.peek_overflow_events();
        self.cycles = design.cycle();
    }

    /// Splices every cached monitor into the (freshly reset) design and
    /// returns the cached cycle count — the Replay path.
    ///
    /// # Panics
    ///
    /// Panics if the cache is cold or was stored from a different design.
    pub fn replay(&self, design: &Design) -> u64 {
        let stats = self.stats.as_ref().expect("replay requires a warm cache");
        design
            .splice_stats(stats)
            .expect("cached stats were exported from this design");
        design.splice_overflow_events(self.overflow_events.clone());
        self.cycles
    }

    /// Splices the cached monitors of the `clean` signals into the design
    /// after a partial (passive) run.
    ///
    /// # Panics
    ///
    /// Panics if the cache is cold or was stored from a different design.
    pub fn splice_clean(&self, design: &Design, clean: &[SignalId]) {
        let names: HashSet<String> = clean.iter().map(|s| design.name_of(*s)).collect();
        let stats: Vec<SignalStats> = self
            .stats
            .as_ref()
            .expect("partial splice requires a warm cache")
            .iter()
            .filter(|s| names.contains(&s.name))
            .cloned()
            .collect();
        design
            .splice_stats(&stats)
            .expect("cached stats were exported from this design");
        let events: Vec<OverflowEvent> = self
            .overflow_events
            .iter()
            .filter(|e| names.contains(&e.name))
            .cloned()
            .collect();
        design.splice_overflow_events(events);
    }

    /// Exports the cached monitors for checkpointing:
    /// `(stats, overflow_events, cycles)`, or `None` when the cache is
    /// cold. Pair with [`EvalCache::restore`].
    pub fn snapshot(&self) -> Option<(Vec<SignalStats>, Vec<OverflowEvent>, u64)> {
        self.stats
            .as_ref()
            .map(|stats| (stats.clone(), self.overflow_events.clone(), self.cycles))
    }

    /// Rebuilds a warm cache from checkpointed parts, so a resumed flow
    /// replays and invalidates exactly like the uninterrupted run.
    /// Hit/miss accounting restarts at zero.
    pub fn restore(
        stats: Vec<SignalStats>,
        overflow_events: Vec<OverflowEvent>,
        cycles: u64,
    ) -> Self {
        EvalCache {
            stats: Some(stats),
            overflow_events,
            cycles,
            hits: 0,
            misses: 0,
        }
    }

    /// Accounts `spliced` cache hits and `live` misses, mirroring them
    /// onto the recorder's `cache.hits` / `cache.misses` counters.
    pub fn note(&mut self, recorder: &dyn Recorder, spliced: u64, live: u64) {
        self.hits += spliced;
        self.misses += live;
        if spliced > 0 {
            recorder.inc("cache.hits", spliced);
        }
        if live > 0 {
            recorder.inc("cache.misses", live);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_obs::DefaultRecorder;
    use fixref_sim::SignalRef;

    fn tiny_design() -> Design {
        let d = Design::with_seed(7);
        d.sig("x");
        d.sig("y");
        d.declare_static_schedule();
        d
    }

    fn drive(d: &Design) {
        let x = d.sig_handle(d.find("x").unwrap());
        let y = d.sig_handle(d.find("y").unwrap());
        d.clear_graph();
        d.record_graph(true);
        for i in 0..32 {
            x.set((i as f64 * 0.3).sin());
            y.set(x.get() * 0.5);
            d.tick();
        }
        d.record_graph(false);
    }

    #[test]
    fn cold_cache_plans_cold_then_replays_when_nothing_is_dirty() {
        let d = tiny_design();
        let rec = DefaultRecorder::new();
        let mut cache = EvalCache::new();
        assert_eq!(cache.plan(&d, false, &rec), CachePlan::Cold);
        drive(&d);
        cache.store(&d);
        // Nothing changed since (plan drained the declaration dirt).
        assert_eq!(cache.plan(&d, false, &rec), CachePlan::Replay);
        // A graph-recording request always forces a live run.
        assert_eq!(cache.plan(&d, true, &rec), CachePlan::Cold);
    }

    #[test]
    fn annotation_dirt_plans_partial_under_a_static_schedule() {
        let d = tiny_design();
        let rec = DefaultRecorder::new();
        let mut cache = EvalCache::new();
        let _ = cache.plan(&d, false, &rec); // drain declaration dirt
        drive(&d);
        cache.store(&d);

        let y = d.find("y").unwrap();
        d.set_range(y, -1.0, 1.0);
        match cache.plan(&d, false, &rec) {
            CachePlan::Partial { clean } => {
                // x is outside y's fan-out cone.
                assert_eq!(clean, vec![d.find("x").unwrap()]);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        // The invalidation was journaled.
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, Event::CacheInvalidated { dirty: 1, .. })));
    }

    #[test]
    fn without_a_static_schedule_dirt_forces_a_cold_run() {
        let d = Design::with_seed(7);
        d.sig("x");
        d.sig("y"); // no declare_static_schedule()
        let rec = DefaultRecorder::new();
        let mut cache = EvalCache::new();
        let _ = cache.plan(&d, false, &rec);
        drive(&d);
        cache.store(&d);
        d.set_range(d.find("y").unwrap(), -1.0, 1.0);
        assert_eq!(cache.plan(&d, false, &rec), CachePlan::Cold);
    }

    #[test]
    fn dirtying_an_upstream_signal_leaves_no_clean_remainder() {
        let d = tiny_design();
        let rec = DefaultRecorder::new();
        let mut cache = EvalCache::new();
        let _ = cache.plan(&d, false, &rec);
        drive(&d);
        cache.store(&d);
        // x feeds y: the cone covers everything, so Partial degenerates
        // to Cold.
        d.set_range(d.find("x").unwrap(), -1.0, 1.0);
        assert_eq!(cache.plan(&d, false, &rec), CachePlan::Cold);
    }

    #[test]
    fn broken_schedule_declaration_downgrades_partial_to_cold() {
        // The author declares a static schedule, but a strobe gates one
        // signal at half rate: FXL001 refutes the declaration, so the
        // Partial plan must not be trusted even though every structural
        // precondition (warm cache, graph, declaration, clean remainder)
        // holds.
        let d = Design::with_seed(7);
        let x = d.sig("x");
        let xs = d.sig("xs");
        let slow = d.sig("slow");
        let other = d.sig("other");
        d.declare_static_schedule();
        let rec = DefaultRecorder::new();
        let mut cache = EvalCache::new();
        let _ = cache.plan(&d, false, &rec);
        d.record_graph(true);
        for i in 0..64 {
            x.set((i as f64 * 0.3).sin());
            xs.set(x.get() * 0.5);
            if i % 2 == 0 {
                slow.set(xs.get() + 1.0);
            }
            other.set(x.get() * 2.0);
            d.tick();
        }
        d.record_graph(false);
        cache.store(&d);

        // Dirty a leaf signal: `other` has a clean remainder, so absent
        // the lint gate this would plan Partial.
        d.set_range(other.id(), -2.0, 2.0);
        assert_eq!(cache.plan(&d, false, &rec), CachePlan::Cold);
        assert!(rec.events().iter().any(|e| matches!(
            e,
            Event::LintGateFailed { context, code, findings }
                if context == "cache.partial" && code == "FXL001" && *findings == 1
        )));
        assert_eq!(rec.counter("lint.cache_gate_failures"), 1);
    }

    #[test]
    fn replay_splices_monitors_bit_identically() {
        let d = tiny_design();
        let rec = DefaultRecorder::new();
        let mut cache = EvalCache::new();
        let _ = cache.plan(&d, false, &rec);
        drive(&d);
        cache.store(&d);
        let reference = d.export_stats();
        let cycles = d.cycle();

        d.reset_stats();
        d.reset_state();
        assert_eq!(cache.replay(&d), cycles);
        assert_eq!(d.export_stats(), reference);

        cache.note(&rec, d.num_signals() as u64, 0);
        assert_eq!(cache.hits(), 2);
        assert_eq!(rec.counter("cache.hits"), 2);
    }
}
