//! LSB-side refinement rules (paper §5.2).
//!
//! The dual simulation leaves every signal with produced-error statistics
//! `(|e|max, m̄, σ)`. The rule is: additional precision below the existing
//! noise floor buys nothing, so the LSB position is the largest `L` with
//! `2^L ≤ k·σ` — i.e. `L = ⌊log₂(k·σ)⌋` — with the empirical constant
//! `k ∈ [1, 4]` (smaller `k` = more conservative).
//!
//! Special cases handled here:
//!
//! * **exact signals** (`σ = 0`, e.g. a ±1 slicer output): the LSB is the
//!   finest position the signal's values actually used;
//! * **divergent feedback signals**: strongly correlated float/fixed
//!   errors make the statistics irrelevant — flagged so the flow can break
//!   the loop with an `error()` annotation;
//! * **precision checks** on already-quantized signals: produced σ above
//!   consumed σ means the signal's own quantization dominates (a
//!   *precision loss* the designer must confirm is intentional).

use std::fmt;

use fixref_fixed::RoundingMode;
use fixref_sim::{SignalId, SignalReport};

use crate::policy::RefinePolicy;

/// How the LSB rule resolved for one signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsbStatus {
    /// `σ > 0` and the statistics are trustworthy: LSB from the rule.
    Resolved,
    /// Every observed error was exactly zero; LSB taken from the finest
    /// value granularity the signal used.
    Exact,
    /// The float/fixed difference diverged (sensitive feedback) — needs an
    /// `error()` annotation and a re-run.
    Diverged,
    /// No assignments were observed.
    NoData,
}

impl fmt::Display for LsbStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LsbStatus::Resolved => "resolved",
            LsbStatus::Exact => "exact",
            LsbStatus::Diverged => "diverged",
            LsbStatus::NoData => "no-data",
        };
        f.write_str(s)
    }
}

/// The complete LSB analysis of one signal — one row of the paper's
/// Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct LsbAnalysis {
    /// The analyzed signal.
    pub id: SignalId,
    /// Its name.
    pub name: String,
    /// `#n`: the number of monitored assignments.
    pub assigns: u64,
    /// Maximum absolute produced error `|e|max`.
    pub max_abs: f64,
    /// Mean produced error `m̄`.
    pub mean: f64,
    /// Produced-error standard deviation `σ`.
    pub std: f64,
    /// The decided LSB position, when resolvable.
    pub lsb: Option<i32>,
    /// How the rule resolved.
    pub status: LsbStatus,
    /// Produced σ exceeded consumed σ: this signal's own quantization
    /// dominates its noise (paper: `e_p > e_c` — intentional?).
    pub precision_loss: bool,
    /// The error-mean shift that switching this signal to floor rounding
    /// would introduce (`2^(L−1)`), for the round-vs-floor decision.
    pub floor_mean_shift: Option<f64>,
    /// Rounding recommendation under the policy.
    pub rounding: RoundingMode,
}

impl LsbAnalysis {
    /// Fractional bits implied by the decided LSB (`f = −LSB`).
    pub fn fractional_bits(&self) -> Option<i32> {
        self.lsb.map(|l| -l)
    }
}

/// Applies the §5.2 rule to one monitored signal.
pub fn analyze_lsb(report: &SignalReport, policy: &RefinePolicy) -> LsbAnalysis {
    let produced = report.produced;
    let sigma = produced.std();
    let assigns = report.writes;

    let (status, lsb) = if assigns == 0 {
        (LsbStatus::NoData, None)
    } else if diverged(report, policy) {
        (LsbStatus::Diverged, None)
    } else if sigma == 0.0 {
        // Exact signal: quantizing at its own granularity is lossless;
        // floored so coefficient literals do not demand f64-width types.
        (
            LsbStatus::Exact,
            report.finest_lsb.map(|l| l.max(policy.exact_lsb_floor)),
        )
    } else {
        let l = (policy.k_lsb * sigma).log2().floor() as i32;
        (
            LsbStatus::Resolved,
            Some(l.clamp(policy.min_lsb, policy.max_lsb)),
        )
    };

    // Round-vs-floor (paper §5.2): floor is cheaper hardware but shifts
    // the error mean by half an LSB; recommend it only where that shift
    // stays below the policy's fraction of the signal's own error σ.
    let floor_mean_shift = lsb.map(|l| ((l - 1) as f64).exp2());
    let rounding = match (policy.floor_if_shift_below, floor_mean_shift) {
        (Some(frac), Some(shift)) if sigma > 0.0 && shift <= frac * sigma => RoundingMode::Floor,
        _ => policy.rounding,
    };

    LsbAnalysis {
        id: report.id,
        name: report.name.clone(),
        assigns,
        max_abs: produced.max_abs(),
        mean: produced.mean(),
        std: sigma,
        lsb,
        status,
        precision_loss: report.precision_loss(),
        floor_mean_shift,
        rounding,
    }
}

/// Divergence test: the error statistics are irrelevant when the produced
/// error is non-finite or large relative to the signal's own amplitude
/// (paper §4.2: strong inter-iteration correlation on feedback paths).
fn diverged(report: &SignalReport, policy: &RefinePolicy) -> bool {
    let produced = report.produced;
    if !produced.std().is_finite() || !produced.max_abs().is_finite() {
        return true;
    }
    // With an explicit error() annotation active, statistics are by
    // construction well-behaved.
    if report.error_override.is_some() {
        return false;
    }
    let amplitude = report.stat.interval().map(|i| i.max_abs()).unwrap_or(0.0);
    amplitude > 0.0
        && (produced.std() > policy.divergence_ratio * amplitude
            || produced.max_abs() > policy.divergence_max_ratio * amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::{ErrorStats, Interval, RangeStats};
    use fixref_sim::SignalKind;

    fn report(errors: &[f64], values: &[f64]) -> SignalReport {
        let mut produced = ErrorStats::new();
        for &e in errors {
            produced.record(e);
        }
        let mut stat = RangeStats::new();
        for &v in values {
            stat.record(v);
        }
        SignalReport {
            id: SignalId::from_raw(0),
            name: "s".into(),
            kind: SignalKind::Wire,
            dtype: None,
            range_override: None,
            error_override: None,
            stat,
            prop: Interval::EMPTY,
            consumed: ErrorStats::new(),
            produced,
            overflows: 0,
            reads: 0,
            writes: errors.len().max(values.len()) as u64,
            finest_lsb: None,
        }
    }

    /// Uniform quantization noise at LSB position `l` has σ = 2^l/√12.
    /// With k = 4 the rule recovers l itself: floor(log2(4·2^l/√12)) =
    /// floor(l + log2(4/3.46)) = l; with the default k = 1 it lands two
    /// bits finer (quantizing well below the existing noise floor).
    #[test]
    fn rule_recovers_quantization_lsb() {
        let l = -6;
        let q = (l as f64).exp2();
        let n = 4000usize;
        let errors: Vec<f64> = (0..n)
            .map(|i| ((i as f64 + 0.5) / n as f64 - 0.5) * q)
            .collect();
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let k4 = analyze_lsb(
            &report(&errors, &values),
            &RefinePolicy::default().with_k_lsb(4.0),
        );
        assert_eq!(k4.status, LsbStatus::Resolved);
        assert_eq!(k4.lsb, Some(-6));
        assert_eq!(k4.fractional_bits(), Some(6));
        let k1 = analyze_lsb(&report(&errors, &values), &RefinePolicy::default());
        assert_eq!(k1.lsb, Some(-8));
    }

    #[test]
    fn smaller_k_is_more_conservative() {
        let errors: Vec<f64> = (0..1000)
            .map(|i| ((i as f64 + 0.5) / 1000.0 - 0.5) * 0.01)
            .collect();
        let values = vec![1.0; 1000];
        let k4 = analyze_lsb(
            &report(&errors, &values),
            &RefinePolicy::default().with_k_lsb(4.0),
        );
        let k1 = analyze_lsb(
            &report(&errors, &values),
            &RefinePolicy::default().with_k_lsb(1.0),
        );
        assert!(k1.lsb.unwrap() < k4.lsb.unwrap());
    }

    #[test]
    fn exact_signal_uses_granularity() {
        let mut r = report(&[0.0, 0.0, 0.0], &[1.0, -1.0, 1.0]);
        r.finest_lsb = Some(0);
        let a = analyze_lsb(&r, &RefinePolicy::default());
        assert_eq!(a.status, LsbStatus::Exact);
        assert_eq!(a.lsb, Some(0));
        assert_eq!(a.std, 0.0);
        assert_eq!(a.max_abs, 0.0);
    }

    #[test]
    fn exact_signal_lsb_floored_for_literals() {
        // A coefficient like -0.11 is dyadic only near 2^-56; the policy
        // floor keeps the decided type practical.
        let mut r = report(&[0.0, 0.0], &[-0.11, -0.11]);
        r.finest_lsb = Some(-56);
        let a = analyze_lsb(&r, &RefinePolicy::default());
        assert_eq!(a.status, LsbStatus::Exact);
        assert_eq!(a.lsb, Some(RefinePolicy::default().exact_lsb_floor));
    }

    #[test]
    fn exact_signal_without_granularity_unresolved() {
        let r = report(&[0.0, 0.0], &[0.0, 0.0]);
        let a = analyze_lsb(&r, &RefinePolicy::default());
        assert_eq!(a.status, LsbStatus::Exact);
        assert_eq!(a.lsb, None);
    }

    #[test]
    fn divergence_by_amplitude_ratio() {
        // Signal amplitude 1, error std ~ 0.8: irrelevant statistics.
        let errors: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.8 } else { -0.8 })
            .collect();
        let values = vec![1.0, -1.0];
        let a = analyze_lsb(&report(&errors, &values), &RefinePolicy::default());
        assert_eq!(a.status, LsbStatus::Diverged);
        assert_eq!(a.lsb, None);
    }

    #[test]
    fn error_override_suppresses_divergence_flag() {
        let errors: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.8 } else { -0.8 })
            .collect();
        let mut r = report(&errors, &[1.0, -1.0]);
        r.error_override = Some(0.8);
        let a = analyze_lsb(&r, &RefinePolicy::default());
        assert_eq!(a.status, LsbStatus::Resolved);
        assert!(a.lsb.is_some());
    }

    #[test]
    fn non_finite_errors_diverge() {
        let mut r = report(&[], &[1.0]);
        r.produced.record(f64::INFINITY);
        r.produced.record(0.0);
        let a = analyze_lsb(&r, &RefinePolicy::default());
        assert_eq!(a.status, LsbStatus::Diverged);
    }

    #[test]
    fn no_data() {
        let a = analyze_lsb(&report(&[], &[]), &RefinePolicy::default());
        assert_eq!(a.status, LsbStatus::NoData);
        assert_eq!(a.lsb, None);
        assert_eq!(a.assigns, 0);
    }

    #[test]
    fn lsb_clamped_to_policy_bounds() {
        // Tiny sigma would give an extreme LSB; the clamp catches it.
        let errors: Vec<f64> = (0..1000)
            .map(|i| ((i as f64 + 0.5) / 1000.0 - 0.5) * 1e-30)
            .collect();
        let a = analyze_lsb(&report(&errors, &[1.0]), &RefinePolicy::default());
        assert_eq!(a.lsb, Some(RefinePolicy::default().min_lsb));
    }

    #[test]
    fn precision_loss_flag_propagates() {
        let mut r = report(&[0.01, -0.01, 0.01, -0.01], &[1.0]);
        // consumed much smaller than produced
        r.consumed.record(1e-6);
        r.consumed.record(-1e-6);
        let a = analyze_lsb(&r, &RefinePolicy::default());
        assert!(a.precision_loss);
    }

    #[test]
    fn floor_mean_shift_is_half_lsb() {
        let errors: Vec<f64> = (0..1000)
            .map(|i| ((i as f64 + 0.5) / 1000.0 - 0.5) * 0.03125)
            .collect();
        let a = analyze_lsb(&report(&errors, &[1.0]), &RefinePolicy::default());
        let l = a.lsb.unwrap();
        assert_eq!(a.floor_mean_shift, Some(((l - 1) as f64).exp2()));
        assert_eq!(a.rounding, RoundingMode::Round);
    }

    #[test]
    fn status_display() {
        assert_eq!(LsbStatus::Resolved.to_string(), "resolved");
        assert_eq!(LsbStatus::Exact.to_string(), "exact");
        assert_eq!(LsbStatus::Diverged.to_string(), "diverged");
        assert_eq!(LsbStatus::NoData.to_string(), "no-data");
    }
}
