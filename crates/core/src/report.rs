//! Text renderers reproducing the layout of the paper's Tables 1 and 2.

use std::fmt::Write as _;

use crate::lsb::{LsbAnalysis, LsbStatus};
use crate::msb::MsbAnalysis;

fn fmt_opt_f(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:>9.4}"),
        None => format!("{:>9}", "-"),
    }
}

fn fmt_opt_i(v: Option<i32>) -> String {
    match v {
        Some(x) => format!("{x:>4}"),
        None => format!("{:>4}", "?"),
    }
}

/// Renders MSB analyses in the column layout of the paper's Table 1:
///
/// ```text
/// name #n | stat: min max msb | prop: min max msb | MSB
/// ```
///
/// Unresolved entries print `?` in the decided column, exactly as the
/// paper marks `w` and `b` after the first iteration.
pub fn render_msb_table(analyses: &[MsbAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} | {:>9} {:>9} {:>4} | {:>9} {:>9} {:>4} | {:>4} mode",
        "name", "#n", "min", "max", "msb", "min", "max", "msb", "MSB"
    );
    let _ = writeln!(out, "{}", "-".repeat(86));
    for a in analyses {
        let (stat_min, stat_max) = match a.stat {
            Some(i) => (Some(i.lo), Some(i.hi)),
            None => (None, None),
        };
        // An exploded propagation prints as unknown, like the paper's "?"
        // rows for `w` and `b` after the first iteration.
        let (prop_min, prop_max) = match a.prop {
            Some(i) if i.is_bounded() && !a.exploded => (Some(i.lo), Some(i.hi)),
            _ => (None, None),
        };
        let decided = if a.exploded { None } else { a.decided_msb() };
        let mode = if a.exploded {
            "? (explosion)"
        } else if !a.decision.is_resolved() {
            "?"
        } else if a.decision.is_saturated() {
            "(st)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<10} {:>6} | {} {} {} | {} {} {} | {} {}",
            a.name,
            a.accesses,
            fmt_opt_f(stat_min),
            fmt_opt_f(stat_max),
            fmt_opt_i(a.stat_msb),
            fmt_opt_f(prop_min),
            fmt_opt_f(prop_max),
            fmt_opt_i(if a.exploded { None } else { a.prop_msb }),
            fmt_opt_i(decided),
            mode
        );
    }
    out
}

/// Renders LSB analyses in the column layout of the paper's Table 2:
///
/// ```text
/// name #n | max_abs mean std | LSB
/// ```
pub fn render_lsb_table(analyses: &[LsbAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} | {:>11} {:>11} {:>11} | {:>4} status",
        "name", "#n", "|e|max", "mean", "std", "LSB"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    for a in analyses {
        let _ = writeln!(
            out,
            "{:<10} {:>6} | {:>11.3e} {:>11.3e} {:>11.3e} | {} {}",
            a.name,
            a.assigns,
            a.max_abs,
            a.mean,
            a.std,
            fmt_opt_i(a.lsb),
            match a.status {
                LsbStatus::Resolved => "",
                LsbStatus::Exact => "(exact)",
                LsbStatus::Diverged => "(diverged)",
                LsbStatus::NoData => "(no data)",
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msb::MsbDecision;
    use fixref_fixed::{Interval, OverflowMode};
    use fixref_sim::SignalId;

    fn msb_row(name: &str, decided: Option<i32>, saturated: bool) -> MsbAnalysis {
        MsbAnalysis {
            id: SignalId::from_raw(0),
            name: name.into(),
            accesses: 100,
            stat: Some(Interval::new(-1.0, 1.0)),
            stat_msb: Some(1),
            prop: Some(Interval::new(-1.5, 1.5)),
            prop_msb: Some(1),
            exploded: false,
            decision: match decided {
                Some(m) if saturated => MsbDecision::Saturate {
                    msb: m,
                    guard: Interval::new(-2.0, 2.0),
                    forced: false,
                },
                Some(m) => MsbDecision::Agree { msb: m },
                None => MsbDecision::Unresolved {
                    reason: "test".into(),
                },
            },
            mode: if saturated {
                OverflowMode::Saturate
            } else {
                OverflowMode::Error
            },
            signedness: fixref_fixed::Signedness::TwosComplement,
        }
    }

    #[test]
    fn msb_table_contains_rows_and_markers() {
        let rows = vec![
            msb_row("x", Some(1), false),
            msb_row("b", Some(-2), true),
            msb_row("w", None, false),
        ];
        let t = render_msb_table(&rows);
        assert!(t.contains("name"));
        assert!(t.contains("x"));
        assert!(t.contains("(st)")); // saturated marker, as in the paper
        assert!(t.contains('?')); // unresolved marker
        assert_eq!(t.lines().count(), 2 + 3);
    }

    #[test]
    fn lsb_table_formats_statistics() {
        let rows = vec![
            LsbAnalysis {
                id: SignalId::from_raw(0),
                name: "v[3]".into(),
                assigns: 2000,
                max_abs: 1.9e-2,
                mean: -3.0e-4,
                std: 7.0e-3,
                lsb: Some(-6),
                status: LsbStatus::Resolved,
                precision_loss: false,
                floor_mean_shift: Some(0.0078125),
                rounding: fixref_fixed::RoundingMode::Round,
            },
            LsbAnalysis {
                id: SignalId::from_raw(1),
                name: "y".into(),
                assigns: 2000,
                max_abs: 0.0,
                mean: 0.0,
                std: 0.0,
                lsb: Some(0),
                status: LsbStatus::Exact,
                precision_loss: false,
                floor_mean_shift: Some(0.5),
                rounding: fixref_fixed::RoundingMode::Round,
            },
        ];
        let t = render_lsb_table(&rows);
        assert!(t.contains("v[3]"));
        assert!(t.contains("-6"));
        assert!(t.contains("(exact)"));
        assert!(t.contains("e-3") || t.contains("e-03") || t.contains("7e"));
    }
}

/// Renders MSB analyses as CSV (header + one row per signal), for
/// spreadsheet/scripted post-processing of the refinement results.
pub fn msb_table_csv(analyses: &[MsbAnalysis]) -> String {
    let mut out = String::from(
        "name,accesses,stat_min,stat_max,stat_msb,prop_min,prop_max,prop_msb,\
         exploded,decided_msb,saturated\n",
    );
    let opt_f = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
    let opt_i = |v: Option<i32>| v.map(|x| x.to_string()).unwrap_or_default();
    for a in analyses {
        let (smin, smax) = a
            .stat
            .map(|i| (Some(i.lo), Some(i.hi)))
            .unwrap_or((None, None));
        let (pmin, pmax) = match a.prop {
            Some(i) if i.is_bounded() && !a.exploded => (Some(i.lo), Some(i.hi)),
            _ => (None, None),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            a.name,
            a.accesses,
            opt_f(smin),
            opt_f(smax),
            opt_i(a.stat_msb),
            opt_f(pmin),
            opt_f(pmax),
            opt_i(if a.exploded { None } else { a.prop_msb }),
            a.exploded,
            opt_i(if a.exploded { None } else { a.decided_msb() }),
            a.decision.is_saturated()
        );
    }
    out
}

/// Renders LSB analyses as CSV.
pub fn lsb_table_csv(analyses: &[LsbAnalysis]) -> String {
    let mut out = String::from("name,assigns,max_abs,mean,std,lsb,status,rounding\n");
    for a in analyses {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            a.name,
            a.assigns,
            a.max_abs,
            a.mean,
            a.std,
            a.lsb.map(|l| l.to_string()).unwrap_or_default(),
            a.status,
            a.rounding
        );
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::msb::MsbDecision;
    use fixref_fixed::{Interval, OverflowMode};
    use fixref_sim::SignalId;

    #[test]
    fn msb_csv_rows_and_header() {
        let rows = vec![MsbAnalysis {
            id: SignalId::from_raw(0),
            name: "w".into(),
            accesses: 42,
            stat: Some(Interval::new(-1.0, 1.5)),
            stat_msb: Some(1),
            prop: Some(Interval::UNBOUNDED),
            prop_msb: None,
            exploded: true,
            decision: MsbDecision::Saturate {
                msb: 1,
                guard: Interval::new(-2.0, 3.0),
                forced: true,
            },
            mode: OverflowMode::Saturate,
            signedness: fixref_fixed::Signedness::TwosComplement,
        }];
        let csv = msb_table_csv(&rows);
        let mut lines = csv.lines();
        assert!(lines.next().expect("header").starts_with("name,accesses"));
        let row = lines.next().expect("one row");
        assert!(row.starts_with("w,42,-1,1.5,1,"));
        assert!(row.contains("true"));
        // Exploded propagation leaves prop/decided cells empty.
        assert!(row.contains(",,,true,,"), "{row}");
    }

    #[test]
    fn lsb_csv_rows() {
        let rows = vec![LsbAnalysis {
            id: SignalId::from_raw(1),
            name: "y".into(),
            assigns: 10,
            max_abs: 0.0,
            mean: 0.0,
            std: 0.0,
            lsb: Some(0),
            status: LsbStatus::Exact,
            precision_loss: false,
            floor_mean_shift: Some(0.5),
            rounding: fixref_fixed::RoundingMode::Round,
        }];
        let csv = lsb_table_csv(&rows);
        assert!(csv.starts_with("name,assigns"));
        assert!(csv.contains("y,10,0,0,0,0,exact,rd"));
    }
}
