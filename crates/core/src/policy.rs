//! Refinement policy knobs.

use fixref_fixed::{OverflowMode, RoundingMode};

/// Tunable parameters of the refinement rules.
///
/// The defaults reproduce the paper's evaluation: `k_lsb = 1` (the
/// conservative end of the reported optimal range `[1, 4]`; smaller is
/// more conservative — `k = 1` is the value consistent with the paper's
/// own SQNR measurement, which shows well under 1 dB of refinement cost),
/// automatic interventions enabled, two's-complement types.
///
/// # Example
///
/// ```
/// use fixref_core::RefinePolicy;
///
/// let p = RefinePolicy::default().with_k_lsb(2.0).with_max_iterations(5);
/// assert_eq!(p.k_lsb, 2.0);
/// assert_eq!(p.max_iterations, 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RefinePolicy {
    /// The LSB rule constant `k` in `2^LSB ≤ k·σ` (paper §5.2,
    /// empirically optimal in `[1, 4]`).
    pub k_lsb: f64,
    /// Propagated-minus-statistic MSB gap at or above which range
    /// propagation is considered "very pessimistic" (rule *b*: switch to
    /// saturation / explicit range) rather than a trade-off (rule *c*).
    pub pessimism_gap: i32,
    /// A propagated MSB above this value counts as range explosion even if
    /// finite.
    pub explosion_msb: i32,
    /// A propagated-minus-statistic MSB gap at or above this value counts
    /// as range explosion even when finite: the signature of an
    /// accumulator whose propagated range grows with simulation length
    /// (the paper's "2 feedback signals required saturation due to the
    /// MSB explosion").
    pub explosion_gap: i32,
    /// Extra MSBs added on top of the statistic MSB when a signal is put
    /// in saturation mode (safety margin for untested stimuli).
    pub saturation_margin: i32,
    /// In a rule-*c* trade-off, pick the (safe) propagated MSB when true,
    /// else the (tight) statistic MSB with saturation.
    pub tradeoff_prefers_propagation: bool,
    /// Produced-error σ above this fraction of the signal's observed
    /// amplitude marks the LSB statistics as divergent (paper §4.2).
    pub divergence_ratio: f64,
    /// Produced `|e|max` above this fraction of the signal's amplitude
    /// also marks divergence — catching transient decorrelation glitches
    /// (strobe slips) whose σ stays deceptively small.
    pub divergence_max_ratio: f64,
    /// Clamp for decided LSB positions (floor).
    pub min_lsb: i32,
    /// Clamp for decided LSB positions (ceiling).
    pub max_lsb: i32,
    /// Maximum refinement iterations per phase before giving up.
    pub max_iterations: usize,
    /// Overflow mode given to signals the rules leave non-saturated.
    /// The paper uses error-typed during verification and wrap-around in
    /// hardware; [`OverflowMode::Error`] keeps verification observable.
    pub nonsaturated_mode: OverflowMode,
    /// Rounding mode for decided types. [`RoundingMode::Floor`] is cheaper
    /// hardware but shifts the error mean by half an LSB (paper §5.2).
    pub rounding: RoundingMode,
    /// Automatically insert `range()` annotations on exploded feedback
    /// signals (iteration 2 of the paper's Table 1, done by hand there).
    pub auto_range: bool,
    /// Fractional widening applied to the statistic range when deriving an
    /// automatic `range()` annotation (0.25 = 25 % margin on both sides).
    pub auto_range_margin: f64,
    /// Automatically insert `error()` annotations on LSB-divergent
    /// feedback signals.
    pub auto_error: bool,
    /// LSB position used for an automatic `error()` annotation when no
    /// non-divergent σ consensus exists yet.
    pub fallback_error_lsb: i32,
    /// Decide unsigned (`ns`) types for signals whose observed and
    /// propagated ranges never go negative, saving the sign bit (the
    /// paper's `vtype`). Off by default: the paper's tables use two's
    /// complement throughout.
    pub allow_unsigned: bool,
    /// When set, recommend floor rounding (cheaper hardware) for signals
    /// whose floor-induced mean shift `2^(LSB-1)` stays below this
    /// fraction of their error σ; otherwise keep round-off (paper §5.2:
    /// "if such a shift is unacceptable the signal must stay
    /// round-typed").
    pub floor_if_shift_below: Option<f64>,
    /// Floor for the LSB of *exact* signals (zero error statistics, e.g.
    /// constant coefficients): a literal like `-0.11` is dyadic only at
    /// ~2^-56, which is not a sensible coefficient wordlength. Exact
    /// signals never get an LSB below this floor.
    pub exact_lsb_floor: i32,
}

impl Default for RefinePolicy {
    fn default() -> Self {
        RefinePolicy {
            k_lsb: 1.0,
            pessimism_gap: 5,
            explosion_msb: 24,
            explosion_gap: 8,
            saturation_margin: 0,
            tradeoff_prefers_propagation: true,
            divergence_ratio: 0.25,
            divergence_max_ratio: 0.5,
            min_lsb: -48,
            max_lsb: 16,
            max_iterations: 8,
            nonsaturated_mode: OverflowMode::Error,
            rounding: RoundingMode::Round,
            auto_range: true,
            auto_range_margin: 0.25,
            auto_error: true,
            fallback_error_lsb: -10,
            allow_unsigned: false,
            floor_if_shift_below: None,
            exact_lsb_floor: -16,
        }
    }
}

impl RefinePolicy {
    /// Sets the LSB rule constant `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive and finite.
    pub fn with_k_lsb(mut self, k: f64) -> Self {
        assert!(k > 0.0 && k.is_finite(), "k_lsb must be positive, got {k}");
        self.k_lsb = k;
        self
    }

    /// Sets the per-phase iteration budget.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the rounding mode for decided types.
    pub fn with_rounding(mut self, r: RoundingMode) -> Self {
        self.rounding = r;
        self
    }

    /// Sets the overflow mode used for non-saturated decided types.
    pub fn with_nonsaturated_mode(mut self, m: OverflowMode) -> Self {
        self.nonsaturated_mode = m;
        self
    }

    /// Enables unsigned (`ns`) type decisions for non-negative signals.
    pub fn with_unsigned(mut self) -> Self {
        self.allow_unsigned = true;
        self
    }

    /// Recommends floor rounding where the mean shift stays below
    /// `fraction`·σ.
    pub fn with_floor_below(mut self, fraction: f64) -> Self {
        assert!(
            fraction >= 0.0 && fraction.is_finite(),
            "invalid fraction {fraction}"
        );
        self.floor_if_shift_below = Some(fraction);
        self
    }

    /// Disables the automatic `range()` / `error()` interventions (the
    /// flow then only reports the problems, as a designer-in-the-loop
    /// tool).
    pub fn manual_interventions(mut self) -> Self {
        self.auto_range = false;
        self.auto_error = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = RefinePolicy::default();
        assert_eq!(p.k_lsb, 1.0);
        assert!(p.auto_range);
        assert!(p.auto_error);
        assert_eq!(p.rounding, RoundingMode::Round);
        assert_eq!(p.nonsaturated_mode, OverflowMode::Error);
        assert!(p.min_lsb < p.max_lsb);
    }

    #[test]
    fn builders_chain() {
        let p = RefinePolicy::default()
            .with_k_lsb(1.0)
            .with_max_iterations(3)
            .with_rounding(RoundingMode::Floor)
            .with_nonsaturated_mode(OverflowMode::Wrap)
            .manual_interventions();
        assert_eq!(p.k_lsb, 1.0);
        assert_eq!(p.max_iterations, 3);
        assert_eq!(p.rounding, RoundingMode::Floor);
        assert_eq!(p.nonsaturated_mode, OverflowMode::Wrap);
        assert!(!p.auto_range);
        assert!(!p.auto_error);
    }

    #[test]
    #[should_panic(expected = "k_lsb must be positive")]
    fn k_lsb_validated() {
        let _ = RefinePolicy::default().with_k_lsb(0.0);
    }
}
