//! Serializable refinement-job specifications.
//!
//! A [`JobSpec`] is the complete wire form of one refinement job as
//! submitted to the job server: which tenant owns it, which design to
//! build ([`DesignSpec`] resolved through the server's builder
//! registry), which scenarios to sweep, and how to drive the flow
//! ([`FlowSpec`]: backend, cache, shard count, budgets, retry
//! attempts). The spec is plain data — the same spec always
//! reconstructs the same [`RefinementFlow`] configuration, which is
//! what makes crash recovery bit-identical: a recovered job re-runs
//! from its journaled spec, not from in-memory state.

use std::time::Duration;

use fixref_obs::json::escape;
use fixref_obs::Json;
use fixref_sim::spec::{scenario_set_from_value, scenario_set_to_json};
use fixref_sim::{DesignSpec, ScenarioSet, SpecError};

use crate::flow::{RefinementFlow, RunBudget, SimBackend};

/// How to drive the refinement flow for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Evaluation backend name: `"interpreted"`, `"compiled"` or
    /// `"batched"`.
    pub backend: String,
    /// Whether to enable the cross-iteration evaluation cache.
    pub cache: bool,
    /// Shard count for swept runs; `0` runs the sequential flow over
    /// the first scenario only.
    pub shards: usize,
    /// Simulation budget (`None` = unbounded).
    pub max_simulations: Option<u64>,
    /// Wall-clock budget in milliseconds (`None` = unbounded).
    pub wall_ms: Option<u64>,
    /// Worker attempts per shard before the job's fault policy gives
    /// up (1 = no retries).
    pub max_attempts: usize,
    /// Signals to force onto the saturation path before the flow runs
    /// (the paper's knowledge-based hints, e.g. the timing loop's
    /// feedback signals). Unknown names are rejected at job start.
    pub force_saturate: Vec<String>,
}

impl Default for FlowSpec {
    fn default() -> Self {
        FlowSpec {
            backend: "interpreted".into(),
            cache: false,
            shards: 0,
            max_simulations: None,
            wall_ms: None,
            max_attempts: 1,
            force_saturate: Vec::new(),
        }
    }
}

impl FlowSpec {
    /// The parsed [`SimBackend`] this spec names.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for an unknown backend name.
    pub fn sim_backend(&self) -> Result<SimBackend, SpecError> {
        match self.backend.as_str() {
            "interpreted" => Ok(SimBackend::Interpreted),
            "compiled" => Ok(SimBackend::Compiled),
            "batched" => Ok(SimBackend::Batched),
            other => Err(SpecError::new(format!(
                "flow spec: unknown backend {other:?} (expected interpreted, compiled or batched)"
            ))),
        }
    }

    /// Applies the spec to a freshly constructed flow: backend and run
    /// budget. The `cache` flag is left to the caller (sequential runs
    /// enable it on the flow, swept runs on the sweep driver), as are
    /// shard count and retry attempts.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for an unknown backend name.
    pub fn configure(&self, flow: &mut RefinementFlow) -> Result<(), SpecError> {
        flow.set_backend(self.sim_backend()?);
        let mut budget = RunBudget::default();
        if let Some(max) = self.max_simulations {
            budget = RunBudget::simulations(max);
        }
        if let Some(ms) = self.wall_ms {
            budget.wall = Some(Duration::from_millis(ms));
        }
        if budget.wall.is_some() || budget.max_simulations.is_some() {
            flow.set_budget(budget);
        }
        Ok(())
    }

    fn to_json(&self) -> String {
        let max_sims = self
            .max_simulations
            .map_or("null".into(), |v| v.to_string());
        let wall = self.wall_ms.map_or("null".into(), |v| v.to_string());
        let saturate: Vec<String> = self
            .force_saturate
            .iter()
            .map(|n| format!(r#""{}""#, escape(n)))
            .collect();
        format!(
            r#"{{"backend":"{}","cache":{},"shards":{},"max_simulations":{},"wall_ms":{},"max_attempts":{},"force_saturate":[{}]}}"#,
            escape(&self.backend),
            self.cache,
            self.shards,
            max_sims,
            wall,
            self.max_attempts,
            saturate.join(",")
        )
    }

    fn from_value(v: &Json) -> Result<FlowSpec, SpecError> {
        let defaults = FlowSpec::default();
        let backend = match v.get("backend") {
            None | Some(Json::Null) => defaults.backend,
            Some(j) => j
                .as_str()
                .ok_or_else(|| SpecError::new("flow spec: \"backend\" is not a string"))?
                .to_string(),
        };
        let cache = match v.get("cache") {
            None | Some(Json::Null) => defaults.cache,
            Some(j) => j
                .as_bool()
                .ok_or_else(|| SpecError::new("flow spec: \"cache\" is not a boolean"))?,
        };
        let uint = |name: &str, default: u64| -> Result<u64, SpecError> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(default),
                Some(j) => j
                    .as_u64()
                    .ok_or_else(|| SpecError::new(format!("flow spec: {name:?} is not a number"))),
            }
        };
        let opt_uint = |name: &str| -> Result<Option<u64>, SpecError> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| SpecError::new(format!("flow spec: {name:?} is not a number"))),
            }
        };
        let force_saturate = match v.get("force_saturate") {
            None | Some(Json::Null) => Vec::new(),
            Some(j) => j
                .as_arr()
                .ok_or_else(|| SpecError::new("flow spec: \"force_saturate\" is not an array"))?
                .iter()
                .map(|n| {
                    n.as_str().map(str::to_string).ok_or_else(|| {
                        SpecError::new("flow spec: \"force_saturate\" entries must be strings")
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let spec = FlowSpec {
            backend,
            cache,
            shards: uint("shards", defaults.shards as u64)? as usize,
            max_simulations: opt_uint("max_simulations")?,
            wall_ms: opt_uint("wall_ms")?,
            max_attempts: uint("max_attempts", defaults.max_attempts as u64)?.max(1) as usize,
            force_saturate,
        };
        spec.sim_backend()?; // validate eagerly: reject at admission, not mid-run
        Ok(spec)
    }
}

/// One refinement job, in serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Owning tenant (fair-share scheduling key).
    pub tenant: String,
    /// Which design to build.
    pub design: DesignSpec,
    /// Scenario set to sweep (or whose first scenario to run
    /// sequentially when `flow.shards == 0`).
    pub scenarios: ScenarioSet,
    /// Flow configuration.
    pub flow: FlowSpec,
}

impl JobSpec {
    /// A job for `tenant` over `design` and `scenarios` with default
    /// flow settings.
    pub fn new(tenant: impl Into<String>, design: DesignSpec, scenarios: ScenarioSet) -> Self {
        JobSpec {
            tenant: tenant.into(),
            design,
            scenarios,
            flow: FlowSpec::default(),
        }
    }

    /// Replaces the flow configuration.
    pub fn with_flow(mut self, flow: FlowSpec) -> Self {
        self.flow = flow;
        self
    }

    /// Serializes the job as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"tenant":"{}","design":{},"scenarios":{},"flow":{}}}"#,
            escape(&self.tenant),
            self.design.to_json(),
            scenario_set_to_json(&self.scenarios),
            self.flow.to_json()
        )
    }

    /// Decodes a job from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the missing or mistyped member. Backend
    /// names are validated here so a bad spec is rejected at admission.
    pub fn from_value(v: &Json) -> Result<JobSpec, SpecError> {
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("job spec: missing or mistyped \"tenant\""))?
            .to_string();
        if tenant.is_empty() {
            return Err(SpecError::new("job spec: \"tenant\" must be non-empty"));
        }
        let design = DesignSpec::from_value(
            v.get("design")
                .ok_or_else(|| SpecError::new("job spec: missing \"design\""))?,
        )?;
        let scenarios = scenario_set_from_value(
            v.get("scenarios")
                .ok_or_else(|| SpecError::new("job spec: missing \"scenarios\""))?,
        )?;
        if scenarios.is_empty() {
            return Err(SpecError::new("job spec: \"scenarios\" must be non-empty"));
        }
        let flow = match v.get("flow") {
            None | Some(Json::Null) => FlowSpec::default(),
            Some(j) => FlowSpec::from_value(j)?,
        };
        Ok(JobSpec {
            tenant,
            design,
            scenarios,
            flow,
        })
    }

    /// Decodes a job from its JSON text form.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on malformed JSON or missing members.
    pub fn from_json(text: &str) -> Result<JobSpec, SpecError> {
        let v = Json::parse(text).map_err(|e| SpecError::new(format!("job spec: {e}")))?;
        JobSpec::from_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec::new(
            "acme",
            DesignSpec::new("lms")
                .with_input_dtype("<7,5,tc,st,rd>")
                .with_param("mu", 0.05),
            ScenarioSet::grid(&[1, 2], &[28.0], &[], &[400]),
        )
        .with_flow(FlowSpec {
            backend: "compiled".into(),
            cache: true,
            shards: 2,
            max_simulations: Some(12),
            wall_ms: Some(60_000),
            max_attempts: 3,
            force_saturate: vec!["terr".into(), "lp".into()],
        })
    }

    #[test]
    fn job_specs_round_trip() {
        let spec = sample();
        let back = JobSpec::from_json(&spec.to_json()).expect("parses");
        assert_eq!(back, spec);

        // Defaults kick in for an absent flow object.
        let bare = JobSpec::new(
            "t",
            DesignSpec::new("timing"),
            ScenarioSet::single(7, 20.0, 100),
        );
        let back = JobSpec::from_json(&bare.to_json()).expect("parses");
        assert_eq!(back, bare);
        assert_eq!(back.flow, FlowSpec::default());
    }

    #[test]
    fn malformed_job_specs_are_rejected_at_parse_time() {
        assert!(JobSpec::from_json("[]").is_err());
        assert!(
            JobSpec::from_json(r#"{"tenant":"","design":{"kind":"lms"},"scenarios":[]}"#).is_err()
        );
        let no_scenarios = r#"{"tenant":"t","design":{"kind":"lms"},"scenarios":[]}"#;
        assert!(JobSpec::from_json(no_scenarios).is_err());
        let bad_backend = r#"{"tenant":"t","design":{"kind":"lms"},
            "scenarios":[{"seed":1,"snr_db":28,"channel_taps":[],"samples":4}],
            "flow":{"backend":"gpu"}}"#;
        let err = JobSpec::from_json(bad_backend).expect_err("unknown backend");
        assert!(err.to_string().contains("backend"), "{err}");
    }

    #[test]
    fn flow_spec_configures_a_flow() {
        use crate::policy::RefinePolicy;
        use fixref_sim::Design;

        let spec = sample();
        let d = Design::new();
        d.sig("x");
        let mut flow = RefinementFlow::new(d, RefinePolicy::default());
        spec.flow.configure(&mut flow).expect("valid backend");
        assert_eq!(flow.backend(), SimBackend::Compiled);

        let bad = FlowSpec {
            backend: "quantum".into(),
            ..FlowSpec::default()
        };
        assert!(bad.sim_backend().is_err());
    }

    #[test]
    fn max_attempts_is_clamped_to_at_least_one() {
        let text = r#"{"tenant":"t","design":{"kind":"lms"},
            "scenarios":[{"seed":1,"snr_db":28,"channel_taps":[],"samples":4}],
            "flow":{"max_attempts":0}}"#;
        let spec = JobSpec::from_json(text).expect("parses");
        assert_eq!(spec.flow.max_attempts, 1);
    }
}
