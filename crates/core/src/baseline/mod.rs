//! Baseline quantization strategies the paper positions itself against.
//!
//! * [`sim_search`] — the pure *simulation-based* approach of Sung & Kum
//!   \[1\]: heuristic per-signal wordlength search against a system-level
//!   quality criterion, re-simulating for every probe. Precise, but "can
//!   lead to long simulations in the case of slow convergence".
//! * [`analytic`] — the pure *analytical* approach of Willems et al. \[3\]:
//!   worst-case range and error propagation over the signal-flow graph.
//!   Fast, but "a conservative approach which leads to overestimation of
//!   signal wordlengths".
//!
//! Both operate on the same [`fixref_sim::Design`] abstractions as the
//! hybrid flow so the comparison in [`crate::compare`] is apples-to-apples.

pub mod analytic;
pub mod sim_search;

pub use analytic::{analytic_refine, AnalyticOptions, AnalyticOutcome};
pub use sim_search::{
    sim_search_refine, sim_search_refine_swept, ShardEval, SimSearchOptions, SimSearchOutcome,
};
