//! Pure analytical wordlength derivation (Willems et al. \[3\]).
//!
//! The second reference approach: derive everything from the signal-flow
//! graph by worst-case propagation, with no reliance on stimuli. MSBs come
//! from interval fixpoint ranges; LSBs from a worst-case error-bound
//! propagation that charges every quantizer half an LSB and accumulates
//! absolutely through every operator. "This method yields results very
//! fast, but it is a conservative approach which leads to overestimation
//! of signal wordlengths" — observable here as larger decided wordlengths
//! than the hybrid flow on the same designs.

use std::collections::HashMap;

use fixref_fixed::{msb_for_range, DType, Interval, OverflowMode, RoundingMode, Signedness};
use fixref_sim::analyze::{analyze_ranges, AnalyzeOptions};
use fixref_sim::{Graph, NodeId, Op, SignalId};

/// Options for [`analytic_refine`].
#[derive(Debug, Clone)]
pub struct AnalyticOptions {
    /// Finest uniform fraction the LSB search will consider.
    pub max_fraction: i32,
    /// Error-propagation fixpoint passes before declaring divergence.
    pub error_passes: usize,
    /// Overflow mode of the decided types (the analytical method proves
    /// no overflow, so wrap is safe; error keeps verification observable).
    pub overflow: OverflowMode,
}

impl Default for AnalyticOptions {
    fn default() -> Self {
        AnalyticOptions {
            max_fraction: 31,
            error_passes: 128,
            overflow: OverflowMode::Error,
        }
    }
}

/// The result of an analytical derivation.
#[derive(Debug, Clone)]
pub struct AnalyticOutcome {
    /// Decided MSB per signal (worst case).
    pub msb: HashMap<SignalId, i32>,
    /// Signals whose range exploded — they need a declared `range()`
    /// before the analytical method can type them at all.
    pub needs_annotation: Vec<SignalId>,
    /// The uniform fractional wordlength satisfying the error budget, if
    /// one at most [`AnalyticOptions::max_fraction`] exists.
    pub uniform_fraction: Option<i32>,
    /// The decided types (signals with both an MSB and the uniform LSB).
    pub types: Vec<(SignalId, DType)>,
    /// Worst-case output error bound at the decided fraction.
    pub output_error_bound: Option<f64>,
}

/// Derives worst-case types from the signal-flow graph alone.
///
/// `seeds` declares input/annotated ranges (the analytical method cannot
/// run without input ranges); `outputs` are the signals whose worst-case
/// error must stay within `error_budget`.
pub fn analytic_refine(
    graph: &Graph,
    seeds: &HashMap<SignalId, Interval>,
    outputs: &[SignalId],
    error_budget: f64,
    options: &AnalyticOptions,
) -> AnalyticOutcome {
    // MSB side: interval fixpoint over the graph.
    let analysis = analyze_ranges(graph, seeds, &AnalyzeOptions::default());
    let mut msb = HashMap::new();
    let mut needs_annotation = Vec::new();
    let mut signals: Vec<SignalId> = graph.defined_signals().collect();
    signals.sort();
    let defined = signals.clone();
    for &sig in &defined {
        match analysis.range_of(sig) {
            Some(r) if r.is_bounded() => {
                if let Some(m) = msb_for_range(r.lo, r.hi, Signedness::TwosComplement) {
                    msb.insert(sig, m);
                }
            }
            _ => needs_annotation.push(sig),
        }
    }
    // Seeded inputs also get (worst-case) MSBs.
    for (&sig, r) in seeds {
        if let Some(m) = msb_for_range(r.lo, r.hi, Signedness::TwosComplement) {
            msb.entry(sig).or_insert(m);
        }
    }

    // LSB side: smallest uniform fraction whose worst-case accumulated
    // error stays inside the budget at every output. Seeded inputs are
    // quantized too, so they are charged their own quantizer.
    for &sig in seeds.keys() {
        if !signals.contains(&sig) {
            signals.push(sig);
        }
    }
    signals.sort();
    let ranges = analysis.ranges().clone();
    let mut uniform_fraction = None;
    let mut output_error_bound = None;
    let pinned: Vec<SignalId> = seeds.keys().copied().collect();
    for f in 0..=options.max_fraction {
        if let Some(bound) =
            worst_case_error(graph, &ranges, &signals, &pinned, f, options.error_passes)
        {
            let worst = outputs
                .iter()
                .map(|s| bound.get(s).copied().unwrap_or(f64::INFINITY))
                .fold(0.0f64, f64::max);
            if worst <= error_budget {
                uniform_fraction = Some(f);
                output_error_bound = Some(worst);
                break;
            }
        }
    }

    let types = match uniform_fraction {
        Some(f) => msb
            .iter()
            .filter_map(|(&sig, &m)| {
                DType::from_positions(
                    format!("s{}_an", sig.raw()),
                    m,
                    (-f).min(m),
                    Signedness::TwosComplement,
                    options.overflow,
                    RoundingMode::Round,
                )
                .ok()
                .map(|t| (sig, t))
            })
            .collect(),
        None => Vec::new(),
    };

    AnalyticOutcome {
        msb,
        needs_annotation,
        uniform_fraction,
        types,
        output_error_bound,
    }
}

/// Worst-case error-bound fixpoint: every signal quantized at fraction `f`
/// contributes `2^-f / 2`, operators accumulate absolutely using the value
/// ranges for multiplicative gains. Signals in `pinned` (seeded /
/// designer-annotated, e.g. adaptive feedback coefficients) contribute
/// only their own quantizer — the analytical analogue of the hybrid
/// flow's `error()` annotation. Returns `None` when the bound diverges
/// (non-contracting feedback without an annotation) — the honest answer
/// of a worst-case method.
fn worst_case_error(
    graph: &Graph,
    ranges: &HashMap<SignalId, Interval>,
    signals: &[SignalId],
    pinned: &[SignalId],
    fraction: i32,
    passes: usize,
) -> Option<HashMap<SignalId, f64>> {
    let q_half = (-(fraction as f64)).exp2() / 2.0;
    let mut err: HashMap<SignalId, f64> = HashMap::new();
    for &sig in pinned {
        err.insert(sig, q_half);
    }
    for _ in 0..passes {
        let mut changed = false;
        for &sig in signals {
            if pinned.contains(&sig) {
                continue;
            }
            let mut bound = 0.0f64;
            for &def in graph.defs(sig) {
                bound = bound.max(node_error(graph, def, ranges, &err, q_half));
            }
            bound += q_half; // this signal's own quantizer
            let old = err.get(&sig).copied().unwrap_or(0.0);
            if bound > old * (1.0 + 1e-12) + 1e-30 {
                err.insert(sig, bound);
                changed = true;
            }
        }
        if !changed {
            return Some(err);
        }
        if err.values().any(|e| !e.is_finite() || *e > 1e12) {
            return None;
        }
    }
    None
}

fn node_error(
    graph: &Graph,
    root: NodeId,
    ranges: &HashMap<SignalId, Interval>,
    err: &HashMap<SignalId, f64>,
    q_half: f64,
) -> f64 {
    // Memoized post-order over this definition.
    let mut memo: HashMap<NodeId, (f64, f64)> = HashMap::new(); // (max_abs value, error)
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if memo.contains_key(&id) {
            continue;
        }
        let node = graph.node(id);
        if !expanded && !node.args.is_empty() {
            stack.push((id, true));
            for &a in &node.args {
                stack.push((a, false));
            }
            continue;
        }
        let arg = |i: usize| memo[&node.args[i]];
        let entry = match &node.op {
            Op::Const(c) => (c.abs(), 0.0),
            Op::Read(s) => (
                ranges.get(s).map(|r| r.max_abs()).unwrap_or(0.0),
                err.get(s).copied().unwrap_or(0.0),
            ),
            Op::Add | Op::Sub => {
                let (a, ea) = arg(0);
                let (b, eb) = arg(1);
                (a + b, ea + eb)
            }
            Op::Mul => {
                let (a, ea) = arg(0);
                let (b, eb) = arg(1);
                // `inf * 0` is NaN in IEEE; here an exact (zero-error)
                // factor contributes zero error regardless of the other
                // factor's range, so NaN resolves to 0.
                let t = |x: f64, y: f64| {
                    let p = x * y;
                    if p.is_nan() {
                        0.0
                    } else {
                        p
                    }
                };
                (t(a, b), t(a, eb) + t(b, ea) + t(ea, eb))
            }
            Op::Div => {
                // Worst case unless the divisor range excludes zero widely;
                // stay conservative.
                let (a, ea) = arg(0);
                let (_, eb) = arg(1);
                if eb > 0.0 {
                    (f64::INFINITY, f64::INFINITY)
                } else {
                    (a, ea)
                }
            }
            Op::Neg | Op::Abs => arg(0),
            Op::Min | Op::Max => {
                let (a, ea) = arg(0);
                let (b, eb) = arg(1);
                (a.max(b), ea.max(eb))
            }
            Op::Cast(_) => {
                let (a, ea) = arg(0);
                (a, ea + q_half)
            }
            Op::Select => {
                let (a, ea) = arg(1);
                let (b, eb) = arg(2);
                (a.max(b), ea.max(eb))
            }
        };
        memo.insert(id, entry);
    }
    memo[&root].1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> SignalId {
        SignalId::from_raw(i)
    }

    /// y = 0.5*x + 0.25: straight line, everything derivable.
    fn straight_line() -> Graph {
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let c = g.add(Op::Const(0.5), vec![]);
        let k = g.add(Op::Const(0.25), vec![]);
        let m = g.add(Op::Mul, vec![x, c]);
        let s = g.add(Op::Add, vec![m, k]);
        g.record_def(sid(1), s);
        g
    }

    #[test]
    fn straight_line_types_fully() {
        let g = straight_line();
        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        let out = analytic_refine(&g, &seeds, &[sid(1)], 1e-3, &AnalyticOptions::default());
        assert!(out.needs_annotation.is_empty());
        // y in [-0.25, 0.75] -> msb 0; x in [-1, 1] -> msb 1 (1 is not
        // strictly below 2^0).
        assert_eq!(out.msb[&sid(1)], 0);
        assert_eq!(out.msb[&sid(0)], 1);
        let f = out.uniform_fraction.expect("budget reachable");
        // Error bound: x err = q/2 (input quantizer), y = 0.5*q/2 + q/2
        // = 0.75*2^-f <= 1e-3 -> f >= 10.
        assert!(f >= 10, "fraction {f}");
        assert!(out.output_error_bound.unwrap() <= 1e-3);
        assert_eq!(out.types.len(), 2);
    }

    #[test]
    fn tighter_budget_needs_more_bits() {
        let g = straight_line();
        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        let loose = analytic_refine(&g, &seeds, &[sid(1)], 1e-2, &AnalyticOptions::default());
        let tight = analytic_refine(&g, &seeds, &[sid(1)], 1e-5, &AnalyticOptions::default());
        assert!(tight.uniform_fraction.unwrap() > loose.uniform_fraction.unwrap());
    }

    #[test]
    fn unbounded_feedback_needs_annotation() {
        // acc = acc + x.
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(0), s);
        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let out = analytic_refine(&g, &seeds, &[sid(0)], 1e-3, &AnalyticOptions::default());
        assert_eq!(out.needs_annotation, vec![sid(0)]);
        assert!(!out.msb.contains_key(&sid(0)));
    }

    #[test]
    fn contracting_feedback_error_converges() {
        // acc = 0.5*acc + x: error fixpoint e = 0.5 e + q/2 + q/2.
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let h = g.add(Op::Const(0.5), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let m = g.add(Op::Mul, vec![acc, h]);
        let s = g.add(Op::Add, vec![m, x]);
        g.record_def(sid(0), s);
        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let out = analytic_refine(&g, &seeds, &[sid(0)], 1e-3, &AnalyticOptions::default());
        assert!(out.uniform_fraction.is_some());
        assert!(out.output_error_bound.unwrap() <= 1e-3);
    }

    #[test]
    fn non_contracting_error_feedback_diverges_honestly() {
        // y = 1.5*y_prev + x through an unseeded intermediary: worst-case
        // LSB error diverges -> no uniform fraction, and the feedback MSB
        // needs an annotation.
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let k = g.add(Op::Const(1.5), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let m = g.add(Op::Mul, vec![acc, k]);
        let s = g.add(Op::Add, vec![m, x]);
        g.record_def(sid(0), s);
        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-0.1, 0.1));
        let out = analytic_refine(&g, &seeds, &[sid(0)], 1e-3, &AnalyticOptions::default());
        assert_eq!(out.needs_annotation, vec![sid(0)]);
        assert_eq!(out.uniform_fraction, None);
        assert!(out.types.is_empty());
    }

    #[test]
    fn seeding_feedback_pins_its_error_like_an_annotation() {
        // The same non-contracting loop, but with the feedback signal
        // seeded (the designer's annotation): its error contribution is
        // its own quantizer only, so the derivation completes.
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let k = g.add(Op::Const(1.5), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let m = g.add(Op::Mul, vec![acc, k]);
        let s = g.add(Op::Add, vec![m, x]);
        g.record_def(sid(0), s);
        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        seeds.insert(sid(1), Interval::new(-0.1, 0.1));
        let out = analytic_refine(&g, &seeds, &[sid(0)], 1e-3, &AnalyticOptions::default());
        assert!(out.uniform_fraction.is_some());
        assert!(!out.types.is_empty());
    }

    #[test]
    fn conservatism_versus_true_error() {
        // The worst-case bound must be >= any achievable error, by a
        // visible margin on a 3-stage chain.
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let mut cur = x;
        for i in 1..=3u32 {
            let c = g.add(Op::Const(0.9), vec![]);
            let m = g.add(Op::Mul, vec![cur, c]);
            g.record_def(sid(i), m);
            cur = g.add(Op::Read(sid(i)), vec![]);
        }
        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        let out = analytic_refine(&g, &seeds, &[sid(3)], 1e-3, &AnalyticOptions::default());
        let f = out.uniform_fraction.unwrap();
        // A single quantizer at that fraction gives error 2^-f/2; the chain
        // bound must exceed that (accumulation).
        let single = (-(f as f64)).exp2() / 2.0;
        assert!(out.output_error_bound.unwrap() > single * 2.0);
    }
}
