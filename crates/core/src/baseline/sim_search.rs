//! Pure simulation-based wordlength optimization (Sung & Kum \[1\]).
//!
//! The reference approach the paper improves on: wordlengths are chosen
//! heuristically while observing a system-level error criterion, and the
//! whole system is re-simulated for every probe. MSBs come from observed
//! ranges plus a safety margin (no guarantee for untested stimuli); LSBs
//! come from a per-signal sequential search that coarsens each signal until
//! the quality constraint breaks, then backs off one bit.
//!
//! The telling cost metric is `probes`: the number of full simulations
//! needed, which grows with the signal count — the "long simulations in
//! the case of slow convergence" of the paper's introduction.

use fixref_fixed::{msb_for_range, DType, OverflowMode, RoundingMode, Signedness};
use fixref_sim::{run_shards, Design, Scenario, ScenarioSet, SignalId};

/// Options for [`sim_search_refine`].
#[derive(Debug, Clone)]
pub struct SimSearchOptions {
    /// Safety bits added to every observed MSB (the heuristic guard
    /// against untested stimuli).
    pub msb_margin: i32,
    /// The finest LSB the search starts from.
    pub start_lsb: i32,
    /// The coarsest LSB the search will try.
    pub max_lsb: i32,
    /// Overflow mode of the probe types.
    pub overflow: OverflowMode,
}

impl Default for SimSearchOptions {
    fn default() -> Self {
        SimSearchOptions {
            start_lsb: -16,
            max_lsb: 0,
            msb_margin: 1,
            overflow: OverflowMode::Saturate,
        }
    }
}

/// The result of a simulation-based search.
#[derive(Debug, Clone)]
pub struct SimSearchOutcome {
    /// The decided types.
    pub types: Vec<(SignalId, DType)>,
    /// Number of full simulations performed — the cost of this strategy.
    pub probes: usize,
    /// Quality of the final configuration (same units as `target`).
    pub final_quality: f64,
    /// Signals the search could not type (no observed range).
    pub skipped: Vec<SignalId>,
}

/// Runs the Sung-&-Kum-style search.
///
/// `eval` must run the stimulus on the design and return the quality
/// metric (higher = better, e.g. output SQNR in dB); `target` is the
/// constraint the final configuration must satisfy. `signals` lists the
/// signals to refine, in search order.
///
/// The search holds every signal at `start_lsb` precision, then coarsens
/// one signal at a time until quality would drop below `target`. Types are
/// applied to the design as they are decided and left in place.
pub fn sim_search_refine(
    design: &Design,
    signals: &[SignalId],
    eval: &mut dyn FnMut(&Design) -> f64,
    target: f64,
    options: &SimSearchOptions,
) -> SimSearchOutcome {
    search_core(
        design,
        signals,
        &mut |design: &Design| {
            design.reset_stats();
            design.reset_state();
            eval(design)
        },
        target,
        options,
    )
}

/// One shard of a swept wordlength probe: a freshly built design plus the
/// evaluator that simulates its scenario on it and returns the quality
/// metric (higher = better).
pub struct ShardEval {
    /// The shard's private design — must declare the master's signals.
    pub design: Design,
    /// Simulates the scenario and returns the quality metric.
    pub eval: Box<dyn FnMut(&Design) -> f64>,
}

/// The Sung-&-Kum-style search with every wordlength probe evaluated
/// across a scenario sweep: each probe builds one fresh design per
/// scenario on the worker pool, applies the candidate types by name, and
/// scores the configuration by its **worst** (minimum) quality over all
/// scenarios — a multi-condition robustness criterion the sequential
/// search cannot express. Observed ranges are merged over all scenarios
/// before MSBs are chosen. With a single scenario whose evaluator matches
/// the sequential `eval`, the outcome is identical to
/// [`sim_search_refine`].
///
/// # Panics
///
/// Panics if `builder`'s shard designs do not declare the master
/// design's signals (a builder contract violation).
pub fn sim_search_refine_swept(
    design: &Design,
    signals: &[SignalId],
    scenarios: &ScenarioSet,
    workers: usize,
    builder: &(dyn Fn(&Scenario) -> ShardEval + Send + Sync),
    target: f64,
    options: &SimSearchOptions,
) -> SimSearchOutcome {
    search_core(
        design,
        signals,
        &mut |design: &Design| {
            design.reset_stats();
            design.reset_state();
            let annotations = design.annotations();
            let results = run_shards(scenarios.as_slice(), workers, |scenario| {
                let ShardEval {
                    design: shard,
                    mut eval,
                } = builder(scenario);
                shard
                    .apply_annotations(&annotations)
                    .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
                let quality = eval(&shard);
                (quality, shard.export_stats())
            });
            let mut quality = f64::INFINITY;
            for (q, stats) in results {
                design
                    .absorb_stats(&stats)
                    .unwrap_or_else(|e| panic!("shard builder contract violation: {e}"));
                quality = quality.min(q);
            }
            if scenarios.is_empty() {
                f64::NEG_INFINITY
            } else {
                quality
            }
        },
        target,
        options,
    )
}

fn search_core(
    design: &Design,
    signals: &[SignalId],
    probe: &mut dyn FnMut(&Design) -> f64,
    target: f64,
    options: &SimSearchOptions,
) -> SimSearchOutcome {
    let mut probes = 0;
    let mut run = |design: &Design| -> f64 {
        probes += 1;
        probe(design)
    };

    // A probe type, or `None` when the positions are unrepresentable
    // (e.g. an astronomical observed range would need more than the
    // supported 63 bits) — such candidates are skipped, never panicked on.
    let mk = |name: &str, msb: i32, lsb: i32, overflow: OverflowMode| {
        DType::from_positions(
            format!("{name}_ss"),
            msb,
            lsb.min(msb),
            Signedness::TwosComplement,
            overflow,
            RoundingMode::Round,
        )
        .ok()
    };

    // Probe 1: monitored float run for observed ranges -> MSBs. Signals
    // with no observed range, or whose range cannot be held by any
    // representable type at the starting precision, are skipped.
    let _ = run(design);
    let mut skipped = Vec::new();
    let mut plan: Vec<(SignalId, i32)> = Vec::new();
    for &id in signals {
        let r = design.report_by_id(id);
        let msb = r
            .stat
            .interval()
            .and_then(|i| msb_for_range(i.lo, i.hi, Signedness::TwosComplement))
            .map(|m| m + options.msb_margin)
            .filter(|&m| mk(&design.name_of(id), m, options.start_lsb, options.overflow).is_some());
        match msb {
            Some(m) => plan.push((id, m)),
            None => skipped.push(id),
        }
    }

    // Everything at the finest precision first.
    let mut lsbs: Vec<i32> = vec![options.start_lsb; plan.len()];
    for (i, &(id, msb)) in plan.iter().enumerate() {
        if let Some(t) = mk(&design.name_of(id), msb, lsbs[i], options.overflow) {
            design.set_dtype(id, Some(t));
        }
    }
    let baseline_quality = run(design);

    // Sequential coarsening, one signal at a time.
    for (i, &(id, msb)) in plan.iter().enumerate() {
        let mut best = lsbs[i];
        for lsb in (options.start_lsb + 1)..=options.max_lsb.min(msb) {
            let Some(t) = mk(&design.name_of(id), msb, lsb, options.overflow) else {
                continue;
            };
            design.set_dtype(id, Some(t));
            let q = run(design);
            if q < target {
                break;
            }
            best = lsb;
        }
        lsbs[i] = best;
        if let Some(t) = mk(&design.name_of(id), msb, best, options.overflow) {
            design.set_dtype(id, Some(t));
        }
    }

    let final_quality = run(design);
    let types = plan
        .iter()
        .enumerate()
        .filter_map(|(i, &(id, msb))| {
            mk(&design.name_of(id), msb, lsbs[i], options.overflow).map(|t| (id, t))
        })
        .collect();

    SimSearchOutcome {
        types,
        probes,
        final_quality: final_quality.max(baseline_quality.min(final_quality)),
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::SqnrMeter;
    use fixref_sim::SignalRef;

    /// A toy chain y = 0.75*x with a quality metric on y.
    fn toy() -> (Design, SignalId, SignalId) {
        let d = Design::new();
        let x = d.sig("x");
        let y = d.sig("y");
        x.range(-1.0, 1.0);
        (d.clone(), x.id(), y.id())
    }

    fn eval_factory(xid: SignalId, yid: SignalId) -> impl FnMut(&Design) -> f64 {
        move |d: &Design| {
            let xh = d.sig_handle(xid);
            let yh = d.sig_handle(yid);
            let mut m = SqnrMeter::new();
            for i in 0..400 {
                xh.set(((i as f64) * 0.1).sin() * 0.9);
                yh.set(xh.get() * 0.75);
                let v = yh.get();
                m.record(v.flt(), v.fix());
            }
            m.sqnr_db()
        }
    }

    #[test]
    fn search_meets_target_with_min_bits() {
        let (d, xid, yid) = toy();
        let mut eval = eval_factory(xid, yid);
        let out = sim_search_refine(
            &d,
            &[xid, yid],
            &mut eval,
            40.0,
            &SimSearchOptions::default(),
        );
        assert!(out.final_quality >= 40.0, "quality {}", out.final_quality);
        assert_eq!(out.types.len(), 2);
        assert!(out.skipped.is_empty());
        // The cost signature: many more probes than the hybrid's 2-3 runs.
        assert!(out.probes > 5, "probes {}", out.probes);
        // ~40 dB needs ~7 fractional bits; the search should not leave 16.
        for (_, t) in &out.types {
            assert!(t.f() < 16, "search failed to coarsen: {t}");
        }
    }

    #[test]
    fn unobserved_signals_are_skipped() {
        let d = Design::new();
        let x = d.sig("x");
        let dead = d.sig("dead");
        let mut eval = |d: &Design| {
            let xh = d.sig_handle(d.find("x").expect("declared"));
            for i in 0..10 {
                xh.set(i as f64 * 0.1);
            }
            100.0
        };
        let out = sim_search_refine(
            &d,
            &[x.id(), dead.id()],
            &mut eval,
            10.0,
            &SimSearchOptions::default(),
        );
        assert_eq!(out.skipped, vec![dead.id()]);
        assert_eq!(out.types.len(), 1);
    }

    #[test]
    fn astronomical_ranges_are_skipped_not_panicked_on() {
        // Regression: a signal whose observed range needs more than the
        // representable 63 bits used to blow up in `mk`'s `.expect`.
        let d = Design::new();
        let huge = d.sig("huge");
        let ok = d.sig("ok");
        let mut eval = |d: &Design| {
            let h = d.sig_handle(d.find("huge").expect("declared"));
            let o = d.sig_handle(d.find("ok").expect("declared"));
            for i in 0..50 {
                h.set(1.0e300 * (1.0 + i as f64));
                o.set((i as f64 * 0.2).sin());
            }
            1000.0
        };
        let out = sim_search_refine(
            &d,
            &[huge.id(), ok.id()],
            &mut eval,
            10.0,
            &SimSearchOptions::default(),
        );
        assert_eq!(out.skipped, vec![huge.id()]);
        assert_eq!(out.types.len(), 1);
        assert_eq!(out.types[0].0, ok.id());
    }

    #[test]
    fn swept_search_with_one_scenario_matches_sequential() {
        use fixref_sim::ScenarioSet;

        let (d, xid, yid) = toy();
        let mut eval = eval_factory(xid, yid);
        let seq = sim_search_refine(
            &d,
            &[xid, yid],
            &mut eval,
            40.0,
            &SimSearchOptions::default(),
        );

        let build = || {
            let d = Design::new();
            let x = d.sig("x");
            d.sig("y");
            x.range(-1.0, 1.0);
            d
        };
        let master = build();
        let (mx, my) = (
            master.find("x").expect("declared"),
            master.find("y").expect("declared"),
        );
        let swept = sim_search_refine_swept(
            &master,
            &[mx, my],
            &ScenarioSet::single(7, 28.0, 400),
            1,
            &move |_s| {
                let shard = build();
                let (xid, yid) = (
                    shard.find("x").expect("declared"),
                    shard.find("y").expect("declared"),
                );
                ShardEval {
                    design: shard,
                    eval: Box::new(eval_factory(xid, yid)),
                }
            },
            40.0,
            &SimSearchOptions::default(),
        );

        assert_eq!(seq.probes, swept.probes);
        assert_eq!(seq.final_quality, swept.final_quality);
        assert_eq!(seq.types.len(), swept.types.len());
        for ((ida, ta), (idb, tb)) in seq.types.iter().zip(&swept.types) {
            assert_eq!(d.name_of(*ida), master.name_of(*idb));
            assert_eq!(ta.to_string(), tb.to_string());
        }
    }

    #[test]
    fn swept_search_scores_the_worst_scenario() {
        use fixref_sim::ScenarioSet;

        // Scenario seed 1 sees a clean signal, seed 2 a much noisier one;
        // the search must budget bits for the noisy case.
        let build = || {
            let d = Design::new();
            let x = d.sig("x");
            d.sig("y");
            x.range(-1.0, 1.0);
            d
        };
        let master = build();
        let ids = [
            master.find("x").expect("declared"),
            master.find("y").expect("declared"),
        ];
        let quality_for = |seed: u64| if seed == 1 { 200.0 } else { 35.0 };
        let out = sim_search_refine_swept(
            &master,
            &ids,
            &ScenarioSet::grid(&[1, 2], &[20.0], &[], &[100]),
            2,
            &move |s| {
                let shard = build();
                let q = quality_for(s.seed);
                ShardEval {
                    design: shard,
                    eval: Box::new(move |d: &Design| {
                        let xh = d.sig_handle(d.find("x").expect("declared"));
                        let yh = d.sig_handle(d.find("y").expect("declared"));
                        for i in 0..100 {
                            xh.set((i as f64 * 0.1).sin());
                            yh.set(xh.get() * 0.75);
                        }
                        q
                    }),
                }
            },
            40.0,
            &SimSearchOptions::default(),
        );
        // The worst scenario (35 dB) never meets the 40 dB target, so the
        // search cannot coarsen anything past its first probe.
        assert!(out.final_quality <= 35.0 + 1e-9);
        for (_, t) in &out.types {
            assert_eq!(-t.lsb(), 16, "must stay at the finest LSB: {t}");
        }
    }

    #[test]
    fn msb_margin_adds_bits() {
        let d = Design::new();
        let x = d.sig("x");
        let mut eval = |d: &Design| {
            let xh = d.sig_handle(d.find("x").expect("declared"));
            for i in 0..100 {
                xh.set(((i as f64) * 0.37).sin()); // |x| <= 1 -> msb 0
            }
            1000.0 // always passes: search coarsens to max_lsb
        };
        let opts = SimSearchOptions {
            msb_margin: 2,
            ..SimSearchOptions::default()
        };
        let out = sim_search_refine(&d, &[x.id()], &mut eval, 10.0, &opts);
        assert_eq!(out.types[0].1.msb(), 2); // 0 + margin 2
    }
}
