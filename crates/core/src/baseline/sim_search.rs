//! Pure simulation-based wordlength optimization (Sung & Kum \[1\]).
//!
//! The reference approach the paper improves on: wordlengths are chosen
//! heuristically while observing a system-level error criterion, and the
//! whole system is re-simulated for every probe. MSBs come from observed
//! ranges plus a safety margin (no guarantee for untested stimuli); LSBs
//! come from a per-signal sequential search that coarsens each signal until
//! the quality constraint breaks, then backs off one bit.
//!
//! The telling cost metric is `probes`: the number of full simulations
//! needed, which grows with the signal count — the "long simulations in
//! the case of slow convergence" of the paper's introduction.

use fixref_fixed::{msb_for_range, DType, OverflowMode, RoundingMode, Signedness};
use fixref_sim::{Design, SignalId};

/// Options for [`sim_search_refine`].
#[derive(Debug, Clone)]
pub struct SimSearchOptions {
    /// Safety bits added to every observed MSB (the heuristic guard
    /// against untested stimuli).
    pub msb_margin: i32,
    /// The finest LSB the search starts from.
    pub start_lsb: i32,
    /// The coarsest LSB the search will try.
    pub max_lsb: i32,
    /// Overflow mode of the probe types.
    pub overflow: OverflowMode,
}

impl Default for SimSearchOptions {
    fn default() -> Self {
        SimSearchOptions {
            start_lsb: -16,
            max_lsb: 0,
            msb_margin: 1,
            overflow: OverflowMode::Saturate,
        }
    }
}

/// The result of a simulation-based search.
#[derive(Debug, Clone)]
pub struct SimSearchOutcome {
    /// The decided types.
    pub types: Vec<(SignalId, DType)>,
    /// Number of full simulations performed — the cost of this strategy.
    pub probes: usize,
    /// Quality of the final configuration (same units as `target`).
    pub final_quality: f64,
    /// Signals the search could not type (no observed range).
    pub skipped: Vec<SignalId>,
}

/// Runs the Sung-&-Kum-style search.
///
/// `eval` must run the stimulus on the design and return the quality
/// metric (higher = better, e.g. output SQNR in dB); `target` is the
/// constraint the final configuration must satisfy. `signals` lists the
/// signals to refine, in search order.
///
/// The search holds every signal at `start_lsb` precision, then coarsens
/// one signal at a time until quality would drop below `target`. Types are
/// applied to the design as they are decided and left in place.
pub fn sim_search_refine(
    design: &Design,
    signals: &[SignalId],
    eval: &mut dyn FnMut(&Design) -> f64,
    target: f64,
    options: &SimSearchOptions,
) -> SimSearchOutcome {
    let mut probes = 0;
    let mut run = |design: &Design| -> f64 {
        design.reset_stats();
        design.reset_state();
        probes += 1;
        eval(design)
    };

    // Probe 1: monitored float run for observed ranges -> MSBs.
    let _ = run(design);
    let mut skipped = Vec::new();
    let mut plan: Vec<(SignalId, i32)> = Vec::new();
    for &id in signals {
        let r = design.report_by_id(id);
        let msb = r
            .stat
            .interval()
            .and_then(|i| msb_for_range(i.lo, i.hi, Signedness::TwosComplement))
            .map(|m| m + options.msb_margin);
        match msb {
            Some(m) => plan.push((id, m)),
            None => skipped.push(id),
        }
    }

    let mk = |name: &str, msb: i32, lsb: i32, overflow: OverflowMode| {
        DType::from_positions(
            format!("{name}_ss"),
            msb,
            lsb.min(msb),
            Signedness::TwosComplement,
            overflow,
            RoundingMode::Round,
        )
        .expect("positions derived from valid ranges")
    };

    // Everything at the finest precision first.
    let mut lsbs: Vec<i32> = vec![options.start_lsb; plan.len()];
    for (i, &(id, msb)) in plan.iter().enumerate() {
        design.set_dtype(
            id,
            Some(mk(&design.name_of(id), msb, lsbs[i], options.overflow)),
        );
    }
    let baseline_quality = run(design);

    // Sequential coarsening, one signal at a time.
    for (i, &(id, msb)) in plan.iter().enumerate() {
        let mut best = lsbs[i];
        for lsb in (options.start_lsb + 1)..=options.max_lsb.min(msb) {
            design.set_dtype(
                id,
                Some(mk(&design.name_of(id), msb, lsb, options.overflow)),
            );
            let q = run(design);
            if q < target {
                break;
            }
            best = lsb;
        }
        lsbs[i] = best;
        design.set_dtype(
            id,
            Some(mk(&design.name_of(id), msb, best, options.overflow)),
        );
    }

    let final_quality = run(design);
    let types = plan
        .iter()
        .enumerate()
        .map(|(i, &(id, msb))| (id, mk(&design.name_of(id), msb, lsbs[i], options.overflow)))
        .collect();

    SimSearchOutcome {
        types,
        probes,
        final_quality: final_quality.max(baseline_quality.min(final_quality)),
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::SqnrMeter;
    use fixref_sim::SignalRef;

    /// A toy chain y = 0.75*x with a quality metric on y.
    fn toy() -> (Design, SignalId, SignalId) {
        let d = Design::new();
        let x = d.sig("x");
        let y = d.sig("y");
        x.range(-1.0, 1.0);
        (d.clone(), x.id(), y.id())
    }

    fn eval_factory(xid: SignalId, yid: SignalId) -> impl FnMut(&Design) -> f64 {
        move |d: &Design| {
            let xh = d.sig_handle(xid);
            let yh = d.sig_handle(yid);
            let mut m = SqnrMeter::new();
            for i in 0..400 {
                xh.set(((i as f64) * 0.1).sin() * 0.9);
                yh.set(xh.get() * 0.75);
                let v = yh.get();
                m.record(v.flt(), v.fix());
            }
            m.sqnr_db()
        }
    }

    #[test]
    fn search_meets_target_with_min_bits() {
        let (d, xid, yid) = toy();
        let mut eval = eval_factory(xid, yid);
        let out = sim_search_refine(
            &d,
            &[xid, yid],
            &mut eval,
            40.0,
            &SimSearchOptions::default(),
        );
        assert!(out.final_quality >= 40.0, "quality {}", out.final_quality);
        assert_eq!(out.types.len(), 2);
        assert!(out.skipped.is_empty());
        // The cost signature: many more probes than the hybrid's 2-3 runs.
        assert!(out.probes > 5, "probes {}", out.probes);
        // ~40 dB needs ~7 fractional bits; the search should not leave 16.
        for (_, t) in &out.types {
            assert!(t.f() < 16, "search failed to coarsen: {t}");
        }
    }

    #[test]
    fn unobserved_signals_are_skipped() {
        let d = Design::new();
        let x = d.sig("x");
        let dead = d.sig("dead");
        let mut eval = |d: &Design| {
            let xh = d.sig_handle(d.find("x").expect("declared"));
            for i in 0..10 {
                xh.set(i as f64 * 0.1);
            }
            100.0
        };
        let out = sim_search_refine(
            &d,
            &[x.id(), dead.id()],
            &mut eval,
            10.0,
            &SimSearchOptions::default(),
        );
        assert_eq!(out.skipped, vec![dead.id()]);
        assert_eq!(out.types.len(), 1);
    }

    #[test]
    fn msb_margin_adds_bits() {
        let d = Design::new();
        let x = d.sig("x");
        let mut eval = |d: &Design| {
            let xh = d.sig_handle(d.find("x").expect("declared"));
            for i in 0..100 {
                xh.set(((i as f64) * 0.37).sin()); // |x| <= 1 -> msb 0
            }
            1000.0 // always passes: search coarsens to max_lsb
        };
        let opts = SimSearchOptions {
            msb_margin: 2,
            ..SimSearchOptions::default()
        };
        let out = sim_search_refine(&d, &[x.id()], &mut eval, 10.0, &opts);
        assert_eq!(out.types[0].1.msb(), 2); // 0 + margin 2
    }
}
