//! The lint passes.
//!
//! Each pass is a pure function from a [`LintInput`] snapshot to a list
//! of diagnostics; [`Linter`] runs the configured set and assembles the
//! sorted [`LintReport`]. Passes iterate signals in id order and sort
//! every derived collection, so a report is a pure function of the
//! snapshot — bit-identical across runs, worker-pool shapes and
//! `FIXREF_TEST_SHARDS` values.

use fixref_fixed::{OverflowMode, RoundingMode};
use fixref_sim::{Design, Op, SignalId};

use crate::analysis::{feedback_cycles, non_const_defs, schedule_mismatch, unclamped_cycles};
use crate::diagnostic::{fmt_range, Action, Code, Diagnostic, LintConfig, LintReport, Severity};
use crate::input::LintInput;

/// `FXL001` — static-schedule verification.
///
/// The paper's hybrid methodology assumes every signal is assigned once
/// per clock cycle by one dataflow expression; the
/// [`declare_static_schedule`](Design::declare_static_schedule) call is
/// the author asserting that assumption. This pass checks it against the
/// recorded execution:
///
/// * **multiple definitions** — a signal with two or more distinct
///   non-constant dataflow definitions is steered by Rust-level control
///   flow the graph cannot see;
/// * **rate divergence** — a signal written substantially less (or more)
///   often than the signals it reads is gated by a strobe, so its
///   producers and consumers run on different schedules.
///
/// Constant definitions are exempt (stimulus and coefficient loads record
/// one `Const` per distinct value), as are producers whose definitions
/// are all constants. A signal whose *every* definition is a constant can
/// still hide a data-dependent strobe flag — a known limitation;
/// the strobe is still caught through the expressions it gates.
///
/// Severity is [`Severity::Error`] when a static schedule was declared
/// (the contract is broken) and [`Severity::Warning`] otherwise (the
/// design simply is not statically schedulable).
pub(crate) fn pass_static_schedule(input: &LintInput) -> Vec<Diagnostic> {
    let severity = if input.static_schedule {
        Severity::Error
    } else {
        Severity::Warning
    };
    let mut out = Vec::new();
    for sig in input.defined_signals() {
        let defs = non_const_defs(input, sig);
        if defs == 0 {
            continue;
        }
        let info = input.signal(sig);
        if defs >= 2 {
            out.push(Diagnostic {
                code: Code::StaticSchedule,
                severity,
                signal: info.name.clone(),
                message: format!(
                    "{defs} distinct non-constant definitions; a statically \
                     scheduled signal has exactly one dataflow expression"
                ),
                related: vec![],
                verdict: None,
            });
        }
        let mut mismatched: Vec<&str> = Vec::new();
        let mut detail = String::new();
        for producer in input.graph.fan_in(sig) {
            if producer == sig || non_const_defs(input, producer) == 0 {
                continue;
            }
            let pinfo = input.signal(producer);
            if schedule_mismatch(info.writes, pinfo.writes) {
                mismatched.push(&pinfo.name);
                if !detail.is_empty() {
                    detail.push_str(", ");
                }
                detail.push_str(&format!("{} ({} writes)", pinfo.name, pinfo.writes));
            }
        }
        if !mismatched.is_empty() {
            out.push(Diagnostic {
                code: Code::StaticSchedule,
                severity,
                signal: info.name.clone(),
                message: format!(
                    "written {} times but runs on a different schedule than \
                     its producers: {detail}",
                    info.writes
                ),
                related: mismatched.iter().map(|s| s.to_string()).collect(),
                verdict: None,
            });
        }
    }
    out
}

/// `FXL002` — feedback cycles with no saturating or clamping node.
///
/// Analytical (interval) range propagation diverges on any cycle whose
/// gain cannot be bounded — the paper's Table 1 shows exactly this on the
/// LMS coefficient loop (`b`, `w`). A cycle is fine if *some* member
/// bounds the values flowing through it: an explicit `range()`
/// annotation, a saturating fixed-point type, or a clamp/slicer
/// expression. Cycles with no such member are reported once each,
/// anchored at the lexicographically first member.
pub(crate) fn pass_unclamped_feedback(input: &LintInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for cycle in unclamped_cycles(input) {
        let mut names: Vec<String> = cycle.iter().map(|&s| input.name(s).to_string()).collect();
        names.sort();
        let anchor = names[0].clone();
        out.push(Diagnostic {
            code: Code::UnclampedFeedback,
            severity: Severity::Warning,
            signal: anchor,
            message: format!(
                "feedback cycle of {} signal(s) with no saturating, clamped \
                 or range()-annotated member; analytical range propagation \
                 diverges here — bound one member or rely on statistics",
                names.len()
            ),
            related: names,
            verdict: None,
        });
    }
    out
}

/// `FXL003` — wrap-mode signals steering control decisions.
///
/// A wrap-mode (`wp`) overflow is silent: a value one LSB past the range
/// edge reappears at the far end of the range with its *sign flipped*. A
/// signal quantized that way feeding the condition of a `select` (the
/// recorded form of every data-dependent decision) flips the decision for
/// exactly the overflowing inputs — the hardest class of refinement bug
/// to find by simulation, because it needs an overflowing stimulus.
pub(crate) fn pass_wrap_control(input: &LintInput) -> Vec<Diagnostic> {
    // Collect every signal read (transitively) inside a select condition.
    let mut in_condition: Vec<SignalId> = Vec::new();
    for (_, node) in input.graph.iter() {
        if !matches!(node.op, Op::Select) {
            continue;
        }
        let mut stack = vec![node.args[0]];
        while let Some(n) = stack.pop() {
            let n = input.graph.node(n);
            if let Op::Read(s) = n.op {
                if !in_condition.contains(&s) {
                    in_condition.push(s);
                }
            }
            stack.extend(n.args.iter().copied());
        }
    }
    in_condition.sort();
    let mut out = Vec::new();
    for sig in in_condition {
        let Some(info) = input.signals.get(sig.raw() as usize) else {
            continue;
        };
        let Some(dt) = &info.dtype else { continue };
        if dt.overflow() != OverflowMode::Wrap {
            continue;
        }
        out.push(Diagnostic {
            code: Code::WrapControl,
            severity: Severity::Warning,
            signal: info.name.clone(),
            message: format!(
                "wrap-mode signal ({dt}) feeds a select condition; an \
                 overflow flips the decision silently — saturate it or \
                 prove the range"
            ),
            related: vec![],
            verdict: None,
        });
    }
    out
}

/// `FXL004` — wrap-mode signal declared narrower than its propagated
/// range.
///
/// Section 5.1's MSB rule: a wrap-mode assignment is only correct when
/// the destination range contains the true range of the expression. When
/// the propagated interval already escapes the declared `range()` (or,
/// absent one, the dtype's representable interval), values *will* alias
/// — this is a definite corruption, reported as an error.
pub(crate) fn pass_wrap_narrower(input: &LintInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for info in &input.signals {
        let Some(dt) = &info.dtype else { continue };
        if dt.overflow() != OverflowMode::Wrap {
            continue;
        }
        // With a range() annotation the propagated interval is pinned to
        // the override, so the observed (statistic) range is the only
        // independent evidence; without one, the propagated union is.
        let declared = info
            .range_override
            .unwrap_or_else(|| fixref_fixed::Interval::from_dtype(dt));
        let evidence = if info.range_override.is_some() {
            match info.stat {
                Some(stat) => stat,
                None => continue,
            }
        } else {
            info.prop
        };
        if evidence.is_empty() || declared.contains_interval(&evidence) {
            continue;
        }
        out.push(Diagnostic {
            code: Code::WrapNarrowerThanPropagated,
            severity: Severity::Error,
            signal: info.name.clone(),
            message: format!(
                "declared range {} cannot hold the propagated range {} and \
                 the overflow mode is wrap: values alias (MSB rule, \
                 Section 5.1)",
                fmt_range(declared.lo, declared.hi),
                fmt_range(evidence.lo, evidence.hi),
            ),
            related: vec![],
            verdict: None,
        });
    }
    out
}

/// `FXL005` — truncating rounding inside a feedback cycle.
///
/// Floor rounding shifts the quantization-error mean by half an LSB
/// (Section 5.2). In feed-forward paths that is a fixed DC offset; inside
/// a feedback cycle the offset re-enters the loop and *integrates*,
/// drifting the state. Every cycle member with a `fl` type is flagged —
/// whether or not the cycle is clamped (clamping bounds the range, not
/// the bias).
pub(crate) fn pass_truncation_in_feedback(input: &LintInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for cycle in feedback_cycles(input) {
        for &sig in &cycle {
            let info = input.signal(sig);
            let Some(dt) = &info.dtype else { continue };
            if dt.rounding() != RoundingMode::Floor {
                continue;
            }
            let mut names: Vec<String> = cycle.iter().map(|&s| input.name(s).to_string()).collect();
            names.sort();
            out.push(Diagnostic {
                code: Code::TruncationInFeedback,
                severity: Severity::Warning,
                signal: info.name.clone(),
                message: format!(
                    "floor-rounded type ({dt}) inside a feedback cycle: the \
                     half-LSB truncation bias accumulates as DC drift \
                     (Section 5.2) — use rd rounding here"
                ),
                related: names,
                verdict: None,
            });
        }
    }
    out
}

/// `FXL006` — dead and multiply-defined signals.
///
/// Informational inventory: a signal written but never read is dead
/// weight in the refined netlist, and a signal with several distinct
/// dataflow definitions will surprise anyone reading the generated HDL
/// (each definition becomes a mux arm). Neither is an error — probes and
/// staged rewrites produce both legitimately.
pub(crate) fn pass_dead_or_multiply_defined(input: &LintInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for info in &input.signals {
        if info.writes > 0 && info.reads == 0 {
            out.push(Diagnostic {
                code: Code::DeadOrMultiplyDefined,
                severity: Severity::Info,
                signal: info.name.clone(),
                message: format!(
                    "written {} time(s) but never read (dead signal or probe)",
                    info.writes
                ),
                related: vec![],
                verdict: None,
            });
        }
        let defs = non_const_defs(input, info.id);
        if defs >= 2 {
            out.push(Diagnostic {
                code: Code::DeadOrMultiplyDefined,
                severity: Severity::Info,
                signal: info.name.clone(),
                message: format!(
                    "{defs} distinct non-constant definitions (each becomes \
                     a mux arm in generated HDL)"
                ),
                related: vec![],
                verdict: None,
            });
        }
    }
    out
}

fn run_pass(code: Code, input: &LintInput) -> Vec<Diagnostic> {
    match code {
        Code::StaticSchedule => pass_static_schedule(input),
        Code::UnclampedFeedback => pass_unclamped_feedback(input),
        Code::WrapControl => pass_wrap_control(input),
        Code::WrapNarrowerThanPropagated => pass_wrap_narrower(input),
        Code::TruncationInFeedback => pass_truncation_in_feedback(input),
        Code::DeadOrMultiplyDefined => pass_dead_or_multiply_defined(input),
    }
}

/// The diagnostics engine: runs every non-`Allow`ed pass over a design
/// snapshot and returns the sorted report.
#[derive(Debug, Clone, Default)]
pub struct Linter {
    config: LintConfig,
}

impl Linter {
    /// A linter with the all-warn default configuration.
    pub fn new() -> Self {
        Linter::default()
    }

    /// A linter with an explicit per-code configuration.
    pub fn with_config(config: LintConfig) -> Self {
        Linter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Lints a design: snapshots it and runs the passes. The design
    /// should have been simulated with
    /// [`record_graph`](Design::record_graph) enabled — with an empty
    /// graph only the monitor-counter passes can see anything.
    pub fn run(&self, design: &Design) -> LintReport {
        self.run_input(&LintInput::from_design(design))
    }

    /// Lints a pre-built snapshot.
    pub fn run_input(&self, input: &LintInput) -> LintReport {
        let mut report = LintReport::default();
        for code in Code::ALL {
            if self.config.action(code) == Action::Allow {
                continue;
            }
            report.diagnostics.extend(run_pass(code, input));
        }
        report.sort();
        report
    }
}

/// Runs only the `FXL001` static-schedule pass over a design — the
/// narrow entry point the incremental-evaluation cache uses to decide
/// whether a `Partial` plan is sound. Returns the (sorted) violations;
/// empty means the declared schedule holds.
pub fn check_static_schedule(design: &Design) -> Vec<Diagnostic> {
    let input = LintInput::from_design(design);
    let mut diags = pass_static_schedule(&input);
    diags.sort_by(|a, b| (&a.signal, &a.message).cmp(&(&b.signal, &b.message)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_sim::{SignalRef, Value};

    /// A leaky accumulator with a slicer: one unclamped cycle (`acc`),
    /// one slicer-clamped signal (`y`), stimulus `x`.
    fn slicer_design() -> Design {
        let d = Design::new();
        let x = d.sig("x");
        let acc = d.reg("acc");
        let y = d.sig("y");
        d.record_graph(true);
        for i in 0..64 {
            x.set((i as f64 * 0.37).sin());
            acc.set(acc.get() * 0.99 + x.get());
            y.set(
                acc.get()
                    .select_positive(Value::from(1.0), Value::from(-1.0)),
            );
            d.tick();
        }
        d.record_graph(false);
        d
    }

    #[test]
    fn clean_static_schedule_produces_no_fxl001() {
        let d = slicer_design();
        assert!(check_static_schedule(&d).is_empty());
    }

    #[test]
    fn strobed_signal_breaks_declared_schedule_as_error() {
        let d = Design::new();
        d.declare_static_schedule();
        let x = d.sig("x");
        let xs = d.sig("xs");
        let slow = d.sig("slow");
        d.record_graph(true);
        for i in 0..64 {
            x.set(i as f64 * 0.01);
            xs.set(x.get() * 0.5);
            // Strobe: slow runs at half the rate of its producer xs.
            if i % 2 == 0 {
                slow.set(xs.get() + 1.0);
            }
            d.tick();
        }
        d.record_graph(false);
        let diags = check_static_schedule(&d);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].signal, "slow");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].related, vec!["xs".to_string()]);
    }

    #[test]
    fn data_dependent_definitions_flagged_as_warning_when_undeclared() {
        let d = Design::new();
        let x = d.sig("x");
        let y = d.sig("y");
        d.record_graph(true);
        for i in 0..64 {
            x.set(i as f64 * 0.01 - 0.3);
            // Rust-level branch: two distinct dataflow definitions of y.
            if d.peek(x.id()).0 > 0.0 {
                y.set(x.get() * 2.0);
            } else {
                y.set(-x.get());
            }
            d.tick();
        }
        d.record_graph(false);
        let diags = check_static_schedule(&d);
        let multi: Vec<_> = diags.iter().filter(|d| d.signal == "y").collect();
        assert_eq!(multi.len(), 1, "{diags:?}");
        assert_eq!(multi[0].severity, Severity::Warning);
        assert!(multi[0].message.contains("2 distinct non-constant"));
    }

    #[test]
    fn unclamped_cycle_reported_once_with_members() {
        let report = Linter::new().run(&slicer_design());
        let fxl002 = report.with_code(Code::UnclampedFeedback);
        assert_eq!(fxl002.len(), 1, "{report:?}");
        assert_eq!(fxl002[0].signal, "acc");
        assert_eq!(fxl002[0].related, vec!["acc".to_string()]);
        // The slicer-clamped y is not part of any unclamped cycle.
        assert!(report.with_code(Code::StaticSchedule).is_empty());
    }

    #[test]
    fn wrap_signal_in_select_condition_is_flagged() {
        let d = Design::new();
        let x = d.sig_typed("x", "<8,6,tc,wp,rd>".parse().expect("valid"));
        let y = d.sig("y");
        d.record_graph(true);
        for i in 0..32 {
            x.set(i as f64 * 0.05 - 0.8);
            y.set(x.get().select_positive(Value::from(1.0), Value::from(0.0)));
            d.tick();
        }
        d.record_graph(false);
        let report = Linter::new().run(&d);
        let fxl003 = report.with_code(Code::WrapControl);
        assert_eq!(fxl003.len(), 1, "{report:?}");
        assert_eq!(fxl003[0].signal, "x");
        // The same design with saturation is quiet on FXL003.
        let d2 = Design::new();
        let x2 = d2.sig_typed("x", "<8,6,tc,st,rd>".parse().expect("valid"));
        let y2 = d2.sig("y");
        d2.record_graph(true);
        for i in 0..32 {
            x2.set(i as f64 * 0.05 - 0.8);
            y2.set(x2.get().select_positive(Value::from(1.0), Value::from(0.0)));
            d2.tick();
        }
        d2.record_graph(false);
        assert!(Linter::new()
            .run(&d2)
            .with_code(Code::WrapControl)
            .is_empty());
    }

    #[test]
    fn wrap_type_narrower_than_propagated_is_an_error() {
        let d = Design::new();
        let x = d.sig("x");
        x.range(-2.0, 2.0);
        // <4,2,tc,wp,rd> represents [-2, 1.75): narrower than y's
        // propagated range x + x = [-4, 4].
        let y = d.sig_typed("y", "<4,2,tc,wp,rd>".parse().expect("valid"));
        d.record_graph(true);
        for i in 0..32 {
            x.set(i as f64 * 0.1 - 1.5);
            y.set(x.get() + x.get());
            d.tick();
        }
        d.record_graph(false);
        let report = Linter::new().run(&d);
        let fxl004 = report.with_code(Code::WrapNarrowerThanPropagated);
        assert_eq!(fxl004.len(), 1, "{report:?}");
        assert_eq!(fxl004[0].signal, "y");
        assert_eq!(fxl004[0].severity, Severity::Error);
        assert!(fxl004[0].message.contains("values alias"));
    }

    #[test]
    fn floor_rounding_in_feedback_is_flagged_even_when_clamped() {
        let d = Design::new();
        let x = d.sig("x");
        let acc = d.reg_typed("acc", "<12,10,tc,st,fl>".parse().expect("valid"));
        d.record_graph(true);
        for i in 0..32 {
            x.set(i as f64 * 0.01);
            acc.set(acc.get() * 0.9 + x.get());
            d.tick();
        }
        d.record_graph(false);
        let report = Linter::new().run(&d);
        let fxl005 = report.with_code(Code::TruncationInFeedback);
        assert_eq!(fxl005.len(), 1, "{report:?}");
        assert_eq!(fxl005[0].signal, "acc");
        // Saturating type, so FXL002 stays quiet: the hazard is the
        // rounding bias, not the range.
        assert!(report.with_code(Code::UnclampedFeedback).is_empty());
    }

    #[test]
    fn dead_and_multiply_defined_signals_are_informational() {
        let d = Design::new();
        let x = d.sig("x");
        let probe = d.sig("probe");
        d.record_graph(true);
        for i in 0..16 {
            x.set(i as f64 * 0.1);
            probe.set(x.get() * 3.0);
            d.tick();
        }
        d.record_graph(false);
        let report = Linter::new().run(&d);
        let fxl006 = report.with_code(Code::DeadOrMultiplyDefined);
        assert_eq!(fxl006.len(), 1, "{report:?}");
        assert_eq!(fxl006[0].signal, "probe");
        assert_eq!(fxl006[0].severity, Severity::Info);
        assert!(fxl006[0].message.contains("never read"));
    }

    #[test]
    fn allow_suppresses_a_code_entirely() {
        let d = slicer_design();
        let quiet = Linter::with_config(
            LintConfig::new()
                .allow(Code::UnclampedFeedback)
                .allow(Code::DeadOrMultiplyDefined),
        )
        .run(&d);
        assert!(quiet.is_clean(), "{quiet:?}");
    }

    #[test]
    fn report_is_deterministic_across_runs() {
        let a = Linter::new().run(&slicer_design()).render_jsonl();
        let b = Linter::new().run(&slicer_design()).render_jsonl();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
