//! Diagnostic codes, severities and the lint report.
//!
//! Codes are *stable*: `FXL001` means the same thing in every release, so
//! baselines, CI gates and `allow`/`deny` configuration can refer to them
//! by string. New passes append new codes; existing codes are never
//! renumbered.

use std::fmt;

use fixref_obs::json::{escape, fmt_f64};

/// A stable diagnostic code (`FXL###`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// `FXL001` — static-schedule verification: data-dependent control
    /// reaches a signal's definitions, so the author-asserted
    /// [`declare_static_schedule`](fixref_sim::Design::declare_static_schedule)
    /// contract does not hold (or must not be declared).
    StaticSchedule,
    /// `FXL002` — a feedback cycle contains no saturating or clamping
    /// node: analytical interval propagation explodes on it (the paper's
    /// Table 1 `b`/`w` failure).
    UnclampedFeedback,
    /// `FXL003` — a wrap-mode signal feeds a comparison or control
    /// decision: a wrap discontinuity flips the decision for values just
    /// past the range edge.
    WrapControl,
    /// `FXL004` — the declared `range()`/dtype of a wrap-mode signal is
    /// narrower than its propagated interval: values will alias
    /// (Section 5.1 MSB-rule violation as a static pre-check).
    WrapNarrowerThanPropagated,
    /// `FXL005` — a floor-rounded (truncating) type sits inside a
    /// feedback cycle: the half-LSB mean shift accumulates as DC bias.
    TruncationInFeedback,
    /// `FXL006` — a signal is dead (assigned, never read) or multiply
    /// defined (several distinct dataflow definitions).
    DeadOrMultiplyDefined,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 6] = [
        Code::StaticSchedule,
        Code::UnclampedFeedback,
        Code::WrapControl,
        Code::WrapNarrowerThanPropagated,
        Code::TruncationInFeedback,
        Code::DeadOrMultiplyDefined,
    ];

    /// The stable wire form (`"FXL001"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::StaticSchedule => "FXL001",
            Code::UnclampedFeedback => "FXL002",
            Code::WrapControl => "FXL003",
            Code::WrapNarrowerThanPropagated => "FXL004",
            Code::TruncationInFeedback => "FXL005",
            Code::DeadOrMultiplyDefined => "FXL006",
        }
    }

    /// Parses the stable wire form back into a code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// One-line description of what the pass checks (the registry line
    /// documented in `DESIGN.md`).
    pub fn description(self) -> &'static str {
        match self {
            Code::StaticSchedule => "data-dependent control reaches signal definitions",
            Code::UnclampedFeedback => "feedback cycle without a saturating/clamping node",
            Code::WrapControl => "wrap-mode signal feeds a comparison/control decision",
            Code::WrapNarrowerThanPropagated => {
                "declared range/dtype narrower than propagated interval under wrap"
            }
            Code::TruncationInFeedback => "truncating (floor) rounding inside a feedback cycle",
            Code::DeadOrMultiplyDefined => "dead or multiply-defined signal",
        }
    }

    fn index(self) -> usize {
        match self {
            Code::StaticSchedule => 0,
            Code::UnclampedFeedback => 1,
            Code::WrapControl => 2,
            Code::WrapNarrowerThanPropagated => 3,
            Code::TruncationInFeedback => 4,
            Code::DeadOrMultiplyDefined => 5,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How much a diagnostic matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing, never a failure by itself.
    Info,
    /// A hazard the designer should confirm.
    Warning,
    /// A broken contract or definite corruption.
    Error,
}

impl Severity {
    /// The lowercase wire form (`"info"` / `"warning"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the linter (or a gate consuming its report) does with a code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Action {
    /// Suppress: diagnostics with this code are dropped from the report.
    Allow,
    /// Report, never fail.
    #[default]
    Warn,
    /// Report and fail the consuming gate.
    Deny,
}

/// Per-code `allow`/`warn`/`deny` configuration.
///
/// The default warns on everything: reports are complete but no gate
/// fails, so enabling the linter on an existing flow is non-breaking.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintConfig {
    actions: [Action; Code::ALL.len()],
}

impl LintConfig {
    /// The all-warn default.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// The action configured for a code.
    pub fn action(&self, code: Code) -> Action {
        self.actions[code.index()]
    }

    /// Sets the action for one code (builder style).
    pub fn with(mut self, code: Code, action: Action) -> Self {
        self.actions[code.index()] = action;
        self
    }

    /// Shorthand for [`LintConfig::with`]`(code, Action::Deny)`.
    pub fn deny(self, code: Code) -> Self {
        self.with(code, Action::Deny)
    }

    /// Shorthand for [`LintConfig::with`]`(code, Action::Allow)`.
    pub fn allow(self, code: Code) -> Self {
        self.with(code, Action::Allow)
    }
}

/// A formal verdict attached to a diagnostic by the verification layer.
///
/// Lint passes are heuristic: they *flag* hazards. The bounded model
/// checker in `fixref-verify` upgrades a flag to one of three states — a
/// machine-checked proof that the hazard cannot occur, a concrete input
/// sequence that triggers it, or an honest "could not decide" with the
/// reason. Diagnostics without a verdict (`verdict: None`) render exactly
/// as before the verification layer existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The reachable state space closed without the hazard: the warning
    /// is discharged. Gates treat a proved denied code as allowed.
    Proved,
    /// A concrete stimulus drives the design into the hazard. Gates
    /// treat this as a hard deny, with the witness attached.
    CounterexampleFound,
    /// The checker could not decide within its bounds.
    Unknown {
        /// Why (`"state_too_large"`, `"input_alphabet_too_large"`, …).
        reason: String,
    },
}

impl Verdict {
    /// The stable wire form (`"proved"` / `"counterexample"` /
    /// `"unknown(reason)"`).
    pub fn as_str(&self) -> String {
        match self {
            Verdict::Proved => "proved".to_string(),
            Verdict::CounterexampleFound => "counterexample".to_string(),
            Verdict::Unknown { reason } => format!("unknown({reason})"),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code of the pass that produced it.
    pub code: Code,
    /// How much it matters.
    pub severity: Severity,
    /// The primary signal the finding is anchored to.
    pub signal: String,
    /// Human-readable explanation.
    pub message: String,
    /// Other signals involved (cycle members, mismatched producers, …).
    pub related: Vec<String>,
    /// Formal verdict, if the verification layer ran on this finding.
    pub verdict: Option<Verdict>,
}

impl Diagnostic {
    /// Serializes the diagnostic as one JSON object (no trailing
    /// newline), using the observability crate's canonical float and
    /// string encodings so output is bit-stable across platforms.
    pub fn to_json(&self) -> String {
        let related = self
            .related
            .iter()
            .map(|r| format!("\"{}\"", escape(r)))
            .collect::<Vec<_>>()
            .join(",");
        let verdict = match &self.verdict {
            None => String::new(),
            Some(v) => format!(r#","verdict":"{}""#, escape(&v.as_str())),
        };
        format!(
            r#"{{"code":"{}","severity":"{}","signal":"{}","message":"{}","related":[{related}]{verdict}}}"#,
            self.code,
            self.severity,
            escape(&self.signal),
            escape(&self.message),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}: {}",
            self.code, self.severity, self.signal, self.message
        )?;
        if !self.related.is_empty() {
            write!(f, " [{}]", self.related.join(", "))?;
        }
        if let Some(v) = &self.verdict {
            write!(f, " <{v}>")?;
        }
        Ok(())
    }
}

/// Renders an interval for diagnostic messages with the canonical float
/// encoding (shared with the JSONL journal, so text and JSON agree).
pub(crate) fn fmt_range(lo: f64, hi: f64) -> String {
    format!("[{}, {}]", fmt_f64(lo), fmt_f64(hi))
}

/// The outcome of a lint run: diagnostics sorted by `(code, signal,
/// message)` — a deterministic order independent of pass-internal hash
/// maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// The surviving (non-`Allow`ed) diagnostics, sorted.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of diagnostics at a severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the report is empty (a clean design).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The diagnostics whose code the config maps to [`Action::Deny`].
    pub fn denied<'a>(&'a self, config: &LintConfig) -> Vec<&'a Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| config.action(d.code) == Action::Deny)
            .collect()
    }

    /// The diagnostics carrying a given code.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Human-readable rendering: one line per diagnostic plus a summary
    /// line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s), {} info(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        );
        out
    }

    /// JSON Lines rendering: one object per diagnostic, in report order.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }

    pub(crate) fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (a.code, &a.signal, &a.message).cmp(&(b.code, &b.signal, &b.message)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parse_back() {
        for code in Code::ALL {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert!(code.as_str().starts_with("FXL"));
            assert!(!code.description().is_empty());
        }
        assert_eq!(Code::StaticSchedule.as_str(), "FXL001");
        assert_eq!(Code::DeadOrMultiplyDefined.as_str(), "FXL006");
        assert_eq!(Code::parse("FXL999"), None);
    }

    #[test]
    fn severity_orders_info_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn config_defaults_to_warn_and_overrides_stick() {
        let cfg = LintConfig::new()
            .deny(Code::StaticSchedule)
            .allow(Code::DeadOrMultiplyDefined);
        assert_eq!(cfg.action(Code::StaticSchedule), Action::Deny);
        assert_eq!(cfg.action(Code::DeadOrMultiplyDefined), Action::Allow);
        assert_eq!(cfg.action(Code::UnclampedFeedback), Action::Warn);
    }

    fn diag(code: Code, signal: &str) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            signal: signal.into(),
            message: "m".into(),
            related: vec![],
            verdict: None,
        }
    }

    #[test]
    fn report_sorts_counts_and_filters() {
        let mut report = LintReport {
            diagnostics: vec![
                diag(Code::DeadOrMultiplyDefined, "z"),
                diag(Code::StaticSchedule, "b"),
                diag(Code::StaticSchedule, "a"),
            ],
        };
        report.sort();
        assert_eq!(report.diagnostics[0].signal, "a");
        assert_eq!(report.diagnostics[1].signal, "b");
        assert_eq!(report.diagnostics[2].code, Code::DeadOrMultiplyDefined);
        assert_eq!(report.count(Severity::Warning), 3);
        assert!(!report.is_clean());
        assert_eq!(report.with_code(Code::StaticSchedule).len(), 2);
        let denied = report.denied(&LintConfig::new().deny(Code::StaticSchedule));
        assert_eq!(denied.len(), 2);
    }

    #[test]
    fn json_escapes_quotes_and_renders_related() {
        let d = Diagnostic {
            code: Code::WrapControl,
            severity: Severity::Error,
            signal: "a\"b".into(),
            message: "back\\slash".into(),
            related: vec!["x".into(), "y".into()],
            verdict: None,
        };
        let json = d.to_json();
        assert!(json.contains(r#""signal":"a\"b""#), "{json}");
        assert!(json.contains(r#""message":"back\\slash""#), "{json}");
        assert!(json.contains(r#""related":["x","y"]"#), "{json}");
        // The whole line parses back as JSON.
        assert!(fixref_obs::Json::parse(&json).is_ok());
    }

    #[test]
    fn text_rendering_has_one_line_per_diagnostic_plus_summary() {
        let report = LintReport {
            diagnostics: vec![diag(Code::StaticSchedule, "mu")],
        };
        let text = report.render_text();
        assert!(text.contains("FXL001 warning mu: m"));
        assert!(text.ends_with("0 error(s), 1 warning(s), 0 info(s)\n"));
    }

    #[test]
    fn verdictless_diagnostics_render_exactly_as_before() {
        // Byte-identity with the pre-verification renderers: no trailing
        // verdict marker in text, no "verdict" key in JSON.
        let d = diag(Code::UnclampedFeedback, "b");
        assert_eq!(d.to_string(), "FXL002 warning b: m");
        assert_eq!(
            d.to_json(),
            r#"{"code":"FXL002","severity":"warning","signal":"b","message":"m","related":[]}"#
        );
    }

    #[test]
    fn verdicts_render_in_text_and_json() {
        let mut d = diag(Code::UnclampedFeedback, "b");
        d.verdict = Some(Verdict::Proved);
        assert!(d.to_string().ends_with("<proved>"), "{d}");
        assert!(
            d.to_json().ends_with(r#""verdict":"proved"}"#),
            "{}",
            d.to_json()
        );

        d.verdict = Some(Verdict::CounterexampleFound);
        assert!(d.to_string().ends_with("<counterexample>"));

        d.verdict = Some(Verdict::Unknown {
            reason: "state_too_large".into(),
        });
        assert!(d.to_string().ends_with("<unknown(state_too_large)>"));
        // Every variant still parses back as JSON.
        assert!(fixref_obs::Json::parse(&d.to_json()).is_ok());
    }
}
