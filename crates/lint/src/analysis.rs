//! Shared graph analyses the passes build on: signal-level adjacency,
//! strongly connected components (feedback cycles), clamping detection
//! and the write-schedule comparison.

use std::collections::HashMap;

use fixref_fixed::OverflowMode;
use fixref_sim::{NodeId, Op, SignalId};

use crate::input::LintInput;

/// Signal-level successor adjacency: an edge `s → t` for every signal
/// `s` read (transitively through wires' defining expressions) by a
/// definition of `t`. Keys and value lists are sorted, so iteration is
/// deterministic.
pub(crate) fn successors(input: &LintInput) -> HashMap<SignalId, Vec<SignalId>> {
    let mut succ: HashMap<SignalId, Vec<SignalId>> = HashMap::new();
    for t in input.defined_signals() {
        for s in input.graph.fan_in(t) {
            succ.entry(s).or_default().push(t);
        }
    }
    for list in succ.values_mut() {
        list.sort();
        list.dedup();
    }
    succ
}

/// Strongly connected components of the signal graph restricted to
/// `nodes`, via iterative Tarjan. Returns only the *cyclic* components —
/// size > 1, or a single signal whose definitions read itself — each
/// sorted by id, the component list sorted by its smallest member.
pub(crate) fn cyclic_components(
    input: &LintInput,
    nodes: &[SignalId],
    succ: &HashMap<SignalId, Vec<SignalId>>,
) -> Vec<Vec<SignalId>> {
    let in_scope: HashMap<SignalId, usize> = nodes
        .iter()
        .copied()
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<SignalId>> = Vec::new();

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs = succ.get(&nodes[v]).map(Vec::as_slice).unwrap_or(&[]);
            let mut advanced = false;
            while *pos < succs.len() {
                let w_sig = succs[*pos];
                *pos += 1;
                let Some(&w) = in_scope.get(&w_sig) else {
                    continue;
                };
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if advanced {
                continue;
            }
            // v is finished: pop its frame, close its component if root.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.push(nodes[w]);
                    if w == v {
                        break;
                    }
                }
                comp.sort();
                components.push(comp);
            }
        }
    }

    components.retain(|comp| {
        comp.len() > 1
            || comp
                .first()
                .map(|&s| input.graph.fan_in(s).contains(&s))
                .unwrap_or(false)
    });
    components.sort_by_key(|comp| comp.first().copied());
    components
}

/// Whether a definition root is a clamping expression: a `Min`/`Max`
/// chain (explicit clamp) or a `Select` whose value branches are both
/// constants (a slicer — output confined to the two constants).
fn root_clamps(input: &LintInput, root: NodeId) -> bool {
    let node = input.graph.node(root);
    match node.op {
        Op::Min | Op::Max => true,
        Op::Select => node.args[1..]
            .iter()
            .all(|&a| matches!(input.graph.node(a).op, Op::Const(_))),
        _ => false,
    }
}

/// Whether a signal bounds the values flowing through it: an explicit
/// `range()` annotation, a saturating type, or every (non-constant)
/// definition being a clamp/slicer expression.
pub(crate) fn is_clamping(input: &LintInput, sig: SignalId) -> bool {
    let info = input.signal(sig);
    if info.range_override.is_some() {
        return true;
    }
    if let Some(dt) = &info.dtype {
        if dt.overflow() == OverflowMode::Saturate {
            return true;
        }
    }
    let non_const: Vec<NodeId> = input
        .graph
        .defs(sig)
        .iter()
        .copied()
        .filter(|&d| !matches!(input.graph.node(d).op, Op::Const(_)))
        .collect();
    !non_const.is_empty() && non_const.iter().all(|&d| root_clamps(input, d))
}

/// The cyclic components over all defined signals (feedback cycles as
/// built, clamped or not — the FXL005 scope).
pub(crate) fn feedback_cycles(input: &LintInput) -> Vec<Vec<SignalId>> {
    let nodes = input.defined_signals();
    let succ = successors(input);
    cyclic_components(input, &nodes, &succ)
}

/// The cyclic components that survive after every clamping signal is
/// removed from the graph — cycles along which nothing bounds the range,
/// so analytical interval propagation must explode (the FXL002 scope).
pub(crate) fn unclamped_cycles(input: &LintInput) -> Vec<Vec<SignalId>> {
    let nodes: Vec<SignalId> = input
        .defined_signals()
        .into_iter()
        .filter(|&s| !is_clamping(input, s))
        .collect();
    let succ = successors(input);
    cyclic_components(input, &nodes, &succ)
}

/// Number of non-constant definition roots of a signal. Constant
/// definitions are exempt everywhere: a stimulus input or coefficient
/// load records one `Const` definition per distinct value without any
/// control flow being involved.
pub(crate) fn non_const_defs(input: &LintInput, sig: SignalId) -> usize {
    input
        .graph
        .defs(sig)
        .iter()
        .filter(|&&d| !matches!(input.graph.node(d).op, Op::Const(_)))
        .count()
}

/// Whether a producer/consumer write-count pair indicates the two run on
/// different schedules. Tolerates small absolute skews (a register seeded
/// once in `init` is written `N + 1` times against full-rate producers'
/// `N`, and per-scenario seeding adds one write per scenario) but flags a
/// sustained divergence like a strobe gating half the cycles. The
/// threshold — ≥ 12.5 % relative divergence with at least 16 writes on
/// the faster side — is deliberately coarse: FXL001 is a structural
/// verdict, not a profiler.
pub(crate) fn schedule_mismatch(a: u64, b: u64) -> bool {
    let (lo, hi) = (a.min(b), a.max(b));
    hi >= 16 && (hi - lo) * 8 >= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::Interval;
    use fixref_sim::{Design, Graph, SignalKind};

    fn sid(i: u32) -> SignalId {
        SignalId::from_raw(i)
    }

    /// Builds a LintInput over a hand-made graph with default signal
    /// facts for `n` signals named s0..s{n-1}.
    fn input_for(graph: Graph, n: u32) -> LintInput {
        LintInput {
            graph,
            signals: (0..n)
                .map(|i| crate::input::SignalInfo {
                    id: sid(i),
                    name: format!("s{i}"),
                    kind: SignalKind::Wire,
                    dtype: None,
                    range_override: None,
                    prop: Interval::EMPTY,
                    stat: None,
                    reads: 0,
                    writes: 0,
                })
                .collect(),
            static_schedule: false,
        }
    }

    #[test]
    fn sccs_find_self_loops_and_mutual_cycles_only() {
        // s0 -> s1 -> s2 (chain), s3 = s3 + s4 (self loop), s5 <-> s6.
        let mut g = Graph::new();
        let r0 = g.add(Op::Read(sid(0)), vec![]);
        let n1 = g.add(Op::Neg, vec![r0]);
        g.record_def(sid(1), n1);
        let r1 = g.add(Op::Read(sid(1)), vec![]);
        let n2 = g.add(Op::Abs, vec![r1]);
        g.record_def(sid(2), n2);
        let r3 = g.add(Op::Read(sid(3)), vec![]);
        let r4 = g.add(Op::Read(sid(4)), vec![]);
        let acc = g.add(Op::Add, vec![r3, r4]);
        g.record_def(sid(3), acc);
        let r6 = g.add(Op::Read(sid(6)), vec![]);
        let n5 = g.add(Op::Neg, vec![r6]);
        g.record_def(sid(5), n5);
        let r5 = g.add(Op::Read(sid(5)), vec![]);
        let n6 = g.add(Op::Abs, vec![r5]);
        g.record_def(sid(6), n6);

        let input = input_for(g, 7);
        let cycles = feedback_cycles(&input);
        assert_eq!(cycles, vec![vec![sid(3)], vec![sid(5), sid(6)]]);
    }

    #[test]
    fn clamp_removal_breaks_cycles() {
        // s0 = s1 + 1; s1 = min(s0, c): the cycle passes through a
        // clamping min, so no unclamped cycle remains.
        let mut g = Graph::new();
        let r1 = g.add(Op::Read(sid(1)), vec![]);
        let one = g.add(Op::Const(1.0), vec![]);
        let s0def = g.add(Op::Add, vec![r1, one]);
        g.record_def(sid(0), s0def);
        let r0 = g.add(Op::Read(sid(0)), vec![]);
        let cap = g.add(Op::Const(0.5), vec![]);
        let s1def = g.add(Op::Min, vec![r0, cap]);
        g.record_def(sid(1), s1def);

        let input = input_for(g, 2);
        assert_eq!(feedback_cycles(&input).len(), 1);
        assert!(is_clamping(&input, sid(1)));
        assert!(!is_clamping(&input, sid(0)));
        assert!(unclamped_cycles(&input).is_empty());
    }

    #[test]
    fn range_override_and_saturating_dtype_count_as_clamps() {
        let mut g = Graph::new();
        let r0 = g.add(Op::Read(sid(0)), vec![]);
        let acc = g.add(Op::Neg, vec![r0]);
        g.record_def(sid(0), acc);
        let mut input = input_for(g, 1);
        assert!(!is_clamping(&input, sid(0)));
        input.signals[0].range_override = Some(Interval::new(-1.0, 1.0));
        assert!(is_clamping(&input, sid(0)));
        input.signals[0].range_override = None;
        input.signals[0].dtype = Some("<8,6,tc,st,rd>".parse().expect("valid"));
        assert!(is_clamping(&input, sid(0)));
        input.signals[0].dtype = Some("<8,6,tc,wp,rd>".parse().expect("valid"));
        assert!(!is_clamping(&input, sid(0)));
    }

    #[test]
    fn const_branch_select_is_a_slicer_clamp() {
        let mut g = Graph::new();
        let r0 = g.add(Op::Read(sid(0)), vec![]);
        let hi = g.add(Op::Const(1.0), vec![]);
        let lo = g.add(Op::Const(-1.0), vec![]);
        let sel = g.add(Op::Select, vec![r0, hi, lo]);
        g.record_def(sid(1), sel);
        // A select with a non-constant branch does not clamp.
        let sel2 = g.add(Op::Select, vec![r0, r0, lo]);
        g.record_def(sid(2), sel2);
        let input = input_for(g, 3);
        assert!(is_clamping(&input, sid(1)));
        assert!(!is_clamping(&input, sid(2)));
    }

    #[test]
    fn non_const_defs_ignores_stimulus_constants() {
        let mut g = Graph::new();
        let c1 = g.add(Op::Const(0.25), vec![]);
        let c2 = g.add(Op::Const(0.5), vec![]);
        g.record_def(sid(0), c1);
        g.record_def(sid(0), c2);
        let r0 = g.add(Op::Read(sid(0)), vec![]);
        let n = g.add(Op::Neg, vec![r0]);
        g.record_def(sid(1), n);
        g.record_def(sid(1), r0);
        let input = input_for(g, 2);
        assert_eq!(non_const_defs(&input, sid(0)), 0);
        assert_eq!(non_const_defs(&input, sid(1)), 2);
    }

    #[test]
    fn schedule_mismatch_tolerates_skew_but_flags_strobes() {
        // Equal and off-by-one (init seeding) pass.
        assert!(!schedule_mismatch(4000, 4000));
        assert!(!schedule_mismatch(4001, 4000));
        // Per-scenario seeding skew (8 scenarios) passes.
        assert!(!schedule_mismatch(32008, 32000));
        // A strobe at half rate is flagged.
        assert!(schedule_mismatch(2000, 4000));
        assert!(schedule_mismatch(4000, 2000));
        // Tiny runs never flag (not enough evidence).
        assert!(!schedule_mismatch(3, 15));
    }

    #[test]
    fn lms_shaped_design_yields_the_paper_cycles() {
        // End-to-end sanity on a real recorded design: the LMS-style
        // slicer loop w -> y -> b -> w leaves {b, w} once the slicer
        // clamps y.
        let d = Design::new();
        let w = d.sig("w");
        let y = d.sig("y");
        let b = d.reg("b");
        let s = d.reg("s");
        let x = d.sig("x");
        d.record_graph(true);
        for i in 0..40 {
            x.set((i as f64 * 0.3).sin());
            w.set(x.get() - b.get() * s.get());
            y.set(
                w.get()
                    .select_positive(fixref_sim::Value::from(1.0), fixref_sim::Value::from(-1.0)),
            );
            b.set(b.get() + 0.0625 * s.get() * (w.get() - y.get()));
            s.set(y.get());
            d.tick();
        }
        d.record_graph(false);
        let input = LintInput::from_design(&d);
        let all = feedback_cycles(&input);
        assert_eq!(all.len(), 1, "one slicer loop: {all:?}");
        assert_eq!(all[0].len(), 4, "w, y, b, s: {all:?}");
        let unclamped = unclamped_cycles(&input);
        assert_eq!(unclamped.len(), 1);
        let names: Vec<&str> = unclamped[0].iter().map(|&s| input.name(s)).collect();
        assert_eq!(names, vec!["w", "b"], "slicer y and s drop out");
    }
}
