//! `fixref-lint` — static diagnostics over the recorded signal-flow graph.
//!
//! The refinement flow (paper, Section 3) trusts two structural
//! assumptions it never re-checks dynamically: that a design declared
//! statically scheduled really is (every signal assigned by one dataflow
//! expression at one rate), and that analytical range propagation has a
//! fighting chance (every feedback cycle bounded somewhere). This crate
//! checks those — plus the wrap/truncation hazard patterns of Section 5 —
//! *statically*, from the graph and monitor counters a recorded simulation
//! already produced, before any refinement iteration is spent.
//!
//! # Passes
//!
//! | Code | Checks |
//! |------|--------|
//! | `FXL001` | static-schedule verification: multiple dataflow definitions or producer/consumer rate divergence |
//! | `FXL002` | feedback cycle with no saturating, clamped or `range()`-annotated member |
//! | `FXL003` | wrap-mode signal steering a `select` condition |
//! | `FXL004` | declared `range()`/dtype narrower than the propagated interval under wrap overflow |
//! | `FXL005` | floor (truncating) rounding inside a feedback cycle |
//! | `FXL006` | dead or multiply-defined signals |
//!
//! # Usage
//!
//! ```
//! use fixref_lint::{Code, LintConfig, Linter};
//! use fixref_sim::Design;
//!
//! let d = Design::new();
//! let x = d.sig("x");
//! let acc = d.reg("acc");
//! d.record_graph(true);
//! for i in 0..32 {
//!     x.set(i as f64 * 0.1);
//!     acc.set(acc.get() * 0.95 + x.get());
//!     d.tick();
//! }
//! d.record_graph(false);
//!
//! let report = Linter::new().run(&d);
//! // The unclamped accumulator feedback loop is flagged.
//! assert_eq!(report.with_code(Code::UnclampedFeedback).len(), 1);
//! // Suppressing the code yields a clean report.
//! let quiet = Linter::with_config(LintConfig::new().allow(Code::UnclampedFeedback))
//!     .run(&d);
//! assert!(quiet.with_code(Code::UnclampedFeedback).is_empty());
//! ```
//!
//! Reports are deterministic: diagnostics are sorted by
//! `(code, signal, message)` and every pass iterates in signal-id order,
//! so the same design snapshot renders bit-identical text and JSONL on
//! every run, platform and `FIXREF_TEST_SHARDS` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod diagnostic;
mod input;
mod passes;

pub use diagnostic::{Action, Code, Diagnostic, LintConfig, LintReport, Severity, Verdict};
pub use input::{LintInput, SignalInfo};
pub use passes::{check_static_schedule, Linter};
