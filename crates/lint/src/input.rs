//! The linter's immutable view of a design.
//!
//! Passes never touch a [`Design`] directly: they consume a [`LintInput`]
//! snapshot — the recorded signal-flow graph plus per-signal annotations
//! and monitor counters. Snapshotting keeps passes pure (trivially
//! testable on synthetic inputs) and pins down exactly which design state
//! the diagnostics depend on: graph structure, declared types/ranges,
//! read/write counts and propagated intervals — all of which are
//! bit-identical across `FIXREF_TEST_SHARDS` worker-pool shapes, so lint
//! output is too.

use fixref_fixed::{DType, Interval};
use fixref_sim::{Design, Graph, SignalId, SignalKind};

/// Per-signal facts the passes consume.
#[derive(Debug, Clone)]
pub struct SignalInfo {
    /// The signal's id (indexes [`LintInput::signals`]).
    pub id: SignalId,
    /// The signal's name.
    pub name: String,
    /// Wire or register.
    pub kind: SignalKind,
    /// The active type (`None` = floating point).
    pub dtype: Option<DType>,
    /// Explicit `range()` annotation, if any.
    pub range_override: Option<Interval>,
    /// Quasi-analytically propagated range.
    pub prop: Interval,
    /// Statistic (observed) range, when any value was seen.
    pub stat: Option<Interval>,
    /// Number of reads the monitors counted.
    pub reads: u64,
    /// Number of assignments the monitors counted.
    pub writes: u64,
}

/// Everything a lint pass may look at.
#[derive(Debug, Clone)]
pub struct LintInput {
    /// The recorded signal-flow graph.
    pub graph: Graph,
    /// Per-signal facts, indexed by raw signal id.
    pub signals: Vec<SignalInfo>,
    /// Whether the author asserted a static schedule
    /// ([`Design::declare_static_schedule`]).
    pub static_schedule: bool,
}

impl LintInput {
    /// Snapshots a design: its recorded graph (empty if recording never
    /// ran), every signal's annotations and monitor counters, and the
    /// static-schedule declaration.
    pub fn from_design(design: &Design) -> Self {
        let signals = design
            .reports()
            .into_iter()
            .map(|r| SignalInfo {
                id: r.id,
                name: r.name,
                kind: r.kind,
                dtype: r.dtype,
                range_override: r.range_override,
                prop: r.prop,
                stat: r.stat.interval(),
                reads: r.reads,
                writes: r.writes,
            })
            .collect();
        LintInput {
            graph: design.graph(),
            signals,
            static_schedule: design.has_static_schedule(),
        }
    }

    /// The facts for one signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the snapshotted design.
    pub fn signal(&self, id: SignalId) -> &SignalInfo {
        &self.signals[id.raw() as usize]
    }

    /// The name of a signal (empty for an id outside the snapshot, which
    /// can only happen on a hand-built input).
    pub fn name(&self, id: SignalId) -> &str {
        self.signals
            .get(id.raw() as usize)
            .map(|s| s.name.as_str())
            .unwrap_or("")
    }

    /// The signals with at least one recorded definition, sorted by id —
    /// the deterministic iteration order every pass uses (the graph's own
    /// definition map is a hash map).
    pub fn defined_signals(&self) -> Vec<SignalId> {
        let mut ids: Vec<SignalId> = self.graph.defined_signals().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_sim::SignalRef;

    #[test]
    fn snapshot_captures_graph_annotations_and_counters() {
        let d = Design::new();
        let x = d.sig("x");
        let y = d.sig("y");
        x.range(-1.5, 1.5);
        d.declare_static_schedule();
        d.record_graph(true);
        for i in 0..10 {
            x.set(i as f64 * 0.1);
            y.set(x.get() * 2.0);
            d.tick();
        }
        d.record_graph(false);

        let input = LintInput::from_design(&d);
        assert!(input.static_schedule);
        assert_eq!(input.signals.len(), 2);
        let xi = input.signal(x.id());
        assert_eq!(xi.name, "x");
        assert_eq!(xi.writes, 10);
        assert_eq!(xi.range_override, Some(Interval::new(-1.5, 1.5)));
        assert!(xi.stat.is_some());
        assert_eq!(input.name(y.id()), "y");
        // Both x (constant stimulus defs) and y are defined, in id order.
        assert_eq!(input.defined_signals(), vec![x.id(), y.id()]);
        assert!(!input.graph.is_empty());
    }

    #[test]
    fn name_of_unknown_id_is_empty_not_a_panic() {
        let d = Design::new();
        d.sig("only");
        let input = LintInput::from_design(&d);
        assert_eq!(input.name(SignalId::from_raw(99)), "");
    }
}
