//! Property-based cross-checks: for randomly generated, fully typed
//! dataflow programs, the bit-true RTL interpreter over the recorded
//! graph must reproduce the simulation's fixed path exactly, and the
//! VHDL generator must accept the same programs.

use fixref_codegen::{generate_testbench, generate_vhdl, RtlInterpreter, VhdlOptions};
use fixref_fixed::{DType, OverflowMode, RoundingMode, Signedness};
use fixref_sim::{Design, SignalRef, Value};
use proptest::prelude::*;

/// One wire's definition in a random straight-line program; operands
/// reference the input or earlier wires only (declaration order =
/// dataflow order, which both back-ends require).
#[derive(Debug, Clone)]
enum Def {
    Scale { src: usize, k: f64 },
    AddPrev { a: usize, b: usize },
    SubConst { src: usize, c: f64 },
    MulPair { a: usize, b: usize },
    NegAbs { src: usize },
    Clamp { src: usize, lo: f64, hi: f64 },
    Slice { src: usize },
}

fn arb_def(max_src: usize) -> impl Strategy<Value = Def> {
    let src = 0..=max_src;
    prop_oneof![
        (src.clone(), -1.5f64..1.5).prop_map(|(src, k)| Def::Scale { src, k }),
        (src.clone(), src.clone()).prop_map(|(a, b)| Def::AddPrev { a, b }),
        (src.clone(), -1.0f64..1.0).prop_map(|(src, c)| Def::SubConst { src, c }),
        (src.clone(), src.clone()).prop_map(|(a, b)| Def::MulPair { a, b }),
        src.clone().prop_map(|src| Def::NegAbs { src }),
        (src.clone(), -1.0f64..0.0, 0.0f64..1.0).prop_map(|(src, lo, hi)| Def::Clamp {
            src,
            lo,
            hi
        }),
        src.prop_map(|src| Def::Slice { src }),
    ]
}

fn arb_dtype() -> impl Strategy<Value = DType> {
    (
        4i32..=16,
        2i32..=12,
        prop_oneof![Just(OverflowMode::Wrap), Just(OverflowMode::Saturate)],
    )
        .prop_map(|(n, f, o)| {
            DType::new(
                "p",
                n,
                f,
                Signedness::TwosComplement,
                o,
                RoundingMode::Round,
            )
            .expect("valid dtype")
        })
}

struct Program {
    design: Design,
    input: fixref_sim::Sig,
    wires: Vec<fixref_sim::Sig>,
    defs: Vec<Def>,
}

impl Program {
    fn build(defs: &[Def], types: &[DType]) -> Program {
        let d = Design::new();
        let input = d.sig_typed("x", DType::tc("in", 10, 8).expect("valid"));
        let wires: Vec<_> = defs
            .iter()
            .enumerate()
            .map(|(i, _)| d.sig_typed(&format!("w{i}"), types[i % types.len()].clone()))
            .collect();
        Program {
            design: d,
            input,
            wires,
            defs: defs.to_vec(),
        }
    }

    /// `operand(0)` is the input, `operand(i+1)` is wire `i` (clamped to
    /// already-defined wires).
    fn operand(&self, raw: usize, upto: usize) -> Value {
        if raw == 0 || upto == 0 {
            self.input.get()
        } else {
            self.wires[(raw - 1).min(upto - 1)].get()
        }
    }

    fn run_cycle(&self, x: f64) {
        self.input.set(x);
        for (i, def) in self.defs.iter().enumerate() {
            let v = match *def {
                Def::Scale { src, k } => self.operand(src, i) * k,
                Def::AddPrev { a, b } => self.operand(a, i) + self.operand(b, i),
                Def::SubConst { src, c } => self.operand(src, i) - c,
                Def::MulPair { a, b } => self.operand(a, i) * self.operand(b, i),
                Def::NegAbs { src } => (-self.operand(src, i)).abs(),
                Def::Clamp { src, lo, hi } => self
                    .operand(src, i)
                    .max(Value::from(lo))
                    .min(Value::from(hi)),
                Def::Slice { src } => self
                    .operand(src, i)
                    .select_positive(1.0.into(), (-1.0).into()),
            };
            self.wires[i].set(v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The RTL interpreter reproduces the simulation's fixed path exactly
    /// on every wire of every random program.
    #[test]
    fn interpreter_matches_simulation(
        defs in prop::collection::vec(arb_def(4), 1..10),
        types in prop::collection::vec(arb_dtype(), 1..4),
        stimulus in prop::collection::vec(-2.0f64..2.0, 2..20),
    ) {
        let p = Program::build(&defs, &types);
        // Record the structure with a two-value warmup (distinct values so
        // the input classifies as an input).
        p.design.record_graph(true);
        p.run_cycle(0.25);
        p.run_cycle(-0.75);
        p.design.record_graph(false);

        let mut rtl = RtlInterpreter::new(&p.design, &p.design.graph())
            .expect("typed straight-line program");
        p.design.reset_state();
        for (cycle, &x) in stimulus.iter().enumerate() {
            p.run_cycle(x);
            rtl.set_input(p.input.id(), x);
            rtl.step();
            rtl.tick();
            for (i, w) in p.wires.iter().enumerate() {
                let (_, sim_fix) = p.design.peek(w.id());
                prop_assert_eq!(
                    rtl.value(w.id()),
                    sim_fix,
                    "cycle {} wire {}", cycle, i
                );
            }
        }
    }

    /// Every random program generates structurally well-formed VHDL and a
    /// testbench with one assertion per cycle per output.
    #[test]
    fn vhdl_and_testbench_generate(
        defs in prop::collection::vec(arb_def(4), 1..8),
        types in prop::collection::vec(arb_dtype(), 1..4),
        cycles in 1usize..6,
    ) {
        let p = Program::build(&defs, &types);
        p.design.record_graph(true);
        p.run_cycle(0.25);
        p.run_cycle(-0.75);
        p.design.record_graph(false);

        let last = p.wires.last().expect("non-empty").id();
        let opts = VhdlOptions::named("rand").with_input(p.input.id());
        let vhdl = generate_vhdl(&p.design, &[last], &opts).expect("generates");
        prop_assert!(vhdl.contains("entity rand is"));
        prop_assert_eq!(
            vhdl.chars().filter(|&c| c == '(').count(),
            vhdl.chars().filter(|&c| c == ')').count()
        );

        let trace: Vec<f64> = (0..cycles).map(|i| (i as f64 * 0.37).sin()).collect();
        let tb = generate_testbench(&p.design, &[last], &opts, &[(p.input.id(), trace)])
            .expect("generates");
        prop_assert_eq!(tb.matches("assert ").count(), cycles);
        prop_assert!(tb.contains("report \"testbench passed\""));
    }
}
