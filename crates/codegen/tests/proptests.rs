//! Randomized cross-checks: for randomly generated, fully typed
//! dataflow programs, the bit-true RTL interpreter over the recorded
//! graph must reproduce the simulation's fixed path exactly, and the
//! VHDL generator must accept the same programs. Driven by the in-tree
//! deterministic PRNG (seeded sweeps replacing the original proptest
//! harness; same invariants, no external deps).

use fixref_codegen::{generate_testbench, generate_vhdl, RtlInterpreter, VhdlOptions};
use fixref_fixed::{DType, OverflowMode, Rng64, RoundingMode, Signedness};
use fixref_sim::{Design, SignalRef, Value};

const CASES: usize = 64;

/// One wire's definition in a random straight-line program; operands
/// reference the input or earlier wires only (declaration order =
/// dataflow order, which both back-ends require).
#[derive(Debug, Clone)]
enum Def {
    Scale { src: usize, k: f64 },
    AddPrev { a: usize, b: usize },
    SubConst { src: usize, c: f64 },
    MulPair { a: usize, b: usize },
    NegAbs { src: usize },
    Clamp { src: usize, lo: f64, hi: f64 },
    Slice { src: usize },
}

fn pick_def(rng: &mut Rng64, max_src: usize) -> Def {
    let src = |rng: &mut Rng64| rng.below(max_src as u64 + 1) as usize;
    match rng.below(7) {
        0 => Def::Scale {
            src: src(rng),
            k: rng.uniform(-1.5, 1.5),
        },
        1 => Def::AddPrev {
            a: src(rng),
            b: src(rng),
        },
        2 => Def::SubConst {
            src: src(rng),
            c: rng.uniform(-1.0, 1.0),
        },
        3 => Def::MulPair {
            a: src(rng),
            b: src(rng),
        },
        4 => Def::NegAbs { src: src(rng) },
        5 => Def::Clamp {
            src: src(rng),
            lo: rng.uniform(-1.0, 0.0),
            hi: rng.uniform(0.0, 1.0),
        },
        _ => Def::Slice { src: src(rng) },
    }
}

fn pick_defs(rng: &mut Rng64, lo: usize, hi: usize) -> Vec<Def> {
    let len = lo + rng.below((hi - lo) as u64) as usize;
    (0..len).map(|_| pick_def(rng, 4)).collect()
}

fn pick_dtype(rng: &mut Rng64) -> DType {
    let n = 4 + rng.below(13) as i32;
    let f = 2 + rng.below(11) as i32;
    let o = if rng.below(2) == 0 {
        OverflowMode::Wrap
    } else {
        OverflowMode::Saturate
    };
    DType::new(
        "p",
        n,
        f,
        Signedness::TwosComplement,
        o,
        RoundingMode::Round,
    )
    .expect("valid dtype")
}

fn pick_dtypes(rng: &mut Rng64, lo: usize, hi: usize) -> Vec<DType> {
    let len = lo + rng.below((hi - lo) as u64) as usize;
    (0..len).map(|_| pick_dtype(rng)).collect()
}

struct Program {
    design: Design,
    input: fixref_sim::Sig,
    wires: Vec<fixref_sim::Sig>,
    defs: Vec<Def>,
}

impl Program {
    fn build(defs: &[Def], types: &[DType]) -> Program {
        let d = Design::new();
        let input = d.sig_typed("x", DType::tc("in", 10, 8).expect("valid"));
        let wires: Vec<_> = defs
            .iter()
            .enumerate()
            .map(|(i, _)| d.sig_typed(&format!("w{i}"), types[i % types.len()].clone()))
            .collect();
        Program {
            design: d,
            input,
            wires,
            defs: defs.to_vec(),
        }
    }

    /// `operand(0)` is the input, `operand(i+1)` is wire `i` (clamped to
    /// already-defined wires).
    fn operand(&self, raw: usize, upto: usize) -> Value {
        if raw == 0 || upto == 0 {
            self.input.get()
        } else {
            self.wires[(raw - 1).min(upto - 1)].get()
        }
    }

    fn run_cycle(&self, x: f64) {
        self.input.set(x);
        for (i, def) in self.defs.iter().enumerate() {
            let v = match *def {
                Def::Scale { src, k } => self.operand(src, i) * k,
                Def::AddPrev { a, b } => self.operand(a, i) + self.operand(b, i),
                Def::SubConst { src, c } => self.operand(src, i) - c,
                Def::MulPair { a, b } => self.operand(a, i) * self.operand(b, i),
                Def::NegAbs { src } => (-self.operand(src, i)).abs(),
                Def::Clamp { src, lo, hi } => self
                    .operand(src, i)
                    .max(Value::from(lo))
                    .min(Value::from(hi)),
                Def::Slice { src } => self
                    .operand(src, i)
                    .select_positive(1.0.into(), (-1.0).into()),
            };
            self.wires[i].set(v);
        }
    }
}

/// The RTL interpreter reproduces the simulation's fixed path exactly
/// on every wire of every random program.
#[test]
fn interpreter_matches_simulation() {
    let mut rng = Rng64::seed_from_u64(0xC0DE_0001);
    for _ in 0..CASES {
        let defs = pick_defs(&mut rng, 1, 10);
        let types = pick_dtypes(&mut rng, 1, 4);
        let stim_len = 2 + rng.below(18) as usize;
        let stimulus: Vec<f64> = (0..stim_len).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let p = Program::build(&defs, &types);
        // Record the structure with a two-value warmup (distinct values so
        // the input classifies as an input).
        p.design.record_graph(true);
        p.run_cycle(0.25);
        p.run_cycle(-0.75);
        p.design.record_graph(false);

        let mut rtl =
            RtlInterpreter::new(&p.design, &p.design.graph()).expect("typed straight-line program");
        p.design.reset_state();
        for (cycle, &x) in stimulus.iter().enumerate() {
            p.run_cycle(x);
            rtl.set_input(p.input.id(), x);
            rtl.step();
            rtl.tick();
            for (i, w) in p.wires.iter().enumerate() {
                let (_, sim_fix) = p.design.peek(w.id());
                assert_eq!(rtl.value(w.id()), sim_fix, "cycle {} wire {}", cycle, i);
            }
        }
    }
}

/// Every random program generates structurally well-formed VHDL and a
/// testbench with one assertion per cycle per output.
#[test]
fn vhdl_and_testbench_generate() {
    let mut rng = Rng64::seed_from_u64(0xC0DE_0002);
    for _ in 0..CASES {
        let defs = pick_defs(&mut rng, 1, 8);
        let types = pick_dtypes(&mut rng, 1, 4);
        let cycles = 1 + rng.below(5) as usize;
        let p = Program::build(&defs, &types);
        p.design.record_graph(true);
        p.run_cycle(0.25);
        p.run_cycle(-0.75);
        p.design.record_graph(false);

        let last = p.wires.last().expect("non-empty").id();
        let opts = VhdlOptions::named("rand").with_input(p.input.id());
        let vhdl = generate_vhdl(&p.design, &[last], &opts).expect("generates");
        assert!(vhdl.contains("entity rand is"));
        assert_eq!(
            vhdl.chars().filter(|&c| c == '(').count(),
            vhdl.chars().filter(|&c| c == ')').count()
        );

        let trace: Vec<f64> = (0..cycles).map(|i| (i as f64 * 0.37).sin()).collect();
        let tb = generate_testbench(&p.design, &[last], &opts, &[(p.input.id(), trace)])
            .expect("generates");
        assert_eq!(tb.matches("assert ").count(), cycles);
        assert!(tb.contains("report \"testbench passed\""));
    }
}
