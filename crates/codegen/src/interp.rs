//! A bit-true RTL interpreter over the recorded signal-flow graph.
//!
//! The VHDL generator's correctness rests on one claim: the recorded graph
//! plus the decided types reproduce the simulation's fixed-point behavior.
//! [`RtlInterpreter`] checks that claim executably — it evaluates the
//! graph cycle by cycle with exactly the quantization semantics the
//! emitted VHDL implements, so a model can be cross-checked
//! bit-for-bit against its own [`Design`] simulation (see the
//! `rtl_interpreter_matches_simulation` integration test) without an
//! external VHDL simulator.
//!
//! Evaluation order: combinational signals are evaluated in declaration
//! order each cycle, which matches models whose statements assign signals
//! in the order they were declared (all the workload models do). Register
//! signals latch at [`RtlInterpreter::tick`]. A model that assigns wires
//! out of declaration order will disagree with its simulation — the
//! cross-check makes that visible rather than silently wrong.

use std::collections::HashMap;

use fixref_fixed::{quantize, DType};
use fixref_sim::{Design, Graph, NodeId, Op, SignalId, SignalKind};

use crate::expr::CodegenError;

#[derive(Debug, Clone)]
struct SigInfo {
    id: SignalId,
    name: String,
    kind: SignalKind,
    dtype: DType,
    defs: Vec<NodeId>,
    is_input: bool,
}

/// Cycle-accurate interpreter of a refined design's dataflow.
///
/// # Example
///
/// ```
/// use fixref_codegen::RtlInterpreter;
/// use fixref_fixed::DType;
/// use fixref_sim::{Design, SignalRef};
///
/// # fn main() -> Result<(), fixref_codegen::CodegenError> {
/// let d = Design::new();
/// let t: DType = "<8,6,tc,st,rd>".parse().expect("valid");
/// let x = d.sig_typed("x", t.clone());
/// let y = d.sig_typed("y", t);
/// d.record_graph(true);
/// for i in 0..4 {
///     x.set(0.2 * i as f64);
///     y.set(x.get() * 0.5 + 0.25);
/// }
///
/// let mut rtl = RtlInterpreter::new(&d, &d.graph())?;
/// rtl.set_input(x.id(), 0.6);
/// rtl.step();
/// assert_eq!(rtl.value(y.id()), y.get().fix());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RtlInterpreter {
    graph: Graph,
    signals: Vec<SigInfo>,
    /// Current on-grid values, indexed like `signals`.
    values: Vec<f64>,
    /// Pending register values, committed at `tick`.
    next: Vec<Option<f64>>,
    index: HashMap<SignalId, usize>,
}

impl RtlInterpreter {
    /// Builds an interpreter from a design's decided types and recorded
    /// graph.
    ///
    /// Signals are classified like the VHDL generator: externally driven
    /// (several distinct constant definitions, or none at all but read) ⇒
    /// inputs; one definition ⇒ wires/registers; anything else is an
    /// error.
    ///
    /// # Errors
    ///
    /// * [`CodegenError::UntypedSignal`] — a participating signal has no
    ///   decided type;
    /// * [`CodegenError::MultipleDefinitions`] — a signal has several
    ///   structurally different definitions.
    pub fn new(design: &Design, graph: &Graph) -> Result<Self, CodegenError> {
        let mut signals = Vec::new();
        let mut index = HashMap::new();

        let mut read_somewhere: Vec<SignalId> = graph
            .iter()
            .filter_map(|(_, n)| match n.op {
                Op::Read(s) => Some(s),
                _ => None,
            })
            .collect();
        read_somewhere.sort();
        read_somewhere.dedup();

        for i in 0..design.num_signals() as u32 {
            let id = SignalId::from_raw(i);
            let defs = graph.defs(id).to_vec();
            let participates = !defs.is_empty() || read_somewhere.contains(&id);
            if !participates {
                continue;
            }
            let all_const = !defs.is_empty()
                && defs
                    .iter()
                    .all(|&d| matches!(graph.node(d).op, Op::Const(_)));
            let is_input = defs.is_empty() || (defs.len() > 1 && all_const);
            if defs.len() > 1 && !is_input {
                return Err(CodegenError::MultipleDefinitions {
                    name: design.name_of(id),
                });
            }
            let dtype = design
                .dtype_of(id)
                .ok_or_else(|| CodegenError::UntypedSignal {
                    name: design.name_of(id),
                })?;
            index.insert(id, signals.len());
            signals.push(SigInfo {
                id,
                name: design.name_of(id),
                kind: design.report_by_id(id).kind,
                dtype,
                defs: if is_input { Vec::new() } else { defs },
                is_input,
            });
        }

        let n = signals.len();
        Ok(RtlInterpreter {
            graph: graph.clone(),
            signals,
            values: vec![0.0; n],
            next: vec![None; n],
            index,
        })
    }

    /// The ids of the inferred input signals.
    pub fn inputs(&self) -> Vec<SignalId> {
        self.signals
            .iter()
            .filter(|s| s.is_input)
            .map(|s| s.id)
            .collect()
    }

    /// Drives an input signal; the value is quantized through the input's
    /// type exactly like a simulation assignment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not one of the interpreter's input signals.
    pub fn set_input(&mut self, id: SignalId, value: f64) {
        let idx = *self
            .index
            .get(&id)
            .unwrap_or_else(|| panic!("{id} does not participate in the dataflow"));
        assert!(
            self.signals[idx].is_input,
            "{} is not an input",
            self.signals[idx].name
        );
        self.values[idx] = quantize(value, &self.signals[idx].dtype).value;
    }

    /// Evaluates one combinational cycle: every wire in declaration order,
    /// every register's next value. Call [`RtlInterpreter::tick`] to latch
    /// the registers.
    pub fn step(&mut self) {
        for i in 0..self.signals.len() {
            if self.signals[i].is_input || self.signals[i].defs.is_empty() {
                continue;
            }
            let def = self.signals[i].defs[0];
            let raw = self.eval(def);
            let q = quantize(raw, &self.signals[i].dtype).value;
            match self.signals[i].kind {
                SignalKind::Wire => self.values[i] = q,
                SignalKind::Register => self.next[i] = Some(q),
            }
        }
    }

    /// Commits the registers (the clock edge).
    pub fn tick(&mut self) {
        for (v, n) in self.values.iter_mut().zip(&mut self.next) {
            if let Some(x) = n.take() {
                *v = x;
            }
        }
    }

    /// The current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not participate in the dataflow.
    pub fn value(&self, id: SignalId) -> f64 {
        self.values[*self
            .index
            .get(&id)
            .unwrap_or_else(|| panic!("{id} does not participate in the dataflow"))]
    }

    fn eval(&self, root: NodeId) -> f64 {
        let node = self.graph.node(root).clone();
        match &node.op {
            Op::Const(c) => *c,
            Op::Read(s) => self.index.get(s).map(|&i| self.values[i]).unwrap_or(0.0),
            Op::Add => self.eval(node.args[0]) + self.eval(node.args[1]),
            Op::Sub => self.eval(node.args[0]) - self.eval(node.args[1]),
            Op::Mul => self.eval(node.args[0]) * self.eval(node.args[1]),
            Op::Div => self.eval(node.args[0]) / self.eval(node.args[1]),
            Op::Neg => -self.eval(node.args[0]),
            Op::Abs => self.eval(node.args[0]).abs(),
            Op::Min => self.eval(node.args[0]).min(self.eval(node.args[1])),
            Op::Max => self.eval(node.args[0]).max(self.eval(node.args[1])),
            Op::Cast(dt) => quantize(self.eval(node.args[0]), dt).value,
            Op::Select => {
                if self.eval(node.args[0]) > 0.0 {
                    self.eval(node.args[1])
                } else {
                    self.eval(node.args[2])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_sim::SignalRef;

    fn tc(n: i32, f: i32) -> DType {
        DType::tc("t", n, f).expect("valid")
    }

    #[test]
    fn combinational_chain_matches_simulation() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        let z = d.sig_typed("z", tc(10, 8));
        d.record_graph(true);
        // Two distinct input values so x classifies as an input.
        for v in [0.1, -0.3] {
            x.set(v);
            y.set(x.get() * 0.5 + 0.25);
            z.set(y.get() - x.get());
        }
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        assert_eq!(rtl.inputs(), vec![x.id()]);
        for v in [0.7, -0.9, 0.33, -1.0] {
            x.set(v);
            y.set(x.get() * 0.5 + 0.25);
            z.set(y.get() - x.get());

            rtl.set_input(x.id(), v);
            rtl.step();
            assert_eq!(rtl.value(y.id()), y.get().fix(), "y at {v}");
            assert_eq!(rtl.value(z.id()), z.get().fix(), "z at {v}");
        }
    }

    #[test]
    fn registers_latch_on_tick() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let r = d.reg_typed("r", tc(8, 6));
        d.record_graph(true);
        x.set(0.25);
        x.set(0.5);
        r.set(x.get());
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        rtl.set_input(x.id(), 0.75);
        rtl.step();
        assert_eq!(rtl.value(r.id()), 0.0, "pre-tick");
        rtl.tick();
        assert_eq!(rtl.value(r.id()), 0.75, "post-tick");
    }

    #[test]
    fn accumulator_with_saturation_matches_simulation() {
        let d = Design::new();
        let sat = tc(6, 4); // range [-2, 1.9375], saturating
        let x = d.sig_typed("x", tc(8, 6));
        let acc = d.reg_typed("acc", sat);
        d.record_graph(true);
        let drive = |v: f64| {
            x.set(v);
            acc.set(acc.get() + x.get());
            d.tick();
        };
        drive(0.3);
        drive(0.4);

        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        // Replay from reset on both sides.
        d.reset_state();
        for i in 0..40 {
            let v = 0.3 + 0.01 * (i % 5) as f64; // pushes acc into saturation
            x.set(v);
            acc.set(acc.get() + x.get());
            d.tick();

            rtl.set_input(x.id(), v);
            rtl.step();
            rtl.tick();
            assert_eq!(rtl.value(acc.id()), acc.get().fix(), "cycle {i}");
        }
        // Saturation actually engaged.
        assert!((rtl.value(acc.id()) - 1.9375).abs() < 1e-12);
    }

    #[test]
    fn select_and_cast_semantics() {
        let d = Design::new();
        let t = tc(8, 6);
        let x = d.sig_typed("x", t.clone());
        let y = d.sig_typed("y", tc(2, 0));
        d.record_graph(true);
        for v in [0.4, -0.4] {
            x.set(v);
            y.set(
                x.get()
                    .cast(&tc(4, 2))
                    .select_positive(1.0.into(), (-1.0).into()),
            );
        }
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        for v in [0.9, -0.9, 0.1, -0.1, 0.0] {
            x.set(v);
            y.set(
                x.get()
                    .cast(&tc(4, 2))
                    .select_positive(1.0.into(), (-1.0).into()),
            );
            rtl.set_input(x.id(), v);
            rtl.step();
            assert_eq!(rtl.value(y.id()), y.get().fix(), "at {v}");
        }
    }

    #[test]
    fn untyped_signal_rejected() {
        let d = Design::new();
        let x = d.sig("x");
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.1);
        x.set(0.2);
        y.set(x.get());
        let err = RtlInterpreter::new(&d, &d.graph()).unwrap_err();
        assert!(matches!(err, CodegenError::UntypedSignal { .. }));
    }

    #[test]
    #[should_panic(expected = "is not an input")]
    fn driving_a_wire_panics() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.1);
        x.set(0.2);
        y.set(x.get() + 0.1);
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        rtl.set_input(y.id(), 1.0);
    }
}
