//! A bit-true RTL interpreter over the recorded signal-flow graph.
//!
//! The VHDL generator's correctness rests on one claim: the recorded graph
//! plus the decided types reproduce the simulation's fixed-point behavior.
//! [`RtlInterpreter`] checks that claim executably — it evaluates the
//! graph cycle by cycle with exactly the quantization semantics the
//! emitted VHDL implements, so a model can be cross-checked
//! bit-for-bit against its own [`Design`] simulation (see the
//! `rtl_interpreter_matches_simulation` integration test) without an
//! external VHDL simulator.
//!
//! Evaluation order: combinational signals are evaluated in topological
//! order of their wire-read dependencies (derived from the recorded
//! graph), so models that assign wires out of declaration order still
//! evaluate like their simulation. Register reads are state, not
//! combinational dependencies — registers evaluate after the wires they
//! sample and latch at [`RtlInterpreter::tick`]. A genuine combinational
//! cycle (wires feeding each other with no register in the loop) has no
//! valid order and is rejected with
//! [`CodegenError::CombinationalCycle`].

use std::collections::HashMap;

use fixref_fixed::{quantize, DType};
use fixref_sim::{Design, Graph, NodeId, Op, SignalId, SignalKind};

use crate::expr::CodegenError;

#[derive(Debug, Clone)]
struct SigInfo {
    id: SignalId,
    name: String,
    kind: SignalKind,
    dtype: DType,
    defs: Vec<NodeId>,
    is_input: bool,
}

/// Cycle-accurate interpreter of a refined design's dataflow.
///
/// # Example
///
/// ```
/// use fixref_codegen::RtlInterpreter;
/// use fixref_fixed::DType;
/// use fixref_sim::{Design, SignalRef};
///
/// # fn main() -> Result<(), fixref_codegen::CodegenError> {
/// let d = Design::new();
/// let t: DType = "<8,6,tc,st,rd>".parse().expect("valid");
/// let x = d.sig_typed("x", t.clone());
/// let y = d.sig_typed("y", t);
/// d.record_graph(true);
/// for i in 0..4 {
///     x.set(0.2 * i as f64);
///     y.set(x.get() * 0.5 + 0.25);
/// }
///
/// let mut rtl = RtlInterpreter::new(&d, &d.graph())?;
/// rtl.set_input(x.id(), 0.6);
/// rtl.step();
/// assert_eq!(rtl.value(y.id()), y.get().fix());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RtlInterpreter {
    graph: Graph,
    signals: Vec<SigInfo>,
    /// Current on-grid values, indexed like `signals`.
    values: Vec<f64>,
    /// Pending register values, committed at `tick`.
    next: Vec<Option<f64>>,
    index: HashMap<SignalId, usize>,
    /// Indices of the evaluated (non-input, defined) signals in
    /// topological order of their wire-read dependencies.
    order: Vec<usize>,
}

impl RtlInterpreter {
    /// Builds an interpreter from a design's decided types and recorded
    /// graph.
    ///
    /// Signals are classified like the VHDL generator: externally driven
    /// (several distinct constant definitions, or none at all but read) ⇒
    /// inputs; one definition ⇒ wires/registers; anything else is an
    /// error.
    ///
    /// # Errors
    ///
    /// * [`CodegenError::UntypedSignal`] — a participating signal has no
    ///   decided type;
    /// * [`CodegenError::MultipleDefinitions`] — a signal has several
    ///   structurally different definitions;
    /// * [`CodegenError::CombinationalCycle`] — the wires form a
    ///   dependency cycle with no register in the loop.
    pub fn new(design: &Design, graph: &Graph) -> Result<Self, CodegenError> {
        let mut signals = Vec::new();
        let mut index = HashMap::new();

        let mut read_somewhere: Vec<SignalId> = graph
            .iter()
            .filter_map(|(_, n)| match n.op {
                Op::Read(s) => Some(s),
                _ => None,
            })
            .collect();
        read_somewhere.sort();
        read_somewhere.dedup();

        for i in 0..design.num_signals() as u32 {
            let id = SignalId::from_raw(i);
            let defs = graph.defs(id).to_vec();
            let participates = !defs.is_empty() || read_somewhere.contains(&id);
            if !participates {
                continue;
            }
            let all_const = !defs.is_empty()
                && defs
                    .iter()
                    .all(|&d| matches!(graph.node(d).op, Op::Const(_)));
            let is_input = defs.is_empty() || (defs.len() > 1 && all_const);
            if defs.len() > 1 && !is_input {
                return Err(CodegenError::MultipleDefinitions {
                    name: design.name_of(id),
                });
            }
            let dtype = design
                .dtype_of(id)
                .ok_or_else(|| CodegenError::UntypedSignal {
                    name: design.name_of(id),
                })?;
            index.insert(id, signals.len());
            signals.push(SigInfo {
                id,
                name: design.name_of(id),
                kind: design.report_by_id(id).kind,
                dtype,
                defs: if is_input { Vec::new() } else { defs },
                is_input,
            });
        }

        let n = signals.len();
        let order = eval_order(graph, &signals, &index)?;
        Ok(RtlInterpreter {
            graph: graph.clone(),
            signals,
            values: vec![0.0; n],
            next: vec![None; n],
            index,
            order,
        })
    }

    /// The ids of the inferred input signals.
    pub fn inputs(&self) -> Vec<SignalId> {
        self.signals
            .iter()
            .filter(|s| s.is_input)
            .map(|s| s.id)
            .collect()
    }

    /// Drives an input signal; the value is quantized through the input's
    /// type exactly like a simulation assignment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not one of the interpreter's input signals.
    pub fn set_input(&mut self, id: SignalId, value: f64) {
        let idx = *self
            .index
            .get(&id)
            .unwrap_or_else(|| panic!("{id} does not participate in the dataflow"));
        assert!(
            self.signals[idx].is_input,
            "{} is not an input",
            self.signals[idx].name
        );
        self.values[idx] = quantize(value, &self.signals[idx].dtype).value;
    }

    /// Evaluates one combinational cycle: every wire in topological
    /// dependency order, every register's next value. Call
    /// [`RtlInterpreter::tick`] to latch the registers.
    pub fn step(&mut self) {
        for k in 0..self.order.len() {
            let i = self.order[k];
            let def = self.signals[i].defs[0];
            let raw = self.eval(def);
            let q = quantize(raw, &self.signals[i].dtype).value;
            match self.signals[i].kind {
                SignalKind::Wire => self.values[i] = q,
                SignalKind::Register => self.next[i] = Some(q),
            }
        }
    }

    /// Commits the registers (the clock edge).
    pub fn tick(&mut self) {
        for (v, n) in self.values.iter_mut().zip(&mut self.next) {
            if let Some(x) = n.take() {
                *v = x;
            }
        }
    }

    /// The current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not participate in the dataflow.
    pub fn value(&self, id: SignalId) -> f64 {
        self.values[*self
            .index
            .get(&id)
            .unwrap_or_else(|| panic!("{id} does not participate in the dataflow"))]
    }

    /// The evaluation order over all evaluated signals, for tests.
    #[cfg(test)]
    fn order_names(&self) -> Vec<String> {
        self.order
            .iter()
            .map(|&i| self.signals[i].name.clone())
            .collect()
    }

    fn eval(&self, root: NodeId) -> f64 {
        let node = self.graph.node(root).clone();
        match &node.op {
            Op::Const(c) => *c,
            Op::Read(s) => self.index.get(s).map(|&i| self.values[i]).unwrap_or(0.0),
            Op::Add => self.eval(node.args[0]) + self.eval(node.args[1]),
            Op::Sub => self.eval(node.args[0]) - self.eval(node.args[1]),
            Op::Mul => self.eval(node.args[0]) * self.eval(node.args[1]),
            Op::Div => self.eval(node.args[0]) / self.eval(node.args[1]),
            Op::Neg => -self.eval(node.args[0]),
            Op::Abs => self.eval(node.args[0]).abs(),
            Op::Min => self.eval(node.args[0]).min(self.eval(node.args[1])),
            Op::Max => self.eval(node.args[0]).max(self.eval(node.args[1])),
            Op::Cast(dt) => quantize(self.eval(node.args[0]), dt).value,
            Op::Select => {
                if self.eval(node.args[0]) > 0.0 {
                    self.eval(node.args[1])
                } else {
                    self.eval(node.args[2])
                }
            }
        }
    }
}

/// Computes the topological evaluation order of the non-input, defined
/// signals: a signal is ready once every *wire* it reads has been
/// evaluated. Register reads are latched state (not combinational
/// dependencies) and input values are externally driven, so neither
/// constrains the order; among ready signals, declaration order breaks
/// ties, keeping the order deterministic.
fn eval_order(
    graph: &Graph,
    signals: &[SigInfo],
    index: &HashMap<SignalId, usize>,
) -> Result<Vec<usize>, CodegenError> {
    // deps[i] = evaluated-wire indices signal i's definition reads.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); signals.len()];
    for (i, info) in signals.iter().enumerate() {
        let Some(&def) = info.defs.first() else {
            continue;
        };
        let mut stack = vec![def];
        let mut seen = vec![def];
        while let Some(node) = stack.pop() {
            let n = graph.node(node);
            if let Op::Read(sig) = n.op {
                if let Some(&j) = index.get(&sig) {
                    let dep = &signals[j];
                    if !dep.is_input
                        && !dep.defs.is_empty()
                        && dep.kind == SignalKind::Wire
                        && !deps[i].contains(&j)
                    {
                        deps[i].push(j);
                    }
                }
            }
            for &arg in &n.args {
                if !seen.contains(&arg) {
                    seen.push(arg);
                    stack.push(arg);
                }
            }
        }
    }

    let evaluated: Vec<usize> = (0..signals.len())
        .filter(|&i| !signals[i].is_input && !signals[i].defs.is_empty())
        .collect();
    let mut placed = vec![false; signals.len()];
    let mut order = Vec::with_capacity(evaluated.len());
    while order.len() < evaluated.len() {
        let mut progressed = false;
        for &i in &evaluated {
            if !placed[i] && deps[i].iter().all(|&j| placed[j]) {
                placed[i] = true;
                order.push(i);
                progressed = true;
            }
        }
        if !progressed {
            // Every unplaced signal waits on another unplaced wire: a
            // genuine combinational cycle. Report a wire on it.
            let culprit = evaluated
                .iter()
                .find(|&&i| !placed[i] && signals[i].kind == SignalKind::Wire)
                .or_else(|| evaluated.iter().find(|&&i| !placed[i]))
                .expect("unplaced signal exists when no progress is made");
            return Err(CodegenError::CombinationalCycle {
                name: signals[*culprit].name.clone(),
            });
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_sim::SignalRef;

    fn tc(n: i32, f: i32) -> DType {
        DType::tc("t", n, f).expect("valid")
    }

    #[test]
    fn combinational_chain_matches_simulation() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        let z = d.sig_typed("z", tc(10, 8));
        d.record_graph(true);
        // Two distinct input values so x classifies as an input.
        for v in [0.1, -0.3] {
            x.set(v);
            y.set(x.get() * 0.5 + 0.25);
            z.set(y.get() - x.get());
        }
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        assert_eq!(rtl.inputs(), vec![x.id()]);
        for v in [0.7, -0.9, 0.33, -1.0] {
            x.set(v);
            y.set(x.get() * 0.5 + 0.25);
            z.set(y.get() - x.get());

            rtl.set_input(x.id(), v);
            rtl.step();
            assert_eq!(rtl.value(y.id()), y.get().fix(), "y at {v}");
            assert_eq!(rtl.value(z.id()), z.get().fix(), "z at {v}");
        }
    }

    #[test]
    fn registers_latch_on_tick() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let r = d.reg_typed("r", tc(8, 6));
        d.record_graph(true);
        x.set(0.25);
        x.set(0.5);
        r.set(x.get());
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        rtl.set_input(x.id(), 0.75);
        rtl.step();
        assert_eq!(rtl.value(r.id()), 0.0, "pre-tick");
        rtl.tick();
        assert_eq!(rtl.value(r.id()), 0.75, "post-tick");
    }

    #[test]
    fn accumulator_with_saturation_matches_simulation() {
        let d = Design::new();
        let sat = tc(6, 4); // range [-2, 1.9375], saturating
        let x = d.sig_typed("x", tc(8, 6));
        let acc = d.reg_typed("acc", sat);
        d.record_graph(true);
        let drive = |v: f64| {
            x.set(v);
            acc.set(acc.get() + x.get());
            d.tick();
        };
        drive(0.3);
        drive(0.4);

        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        // Replay from reset on both sides.
        d.reset_state();
        for i in 0..40 {
            let v = 0.3 + 0.01 * (i % 5) as f64; // pushes acc into saturation
            x.set(v);
            acc.set(acc.get() + x.get());
            d.tick();

            rtl.set_input(x.id(), v);
            rtl.step();
            rtl.tick();
            assert_eq!(rtl.value(acc.id()), acc.get().fix(), "cycle {i}");
        }
        // Saturation actually engaged.
        assert!((rtl.value(acc.id()) - 1.9375).abs() < 1e-12);
    }

    #[test]
    fn select_and_cast_semantics() {
        let d = Design::new();
        let t = tc(8, 6);
        let x = d.sig_typed("x", t.clone());
        let y = d.sig_typed("y", tc(2, 0));
        d.record_graph(true);
        for v in [0.4, -0.4] {
            x.set(v);
            y.set(
                x.get()
                    .cast(&tc(4, 2))
                    .select_positive(1.0.into(), (-1.0).into()),
            );
        }
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        for v in [0.9, -0.9, 0.1, -0.1, 0.0] {
            x.set(v);
            y.set(
                x.get()
                    .cast(&tc(4, 2))
                    .select_positive(1.0.into(), (-1.0).into()),
            );
            rtl.set_input(x.id(), v);
            rtl.step();
            assert_eq!(rtl.value(y.id()), y.get().fix(), "at {v}");
        }
    }

    /// Wires declared in the *reverse* of their dependency order must
    /// still evaluate like the simulation (regression: the interpreter
    /// used to walk declaration order and silently disagreed).
    #[test]
    fn out_of_declaration_order_wires_match_simulation() {
        let d = Design::new();
        // Declaration order: z, y, x — but dataflow is x -> y -> z.
        let z = d.sig_typed("z", tc(12, 8));
        let y = d.sig_typed("y", tc(10, 8));
        let x = d.sig_typed("x", tc(8, 6));
        d.record_graph(true);
        let drive = |v: f64| {
            x.set(v);
            y.set(x.get() * 0.5 + 0.25);
            z.set(y.get() + x.get());
        };
        drive(0.1);
        drive(-0.3);
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        assert_eq!(rtl.order_names(), vec!["y", "z"], "dependency order");
        for v in [0.7, -0.9, 0.33, -1.0] {
            drive(v);
            rtl.set_input(x.id(), v);
            rtl.step();
            assert_eq!(rtl.value(y.id()), y.get().fix(), "y at {v}");
            assert_eq!(rtl.value(z.id()), z.get().fix(), "z at {v}");
        }
    }

    /// A register in the loop breaks the cycle; pure wire loops error.
    #[test]
    fn combinational_cycle_rejected_register_loop_accepted() {
        let d = Design::new();
        let a = d.sig_typed("a", tc(8, 6));
        let b = d.sig_typed("b", tc(8, 6));
        d.record_graph(true);
        // a and b feed each other combinationally.
        a.set(b.get() + 0.25);
        b.set(a.get() * 0.5);
        let err = RtlInterpreter::new(&d, &d.graph()).unwrap_err();
        assert!(matches!(err, CodegenError::CombinationalCycle { .. }));

        let d2 = Design::new();
        let w = d2.sig_typed("w", tc(8, 6));
        let r = d2.reg_typed("r", tc(8, 6));
        d2.record_graph(true);
        // Same loop, but through a register: valid.
        w.set(r.get() + 0.25);
        r.set(w.get() * 0.5);
        assert!(RtlInterpreter::new(&d2, &d2.graph()).is_ok());
    }

    #[test]
    fn untyped_signal_rejected() {
        let d = Design::new();
        let x = d.sig("x");
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.1);
        x.set(0.2);
        y.set(x.get());
        let err = RtlInterpreter::new(&d, &d.graph()).unwrap_err();
        assert!(matches!(err, CodegenError::UntypedSignal { .. }));
    }

    #[test]
    #[should_panic(expected = "is not an input")]
    fn driving_a_wire_panics() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.1);
        x.set(0.2);
        y.set(x.get() + 0.1);
        let mut rtl = RtlInterpreter::new(&d, &d.graph()).expect("builds");
        rtl.set_input(y.id(), 1.0);
    }
}
