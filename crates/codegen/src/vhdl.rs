//! Top-level VHDL entity generation.

use std::collections::HashMap;
use std::fmt::Write as _;

use fixref_sim::{Design, Op, SignalId, SignalKind};

use crate::expr::{vhdl_name, CodegenError, ExprGen};
use crate::format::Fmt;

/// Options for [`generate_vhdl`].
#[derive(Debug, Clone)]
pub struct VhdlOptions {
    /// Entity name.
    pub entity: String,
    /// Clock port name (emitted only when the design has registers).
    pub clock: String,
    /// Synchronous-reset port name.
    pub reset: String,
    /// Resolution (LSB position) used to encode literal constants.
    pub const_lsb: i32,
    /// Signals to force-classify as input ports, in addition to the
    /// inferred ones (externally driven: several distinct constant
    /// definitions, or no definition at all).
    pub inputs: Vec<SignalId>,
}

impl VhdlOptions {
    /// Defaults with the given entity name: `clk`/`rst` ports, constants
    /// at 2^-14 resolution.
    pub fn named(entity: impl Into<String>) -> Self {
        VhdlOptions {
            entity: entity.into(),
            clock: "clk".to_string(),
            reset: "rst".to_string(),
            const_lsb: -14,
            inputs: Vec::new(),
        }
    }

    /// Adds an explicit input port.
    pub fn with_input(mut self, id: SignalId) -> Self {
        self.inputs.push(id);
        self
    }
}

#[derive(Debug, PartialEq)]
enum Class {
    Input,
    Wire,
    Register,
    Skip,
}

/// Generates a synthesizable VHDL entity from the design's recorded
/// signal-flow graph and decided types.
///
/// `outputs` lists the signals exposed as output ports; input ports are
/// the externally-driven signals (inferred, plus
/// [`VhdlOptions::inputs`]).
///
/// # Errors
///
/// * [`CodegenError::UntypedSignal`] — a signal in the emitted dataflow
///   has no decided type;
/// * [`CodegenError::MissingDefinition`] — a requested output was never
///   assigned while recording;
/// * [`CodegenError::MultipleDefinitions`] — a signal was assigned from
///   several program points (restructure with `select_positive`);
/// * [`CodegenError::UnsupportedOp`] — e.g. division by a non-constant.
pub fn generate_vhdl(
    design: &Design,
    outputs: &[SignalId],
    options: &VhdlOptions,
) -> Result<String, CodegenError> {
    crate::observed(design, "codegen.generate_vhdl", || {
        generate_vhdl_impl(design, outputs, options)
    })
}

fn generate_vhdl_impl(
    design: &Design,
    outputs: &[SignalId],
    options: &VhdlOptions,
) -> Result<String, CodegenError> {
    let graph = design.graph();

    // Which signals are read anywhere in the dataflow?
    let mut read_somewhere: Vec<SignalId> = graph
        .iter()
        .filter_map(|(_, n)| match n.op {
            Op::Read(s) => Some(s),
            _ => None,
        })
        .collect();
    read_somewhere.sort();
    read_somewhere.dedup();

    // Classify every signal.
    let mut classes: HashMap<SignalId, Class> = HashMap::new();
    for i in 0..design.num_signals() as u32 {
        let id = SignalId::from_raw(i);
        let defs = graph.defs(id);
        let class = if options.inputs.contains(&id) {
            Class::Input
        } else if defs.is_empty() {
            if read_somewhere.contains(&id) {
                Class::Input
            } else {
                Class::Skip
            }
        } else if defs.len() > 1 {
            let all_const = defs
                .iter()
                .all(|&d| matches!(graph.node(d).op, Op::Const(_)));
            if all_const {
                Class::Input
            } else {
                return Err(CodegenError::MultipleDefinitions {
                    name: design.name_of(id),
                });
            }
        } else {
            match design.report_by_id(id).kind {
                SignalKind::Wire => Class::Wire,
                SignalKind::Register => Class::Register,
            }
        };
        classes.insert(id, class);
    }
    for &out in outputs {
        if matches!(classes.get(&out), Some(Class::Skip) | None) {
            return Err(CodegenError::MissingDefinition {
                name: design.name_of(out),
            });
        }
    }

    let gen = ExprGen {
        design,
        graph: &graph,
        const_lsb: options.const_lsb,
    };

    // Collect port and internal declarations.
    let mut inputs: Vec<(SignalId, String, Fmt)> = Vec::new();
    let mut wires: Vec<(SignalId, String, Fmt)> = Vec::new();
    let mut registers: Vec<(SignalId, String, Fmt)> = Vec::new();
    for i in 0..design.num_signals() as u32 {
        let id = SignalId::from_raw(i);
        let bucket = match classes[&id] {
            Class::Skip => continue,
            Class::Input => &mut inputs,
            Class::Wire => &mut wires,
            Class::Register => &mut registers,
        };
        let (name, fmt, _) = gen.signal_fmt(id)?;
        bucket.push((id, name, fmt));
    }

    let has_registers = !registers.is_empty();
    let mut out = String::new();
    let w = &mut out;

    let _ = writeln!(
        w,
        "-- Generated by fixref-codegen from the recorded signal-flow graph."
    );
    let _ = writeln!(
        w,
        "-- Formats are the refinement flow's decided fixed-point types."
    );
    let _ = writeln!(w, "library ieee;");
    let _ = writeln!(w, "use ieee.std_logic_1164.all;");
    let _ = writeln!(w, "use ieee.numeric_std.all;");
    let _ = writeln!(w);
    let _ = writeln!(w, "entity {} is", options.entity);
    let _ = writeln!(w, "  port (");
    let mut ports: Vec<String> = Vec::new();
    if has_registers {
        ports.push(format!("    {} : in  std_logic", options.clock));
        ports.push(format!("    {} : in  std_logic", options.reset));
    }
    for (_, name, fmt) in &inputs {
        ports.push(format!(
            "    {name} : in  signed({} downto 0)  -- lsb 2^{}",
            fmt.width() - 1,
            fmt.lsb
        ));
    }
    for &oid in outputs {
        let (name, fmt, _) = gen.signal_fmt(oid)?;
        ports.push(format!(
            "    {name}_o : out signed({} downto 0)  -- lsb 2^{}",
            fmt.width() - 1,
            fmt.lsb
        ));
    }
    // Join ports with ';' while keeping trailing comments intact.
    for (i, p) in ports.iter().enumerate() {
        let (code, comment) = match p.find("--") {
            Some(pos) => (p[..pos].trim_end(), &p[pos..]),
            None => (p.trim_end(), ""),
        };
        let sep = if i + 1 == ports.len() { "" } else { ";" };
        if comment.is_empty() {
            let _ = writeln!(w, "{code}{sep}");
        } else {
            let _ = writeln!(w, "{code}{sep}  {comment}");
        }
    }
    let _ = writeln!(w, "  );");
    let _ = writeln!(w, "end entity {};", options.entity);
    let _ = writeln!(w);
    let _ = writeln!(w, "architecture rtl of {} is", options.entity);
    let _ = writeln!(w, "{}", HELPERS);

    for (_, name, fmt) in wires.iter().chain(&registers) {
        let _ = writeln!(
            w,
            "  signal {name} : signed({} downto 0) := (others => '0');  -- lsb 2^{}",
            fmt.width() - 1,
            fmt.lsb
        );
    }
    let _ = writeln!(w, "begin");

    // Concurrent wire assignments.
    for (id, name, _) in &wires {
        let (code, fmt) = gen.emit(graph.defs(*id)[0])?;
        let (_, target, dtype) = gen.signal_fmt(*id)?;
        let rhs = gen.quantize(&code, fmt, target, &dtype);
        let _ = writeln!(w, "  {name} <= {rhs};");
    }

    // One clocked process for all registers.
    if has_registers {
        let _ = writeln!(w);
        let _ = writeln!(w, "  regs : process ({})", options.clock);
        let _ = writeln!(w, "  begin");
        let _ = writeln!(w, "    if rising_edge({}) then", options.clock);
        let _ = writeln!(w, "      if {} = '1' then", options.reset);
        for (_, name, _) in &registers {
            let _ = writeln!(w, "        {name} <= (others => '0');");
        }
        let _ = writeln!(w, "      else");
        for (id, name, _) in &registers {
            let (code, fmt) = gen.emit(graph.defs(*id)[0])?;
            let (_, target, dtype) = gen.signal_fmt(*id)?;
            let rhs = gen.quantize(&code, fmt, target, &dtype);
            let _ = writeln!(w, "        {name} <= {rhs};");
        }
        let _ = writeln!(w, "      end if;");
        let _ = writeln!(w, "    end if;");
        let _ = writeln!(w, "  end process regs;");
    }

    // Output port drives.
    let _ = writeln!(w);
    for &oid in outputs {
        let name = vhdl_name(&design.name_of(oid));
        let _ = writeln!(w, "  {name}_o <= {name};");
    }
    let _ = writeln!(w, "end architecture rtl;");
    Ok(out)
}

/// Helper functions emitted into every architecture.
const HELPERS: &str = r#"  -- Requantize: round (half up) while shifting right by sh, then fit
  -- into w bits with saturation (sat) or two's-complement wrap.
  function f_quant(a : signed; sh : natural; w : positive;
                   sat : boolean; rnd : boolean) return signed is
    constant ew : integer := a'length + w + 2;
    variable ext : signed(ew - 1 downto 0);
    variable vmax : signed(w - 1 downto 0);
    variable vmin : signed(w - 1 downto 0);
  begin
    ext := resize(a, ew);
    if rnd and sh > 0 then
      ext := ext + shift_left(to_signed(1, ew), sh - 1);
    end if;
    ext := shift_right(ext, sh);
    vmax := (others => '1');
    vmax(w - 1) := '0';
    vmin := (others => '0');
    vmin(w - 1) := '1';
    if sat then
      if ext > resize(vmax, ew) then
        return vmax;
      end if;
      if ext < resize(vmin, ew) then
        return vmin;
      end if;
    end if;
    return ext(w - 1 downto 0);
  end function;

  function f_min(a, b : signed) return signed is
  begin
    if a < b then return a; else return b; end if;
  end function;

  function f_max(a, b : signed) return signed is
  begin
    if a > b then return a; else return b; end if;
  end function;

  function f_sel(c : boolean; a, b : signed) return signed is
  begin
    if c then return a; else return b; end if;
  end function;
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::DType;
    use fixref_sim::SignalRef;

    fn tc(n: i32, f: i32) -> DType {
        format!("<{n},{f},tc,st,rd>").parse().unwrap()
    }

    /// A small design: input -> scaled wire -> register -> slicer select.
    fn build() -> (Design, Vec<SignalId>) {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let g = d.sig_typed("gain", tc(10, 8));
        let r = d.reg_typed("acc", tc(12, 8));
        let y = d.sig_typed("y", tc(2, 0));
        d.record_graph(true);
        for i in 0..4 {
            x.set(0.1 * i as f64); // several const defs -> input port
            g.set(x.get() * 0.75);
            r.set(r.get() + g.get());
            y.set(
                r.get()
                    .select_positive(fixref_sim::Value::from(1.0), fixref_sim::Value::from(-1.0)),
            );
            d.tick();
        }
        let outs = vec![y.id(), r.id()];
        (d, outs)
    }

    #[test]
    fn generates_full_entity() {
        let (d, outs) = build();
        let vhdl = generate_vhdl(&d, &outs, &VhdlOptions::named("demo")).unwrap();
        // Structure.
        assert!(vhdl.contains("entity demo is"));
        assert!(vhdl.contains("architecture rtl of demo"));
        assert!(vhdl.contains("end architecture rtl;"));
        // Ports: clock/reset (register present), input x, outputs.
        assert!(vhdl.contains("clk : in  std_logic"));
        assert!(vhdl.contains("rst : in  std_logic"));
        assert!(vhdl.contains("x : in  signed(7 downto 0)"), "{vhdl}");
        assert!(vhdl.contains("y_o : out signed(1 downto 0)"));
        assert!(vhdl.contains("acc_o : out signed(11 downto 0)"));
        // Register process with reset.
        assert!(vhdl.contains("rising_edge(clk)"));
        assert!(vhdl.contains("acc <= "));
        assert!(vhdl.contains("(others => '0')"));
        // Select lowers to f_sel, quantization to f_quant.
        assert!(vhdl.contains("f_sel("));
        assert!(vhdl.contains("f_quant("));
        // Output drives.
        assert!(vhdl.contains("y_o <= y;"));
    }

    #[test]
    fn generation_is_deterministic() {
        let (d1, o1) = build();
        let (d2, o2) = build();
        let a = generate_vhdl(&d1, &o1, &VhdlOptions::named("demo")).unwrap();
        let b = generate_vhdl(&d2, &o2, &VhdlOptions::named("demo")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn untyped_signal_reported() {
        let d = Design::new();
        let x = d.sig("x"); // floating
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.1);
        x.set(0.2);
        y.set(x.get() + 1.0);
        let err = generate_vhdl(&d, &[y.id()], &VhdlOptions::named("t")).unwrap_err();
        assert!(matches!(err, CodegenError::UntypedSignal { .. }));
    }

    #[test]
    fn missing_output_definition_reported() {
        let d = Design::new();
        let _x = d.sig_typed("x", tc(8, 6));
        let dead = d.sig_typed("dead", tc(8, 6));
        d.record_graph(true);
        let err = generate_vhdl(&d, &[dead.id()], &VhdlOptions::named("t")).unwrap_err();
        assert!(matches!(err, CodegenError::MissingDefinition { .. }));
    }

    #[test]
    fn multiple_definitions_reported() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.1);
        x.set(0.2);
        // Two structurally different defs of y.
        y.set(x.get() + 1.0);
        y.set(x.get() * 2.0);
        let err = generate_vhdl(&d, &[y.id()], &VhdlOptions::named("t")).unwrap_err();
        assert!(matches!(err, CodegenError::MultipleDefinitions { .. }));
    }

    #[test]
    fn combinational_design_has_no_clock() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.1);
        x.set(0.2);
        y.set(x.get() * 0.5);
        let vhdl = generate_vhdl(&d, &[y.id()], &VhdlOptions::named("comb")).unwrap();
        assert!(!vhdl.contains("clk"));
        assert!(!vhdl.contains("process"));
        assert!(vhdl.contains("y <= "));
    }

    #[test]
    fn single_const_def_becomes_internal_constant_wire() {
        let d = Design::new();
        let c = d.sig_typed("c0", tc(8, 6));
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        c.set(-0.11); // one const def: a coefficient, not a port
        x.set(0.1);
        x.set(0.2);
        y.set(x.get() * c.get());
        let vhdl = generate_vhdl(&d, &[y.id()], &VhdlOptions::named("t")).unwrap();
        assert!(!vhdl.contains("c0 : in"), "{vhdl}");
        assert!(vhdl.contains("c0 <= "), "{vhdl}");
    }

    #[test]
    fn explicit_inputs_override_inference() {
        let d = Design::new();
        let c = d.sig_typed("cfg", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        c.set(0.25); // would be a constant wire by inference
        y.set(c.get() * 2.0);
        let opts = VhdlOptions::named("t").with_input(c.id());
        let vhdl = generate_vhdl(&d, &[y.id()], &opts).unwrap();
        assert!(vhdl.contains("cfg : in  signed"), "{vhdl}");
    }

    #[test]
    fn balanced_structure_tokens() {
        let (d, outs) = build();
        let vhdl = generate_vhdl(&d, &outs, &VhdlOptions::named("demo")).unwrap();
        let count = |needle: &str| vhdl.matches(needle).count();
        assert_eq!(count("entity "), 2); // decl + end
        assert_eq!(count("architecture "), 2);
        assert_eq!(count("process"), 2); // open + end
                                         // Every opened paren closes.
        let opens = vhdl.chars().filter(|&c| c == '(').count();
        let closes = vhdl.chars().filter(|&c| c == ')').count();
        assert_eq!(opens, closes);
    }
}
