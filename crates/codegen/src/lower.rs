//! Lowering captured execution traces to compiled op tapes.
//!
//! The recorded signal-flow graph says *what* each assignment computes;
//! the captured [`ExecTrace`] says *in which order* assignments and ticks
//! executed. Lowering combines the two into a [`CompiledProgram`] (a
//! stack-machine tape per deduplicated cycle shape) plus a [`BoundTrace`]
//! (the schedule, input stream and verification expectations of this
//! particular run), which [`Design::replay_compiled`] then executes
//! bit-identically to the interpreter — without walking host code,
//! `Value` expression allocation, or per-assignment registry lookups.
//!
//! Lowering rules:
//!
//! * an assignment whose recorded root is a **constant** is a stimulus
//!   input (or a pre-recording initialization) — it lowers to
//!   [`Instr::StoreInput`] and its captured incoming value is replayed
//!   verbatim (and re-quantized through the signal's *current* type);
//! * any other assignment lowers to a postorder walk of its expression
//!   tree (`Const`/`Read` leaves, operator interior nodes, `Cast` via a
//!   deduplicated type table) followed by [`Instr::Store`];
//! * each tick closes a cycle; structurally identical cycles share one
//!   deduplicated [`CycleKind`](fixref_sim::CycleKind), so a 4000-sample
//!   stimulus loop typically lowers to a handful of kinds;
//! * shared subexpressions (the graph interns them) are re-expanded as
//!   trees; an instruction budget bounds pathological expansion and
//!   rejects the design back to the interpreted backend instead of
//!   compiling an enormous tape.
//!
//! Lowering is *optimistic*: host control flow that breaks the static
//! schedule contract (stale reads through locals, Rust-level branches)
//! produces a tape that does not reproduce the capture. Callers must
//! therefore prove every `(program, trace)` pair with
//! [`Design::verify_compiled`] before trusting it.
//!
//! [`Design::replay_compiled`]: fixref_sim::Design::replay_compiled
//! [`Design::verify_compiled`]: fixref_sim::Design::verify_compiled

use std::collections::HashMap;

use fixref_sim::tape::{BoundTrace, CompiledProgram, CycleKind, InputSample, Instr, Segment};
use fixref_sim::{Design, ExecTrace, Graph, NodeId, Op, TraceStep};

use crate::expr::CodegenError;

/// Upper bound on emitted instructions (sum over deduplicated cycle
/// kinds, and also per single cycle). The graph interns shared
/// subexpressions but the tape re-expands them as trees, so a
/// pathologically deep reuse chain could blow up exponentially; beyond
/// this budget the design is rejected back to the interpreted backend.
const INSTRUCTION_BUDGET: usize = 2_000_000;

/// Lowers one captured run of `design` to a compiled program and its
/// run binding. The trace must have been captured on this design (its
/// node ids index the currently recorded graph).
///
/// # Errors
///
/// [`CodegenError::UnsupportedOp`] when the tape would exceed the
/// instruction budget or the `Cast` type table overflows its index
/// width — conditions under which the caller should stay interpreted.
pub fn lower_trace(
    design: &Design,
    trace: &ExecTrace,
) -> Result<(CompiledProgram, BoundTrace), CodegenError> {
    let graph = design.graph();
    let mut lo = Lowerer {
        graph: &graph,
        kinds: Vec::new(),
        kind_index: HashMap::new(),
        dtypes: Vec::new(),
        total_instrs: 0,
        cycle: Vec::new(),
        depth: 0,
        max_depth: 0,
        schedule: Vec::new(),
        inputs: Vec::new(),
        expected: Vec::new(),
    };

    for step in &trace.steps {
        match step {
            TraceStep::Assign {
                sig,
                root,
                flt,
                fix,
                itv,
            } => {
                if matches!(lo.graph.node(*root).op, Op::Const(_)) {
                    lo.push(Instr::StoreInput(*sig))?;
                    lo.inputs.push(InputSample {
                        flt: *flt,
                        fix: *fix,
                        itv: *itv,
                    });
                } else {
                    lo.lower_expr(*root)?;
                    lo.push(Instr::Store(*sig))?;
                    lo.expected.push((*flt, *fix));
                }
            }
            TraceStep::Tick => lo.close_cycle(true),
        }
    }
    if !lo.cycle.is_empty() {
        lo.close_cycle(false);
    }

    let program = CompiledProgram {
        kinds: lo.kinds,
        dtypes: lo.dtypes,
    };
    let bound = BoundTrace {
        start: trace.start.clone(),
        schedule: lo.schedule,
        inputs: lo.inputs,
        expected: lo.expected,
        reads: trace.reads.clone(),
        cycles: trace.cycles,
    };
    Ok((program, bound))
}

struct Lowerer<'g> {
    graph: &'g Graph,
    kinds: Vec<CycleKind>,
    /// Instruction-encoding -> kind index, for cycle deduplication.
    kind_index: HashMap<Vec<u64>, u32>,
    dtypes: Vec<fixref_fixed::DType>,
    total_instrs: usize,
    /// Instructions of the cycle currently being built.
    cycle: Vec<Instr>,
    depth: isize,
    max_depth: isize,
    schedule: Vec<Segment>,
    inputs: Vec<InputSample>,
    expected: Vec<(f64, f64)>,
}

impl Lowerer<'_> {
    fn push(&mut self, instr: Instr) -> Result<(), CodegenError> {
        self.total_instrs += 1;
        if self.total_instrs > INSTRUCTION_BUDGET || self.cycle.len() >= INSTRUCTION_BUDGET {
            return Err(CodegenError::UnsupportedOp {
                what: format!(
                    "compiled tape exceeds the {INSTRUCTION_BUDGET}-instruction budget \
                     (shared subexpressions re-expand as trees); use the interpreted backend"
                ),
            });
        }
        self.depth += instr.stack_effect();
        self.max_depth = self.max_depth.max(self.depth);
        self.cycle.push(instr);
        Ok(())
    }

    /// Emits a postorder walk of the expression tree rooted at `root`.
    fn lower_expr(&mut self, root: NodeId) -> Result<(), CodegenError> {
        enum Walk {
            Enter(NodeId),
            Emit(NodeId),
        }
        let mut work = vec![Walk::Enter(root)];
        while let Some(w) = work.pop() {
            match w {
                Walk::Enter(id) => {
                    work.push(Walk::Emit(id));
                    for &arg in self.graph.node(id).args.iter().rev() {
                        work.push(Walk::Enter(arg));
                    }
                }
                Walk::Emit(id) => {
                    let instr = match &self.graph.node(id).op {
                        Op::Const(c) => Instr::Const(*c),
                        Op::Read(sig) => Instr::Read(*sig),
                        Op::Add => Instr::Add,
                        Op::Sub => Instr::Sub,
                        Op::Mul => Instr::Mul,
                        Op::Div => Instr::Div,
                        Op::Neg => Instr::Neg,
                        Op::Abs => Instr::Abs,
                        Op::Min => Instr::Min,
                        Op::Max => Instr::Max,
                        Op::Cast(dt) => Instr::Cast(self.dtype_index(dt)?),
                        Op::Select => Instr::Select,
                    };
                    self.push(instr)?;
                }
            }
        }
        Ok(())
    }

    fn dtype_index(&mut self, dt: &fixref_fixed::DType) -> Result<u16, CodegenError> {
        if let Some(i) = self.dtypes.iter().position(|d| d == dt) {
            return Ok(i as u16);
        }
        if self.dtypes.len() > usize::from(u16::MAX) {
            return Err(CodegenError::UnsupportedOp {
                what: "compiled tape cast-type table exceeds 65536 entries".to_string(),
            });
        }
        self.dtypes.push(dt.clone());
        Ok((self.dtypes.len() - 1) as u16)
    }

    /// Closes the cycle under construction: deduplicates its instruction
    /// sequence into a kind and appends a schedule segment.
    fn close_cycle(&mut self, tick_after: bool) {
        let instrs = std::mem::take(&mut self.cycle);
        let max_stack = usize::try_from(self.max_depth).unwrap_or(0);
        self.depth = 0;
        self.max_depth = 0;

        let mut key = Vec::with_capacity(instrs.len() * 2);
        for instr in &instrs {
            instr.encode(&mut key);
        }
        let kind = match self.kind_index.get(&key) {
            Some(&k) => {
                // The duplicate's instructions do not count against the
                // budget: only unique kinds are stored.
                self.total_instrs -= instrs.len();
                k
            }
            None => {
                let k = self.kinds.len() as u32;
                self.kinds.push(CycleKind { instrs, max_stack });
                self.kind_index.insert(key, k);
                k
            }
        };
        self.schedule.push(Segment { kind, tick_after });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::DType;

    /// Captures a two-cycle run and checks the lowered shape: cycle
    /// deduplication, input vs computed stores, and a verification
    /// replay + compiled replay that match the interpreter bitwise.
    #[test]
    fn lowers_and_replays_a_simple_pipeline() {
        let t: DType = "<8,6,tc,st,rd>".parse().expect("dtype");
        let build = || {
            let d = Design::new();
            let x = d.sig_typed("x", t.clone());
            let y = d.reg_typed("y", t.clone());
            (d, x, y)
        };
        let run = |d: &Design, x: &fixref_sim::Sig, y: &fixref_sim::Reg| {
            for i in 0..8 {
                x.set(0.25 * f64::from(i));
                y.set(x.get() * 0.5 + y.get());
                d.tick();
            }
        };

        // Interpreted capture run.
        let (d, x, y) = build();
        d.record_graph(true);
        d.begin_capture();
        run(&d, &x, &y);
        let trace = d.end_capture().expect("capture active");
        d.record_graph(false);
        let (program, bound) = lower_trace(&d, &trace).expect("lowerable");

        // 8 identical cycles -> one kind; x is an input, y is computed.
        assert_eq!(program.kinds.len(), 1);
        assert_eq!(bound.schedule.len(), 8);
        assert_eq!(bound.inputs.len(), 8);
        assert_eq!(bound.expected.len(), 8);
        assert!(d.verify_compiled(&program, &bound), "tape must verify");

        // Replay on a fresh design matches the interpreter bitwise.
        let (d2, x2, y2) = build();
        run(&d2, &x2, &y2);
        let (d3, _x3, _y3) = build();
        let cycles = d3.replay_compiled(&program, &bound);
        assert_eq!(cycles, 8);
        let a = d2.report_for(&y2);
        let b = d3
            .find("y")
            .map(|id| d3.report_by_id(id))
            .expect("y exists");
        assert_eq!(a.stat.min().to_bits(), b.stat.min().to_bits());
        assert_eq!(a.stat.max().to_bits(), b.stat.max().to_bits());
        assert_eq!(a.produced.std().to_bits(), b.produced.std().to_bits());
        assert_eq!(a.writes, b.writes);
        assert_eq!(a.reads, b.reads);
    }

    /// A stale read (host keeps a local across a reassignment) must be
    /// caught by the verification replay, not silently miscompiled.
    #[test]
    fn verify_rejects_stale_reads() {
        let d = Design::new();
        let a = d.sig("a");
        let b = d.sig("b");
        d.record_graph(true);
        d.begin_capture();
        let stale = a.get(); // reads a == 0.0
        a.set(1.0);
        b.set(stale + 0.0); // tape sees Read(a) == 1.0, capture saw 0.0
        let trace = d.end_capture().expect("capture active");
        let (program, bound) = lower_trace(&d, &trace).expect("lowerable");
        assert!(!d.verify_compiled(&program, &bound));
    }
}
