//! VHDL back-end for refined fixed-point designs.
//!
//! The paper's design environment closes the loop to hardware: "a code
//! generator enables translation of the cycle true C description to
//! synthesizable VHDL" (§2). This crate implements that code generator for
//! the Rust environment: given a [`Design`](fixref_sim::Design) whose
//! signals carry decided [`DType`](fixref_fixed::DType)s and the
//! signal-flow graph recorded during simulation, it emits a synthesizable
//! VHDL-93 entity:
//!
//! * every signal becomes a `signed` vector of its decided wordlength;
//! * wires become concurrent expressions built from the graph, with
//!   bit-exact alignment (`lsb` shifts), rounding and overflow handling
//!   (saturate / wrap) folded into each assignment;
//! * registers become one clocked process with synchronous reset;
//! * externally-driven signals (no definition in the graph) become input
//!   ports; caller-designated signals become output ports.
//!
//! The generator is deliberately structural — one VHDL statement per
//! recorded definition — so the emitted text audits 1:1 against the
//! simulated dataflow.
//!
//! # Example
//!
//! ```
//! use fixref_codegen::{generate_vhdl, VhdlOptions};
//! use fixref_fixed::DType;
//! use fixref_sim::{Design, SignalRef};
//!
//! # fn main() -> Result<(), fixref_codegen::CodegenError> {
//! let d = Design::new();
//! let t: DType = "<8,6,tc,st,rd>".parse().expect("valid dtype");
//! let x = d.sig_typed("x", t.clone());
//! let y = d.sig_typed("y", t);
//! d.record_graph(true);
//! for i in 0..4 {
//!     x.set(0.1 * i as f64); // externally driven -> inferred input port
//!     y.set(x.get() * 0.5 + 0.125);
//! }
//!
//! let vhdl = generate_vhdl(&d, &[y.id()], &VhdlOptions::named("scaler"))?;
//! assert!(vhdl.contains("entity scaler is"));
//! assert!(vhdl.contains("x : in  signed(7 downto 0)"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Runs `f` inside a named span on the design's attached recorder (if
/// any), so cost estimation and VHDL emission show up in the same
/// metrics report as the refinement flow that produced the design.
pub(crate) fn observed<T>(design: &fixref_sim::Design, name: &str, f: impl FnOnce() -> T) -> T {
    match design.recorder() {
        Some(rec) => {
            let span = rec.span_begin(name);
            let out = f();
            rec.span_end(span, 0);
            out
        }
        None => f(),
    }
}

pub mod cost;
pub mod expr;
pub mod format;
pub mod interp;
pub mod lower;
pub mod testbench;
pub mod vhdl;

pub use cost::{estimate_cost, CostEstimate};
pub use expr::CodegenError;
pub use interp::RtlInterpreter;
pub use lower::lower_trace;
pub use testbench::generate_testbench;
pub use vhdl::{generate_vhdl, VhdlOptions};
