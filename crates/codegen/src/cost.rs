//! Hardware cost estimation for refined designs.
//!
//! The refinement rules trade bits for safety (rule *c*), saturation
//! logic for wordlength (rule *b*) and rounding adders for error-mean
//! shifts (round vs floor). This module puts rough gate-equivalent
//! numbers on those trades so ablations can quantify them: every
//! recorded dataflow operator is costed from the exact operand widths the
//! decided types imply — the same width algebra the VHDL generator uses.
//!
//! The weights are deliberately coarse (ripple adders, array multipliers,
//! flip-flops at 4 gates/bit); the point is *relative* comparison between
//! policies, not area prediction.

use fixref_fixed::{OverflowMode, RoundingMode};
use fixref_sim::{Design, Graph, NodeId, Op, SignalId, SignalKind};

use crate::format::Fmt;

/// Gate-equivalent cost breakdown of a refined design's datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostEstimate {
    /// Total adder/subtractor result bits.
    pub adder_bits: u64,
    /// Total multiplier partial-product bits (`w_a × w_b` per multiply).
    pub multiplier_bits: u64,
    /// Total register bits.
    pub register_bits: u64,
    /// Total 2:1-mux bits (min/max/select).
    pub mux_bits: u64,
    /// Total saturation-logic bits (comparators + clamps on saturating
    /// assignments and casts).
    pub saturator_bits: u64,
    /// Total rounding-adder bits (round-off assignments; floor is free).
    pub rounder_bits: u64,
    /// Signals that contributed (typed, with recorded definitions).
    pub costed_signals: usize,
    /// Signals skipped (untyped or without definitions).
    pub skipped_signals: usize,
}

impl CostEstimate {
    /// A single scalar gate-equivalent score:
    /// `1·add + 1·mult + 4·reg + 0.5·mux + 2·sat + 1·round`.
    pub fn gate_score(&self) -> f64 {
        self.adder_bits as f64
            + self.multiplier_bits as f64
            + 4.0 * self.register_bits as f64
            + 0.5 * self.mux_bits as f64
            + 2.0 * self.saturator_bits as f64
            + self.rounder_bits as f64
    }
}

/// Estimates the datapath cost of every typed, defined signal in the
/// design, from the recorded signal-flow graph.
///
/// Untyped signals and signals without recorded definitions are skipped
/// (and counted in [`CostEstimate::skipped_signals`]), so the estimate is
/// usable on partially refined designs.
pub fn estimate_cost(design: &Design, graph: &Graph) -> CostEstimate {
    crate::observed(design, "codegen.estimate_cost", || {
        estimate_cost_impl(design, graph)
    })
}

fn estimate_cost_impl(design: &Design, graph: &Graph) -> CostEstimate {
    let mut est = CostEstimate::default();
    for i in 0..design.num_signals() as u32 {
        let id = SignalId::from_raw(i);
        let report = design.report_by_id(id);
        let (dtype, defs) = match (&report.dtype, graph.defs(id)) {
            (Some(t), defs) if !defs.is_empty() => (t.clone(), defs),
            _ => {
                est.skipped_signals += 1;
                continue;
            }
        };
        est.costed_signals += 1;
        let target = Fmt::from_dtype(&dtype);

        if report.kind == SignalKind::Register {
            est.register_bits += target.width() as u64;
        }
        // Several recorded defs (conditional writes) share the target via
        // an implicit mux.
        if defs.len() > 1 {
            est.mux_bits += target.width() as u64 * (defs.len() as u64 - 1);
        }

        let mut widest = target;
        for &def in defs {
            let fmt = cost_node(graph, design, def, &mut est);
            widest = widest.union(&fmt);
        }
        // The assignment quantizer: saturation comparators and/or the
        // rounding half-LSB adder, sized by the incoming width.
        if dtype.overflow() == OverflowMode::Saturate {
            est.saturator_bits += widest.width() as u64;
        }
        if dtype.rounding() == RoundingMode::Round && widest.lsb < target.lsb {
            est.rounder_bits += widest.width() as u64;
        }
    }
    est
}

/// Recursively costs one definition tree, returning its exact format.
fn cost_node(graph: &Graph, design: &Design, node: NodeId, est: &mut CostEstimate) -> Fmt {
    let n = graph.node(node);
    match &n.op {
        Op::Const(c) => Fmt::for_const(*c, -14),
        Op::Read(s) => design
            .dtype_of(*s)
            .map(|t| Fmt::from_dtype(&t))
            // Untyped operand: assume a generous working format.
            .unwrap_or(Fmt::new(7, -24)),
        Op::Add | Op::Sub => {
            let a = cost_node(graph, design, n.args[0], est);
            let b = cost_node(graph, design, n.args[1], est);
            let r = a.add(&b);
            est.adder_bits += r.width() as u64;
            r
        }
        Op::Mul | Op::Div => {
            let a = cost_node(graph, design, n.args[0], est);
            let b = cost_node(graph, design, n.args[1], est);
            est.multiplier_bits += a.width() as u64 * b.width() as u64;
            a.mul(&b)
        }
        Op::Neg | Op::Abs => {
            let a = cost_node(graph, design, n.args[0], est);
            let r = a.neg();
            est.adder_bits += r.width() as u64; // two's-complement negate
            r
        }
        Op::Min | Op::Max => {
            let a = cost_node(graph, design, n.args[0], est);
            let b = cost_node(graph, design, n.args[1], est);
            let r = a.union(&b);
            est.mux_bits += r.width() as u64;
            est.adder_bits += r.width() as u64; // the comparator
            r
        }
        Op::Select => {
            let _c = cost_node(graph, design, n.args[0], est);
            let a = cost_node(graph, design, n.args[1], est);
            let b = cost_node(graph, design, n.args[2], est);
            let r = a.union(&b);
            est.mux_bits += r.width() as u64;
            r
        }
        Op::Cast(dt) => {
            let a = cost_node(graph, design, n.args[0], est);
            let target = Fmt::from_dtype(dt);
            if dt.overflow() == OverflowMode::Saturate {
                est.saturator_bits += a.width() as u64;
            }
            if dt.rounding() == RoundingMode::Round && a.lsb < target.lsb {
                est.rounder_bits += a.width() as u64;
            }
            target
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::DType;
    use fixref_sim::Design;

    fn tc(n: i32, f: i32) -> DType {
        DType::tc("t", n, f).expect("valid")
    }

    /// y = x * k + c with everything typed: one multiplier, one adder,
    /// one saturating/rounding quantizer.
    #[test]
    fn straight_line_costs() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let y = d.sig_typed("y", tc(8, 6));
        d.record_graph(true);
        x.set(0.5);
        y.set(x.get() * 0.25 + 0.125);
        let est = estimate_cost(&d, &d.graph());
        assert_eq!(est.costed_signals, 2); // x (const defs) and y
        assert!(est.multiplier_bits > 0);
        assert!(est.adder_bits > 0);
        assert!(est.saturator_bits > 0, "saturating type needs a clamp");
        assert!(est.rounder_bits > 0, "round mode needs the half-LSB adder");
        assert_eq!(est.register_bits, 0);
        assert!(est.gate_score() > 0.0);
    }

    #[test]
    fn registers_add_flipflop_bits() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let r = d.reg_typed("r", tc(10, 6));
        d.record_graph(true);
        x.set(0.5);
        r.set(x.get());
        d.tick();
        let est = estimate_cost(&d, &d.graph());
        assert_eq!(est.register_bits, 10);
    }

    #[test]
    fn floor_mode_skips_the_rounder() {
        let build = |rounding| {
            let d = Design::new();
            let t = DType::new(
                "t",
                8,
                6,
                fixref_fixed::Signedness::TwosComplement,
                fixref_fixed::OverflowMode::Wrap,
                rounding,
            )
            .expect("valid");
            let x = d.sig_typed("x", t.clone().with_name("xt"));
            let y = d.sig_typed("y", t);
            d.record_graph(true);
            x.set(0.5);
            y.set(x.get() * 0.25);
            estimate_cost(&d, &d.graph())
        };
        let round = build(RoundingMode::Round);
        let floor = build(RoundingMode::Floor);
        assert!(round.rounder_bits > 0);
        assert_eq!(floor.rounder_bits, 0);
        assert!(floor.gate_score() < round.gate_score());
    }

    #[test]
    fn wider_types_cost_more() {
        let build = |f: i32| {
            let d = Design::new();
            let x = d.sig_typed("x", tc(4 + f, f));
            let y = d.sig_typed("y", tc(4 + f, f));
            d.record_graph(true);
            x.set(0.5);
            y.set(x.get() * 0.25 + x.get());
            estimate_cost(&d, &d.graph())
        };
        let narrow = build(4);
        let wide = build(12);
        assert!(wide.gate_score() > narrow.gate_score());
        assert!(wide.multiplier_bits > narrow.multiplier_bits);
    }

    #[test]
    fn conditional_defs_cost_a_mux() {
        let d = Design::new();
        let x = d.sig_typed("x", tc(8, 6));
        let r = d.reg_typed("r", tc(8, 6));
        d.record_graph(true);
        for i in 0..4 {
            x.set(i as f64 * 0.3 - 0.5);
            if x.get().is_positive() {
                r.set(r.get() + x.get());
            } else {
                r.set(r.get() - x.get());
            }
            d.tick();
        }
        let est = estimate_cost(&d, &d.graph());
        assert!(est.mux_bits >= 8, "two defs imply a mux: {est:?}");
    }

    #[test]
    fn untyped_and_undefined_signals_are_skipped() {
        let d = Design::new();
        let _dead = d.sig("dead");
        let float = d.sig("float");
        d.record_graph(true);
        float.set(1.0);
        let est = estimate_cost(&d, &d.graph());
        assert_eq!(est.costed_signals, 0);
        assert_eq!(est.skipped_signals, 2);
        assert_eq!(est.gate_score(), 0.0);
    }
}
