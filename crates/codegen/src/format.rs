//! Bit-format bookkeeping for expression emission.
//!
//! Every emitted VHDL expression carries a [`Fmt`]: its MSB and LSB
//! positions relative to the binary point. Operators grow formats exactly
//! like [`fixref_fixed::Fixed`] does (add: one guard bit, common LSB;
//! mul: positions add), so the emitted arithmetic is overflow-free until
//! the final assignment quantizes into the signal's decided type.

use fixref_fixed::DType;

/// The fixed-point format of an emitted expression: all values are
/// `signed` with weight positions `[lsb, msb]` (two's complement sign at
/// `msb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fmt {
    /// MSB (sign) position relative to the binary point.
    pub msb: i32,
    /// LSB position relative to the binary point.
    pub lsb: i32,
}

impl Fmt {
    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb`.
    pub fn new(msb: i32, lsb: i32) -> Self {
        assert!(msb >= lsb, "format msb {msb} below lsb {lsb}");
        Fmt { msb, lsb }
    }

    /// The format of a signal's decided type.
    pub fn from_dtype(t: &DType) -> Self {
        Fmt::new(t.msb(), t.lsb())
    }

    /// Total width in bits.
    pub fn width(&self) -> i32 {
        self.msb - self.lsb + 1
    }

    /// The format that exactly holds the sum/difference of two operands:
    /// common LSB, one guard bit above the larger MSB.
    pub fn add(&self, rhs: &Fmt) -> Fmt {
        Fmt::new(self.msb.max(rhs.msb) + 1, self.lsb.min(rhs.lsb))
    }

    /// The format of a full-precision product.
    pub fn mul(&self, rhs: &Fmt) -> Fmt {
        Fmt::new(self.msb + rhs.msb + 1, self.lsb + rhs.lsb)
    }

    /// The format of a negation (one guard bit for `-min`).
    pub fn neg(&self) -> Fmt {
        Fmt::new(self.msb + 1, self.lsb)
    }

    /// The joint format covering both operands (min/max/select results).
    pub fn union(&self, rhs: &Fmt) -> Fmt {
        Fmt::new(self.msb.max(rhs.msb), self.lsb.min(rhs.lsb))
    }

    /// The smallest format holding the constant `c` at resolution
    /// `lsb` (value is rounded to that grid).
    pub fn for_const(c: f64, lsb: i32) -> Fmt {
        let mant = (c * (-(lsb as f64)).exp2()).round().abs().max(1.0);
        // Need msb with mant < 2^(msb - lsb), plus the sign.
        let bits = (mant.log2().floor() as i32) + 1;
        Fmt::new(lsb + bits, lsb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_dtype() {
        let t = DType::tc("t", 8, 5).unwrap();
        let f = Fmt::from_dtype(&t);
        assert_eq!(f, Fmt::new(2, -5));
        assert_eq!(f.width(), 8);
    }

    #[test]
    #[should_panic(expected = "below lsb")]
    fn inverted_positions_rejected() {
        let _ = Fmt::new(-1, 0);
    }

    #[test]
    fn growth_rules_match_bit_true_fixed() {
        let a = Fmt::new(2, -5);
        let b = Fmt::new(0, -3);
        assert_eq!(a.add(&b), Fmt::new(3, -5));
        assert_eq!(a.mul(&b), Fmt::new(3, -8));
        assert_eq!(a.neg(), Fmt::new(3, -5));
        assert_eq!(a.union(&b), Fmt::new(2, -5));
    }

    #[test]
    fn const_formats() {
        // 1.0 at lsb -5: mantissa 32 needs 6 magnitude bits -> msb 1.
        assert_eq!(Fmt::for_const(1.0, -5), Fmt::new(1, -5));
        // -0.11 at lsb -5: mantissa round(3.52) = 4 -> 3 bits -> msb -2.
        assert_eq!(Fmt::for_const(-0.11, -5), Fmt::new(-2, -5));
        // Zero still gets a 1-magnitude-bit format.
        assert_eq!(Fmt::for_const(0.0, -3), Fmt::new(-2, -3));
    }
}
