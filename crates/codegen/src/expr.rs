//! Expression emission: signal-flow-graph nodes to VHDL `signed`
//! expressions with tracked formats.

use std::error::Error;
use std::fmt;

use fixref_fixed::{DType, OverflowMode, RoundingMode};
use fixref_sim::{Design, Graph, NodeId, Op, SignalId};

use crate::format::Fmt;

/// Errors the code generator can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// A signal in the dataflow has no decided fixed-point type; run the
    /// refinement flow (or assign types manually) before generating.
    UntypedSignal {
        /// The offending signal's name.
        name: String,
    },
    /// A requested output signal has no recorded definition.
    MissingDefinition {
        /// The offending signal's name.
        name: String,
    },
    /// A signal has several structurally different definitions; the
    /// generator cannot infer the selection condition. Rewrite the model
    /// so each signal is assigned once per cycle (using
    /// `select_positive` for conditionals).
    MultipleDefinitions {
        /// The offending signal's name.
        name: String,
    },
    /// An operator has no hardware mapping (currently: division by a
    /// non-constant).
    UnsupportedOp {
        /// Description of the unsupported construct.
        what: String,
    },
    /// The combinational wires form a dependency cycle, so no evaluation
    /// order exists. Break the loop with a register.
    CombinationalCycle {
        /// A signal on the cycle.
        name: String,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UntypedSignal { name } => {
                write!(f, "signal {name} has no fixed-point type; refine it first")
            }
            CodegenError::MissingDefinition { name } => {
                write!(f, "signal {name} has no recorded definition")
            }
            CodegenError::MultipleDefinitions { name } => write!(
                f,
                "signal {name} has multiple definitions; restructure with select_positive"
            ),
            CodegenError::UnsupportedOp { what } => {
                write!(f, "unsupported construct for hardware mapping: {what}")
            }
            CodegenError::CombinationalCycle { name } => write!(
                f,
                "combinational cycle through signal {name}; break the loop with a register"
            ),
        }
    }
}

impl Error for CodegenError {}

/// Sanitizes a simulation signal name into a VHDL identifier
/// (`v[3]` → `v_3`).
pub(crate) fn vhdl_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' => out.push(c),
            _ => {
                if !out.ends_with('_') && !out.is_empty() {
                    out.push('_');
                }
            }
        }
    }
    let out = out.trim_end_matches('_').to_string();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        format!("s_{out}")
    } else {
        out
    }
}

/// Emits graph expressions against a design's decided types.
pub(crate) struct ExprGen<'a> {
    pub design: &'a Design,
    pub graph: &'a Graph,
    /// Resolution used for literal constants.
    pub const_lsb: i32,
}

impl ExprGen<'_> {
    /// The decided format of a signal.
    pub fn signal_fmt(&self, id: SignalId) -> Result<(String, Fmt, DType), CodegenError> {
        let dtype = self
            .design
            .dtype_of(id)
            .ok_or_else(|| CodegenError::UntypedSignal {
                name: self.design.name_of(id),
            })?;
        Ok((
            vhdl_name(&self.design.name_of(id)),
            Fmt::from_dtype(&dtype),
            dtype,
        ))
    }

    /// Emits the expression rooted at `node`, returning VHDL code and its
    /// exact format.
    ///
    /// # Errors
    ///
    /// Propagates type and operator mapping failures.
    pub fn emit(&self, node: NodeId) -> Result<(String, Fmt), CodegenError> {
        let n = self.graph.node(node);
        match &n.op {
            Op::Const(c) => Ok(self.emit_const(*c, self.const_lsb)),
            Op::Read(s) => {
                let (name, fmt, _) = self.signal_fmt(*s)?;
                Ok((name, fmt))
            }
            Op::Add | Op::Sub => {
                let (a, fa) = self.emit(n.args[0])?;
                let (b, fb) = self.emit(n.args[1])?;
                let target = fa.add(&fb);
                let a = self.align(&a, fa, target);
                let b = self.align(&b, fb, target);
                let op = if matches!(n.op, Op::Add) { "+" } else { "-" };
                Ok((format!("({a} {op} {b})"), target))
            }
            Op::Mul => {
                let (a, fa) = self.emit(n.args[0])?;
                let (b, fb) = self.emit(n.args[1])?;
                // numeric_std "*" yields exactly wa + wb bits = our format.
                Ok((format!("({a} * {b})"), fa.mul(&fb)))
            }
            Op::Div => {
                // Division by a constant folds into multiplication by the
                // reciprocal (quantized at the literal resolution); general
                // division has no combinational mapping here.
                if let Op::Const(c) = self.graph.node(n.args[1]).op {
                    if c != 0.0 {
                        let (a, fa) = self.emit(n.args[0])?;
                        let (r, fr) = self.emit_const(1.0 / c, self.const_lsb);
                        return Ok((format!("({a} * {r})"), fa.mul(&fr)));
                    }
                }
                Err(CodegenError::UnsupportedOp {
                    what: "division by a non-constant".to_string(),
                })
            }
            Op::Neg => {
                let (a, fa) = self.emit(n.args[0])?;
                let target = fa.neg();
                Ok((format!("(-resize({a}, {}))", target.width()), target))
            }
            Op::Abs => {
                let (a, fa) = self.emit(n.args[0])?;
                let target = fa.neg();
                Ok((format!("abs(resize({a}, {}))", target.width()), target))
            }
            Op::Min | Op::Max => {
                let (a, fa) = self.emit(n.args[0])?;
                let (b, fb) = self.emit(n.args[1])?;
                let target = fa.union(&fb);
                let a = self.align(&a, fa, target);
                let b = self.align(&b, fb, target);
                let f = if matches!(n.op, Op::Min) {
                    "f_min"
                } else {
                    "f_max"
                };
                Ok((format!("{f}({a}, {b})"), target))
            }
            Op::Select => {
                let (c, fc) = self.emit(n.args[0])?;
                let (a, fa) = self.emit(n.args[1])?;
                let (b, fb) = self.emit(n.args[2])?;
                let target = fa.union(&fb);
                let a = self.align(&a, fa, target);
                let b = self.align(&b, fb, target);
                Ok((
                    format!("f_sel({c} > to_signed(0, {}), {a}, {b})", fc.width()),
                    target,
                ))
            }
            Op::Cast(dt) => {
                let (a, fa) = self.emit(n.args[0])?;
                let target = Fmt::from_dtype(dt);
                Ok((self.quantize(&a, fa, target, dt), target))
            }
        }
    }

    /// A literal constant at the generator's resolution, shrunk to its
    /// minimal format.
    fn emit_const(&self, c: f64, lsb: i32) -> (String, Fmt) {
        let fmt = Fmt::for_const(c, lsb);
        let mant = (c * (-(lsb as f64)).exp2()).round() as i64;
        (format!("to_signed({mant}, {})", fmt.width()), fmt)
    }

    /// Aligns `code` of format `from` into format `to`, which must cover
    /// it (`to.lsb <= from.lsb`, `to.msb >= from.msb`): exact, no
    /// information loss.
    pub fn align(&self, code: &str, from: Fmt, to: Fmt) -> String {
        debug_assert!(to.lsb <= from.lsb && to.msb >= from.msb);
        let shift = (from.lsb - to.lsb) as u32;
        if shift == 0 && from.width() == to.width() {
            code.to_string()
        } else if shift == 0 {
            format!("resize({code}, {})", to.width())
        } else {
            format!("shift_left(resize({code}, {}), {shift})", to.width())
        }
    }

    /// Quantizes `code` of format `from` into the (possibly narrower,
    /// coarser) `to` per the dtype's rounding and overflow modes, via the
    /// emitted `f_quant` helper.
    pub fn quantize(&self, code: &str, from: Fmt, to: Fmt, dtype: &DType) -> String {
        // First ensure the expression's LSB is at or below the target's.
        let (code, from) = if from.lsb > to.lsb {
            let widened = Fmt::new(from.msb, to.lsb);
            (self.align(code, from, widened), widened)
        } else {
            (code.to_string(), from)
        };
        let sh = (to.lsb - from.lsb) as u32;
        let sat = dtype.overflow() == OverflowMode::Saturate;
        let rnd = dtype.rounding() == RoundingMode::Round;
        if sh == 0 && from.width() <= to.width() {
            // Pure widening (or same width): a resize suffices.
            return format!("resize({code}, {})", to.width());
        }
        format!("f_quant({code}, {sh}, {}, {sat}, {rnd})", to.width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(vhdl_name("v[3]"), "v_3");
        assert_eq!(vhdl_name("c[0]"), "c_0");
        assert_eq!(vhdl_name("plain"), "plain");
        assert_eq!(vhdl_name("a b-c"), "a_b_c");
        assert_eq!(vhdl_name("3x"), "s_3x");
        assert_eq!(vhdl_name("_"), "s_");
    }

    fn gen_env() -> (Design, Graph) {
        let d = Design::new();
        let t: DType = "<8,5,tc,st,rd>".parse().unwrap();
        let x = d.sig_typed("x", t.clone());
        let y = d.sig_typed("y", t);
        d.record_graph(true);
        x.set(0.25);
        y.set(x.get() * 0.5 + 0.125);
        (d.clone(), d.graph())
    }

    #[test]
    fn read_and_const_emission() {
        let (d, g) = gen_env();
        let gen = ExprGen {
            design: &d,
            graph: &g,
            const_lsb: -10,
        };
        let xid = d.find("x").unwrap();
        let (code, fmt) = gen.signal_fmt(xid).map(|(c, f, _)| (c, f)).unwrap();
        assert_eq!(code, "x");
        assert_eq!(fmt, Fmt::new(2, -5));
    }

    #[test]
    fn full_expression_emits_mul_add_chain() {
        let (d, g) = gen_env();
        let gen = ExprGen {
            design: &d,
            graph: &g,
            const_lsb: -10,
        };
        let yid = d.find("y").unwrap();
        let defs = g.defs(yid);
        assert_eq!(defs.len(), 1);
        let (code, fmt) = gen.emit(defs[0]).unwrap();
        assert!(code.contains("(x * to_signed(512, 11))"), "{code}");
        assert!(code.contains('+'), "{code}");
        // x<2,-5> * 0.5<-1..-10 span> -> msb 2 + (-1) + 1 = 2, lsb -15;
        // + 0.125 grows one guard bit.
        assert_eq!(fmt.lsb, -15);
        assert!(fmt.msb >= 2);
    }

    #[test]
    fn untyped_signal_is_an_error() {
        let d = Design::new();
        let x = d.sig("x"); // floating
        let y = d.sig_typed("y", "<8,5,tc,st,rd>".parse().unwrap());
        d.record_graph(true);
        x.set(0.5);
        y.set(x.get() + 1.0);
        let g = d.graph();
        let gen = ExprGen {
            design: &d,
            graph: &g,
            const_lsb: -10,
        };
        let yid = d.find("y").unwrap();
        let err = gen.emit(g.defs(yid)[0]).unwrap_err();
        assert_eq!(
            err,
            CodegenError::UntypedSignal {
                name: "x".to_string()
            }
        );
        assert!(err.to_string().contains("x"));
    }

    #[test]
    fn division_by_constant_folds() {
        let d = Design::new();
        let t: DType = "<8,5,tc,st,rd>".parse().unwrap();
        let x = d.sig_typed("x", t.clone());
        let y = d.sig_typed("y", t);
        d.record_graph(true);
        x.set(0.5);
        y.set(x.get() / 4.0);
        let g = d.graph();
        let gen = ExprGen {
            design: &d,
            graph: &g,
            const_lsb: -10,
        };
        let (code, _) = gen.emit(g.defs(d.find("y").unwrap())[0]).unwrap();
        // 1/4 at lsb -10 is mantissa 256.
        assert!(code.contains("to_signed(256,"), "{code}");
        assert!(code.contains('*'), "{code}");
    }

    #[test]
    fn division_by_signal_rejected() {
        let d = Design::new();
        let t: DType = "<8,5,tc,st,rd>".parse().unwrap();
        let x = d.sig_typed("x", t.clone());
        let z = d.sig_typed("z", t.clone());
        let y = d.sig_typed("y", t);
        d.record_graph(true);
        x.set(0.5);
        z.set(0.25);
        y.set(x.get() / z.get());
        let g = d.graph();
        let gen = ExprGen {
            design: &d,
            graph: &g,
            const_lsb: -10,
        };
        let err = gen.emit(g.defs(d.find("y").unwrap())[0]).unwrap_err();
        assert!(matches!(err, CodegenError::UnsupportedOp { .. }));
    }

    #[test]
    fn quantize_emits_helper_with_modes() {
        let (d, g) = gen_env();
        let gen = ExprGen {
            design: &d,
            graph: &g,
            const_lsb: -10,
        };
        let sat: DType = "<8,5,tc,st,rd>".parse().unwrap();
        let q = gen.quantize("expr", Fmt::new(4, -15), Fmt::from_dtype(&sat), &sat);
        assert_eq!(q, "f_quant(expr, 10, 8, true, true)");
        let wrap: DType = "<8,5,tc,wp,fl>".parse().unwrap();
        let q = gen.quantize("expr", Fmt::new(4, -15), Fmt::from_dtype(&wrap), &wrap);
        assert_eq!(q, "f_quant(expr, 10, 8, false, false)");
        // Pure widening needs only a resize.
        let q = gen.quantize("expr", Fmt::new(1, -5), Fmt::from_dtype(&sat), &sat);
        assert_eq!(q, "resize(expr, 8)");
    }
}
