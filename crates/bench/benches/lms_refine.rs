//! Wall time of the complete Table 1 + Table 2 refinement flow on the
//! LMS equalizer — the paper's "short and safe determination process"
//! ("a fraction of a second for this example").

use criterion::{criterion_group, criterion_main, Criterion};
use fixref_bench::{paper_input_type, run_table1, run_table2};
use fixref_core::{RefinePolicy, RefinementFlow};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_sim::Design;

const SAMPLES: usize = 1000;

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("lms_refine");
    group.sample_size(20);

    group.bench_function("msb_phase_table1", |b| {
        b.iter(|| run_table1(SAMPLES).expect("converges"))
    });

    group.bench_function("lsb_phase_table2", |b| {
        b.iter(|| run_table2(SAMPLES).expect("converges"))
    });

    group.bench_function("full_flow", |b| {
        b.iter(|| {
            let d = Design::new();
            let config = LmsConfig {
                input_dtype: Some(paper_input_type()),
                ..LmsConfig::default()
            };
            let eq = LmsEqualizer::new(&d, &config);
            let mut flow = RefinementFlow::new(d, RefinePolicy::default());
            flow.run(|_, _| {
                eq.init();
                for &x in &equalizer_stimulus(7, 28.0, SAMPLES) {
                    eq.step(x);
                }
            })
            .expect("converges")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
