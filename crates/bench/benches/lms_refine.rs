//! Wall time of the complete Table 1 + Table 2 refinement flow on the
//! LMS equalizer — the paper's "short and safe determination process"
//! ("a fraction of a second for this example").

use std::time::Duration;

use fixref_bench::microbench::Harness;
use fixref_bench::{paper_input_type, run_table1, run_table2};
use fixref_core::{RefinePolicy, RefinementFlow};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_sim::Design;

const SAMPLES: usize = 1000;

fn main() {
    let mut h = Harness::new("lms_refine").with_budget(Duration::from_millis(400));

    h.bench("lms_refine/msb_phase_table1", || {
        run_table1(SAMPLES).expect("converges")
    });

    h.bench("lms_refine/lsb_phase_table2", || {
        run_table2(SAMPLES).expect("converges")
    });

    h.bench("lms_refine/full_flow", || {
        let d = Design::new();
        let config = LmsConfig {
            input_dtype: Some(paper_input_type()),
            ..LmsConfig::default()
        };
        let eq = LmsEqualizer::new(&d, &config);
        let mut flow = RefinementFlow::new(d, RefinePolicy::default());
        flow.run(|_, _| {
            eq.init();
            for &x in &equalizer_stimulus(7, 28.0, SAMPLES) {
                eq.step(x);
            }
        })
        .expect("converges")
    });

    h.finish();
}
