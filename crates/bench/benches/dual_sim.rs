//! Dual-simulation overhead: the instrumented LMS equalizer (fixed +
//! float + monitoring in one run) versus the plain `f64` golden model —
//! the paper's claim that monitoring lives inside a single simulation
//! whose cost stays practical, versus running separate fixed and float
//! simulations plus a signal database.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fixref_bench::paper_input_type;
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer, LmsGolden};
use fixref_sim::Design;

const SAMPLES: usize = 512;

fn bench_dual_sim(c: &mut Criterion) {
    let stimulus = equalizer_stimulus(7, 28.0, SAMPLES);
    let mut group = c.benchmark_group("dual_sim");
    group.throughput(Throughput::Elements(SAMPLES as u64));

    group.bench_function("golden_f64", |b| {
        let mut g = LmsGolden::new(&LmsConfig::default());
        b.iter(|| {
            g.reset();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += g.step(x).0;
            }
            acc
        })
    });

    group.bench_function("instrumented_floating", |b| {
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        b.iter(|| {
            d.reset_state();
            eq.init();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += eq.step(x).0;
            }
            acc
        })
    });

    group.bench_function("instrumented_typed_input", |b| {
        let d = Design::new();
        let config = LmsConfig {
            input_dtype: Some(paper_input_type()),
            ..LmsConfig::default()
        };
        let eq = LmsEqualizer::new(&d, &config);
        b.iter(|| {
            d.reset_state();
            eq.init();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += eq.step(x).0;
            }
            acc
        })
    });

    group.bench_function("instrumented_graph_recording", |b| {
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        d.record_graph(true);
        b.iter(|| {
            d.reset_state();
            eq.init();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += eq.step(x).0;
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dual_sim);
criterion_main!(benches);
