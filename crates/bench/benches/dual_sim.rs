//! Dual-simulation overhead: the instrumented LMS equalizer (fixed +
//! float + monitoring in one run) versus the plain `f64` golden model —
//! the paper's claim that monitoring lives inside a single simulation
//! whose cost stays practical, versus running separate fixed and float
//! simulations plus a signal database.

use fixref_bench::microbench::Harness;
use fixref_bench::paper_input_type;
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer, LmsGolden};
use fixref_sim::Design;

const SAMPLES: usize = 512;

fn main() {
    let stimulus = equalizer_stimulus(7, 28.0, SAMPLES);
    let mut h = Harness::new("dual_sim");

    {
        let mut g = LmsGolden::new(&LmsConfig::default());
        h.bench("dual_sim/golden_f64", || {
            g.reset();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += g.step(x).0;
            }
            acc
        });
    }

    {
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        h.bench("dual_sim/instrumented_floating", || {
            d.reset_state();
            eq.init();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += eq.step(x).0;
            }
            acc
        });
    }

    {
        let d = Design::new();
        let config = LmsConfig {
            input_dtype: Some(paper_input_type()),
            ..LmsConfig::default()
        };
        let eq = LmsEqualizer::new(&d, &config);
        h.bench("dual_sim/instrumented_typed_input", || {
            d.reset_state();
            eq.init();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += eq.step(x).0;
            }
            acc
        });
    }

    {
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        d.record_graph(true);
        h.bench("dual_sim/instrumented_graph_recording", || {
            d.reset_state();
            eq.init();
            let mut acc = 0.0;
            for &x in &stimulus {
                acc += eq.step(x).0;
            }
            acc
        });
    }

    h.finish();
}
