//! Quantization-kernel throughput per overflow/rounding mode — the inner
//! loop of every assignment in the environment.

use fixref_bench::microbench::{black_box, Harness};
use fixref_fixed::{quantize, DType, Fixed, OverflowMode, RoundingMode, Signedness};

fn main() {
    let mut h = Harness::new("quantize");
    let inputs: Vec<f64> = (0..1024).map(|i| ((i as f64) * 0.37).sin() * 3.0).collect();

    for (label, overflow) in [
        ("wrap", OverflowMode::Wrap),
        ("saturate", OverflowMode::Saturate),
        ("error", OverflowMode::Error),
    ] {
        for (rlabel, rounding) in [
            ("round", RoundingMode::Round),
            ("floor", RoundingMode::Floor),
        ] {
            let t = DType::new("t", 12, 8, Signedness::TwosComplement, overflow, rounding)
                .expect("valid dtype");
            h.bench(&format!("quantize/{label}/{rlabel}"), || {
                let mut acc = 0.0;
                for &x in &inputs {
                    acc += quantize(black_box(x), &t).value;
                }
                acc
            });
        }
    }

    let t = DType::tc("t", 12, 8).expect("valid dtype");
    let a = Fixed::from_f64(0.713, t.clone());
    let b = Fixed::from_f64(-1.211, t);
    h.bench("fixed/mul_add_bit_true", || {
        let p = black_box(&a).checked_mul(black_box(&b)).expect("fits");
        p.checked_add(black_box(&a)).expect("fits").to_f64()
    });

    h.finish();
}
