//! Throughput of the complex example: the 61-signal instrumented
//! timing-recovery loop versus its golden `f64` model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fixref_dsp::source::ShapedPamSource;
use fixref_dsp::{TimingConfig, TimingGolden, TimingRecovery};
use fixref_sim::Design;

const SAMPLES: usize = 2000;

fn bench_timing(c: &mut Criterion) {
    let samples: Vec<f64> = {
        let mut src = ShapedPamSource::new(31, 0.35, 2, 0.3, 100.0);
        (0..SAMPLES).map(|_| src.next_sample()).collect()
    };

    let mut group = c.benchmark_group("timing_loop");
    group.throughput(Throughput::Elements(SAMPLES as u64));
    group.sample_size(20);

    group.bench_function("golden_f64", |b| {
        b.iter(|| {
            let mut rx = TimingGolden::new(&TimingConfig::default());
            let mut strobes = 0usize;
            for &x in &samples {
                if rx.step(x).strobe {
                    strobes += 1;
                }
            }
            strobes
        })
    });

    group.bench_function("instrumented_61_signals", |b| {
        let d = Design::new();
        let rx = TimingRecovery::new(&d, &TimingConfig::default());
        b.iter(|| {
            d.reset_state();
            rx.init();
            let mut strobes = 0usize;
            for &x in &samples {
                if rx.step(x).strobe {
                    strobes += 1;
                }
            }
            strobes
        })
    });

    group.finish();
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
