//! Throughput of the complex example: the 61-signal instrumented
//! timing-recovery loop versus its golden `f64` model.

use std::time::Duration;

use fixref_bench::microbench::Harness;
use fixref_dsp::source::ShapedPamSource;
use fixref_dsp::{TimingConfig, TimingGolden, TimingRecovery};
use fixref_sim::Design;

const SAMPLES: usize = 2000;

fn main() {
    let samples: Vec<f64> = {
        let mut src = ShapedPamSource::new(31, 0.35, 2, 0.3, 100.0);
        (0..SAMPLES).map(|_| src.next_sample()).collect()
    };

    let mut h = Harness::new("timing_loop").with_budget(Duration::from_millis(300));

    h.bench("timing_loop/golden_f64", || {
        let mut rx = TimingGolden::new(&TimingConfig::default());
        let mut strobes = 0usize;
        for &x in &samples {
            if rx.step(x).strobe {
                strobes += 1;
            }
        }
        strobes
    });

    {
        let d = Design::new();
        let rx = TimingRecovery::new(&d, &TimingConfig::default());
        h.bench("timing_loop/instrumented_61_signals", || {
            d.reset_state();
            rx.init();
            let mut strobes = 0usize;
            for &x in &samples {
                if rx.step(x).strobe {
                    strobes += 1;
                }
            }
            strobes
        });
    }

    h.finish();
}
