//! Cost of the range machinery: raw interval arithmetic and the
//! analytical fixpoint over the equalizer's signal-flow graph.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_fixed::Interval;
use fixref_sim::analyze::{analyze_ranges, AnalyzeOptions};
use fixref_sim::{Design, SignalRef};

fn bench_interval_ops(c: &mut Criterion) {
    let a = Interval::new(-1.5, 2.25);
    let b = Interval::new(-0.11, 1.2);
    c.bench_function("interval/mul_add_union", |bench| {
        bench.iter(|| {
            let p = black_box(a) * black_box(b);
            let s = p + black_box(a);
            s.union(&black_box(b))
        })
    });
}

fn bench_analytical_fixpoint(c: &mut Criterion) {
    // Record the equalizer's graph once.
    let d = Design::new();
    let eq = LmsEqualizer::new(&d, &LmsConfig::default());
    d.record_graph(true);
    eq.init();
    for &x in &equalizer_stimulus(7, 28.0, 64) {
        eq.step(x);
    }
    let graph = d.graph();
    let mut seeds = HashMap::new();
    seeds.insert(eq.x().id(), Interval::new(-1.5, 1.5));
    seeds.insert(eq.b().id(), Interval::new(-0.2, 0.2));

    c.bench_function("analyze_ranges/lms_graph", |bench| {
        bench.iter(|| analyze_ranges(&graph, &seeds, &AnalyzeOptions::default()))
    });
}

criterion_group!(benches, bench_interval_ops, bench_analytical_fixpoint);
criterion_main!(benches);
