//! Cost of the range machinery: raw interval arithmetic and the
//! analytical fixpoint over the equalizer's signal-flow graph.

use std::collections::HashMap;

use fixref_bench::microbench::{black_box, Harness};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_fixed::Interval;
use fixref_sim::analyze::{analyze_ranges, AnalyzeOptions};
use fixref_sim::{Design, SignalRef};

fn main() {
    let mut h = Harness::new("range_prop");

    let a = Interval::new(-1.5, 2.25);
    let b = Interval::new(-0.11, 1.2);
    h.bench("interval/mul_add_union", || {
        let p = black_box(a) * black_box(b);
        let s = p + black_box(a);
        s.union(&black_box(b))
    });

    // Record the equalizer's graph once.
    let d = Design::new();
    let eq = LmsEqualizer::new(&d, &LmsConfig::default());
    d.record_graph(true);
    eq.init();
    for &x in &equalizer_stimulus(7, 28.0, 64) {
        eq.step(x);
    }
    let graph = d.graph();
    let mut seeds = HashMap::new();
    seeds.insert(eq.x().id(), Interval::new(-1.5, 1.5));
    seeds.insert(eq.b().id(), Interval::new(-0.2, 0.2));

    h.bench("analyze_ranges/lms_graph", || {
        analyze_ranges(&graph, &seeds, &AnalyzeOptions::default())
    });

    h.finish();
}
