//! Back-end costs: VHDL emission, testbench generation and the bit-true
//! RTL interpreter, all on the refined LMS equalizer.

use fixref_bench::microbench::Harness;
use fixref_bench::paper_input_type;
use fixref_codegen::{
    estimate_cost, generate_testbench, generate_vhdl, RtlInterpreter, VhdlOptions,
};
use fixref_core::{RefinePolicy, RefinementFlow};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_sim::{Design, SignalRef};

fn refined() -> (Design, LmsEqualizer) {
    let design = Design::with_seed(0xBE7C);
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let eq_for_flow = eq.clone();
    flow.run(move |_, _| {
        eq_for_flow.init();
        for &x in &equalizer_stimulus(5, 28.0, 1000) {
            eq_for_flow.step(x);
        }
    })
    .expect("converges");
    // Re-record the refined dataflow.
    design.reset_stats();
    design.reset_state();
    design.clear_graph();
    design.record_graph(true);
    eq.init();
    for &x in &equalizer_stimulus(5, 28.0, 16) {
        eq.step(x);
    }
    design.record_graph(false);
    (design, eq)
}

fn main() {
    let (design, eq) = refined();
    let opts = VhdlOptions::named("lms").with_input(eq.x().id());
    let outs = vec![eq.y().id(), eq.w().id()];
    let mut h = Harness::new("codegen");

    h.bench("codegen/generate_vhdl_lms", || {
        generate_vhdl(&design, &outs, &opts).expect("generates")
    });

    let trace = vec![(eq.x().id(), equalizer_stimulus(5, 28.0, 32))];
    h.bench("codegen/generate_testbench_32_cycles", || {
        generate_testbench(&design, &outs, &opts, &trace).expect("generates")
    });

    {
        let graph = design.graph();
        h.bench("codegen/estimate_cost_lms", || {
            estimate_cost(&design, &graph)
        });
    }

    {
        let graph = design.graph();
        let stimulus = equalizer_stimulus(5, 28.0, 512);
        h.bench("codegen/rtl_interpreter_512_cycles", || {
            let mut rtl = RtlInterpreter::new(&design, &graph).expect("builds");
            let mut acc = 0.0;
            for &x in &stimulus {
                rtl.set_input(eq.x().id(), x);
                rtl.step();
                rtl.tick();
                acc += rtl.value(eq.w().id());
            }
            acc
        });
    }

    h.finish();
}
