//! Back-end costs: VHDL emission, testbench generation and the bit-true
//! RTL interpreter, all on the refined LMS equalizer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fixref_bench::paper_input_type;
use fixref_codegen::{
    estimate_cost, generate_testbench, generate_vhdl, RtlInterpreter, VhdlOptions,
};
use fixref_core::{RefinePolicy, RefinementFlow};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_sim::{Design, SignalRef};

fn refined() -> (Design, LmsEqualizer) {
    let design = Design::with_seed(0xBE7C);
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let eq_for_flow = eq.clone();
    flow.run(move |_, _| {
        eq_for_flow.init();
        for &x in &equalizer_stimulus(5, 28.0, 1000) {
            eq_for_flow.step(x);
        }
    })
    .expect("converges");
    // Re-record the refined dataflow.
    design.reset_stats();
    design.reset_state();
    design.clear_graph();
    design.record_graph(true);
    eq.init();
    for &x in &equalizer_stimulus(5, 28.0, 16) {
        eq.step(x);
    }
    design.record_graph(false);
    (design, eq)
}

fn bench_codegen(c: &mut Criterion) {
    let (design, eq) = refined();
    let opts = VhdlOptions::named("lms").with_input(eq.x().id());
    let outs = vec![eq.y().id(), eq.w().id()];

    c.bench_function("codegen/generate_vhdl_lms", |b| {
        b.iter(|| generate_vhdl(&design, &outs, &opts).expect("generates"))
    });

    let trace = vec![(eq.x().id(), equalizer_stimulus(5, 28.0, 32))];
    c.bench_function("codegen/generate_testbench_32_cycles", |b| {
        b.iter(|| generate_testbench(&design, &outs, &opts, &trace).expect("generates"))
    });

    c.bench_function("codegen/estimate_cost_lms", |b| {
        let graph = design.graph();
        b.iter(|| estimate_cost(&design, &graph))
    });

    let mut group = c.benchmark_group("codegen");
    group.throughput(Throughput::Elements(512));
    group.bench_function("rtl_interpreter_512_cycles", |b| {
        let graph = design.graph();
        let stimulus = equalizer_stimulus(5, 28.0, 512);
        b.iter(|| {
            let mut rtl = RtlInterpreter::new(&design, &graph).expect("builds");
            let mut acc = 0.0;
            for &x in &stimulus {
                rtl.set_input(eq.x().id(), x);
                rtl.step();
                rtl.tick();
                acc += rtl.value(eq.w().id());
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
