//! Lint runs over every example design.
//!
//! Builds the same datapaths the `examples/` programs refine, simulates
//! each once with graph recording enabled (the linter's input is the
//! recorded signal-flow graph plus monitor counters — no refinement
//! iteration is needed), and runs the full diagnostics engine. The
//! `lint` bin renders these reports; `tests/lint_conformance.rs` pins
//! them against the golden baselines in `tests/golden/`.
//!
//! Stimulus lengths are fixed constants: `FXL001` messages quote write
//! counts, so the reports are only reproducible for a pinned stimulus.

use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::qam::{qam_stimulus, FfeConfig, QamFfe};
use fixref_dsp::source::ShapedPamSource;
use fixref_dsp::{
    Awgn, Biquad, CicDecimator, LmsConfig, LmsEqualizer, TimingConfig, TimingRecovery,
};
use fixref_lint::{LintReport, Linter};
use fixref_sim::Design;

/// One example's lint outcome.
#[derive(Debug, Clone)]
pub struct ExampleLint {
    /// The example's name (matches the file under `examples/`).
    pub name: &'static str,
    /// The sorted diagnostic report.
    pub report: LintReport,
}

/// Samples driven through the LMS equalizer before linting.
pub const LINT_LMS_SAMPLES: usize = 4000;
/// Samples driven through the timing-recovery loop before linting.
pub const LINT_TIMING_SAMPLES: usize = 12000;

fn lint_quickstart() -> LintReport {
    let design = Design::new();
    let x = design.sig_typed("x", "<8,6,tc,st,rd>".parse().expect("literal is valid"));
    let scaled = design.sig("scaled");
    let acc = design.reg("acc");
    let y = design.sig("y");
    design.declare_static_schedule();
    design.record_graph(true);
    for i in 0..2000 {
        x.set((i as f64 * 0.05).sin() * 0.9);
        scaled.set(x.get() * 0.75);
        acc.set(acc.get() * 0.9 + scaled.get());
        y.set(acc.get() + scaled.get());
        design.tick();
    }
    design.record_graph(false);
    Linter::new().run(&design)
}

fn lint_lms_equalizer() -> LintReport {
    let design = Design::with_seed(0xDA7E_1999);
    let config = LmsConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("literal is valid")),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);
    design.record_graph(true);
    eq.init();
    for &x in &equalizer_stimulus(7, 28.0, LINT_LMS_SAMPLES) {
        eq.step(x);
    }
    design.record_graph(false);
    Linter::new().run(&design)
}

fn lint_timing_recovery() -> LintReport {
    let design = Design::with_seed(0x0DEC_7BA5);
    let config = TimingConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse().expect("literal is valid")),
        input_range: None,
        ..TimingConfig::default()
    };
    let rx = TimingRecovery::new(&design, &config);
    design.record_graph(true);
    rx.init();
    let mut src = ShapedPamSource::new(31, 0.35, 2, 0.3, 100.0);
    let mut noise = Awgn::from_snr_db(9, 20.0, 1.0);
    for _ in 0..LINT_TIMING_SAMPLES {
        rx.step(noise.add(src.next_sample()).clamp(-1.9, 1.9));
    }
    design.record_graph(false);
    Linter::new().run(&design)
}

fn lint_iir_refinement() -> LintReport {
    let proto = Biquad::lowpass(0.05, 0.707);
    let [b0, b1, b2] = proto.b;
    let [a1, a2] = proto.a;
    let design = Design::new();
    let x = design.sig_typed("x", "<10,8,tc,st,rd>".parse().expect("literal is valid"));
    let x1 = design.reg("x1");
    let x2 = design.reg("x2");
    let y1 = design.reg("y1");
    let y2 = design.reg("y2");
    let y = design.sig("y");
    design.declare_static_schedule();
    design.record_graph(true);
    for i in 0..4000 {
        let t = i as f64;
        x.set(0.45 * (0.05 * t).sin() + 0.45 * (2.4 * t).sin());
        y.set(b0 * x.get() + b1 * x1.get() + b2 * x2.get() - a1 * y1.get() - a2 * y2.get());
        x2.set(x1.get());
        x1.set(x.get());
        y2.set(y1.get());
        y1.set(y.get());
        design.tick();
    }
    design.record_graph(false);
    Linter::new().run(&design)
}

fn lint_cic_decimator() -> LintReport {
    let design = Design::new();
    let mut cic = CicDecimator::new(&design, 3, 8, 1, 8, 6);
    design.record_graph(true);
    for i in 0..4096u32 {
        let x =
            0.015625 * (((i.wrapping_mul(2654435761).wrapping_add(i) >> 7) % 128) as f64 - 64.0);
        cic.push(x);
    }
    design.record_graph(false);
    Linter::new().run(&design)
}

fn lint_qam_ffe() -> LintReport {
    let design = Design::with_seed(0x0A11_CAFE);
    let config = FfeConfig {
        input_dtype: Some("<9,7,tc,st,rd>".parse().expect("literal is valid")),
        input_range: None,
        ..FfeConfig::default()
    };
    let ffe = QamFfe::new(&design, &config);
    design.record_graph(true);
    ffe.init();
    for &x in &qam_stimulus(3, 26.0, 2000) {
        ffe.step(x);
    }
    design.record_graph(false);
    Linter::new().run(&design)
}

/// Lints every example design, in a fixed order.
pub fn lint_example_designs() -> Vec<ExampleLint> {
    vec![
        ExampleLint {
            name: "quickstart",
            report: lint_quickstart(),
        },
        ExampleLint {
            name: "lms_equalizer",
            report: lint_lms_equalizer(),
        },
        ExampleLint {
            name: "timing_recovery",
            report: lint_timing_recovery(),
        },
        ExampleLint {
            name: "iir_refinement",
            report: lint_iir_refinement(),
        },
        ExampleLint {
            name: "cic_decimator",
            report: lint_cic_decimator(),
        },
        ExampleLint {
            name: "qam_ffe",
            report: lint_qam_ffe(),
        },
    ]
}
