//! Incremental evaluation-cache benchmark behind
//! `cargo run -p fixref-bench --bin cache` (`BENCH_cache.json`).
//!
//! Two measurements on the Fig. 1 LMS equalizer (which declares a static
//! schedule, so every cache plan is reachable):
//!
//! * **driver level** — one cold [`SequentialDriver`] simulation versus
//!   one warm *replay* of the same iteration (nothing dirty: the cached
//!   monitors are spliced back and the stimulus is skipped). This is the
//!   per-iteration saving the cache offers a refinement loop whenever an
//!   iteration changes no annotations — e.g. the verification re-run.
//! * **flow level** — the complete refinement flow (MSB + LSB + apply +
//!   verify) with the cache off and on, checked to decide bit-identical
//!   types. Most flow iterations *do* change annotations, so the
//!   end-to-end saving is bounded by the dirty-cone sizes; the driver
//!   numbers isolate the cache's ceiling.

use std::sync::Arc;
use std::time::Instant;

use fixref_core::{FlowError, RefinePolicy, RefinementFlow, SequentialDriver, SimDriver};
use fixref_dsp::LmsConfig;
use fixref_obs::json::fmt_f64;
use fixref_obs::DefaultRecorder;
use fixref_sim::Design;

use crate::paper_input_type;
use crate::sweep::{lms_paper_scenario, lms_shard_builder};

/// Outcome of the evaluation-cache benchmark.
#[derive(Debug, Clone)]
pub struct CacheBenchResult {
    /// Stimulus length.
    pub samples: usize,
    /// Wall time of the cold driver simulation, nanoseconds.
    pub cold_ns: u128,
    /// Wall time of the warm (replay) simulation, nanoseconds.
    pub warm_ns: u128,
    /// `cold_ns / warm_ns`.
    pub warm_speedup: f64,
    /// Cycles both driver runs reported (they must agree).
    pub cycles: u64,
    /// Per-signal cache hits / misses of the driver pair.
    pub driver_hits: u64,
    /// Per-signal live simulations of the driver pair.
    pub driver_misses: u64,
    /// Wall time of the full flow with the cache off, nanoseconds.
    pub flow_uncached_ns: u128,
    /// Wall time of the full flow with the cache on, nanoseconds.
    pub flow_cached_ns: u128,
    /// `flow_uncached_ns / flow_cached_ns`.
    pub flow_speedup: f64,
    /// `cache.hits` counter of the cached flow's recorder.
    pub flow_hits: u64,
    /// `cache.misses` counter of the cached flow's recorder.
    pub flow_misses: u64,
    /// Whether the cached and uncached flows decided bit-identical types
    /// in the same number of iterations — the conformance check riding
    /// along with the timing.
    pub outcomes_match: bool,
}

impl CacheBenchResult {
    /// Renders the result as the `BENCH_cache.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"cache\",\n");
        out.push_str("  \"design\": \"lms\",\n");
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"cold_ns\": {},\n", self.cold_ns));
        out.push_str(&format!("  \"warm_ns\": {},\n", self.warm_ns));
        out.push_str(&format!(
            "  \"warm_speedup\": {},\n",
            fmt_f64(self.warm_speedup)
        ));
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        out.push_str(&format!("  \"driver_hits\": {},\n", self.driver_hits));
        out.push_str(&format!("  \"driver_misses\": {},\n", self.driver_misses));
        out.push_str(&format!(
            "  \"flow_uncached_ns\": {},\n",
            self.flow_uncached_ns
        ));
        out.push_str(&format!("  \"flow_cached_ns\": {},\n", self.flow_cached_ns));
        out.push_str(&format!(
            "  \"flow_speedup\": {},\n",
            fmt_f64(self.flow_speedup)
        ));
        out.push_str(&format!("  \"flow_hits\": {},\n", self.flow_hits));
        out.push_str(&format!("  \"flow_misses\": {},\n", self.flow_misses));
        out.push_str(&format!("  \"outcomes_match\": {}\n", self.outcomes_match));
        out.push_str("}\n");
        out
    }
}

fn decided_types(design: &Design, outcome: &fixref_core::FlowOutcome) -> Vec<(String, String)> {
    let mut types: Vec<(String, String)> = outcome
        .types
        .iter()
        .map(|(id, t)| (design.name_of(*id), t.to_string()))
        .collect();
    types.sort();
    types
}

/// The evaluation-cache benchmark: cold-versus-replay driver timing plus
/// cached-versus-uncached full-flow timing on the LMS equalizer over the
/// paper scenario.
///
/// # Errors
///
/// Propagates [`FlowError`] if either flow fails to converge.
pub fn run_cache_bench(samples: usize) -> Result<CacheBenchResult, FlowError> {
    let config = || LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let set = lms_paper_scenario(samples);
    let scenario = &set.as_slice()[0];

    // Driver level: one cold run, one warm replay of the same iteration.
    let shard = lms_shard_builder(config())(scenario);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut driver = SequentialDriver::with_cache(move |d: &Design, i: usize| stimulus(d, i));
    let recorder = Arc::new(DefaultRecorder::new());

    let start = Instant::now();
    let cold_cycles =
        driver
            .simulate(&design, &recorder, 0, true)
            .map_err(|f| FlowError::ShardFailed {
                shard: f.shard,
                scenario: f.scenario,
                cause: f.cause,
            })?;
    let cold_ns = start.elapsed().as_nanos();

    let start = Instant::now();
    let warm_cycles =
        driver
            .simulate(&design, &recorder, 1, false)
            .map_err(|f| FlowError::ShardFailed {
                shard: f.shard,
                scenario: f.scenario,
                cause: f.cause,
            })?;
    let warm_ns = start.elapsed().as_nanos();

    let (driver_hits, driver_misses) = driver
        .cache()
        .map(|c| (c.hits(), c.misses()))
        .unwrap_or((0, 0));

    // Flow level: the complete refinement, cache off then on.
    let shard = lms_shard_builder(config())(scenario);
    let plain_design = shard.design;
    let mut plain_stimulus = shard.stimulus;
    let mut plain_flow = RefinementFlow::new(plain_design.clone(), RefinePolicy::default());
    let start = Instant::now();
    let plain_outcome = plain_flow.run(move |d: &Design, i: usize| plain_stimulus(d, i))?;
    let flow_uncached_ns = start.elapsed().as_nanos();

    let shard = lms_shard_builder(config())(scenario);
    let cached_design = shard.design;
    let mut cached_stimulus = shard.stimulus;
    let mut cached_flow = RefinementFlow::new(cached_design.clone(), RefinePolicy::default());
    cached_flow.enable_cache();
    let start = Instant::now();
    let cached_outcome = cached_flow.run(move |d: &Design, i: usize| cached_stimulus(d, i))?;
    let flow_cached_ns = start.elapsed().as_nanos();

    let outcomes_match = decided_types(&plain_design, &plain_outcome)
        == decided_types(&cached_design, &cached_outcome)
        && plain_outcome.msb_iterations == cached_outcome.msb_iterations
        && plain_outcome.lsb_iterations == cached_outcome.lsb_iterations
        && cold_cycles == warm_cycles;

    Ok(CacheBenchResult {
        samples,
        cold_ns,
        warm_ns,
        warm_speedup: cold_ns as f64 / warm_ns.max(1) as f64,
        cycles: cold_cycles,
        driver_hits,
        driver_misses,
        flow_uncached_ns,
        flow_cached_ns,
        flow_speedup: flow_uncached_ns as f64 / flow_cached_ns.max(1) as f64,
        flow_hits: cached_flow.recorder().counter("cache.hits"),
        flow_misses: cached_flow.recorder().counter("cache.misses"),
        outcomes_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_bench_replays_faster_and_decides_identical_types() {
        let result = run_cache_bench(600).expect("flows converge");
        assert!(result.outcomes_match, "cached flow diverged from plain");
        assert!(
            result.warm_speedup >= 1.5,
            "replay should dominate a live run, got {}x",
            result.warm_speedup
        );
        assert!(result.driver_hits > 0);
        assert!(result.flow_hits > 0, "the cached flow never hit its cache");
        let json = result.render_json();
        let parsed = fixref_obs::Json::parse(&json).expect("well-formed JSON");
        assert_eq!(
            parsed.get("bench").and_then(fixref_obs::Json::as_str),
            Some("cache")
        );
        assert!(matches!(
            parsed.get("outcomes_match"),
            Some(fixref_obs::Json::Bool(true))
        ));
    }
}
