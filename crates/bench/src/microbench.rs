//! A minimal `Instant`-based micro-benchmark harness for the
//! `benches/*.rs` targets (the container builds offline, so the previous
//! criterion harness was replaced with this self-contained runner).
//!
//! Each measurement warms up, then runs repeatedly until a small time
//! budget is spent, and reports mean/min wall time per iteration. The
//! harness doubles as an observability consumer: every sample lands in a
//! [`DefaultRecorder`] histogram so the whole run can be rendered (or
//! serialized) as one [`MetricsReport`].

pub use std::hint::black_box;
use std::time::{Duration, Instant};

use fixref_obs::{DefaultRecorder, MetricsReport, Recorder};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Iterations actually timed.
    pub iters: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
}

/// Collects measurements for one bench binary.
#[derive(Debug)]
pub struct Harness {
    label: String,
    budget: Duration,
    max_iters: u64,
    recorder: DefaultRecorder,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness with the default per-case budget (120 ms, 512 iters).
    pub fn new(label: &str) -> Self {
        Harness {
            label: label.to_string(),
            budget: Duration::from_millis(120),
            max_iters: 512,
            recorder: DefaultRecorder::new(),
            results: Vec::new(),
        }
    }

    /// Overrides the per-case time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Times `f` until the budget is exhausted and records the result.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> &BenchResult {
        // Warmup: one untimed run to populate caches and lazy state.
        black_box(f());
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min_ns = f64::INFINITY;
        while iters < 3 || (total < self.budget && iters < self.max_iters) {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            let ns = dt.as_nanos() as f64;
            self.recorder.observe(&format!("bench.{name}.ns"), ns);
            min_ns = min_ns.min(ns);
            total += dt;
            iters += 1;
        }
        self.recorder.inc(&format!("bench.{name}.iters"), iters);
        let result = BenchResult {
            name: name.to_string(),
            iters,
            mean_ns: total.as_nanos() as f64 / iters as f64,
            min_ns,
        };
        println!(
            "{:<44} {:>12} /iter  (min {:>12}, {} iters)",
            result.name,
            fmt_ns(result.mean_ns),
            fmt_ns(result.min_ns),
            result.iters
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Snapshots the run as a metrics report (for `--json` style output).
    pub fn report(&self) -> MetricsReport {
        MetricsReport::from_recorder(&self.label, &self.recorder)
    }

    /// Prints the trailer. Call at the end of `main`.
    pub fn finish(self) {
        println!("{}: {} benchmarks measured", self.label, self.results.len());
    }
}

/// Human formatting for a nanosecond quantity.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut h = Harness::new("unit").with_budget(Duration::from_millis(1));
        let r = h.bench("noop", || 1 + 1).clone();
        assert!(r.iters >= 3);
        assert!(r.min_ns <= r.mean_ns);
        let report = h.report();
        assert_eq!(report.name, "unit");
        assert!(report
            .histograms
            .iter()
            .any(|(name, hist)| name == "bench.noop.ns" && hist.count == r.iters));
        h.finish();
    }
}
