//! Fault-tolerance overhead benchmark.
//!
//! Measures what the robustness layer costs when nothing goes wrong —
//! the only regime that matters for the common case:
//!
//! 1. **Checkpointing**: the full Table 1/2 refinement flow (the LMS
//!    equalizer that produces the paper's MSB and LSB tables) run plain
//!    vs. with per-iteration checkpoint writes enabled, best-of-N wall
//!    clock. The checkpointed flow serializes its complete state (journal
//!    included) after every iteration and the interrupt seam stays armed
//!    but silent.
//! 2. **Shard isolation**: the per-job cost of the `catch_unwind`
//!    boundary every pool worker now runs under, measured directly
//!    against the same closure called without isolation.
//!
//! Honesty note: single-process wall-clock measurements on a shared
//! machine are noisy; `run_fault_bench` takes the *minimum* of `repeats`
//! runs for each flow, and the JSON records the raw numbers so the <3%
//! overhead target can be re-checked rather than trusted.

use std::time::Instant;

use fixref_core::{FlowError, RefinePolicy, RefinementFlow};
use fixref_obs::json::fmt_f64;
use fixref_sim::{run_shards_isolated, RetryPolicy, Scenario, ScenarioSet, ShardOutcome};

use crate::paper_input_type;
use crate::sweep::{lms_paper_scenario, lms_shard_builder};
use fixref_dsp::LmsConfig;

/// Result of [`run_fault_bench`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultBenchResult {
    /// LMS stimulus length per run.
    pub samples: usize,
    /// Flow repetitions measured (minimum taken).
    pub repeats: usize,
    /// Plain flow wall time (best of `repeats`).
    pub plain_ns: u128,
    /// Checkpointed flow wall time (best of `repeats`).
    pub checkpointed_ns: u128,
    /// `checkpointed / plain - 1`, in percent (negative = noise).
    pub checkpoint_overhead_pct: f64,
    /// Checkpoints written per checkpointed flow.
    pub checkpoints_written: u64,
    /// Size of the final checkpoint document, bytes.
    pub checkpoint_bytes: usize,
    /// Isolated (catch_unwind) per-job cost, ns/job.
    pub isolated_ns_per_job: f64,
    /// Direct closure per-job cost, ns/job.
    pub direct_ns_per_job: f64,
    /// Absolute isolation cost per job, ns.
    pub isolation_cost_ns: f64,
    /// The checkpointed flow decided the same types as the plain one.
    pub outcomes_match: bool,
}

fn lms_config() -> LmsConfig {
    LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    }
}

/// One full refinement flow over the paper scenario; returns the decided
/// types (by signal name) and, when `checkpoint` is set, the flow's
/// checkpoint accounting.
fn run_flow(
    set: &ScenarioSet,
    checkpoint: Option<&std::path::Path>,
) -> Result<(Vec<(String, String)>, u64), FlowError> {
    let shard = lms_shard_builder(lms_config())(&set.as_slice()[0]);
    let design = shard.design;
    let mut stimulus = shard.stimulus;
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    if let Some(path) = checkpoint {
        flow.checkpoint_to(path);
    }
    let outcome = flow.run(move |d, i| stimulus(d, i))?;
    let mut types: Vec<(String, String)> = outcome
        .types
        .iter()
        .map(|(id, t)| (design.name_of(*id), t.to_string()))
        .collect();
    types.sort();
    Ok((types, flow.recorder().counter("checkpoint.writes")))
}

/// Runs the overhead measurement. `repeats` flows per variant (minimum
/// wall time wins); the isolation micro-bench always runs 4096 jobs.
///
/// # Errors
///
/// Propagates [`FlowError`] if the refinement cannot converge.
pub fn run_fault_bench(samples: usize, repeats: usize) -> Result<FaultBenchResult, FlowError> {
    let repeats = repeats.max(1);
    let set = lms_paper_scenario(samples);
    let path = std::env::temp_dir().join("fixref_faultbench_ckpt.json");

    // Interleave the variants (plain, checkpointed, plain, …) so a
    // background-load spike on a shared machine degrades both minima
    // instead of biasing whichever block it happened to land on.
    let mut plain_ns = u128::MAX;
    let mut plain_types = Vec::new();
    let mut checkpointed_ns = u128::MAX;
    let mut checkpointed_types = Vec::new();
    let mut checkpoints_written = 0;
    for _ in 0..repeats {
        let start = Instant::now();
        let (types, _) = run_flow(&set, None)?;
        plain_ns = plain_ns.min(start.elapsed().as_nanos());
        plain_types = types;

        let start = Instant::now();
        let (types, written) = run_flow(&set, Some(&path))?;
        checkpointed_ns = checkpointed_ns.min(start.elapsed().as_nanos());
        checkpointed_types = types;
        checkpoints_written = written;
    }
    let checkpoint_bytes = std::fs::metadata(&path)
        .map(|m| m.len() as usize)
        .unwrap_or(0);
    let _ = std::fs::remove_file(&path);

    // Isolation micro-bench: the same tiny job through the isolated pool
    // (sequential path: one catch_unwind per job) and called directly.
    const JOBS: usize = 4096;
    let scenarios: Vec<Scenario> = lms_paper_scenario(64).as_slice().to_vec();
    let job = |s: &Scenario, _attempt: usize| -> u64 {
        let mut acc = s.seed;
        for i in 0..256u64 {
            acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ i;
        }
        acc
    };
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..JOBS {
        let outcomes = run_shards_isolated(&scenarios, 1, RetryPolicy::default(), job);
        if let Some(ShardOutcome::Completed { value, .. }) = outcomes.first() {
            sink ^= value;
        }
    }
    let isolated_ns = start.elapsed().as_nanos() as f64 / JOBS as f64;
    let start = Instant::now();
    for _ in 0..JOBS {
        sink ^= job(&scenarios[0], 0);
    }
    let direct_ns = start.elapsed().as_nanos() as f64 / JOBS as f64;
    std::hint::black_box(sink);

    Ok(FaultBenchResult {
        samples,
        repeats,
        plain_ns,
        checkpointed_ns,
        checkpoint_overhead_pct: (checkpointed_ns as f64 / plain_ns as f64 - 1.0) * 100.0,
        checkpoints_written,
        checkpoint_bytes,
        isolated_ns_per_job: isolated_ns,
        direct_ns_per_job: direct_ns,
        isolation_cost_ns: isolated_ns - direct_ns,
        outcomes_match: plain_types == checkpointed_types && !plain_types.is_empty(),
    })
}

impl FaultBenchResult {
    /// Renders the result as the `BENCH_fault.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"fault\",\n");
        out.push_str("  \"design\": \"lms\",\n");
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"plain_ns\": {},\n", self.plain_ns));
        out.push_str(&format!(
            "  \"checkpointed_ns\": {},\n",
            self.checkpointed_ns
        ));
        out.push_str(&format!(
            "  \"checkpoint_overhead_pct\": {},\n",
            fmt_f64(self.checkpoint_overhead_pct)
        ));
        out.push_str(&format!(
            "  \"checkpoints_written\": {},\n",
            self.checkpoints_written
        ));
        out.push_str(&format!(
            "  \"checkpoint_bytes\": {},\n",
            self.checkpoint_bytes
        ));
        out.push_str(&format!(
            "  \"isolated_ns_per_job\": {},\n",
            fmt_f64(self.isolated_ns_per_job)
        ));
        out.push_str(&format!(
            "  \"direct_ns_per_job\": {},\n",
            fmt_f64(self.direct_ns_per_job)
        ));
        out.push_str(&format!(
            "  \"isolation_cost_ns\": {},\n",
            fmt_f64(self.isolation_cost_ns)
        ));
        out.push_str(&format!("  \"outcomes_match\": {}\n", self.outcomes_match));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_bench_runs_and_outcomes_match() {
        let result = run_fault_bench(400, 1).expect("flow converges");
        assert!(result.outcomes_match, "checkpointing changed the outcome");
        assert!(result.checkpoints_written >= 3, "3 iterations checkpointed");
        assert!(result.checkpoint_bytes > 0);
        let json = result.render_json();
        let parsed = fixref_obs::Json::parse(&json).expect("well-formed JSON");
        assert_eq!(
            parsed.get("bench").and_then(fixref_obs::Json::as_str),
            Some("fault")
        );
        assert!(matches!(
            parsed.get("outcomes_match"),
            Some(fixref_obs::Json::Bool(true))
        ));
    }
}
