//! Experiment harness regenerating every table and figure of the DATE'99
//! evaluation (paper §6).
//!
//! Each experiment is a library function returning structured results, so
//! the `src/bin/*` printers, the integration tests and `EXPERIMENTS.md`
//! all report the same numbers:
//!
//! | paper artifact | function | printer |
//! |---|---|---|
//! | Table 1 (MSB analysis, 2 iterations) | [`run_table1`] | `cargo run -p fixref-bench --bin table1` |
//! | Table 2 (LSB analysis, `k = 1`) | [`run_table2`] | `--bin table2` |
//! | §6 SQNR check (39.8 → 39.1 dB) | [`run_sqnr`] | `--bin sqnr` |
//! | §6.1 complex example (61 signals) | [`run_complex`] | `--bin complex_example` |
//! | §1/§7 strategy claims | [`run_baselines`] | `--bin baselines` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cachebench;
pub mod compilebench;
pub mod faultbench;
pub mod lintbench;
pub mod microbench;
pub mod servebench;
pub mod sweep;
pub mod verifybench;

use std::collections::HashMap;

use fixref_core::baseline::{
    analytic_refine, sim_search_refine, AnalyticOptions, SimSearchOptions,
};
use fixref_core::compare::StrategyResult;
use fixref_core::{
    render_lsb_table, render_msb_table, FlowError, FlowOutcome, LsbAnalysis, MsbAnalysis,
    RefinePolicy, RefinementFlow,
};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::source::ShapedPamSource;
use fixref_dsp::{Awgn, LmsConfig, LmsEqualizer, TimingConfig, TimingRecovery};
use fixref_fixed::{DType, Interval, SqnrMeter};
use fixref_obs::MetricsReport;
use fixref_sim::{Design, SignalRef};

pub use cachebench::{run_cache_bench, CacheBenchResult};
pub use compilebench::{run_compile_bench, CompileBenchResult};
pub use faultbench::{run_fault_bench, FaultBenchResult};
pub use lintbench::{lint_example_designs, ExampleLint};
pub use servebench::{run_serve_bench, DepthRow, ServeBenchResult};
pub use sweep::{
    lms_paper_scenario, lms_scenario_stimulus, lms_seed_grid, lms_shard_builder, run_sweep_bench,
    run_table1_swept, run_table2_swept, timing_shard_builder, ShardRow, SweepBenchResult,
};
pub use verifybench::{run_verify_bench, verify_example_designs, ExampleVerify, VerifyBenchResult};

/// Writes a rendered bench/report JSON document to `BENCH_{stem}.json`,
/// asserting first that the document's own `name`/`bench` key agrees with
/// the stem — the invariant that keeps every `BENCH_*.json` artifact
/// self-describing (a `table1` report can never clobber `BENCH_flow.json`
/// again).
///
/// IO failure is a warning, not an error: benches still print their
/// results when the working directory is read-only.
///
/// # Panics
///
/// Panics if `rendered` is not valid JSON, carries no `name`/`bench`
/// key, or its report name disagrees with `stem`.
pub fn write_bench_json(stem: &str, rendered: &str) {
    let parsed = fixref_obs::Json::parse(rendered).expect("bench JSON renders valid JSON");
    let name = parsed
        .get("name")
        .or_else(|| parsed.get("bench"))
        .and_then(fixref_obs::Json::as_str)
        .expect("bench JSON carries a name/bench key");
    assert_eq!(
        name, stem,
        "bench report name must match its BENCH_<name>.json file stem"
    );
    let path = format!("BENCH_{stem}.json");
    if let Err(e) = std::fs::write(&path, rendered.as_bytes()) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// The paper's input type `<7,5,tc>` with saturation and rounding.
pub fn paper_input_type() -> DType {
    "<7,5,tc,st,rd>".parse().expect("literal is valid")
}

/// Default stimulus length for the equalizer experiments.
pub const LMS_SAMPLES: usize = 4000;
/// Default stimulus length for the timing-loop experiment.
pub const TIMING_SAMPLES: usize = 60000;
/// Stimulus SNR for the equalizer experiments (dB).
pub const LMS_SNR_DB: f64 = 28.0;
/// Stimulus SNR for the timing-loop experiment (dB). Moderate channel
/// noise makes the float and fixed paths occasionally slip cycles against
/// each other — the divergence mechanism of the paper's NCO signal.
pub const TIMING_SNR_DB: f64 = 20.0;

/// Builds an equalizer + flow and returns (design, model).
pub(crate) fn lms_setup(config: &LmsConfig) -> (Design, LmsEqualizer) {
    let d = Design::with_seed(0xDA7E_1999);
    let eq = LmsEqualizer::new(&d, config);
    (d, eq)
}

/// The stimulus closure driving the equalizer for the flow phases.
fn lms_stimulus(eq: &LmsEqualizer, samples: usize) -> impl FnMut(&Design, usize) + '_ {
    move |_d: &Design, _iter: usize| {
        eq.init();
        for &x in &equalizer_stimulus(7, LMS_SNR_DB, samples) {
            eq.step(x);
        }
    }
}

/// Table 1: per-iteration MSB analyses of the Fig. 1 equalizer (floating
/// input with `x.range(-1.5, 1.5)`).
///
/// # Errors
///
/// Propagates [`FlowError`] if the MSB phase cannot converge (does not
/// happen with the default policy).
pub fn run_table1(samples: usize) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<String>), FlowError> {
    let (history, interventions, _) = run_table1_report(samples)?;
    Ok((history, interventions))
}

/// [`run_table1`] plus the flow's [`MetricsReport`] (span timings, event
/// counts, simulation counters) for `--json` output.
///
/// # Errors
///
/// Propagates [`FlowError`] if the MSB phase cannot converge.
#[allow(clippy::type_complexity)]
pub fn run_table1_report(
    samples: usize,
) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<String>, MetricsReport), FlowError> {
    let (d, eq) = lms_setup(&LmsConfig::default());
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let (history, interventions) = flow.run_msb(lms_stimulus(&eq, samples))?;
    let report = MetricsReport::from_recorder("table1", flow.recorder());
    Ok((
        history,
        interventions.iter().map(|i| i.to_string()).collect(),
        report,
    ))
}

/// Table 2: LSB analyses with the input quantized `<7,5,tc>` and the default rule constant (`k = 1`).
///
/// # Errors
///
/// Propagates [`FlowError`] if the LSB phase cannot converge.
pub fn run_table2(samples: usize) -> Result<Vec<Vec<LsbAnalysis>>, FlowError> {
    let (history, _) = run_table2_report(samples)?;
    Ok(history)
}

/// [`run_table2`] plus the flow's [`MetricsReport`] for `--json` output.
///
/// # Errors
///
/// Propagates [`FlowError`] if the LSB phase cannot converge.
pub fn run_table2_report(
    samples: usize,
) -> Result<(Vec<Vec<LsbAnalysis>>, MetricsReport), FlowError> {
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let (d, eq) = lms_setup(&config);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let (history, _) = flow.run_lsb(lms_stimulus(&eq, samples))?;
    let report = MetricsReport::from_recorder("table2", flow.recorder());
    Ok((history, report))
}

/// One complete refinement flow (MSB + LSB + verification) of the paper
/// equalizer, returning the outcome plus the flow's [`MetricsReport`]
/// named `flow` — the document behind `BENCH_flow.json` (`--bin flow`).
///
/// # Errors
///
/// Propagates [`FlowError`] if either phase cannot converge.
pub fn run_flow_report(samples: usize) -> Result<(FlowOutcome, MetricsReport), FlowError> {
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let (d, eq) = lms_setup(&config);
    let mut flow = RefinementFlow::new(d, RefinePolicy::default());
    let outcome = flow.run(lms_stimulus(&eq, samples))?;
    let report = MetricsReport::from_recorder("flow", flow.recorder());
    Ok((outcome, report))
}

/// Renders the Table 1 report exactly as `--bin table1` prints it, so the
/// binary, the swept runs and the golden-file tests share one formatter.
pub fn table1_text(history: &[Vec<MsbAnalysis>], interventions: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — MSB analysis of the LMS equalizer (paper Fig. 1)"
    );
    let _ = writeln!(
        out,
        "==========================================================="
    );
    for (i, analyses) in history.iter().enumerate() {
        let _ = writeln!(out);
        let _ = writeln!(out, "--- iteration {} ---", i + 1);
        let _ = write!(out, "{}", render_msb_table(analyses));
        let exploded: Vec<&str> = analyses
            .iter()
            .filter(|a| a.exploded)
            .map(|a| a.name.as_str())
            .collect();
        let no_info: Vec<&str> = analyses
            .iter()
            .filter(|a| !a.exploded && !a.decision.is_resolved())
            .map(|a| a.name.as_str())
            .collect();
        if exploded.is_empty() {
            let _ = writeln!(out, "no range explosions left");
        } else {
            let _ = writeln!(out, "range explosion: {}", exploded.join(", "));
        }
        if !no_info.is_empty() {
            let _ = writeln!(
                out,
                "no range information (constant zero, left floating): {}",
                no_info.join(", ")
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "automatic interventions (the paper's manual range() step):"
    );
    for iv in interventions {
        let _ = writeln!(out, "  {iv}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "iterations to resolve all MSB weights: {} (paper: 2)",
        history.len()
    );
    out
}

/// Renders the Table 2 report exactly as `--bin table2` prints it.
pub fn table2_text(history: &[Vec<LsbAnalysis>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — LSB analysis of the LMS equalizer (input <7,5,tc>, k = 1)"
    );
    let _ = writeln!(
        out,
        "===================================================================="
    );
    for (i, analyses) in history.iter().enumerate() {
        let _ = writeln!(out);
        let _ = writeln!(out, "--- iteration {} ---", i + 1);
        let _ = write!(out, "{}", render_lsb_table(analyses));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "iterations to resolve all LSB weights: {} (paper: 1)",
        history.len()
    );
    out
}

/// The §6 SQNR observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqnrResult {
    /// SQNR of `w` with only the input quantized (paper: 39.8 dB).
    pub before_db: f64,
    /// SQNR of `w` after refining every signal (paper: 39.1 dB).
    pub after_db: f64,
}

impl SqnrResult {
    /// The refinement cost in dB (paper: 0.7 dB).
    pub fn cost_db(&self) -> f64 {
        self.before_db - self.after_db
    }
}

/// Measures the equalizer's `w` SQNR before LSB refinement (input-only
/// quantization) and after the full MSB+LSB refinement.
///
/// # Errors
///
/// Propagates [`FlowError`] from the refinement run.
pub fn run_sqnr(samples: usize) -> Result<(SqnrResult, FlowOutcome), FlowError> {
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };

    let measure = |d: &Design, eq: &LmsEqualizer| {
        d.reset_stats();
        d.reset_state();
        eq.init();
        let mut meter = SqnrMeter::new();
        for &x in &equalizer_stimulus(7, LMS_SNR_DB, samples) {
            eq.step(x);
            let v = eq.w().get();
            meter.record(v.flt(), v.fix());
        }
        meter.sqnr_db()
    };

    // Stage A: input-only quantization.
    let (d, eq) = lms_setup(&config);
    let before_db = measure(&d, &eq);

    // Stage B: full refinement on a fresh design, then re-measure.
    let (d2, eq2) = lms_setup(&config);
    let mut flow = RefinementFlow::new(d2.clone(), RefinePolicy::default());
    let outcome = flow.run(lms_stimulus(&eq2, samples))?;
    let after_db = measure(&d2, &eq2);

    Ok((
        SqnrResult {
            before_db,
            after_db,
        },
        outcome,
    ))
}

/// The §6.1 complex-example summary.
#[derive(Debug, Clone)]
pub struct ComplexResult {
    /// Total monitored signals (paper: 61).
    pub signals: usize,
    /// Saturations forced by MSB explosion (paper: 2).
    pub forced_saturations: usize,
    /// Knowledge-based saturations (paper: 5).
    pub knowledge_saturations: usize,
    /// Signals left non-saturated (paper: 54).
    pub nonsaturated: usize,
    /// Mean MSB overhead of the non-saturated signals versus the pure
    /// statistic estimate (paper: 0.22 bits/signal).
    pub msb_overhead_bits: f64,
    /// MSB iterations (paper: 2).
    pub msb_iterations: usize,
    /// LSB-divergent feedback signals (paper: 1 — inside the NCO).
    pub lsb_divergent: Vec<String>,
    /// LSB iterations after stabilizing the divergent signal (paper: 1
    /// further iteration, i.e. 2 runs total).
    pub lsb_iterations: usize,
    /// §5.2 consumed/produced precision checks from the verification run.
    pub precision: Vec<fixref_core::PrecisionCheck>,
    /// The full flow outcome for drill-down.
    pub outcome: FlowOutcome,
}

/// Runs the full refinement flow on the Fig. 5 timing-recovery loop.
///
/// The five knowledge-based saturation choices are the control-path
/// signals a designer knows to be bounded: the TED error, both loop-filter
/// terms, its output, and the NCO step.
///
/// # Errors
///
/// Propagates [`FlowError`] from either phase.
pub fn run_complex(samples: usize) -> Result<ComplexResult, FlowError> {
    let d = Design::with_seed(0x0DEC_7BA5);
    let config = TimingConfig {
        input_dtype: Some(DType::tc("T_in", 7, 5).expect("valid")),
        input_range: None, // the input type supplies the declared range
        ..TimingConfig::default()
    };
    let loopm = TimingRecovery::new(&d, &config);
    let signals = loopm.signal_ids().len();

    let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
    for name in ["terr", "lp", "lferr", "step", "mu"] {
        flow.force_saturate(d.find(name).expect("declared"));
    }

    let stim = |_d: &Design, _iter: usize| {
        loopm.init();
        let mut src = ShapedPamSource::new(31, 0.35, 2, 0.3, 100.0);
        let mut noise = Awgn::from_snr_db(9, TIMING_SNR_DB, 1.0);
        for _ in 0..samples {
            loopm.step(noise.add(src.next_sample()).clamp(-1.9, 1.9));
        }
    };

    let outcome = flow.run(stim)?;

    let (forced, other) = outcome.saturation_counts();
    let resolved_nonsat = outcome
        .msb()
        .iter()
        .filter(|a| a.decision.is_resolved() && !a.decision.is_saturated())
        .count();
    let lsb_divergent: Vec<String> = outcome
        .interventions
        .iter()
        .filter_map(|iv| match iv {
            fixref_core::Intervention::AutoError { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect();

    // The verification run's statistics are still on the design; run the
    // §5.2 precision classification over them.
    let precision = fixref_core::precision::analyze_precision_all(&d.reports());

    Ok(ComplexResult {
        signals,
        forced_saturations: forced,
        knowledge_saturations: other,
        nonsaturated: resolved_nonsat,
        msb_overhead_bits: outcome.mean_msb_overhead().unwrap_or(0.0),
        msb_iterations: outcome.msb_iterations,
        lsb_divergent,
        lsb_iterations: outcome.lsb_iterations,
        precision,
        outcome,
    })
}

/// Measures the equalizer output SQNR under whatever types the design
/// currently carries.
fn lms_quality(d: &Design, eq: &LmsEqualizer, samples: usize) -> f64 {
    d.reset_stats();
    d.reset_state();
    eq.init();
    let mut meter = SqnrMeter::new();
    for &x in &equalizer_stimulus(7, LMS_SNR_DB, samples) {
        eq.step(x);
        let v = eq.w().get();
        meter.record(v.flt(), v.fix());
    }
    meter.sqnr_db()
}

/// Races the three strategies on the equalizer at a common quality target
/// and returns one [`StrategyResult`] row each (hybrid, simulation-based,
/// analytical).
///
/// # Errors
///
/// Propagates [`FlowError`] from the hybrid flow.
pub fn run_baselines(samples: usize, target_db: f64) -> Result<Vec<StrategyResult>, FlowError> {
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };

    // --- Hybrid (the paper's method). ---
    let (d, eq) = lms_setup(&config);
    let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
    let outcome = flow.run(lms_stimulus(&eq, samples))?;
    // Cost: msb iterations + lsb iterations + the verification run.
    let hybrid_sims = outcome.msb_iterations + outcome.lsb_iterations + 1;
    let hybrid_quality = lms_quality(&d, &eq, samples);
    let hybrid = StrategyResult::from_types("hybrid", hybrid_sims, &outcome.types)
        .with_quality(hybrid_quality)
        .with_notes(format!("{} auto-annotations", outcome.interventions.len()));

    // --- Pure simulation-based search (Sung & Kum). ---
    let (d2, eq2) = lms_setup(&config);
    let refine_ids: Vec<_> = eq2
        .signal_ids()
        .into_iter()
        .filter(|&id| d2.dtype_of(id).is_none())
        .collect();
    let mut eval = |d: &Design| {
        let _ = d;
        lms_quality(&d2, &eq2, samples)
    };
    let search = sim_search_refine(
        &d2,
        &refine_ids,
        &mut eval,
        target_db,
        &SimSearchOptions::default(),
    );
    let simulation = StrategyResult::from_types("simulation", search.probes, &search.types)
        .with_quality(search.final_quality)
        .with_notes(format!("{} signals skipped", search.skipped.len()));

    // --- Pure analytical (Willems et al.). ---
    let (d3, eq3) = lms_setup(&config);
    d3.record_graph(true);
    eq3.init();
    for &x in &equalizer_stimulus(7, LMS_SNR_DB, 64) {
        eq3.step(x); // one short pass extracts the structure
    }
    d3.record_graph(false);
    let graph = d3.graph();
    let mut seeds = HashMap::new();
    seeds.insert(eq3.x().id(), Interval::new(-1.5, 1.5));
    // The analytical method cannot bound the adaptive feedback: declare
    // the same range the designer gives the hybrid flow.
    seeds.insert(eq3.b().id(), Interval::new(-0.2, 0.2));
    // Worst-case |e| budget equivalent to the SQNR target on unit power.
    let budget = 10f64.powf(-target_db / 20.0) * 12f64.sqrt();
    let analytic = analytic_refine(
        &graph,
        &seeds,
        &[eq3.w().id()],
        budget,
        &AnalyticOptions::default(),
    );
    // Apply and measure.
    for (id, t) in &analytic.types {
        d3.set_dtype(*id, Some(t.clone()));
    }
    let analytic_quality = lms_quality(&d3, &eq3, samples);
    let analytical = StrategyResult::from_types("analytical", 1, &analytic.types)
        .with_quality(analytic_quality)
        .with_notes(format!(
            "{} signals need declared ranges",
            analytic.needs_annotation.len()
        ));

    Ok(vec![hybrid, simulation, analytical])
}

/// The QAM case-study summary (extension beyond the paper's two published
/// designs: its production systems were QAM cable modems).
#[derive(Debug, Clone)]
pub struct CaseStudyResult {
    /// Monitored signals (38 at the default 5 complex taps).
    pub signals: usize,
    /// MSB / LSB iteration counts.
    pub msb_iterations: usize,
    /// LSB iterations.
    pub lsb_iterations: usize,
    /// Adaptive coefficients pinned after range explosion.
    pub forced_saturations: usize,
    /// Equalized-output SQNR with every decided type applied (dB).
    pub sqnr_db: f64,
    /// Symbol decisions that differ between the fixed and float paths
    /// during the measurement run.
    pub decision_mismatches: u64,
    /// Estimated datapath cost (gate equivalents).
    pub gates: f64,
    /// The full flow outcome for drill-down.
    pub outcome: FlowOutcome,
}

/// Refines the complex QAM FFE end to end and measures the result.
///
/// # Errors
///
/// Propagates [`FlowError`] from the refinement phases.
pub fn run_case_study(samples: usize) -> Result<CaseStudyResult, FlowError> {
    use fixref_dsp::qam::{qam_stimulus, FfeConfig, QamFfe};

    let d = Design::with_seed(0x0A11_CAFE);
    let config = FfeConfig {
        input_dtype: Some(DType::tc("T_in", 9, 7).expect("valid")),
        input_range: None,
        ..FfeConfig::default()
    };
    let ffe = QamFfe::new(&d, &config);
    let signals = ffe.signal_ids().len();

    let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
    let ffe_for_flow = ffe.clone();
    let outcome = flow.run(move |dd: &Design, _| {
        dd.reset_state();
        ffe_for_flow.init();
        for &x in &qam_stimulus(3, 26.0, samples) {
            ffe_for_flow.step(x);
        }
    })?;

    // Measure with the decided types, recording the graph for costing.
    d.reset_stats();
    d.reset_state();
    d.clear_graph();
    d.record_graph(true);
    ffe.init();
    let mut meter = SqnrMeter::new();
    let mut mismatches = 0;
    for &x in &qam_stimulus(3, 26.0, samples) {
        ffe.step(x);
        let (or_, oi) = ffe.outputs();
        let (vr, vi) = (or_.get(), oi.get());
        meter.record(vr.flt(), vr.fix());
        meter.record(vi.flt(), vi.fix());
        let (yr, yi) = (d.find("yr").expect("yr"), d.find("yi").expect("yi"));
        let (yrf, yrx) = d.peek(yr);
        let (yif, yix) = d.peek(yi);
        if yrf != yrx || yif != yix {
            mismatches += 1;
        }
    }
    d.record_graph(false);
    let gates = fixref_codegen::estimate_cost(&d, &d.graph()).gate_score();

    let (forced, _) = outcome.saturation_counts();
    Ok(CaseStudyResult {
        signals,
        msb_iterations: outcome.msb_iterations,
        lsb_iterations: outcome.lsb_iterations,
        forced_saturations: forced,
        sqnr_db: meter.sqnr_db(),
        decision_mismatches: mismatches,
        gates,
        outcome,
    })
}

/// One row of the iteration-count scaling comparison.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Workload name.
    pub workload: String,
    /// Refinable signal count.
    pub signals: usize,
    /// Full simulations the hybrid flow needed.
    pub hybrid_sims: usize,
    /// Full simulations the Sung-&-Kum search needed.
    pub search_sims: usize,
}

/// Measures how the two stimulus-driven strategies' simulation counts
/// scale with design size: the 14-signal equalizer versus the 38-signal
/// complex FFE. The paper's pitch is exactly this curve — the hybrid stays
/// at a handful of runs while the search grows with the signal count.
///
/// # Errors
///
/// Propagates [`FlowError`] from the hybrid flows.
pub fn run_scaling(samples: usize, target_db: f64) -> Result<Vec<ScalingRow>, FlowError> {
    use fixref_dsp::qam::{qam_stimulus, FfeConfig, QamFfe};

    // --- LMS equalizer (14 signals). ---
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let (d, eq) = lms_setup(&config);
    let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
    let outcome = flow.run(lms_stimulus(&eq, samples))?;
    let lms_hybrid = outcome.msb_iterations + outcome.lsb_iterations + 1;

    let (d2, eq2) = lms_setup(&config);
    let refine_ids: Vec<_> = eq2
        .signal_ids()
        .into_iter()
        .filter(|&id| d2.dtype_of(id).is_none())
        .collect();
    let lms_signals = refine_ids.len() + 1;
    let mut eval = |_d: &Design| lms_quality(&d2, &eq2, samples);
    let search = sim_search_refine(
        &d2,
        &refine_ids,
        &mut eval,
        target_db,
        &SimSearchOptions::default(),
    );
    let lms_search = search.probes;

    // --- QAM FFE (38 signals). ---
    let ffe_config = FfeConfig {
        input_dtype: Some(DType::tc("T_in", 9, 7).expect("valid")),
        input_range: None,
        ..FfeConfig::default()
    };
    let d3 = Design::with_seed(0x5CA1E);
    let ffe = QamFfe::new(&d3, &ffe_config);
    let ffe_signals = ffe.signal_ids().len();
    let mut flow = RefinementFlow::new(d3.clone(), RefinePolicy::default());
    let ffe_for_flow = ffe.clone();
    let outcome = flow.run(move |dd: &Design, _| {
        dd.reset_state();
        ffe_for_flow.init();
        for &x in &qam_stimulus(3, 26.0, samples) {
            ffe_for_flow.step(x);
        }
    })?;
    let ffe_hybrid = outcome.msb_iterations + outcome.lsb_iterations + 1;

    let d4 = Design::with_seed(0x5CA1E);
    let ffe2 = QamFfe::new(&d4, &ffe_config);
    let refine_ids: Vec<_> = ffe2
        .signal_ids()
        .into_iter()
        .filter(|&id| d4.dtype_of(id).is_none())
        .collect();
    let mut eval = |d: &Design| {
        d.reset_state();
        ffe2.init();
        let mut meter = SqnrMeter::new();
        for &x in &qam_stimulus(3, 26.0, samples) {
            ffe2.step(x);
            let (or_, oi) = ffe2.outputs();
            let (vr, vi) = (or_.get(), oi.get());
            meter.record(vr.flt(), vr.fix());
            meter.record(vi.flt(), vi.fix());
        }
        meter.sqnr_db()
    };
    let search = sim_search_refine(
        &d4,
        &refine_ids,
        &mut eval,
        target_db,
        &SimSearchOptions::default(),
    );

    Ok(vec![
        ScalingRow {
            workload: "LMS equalizer".to_string(),
            signals: lms_signals,
            hybrid_sims: lms_hybrid,
            search_sims: lms_search,
        },
        ScalingRow {
            workload: "QAM FFE".to_string(),
            signals: ffe_signals,
            hybrid_sims: ffe_hybrid,
            search_sims: search.probes,
        },
    ])
}
