//! Scenario-sweep experiments: shard builders for the two reference
//! designs, swept variants of the Table 1/2 runs, and the parallel-shard
//! benchmark behind `cargo run -p fixref-bench --bin sweep`
//! (`BENCH_parallel.json`).
//!
//! The swept table runs exist to witness the sweep engine's conformance
//! contract: driven with [`lms_paper_scenario`] they must reproduce
//! [`crate::run_table1`] / [`crate::run_table2`] bit-identically at any
//! worker count, because a single scenario always folds through the
//! identity merge.

use std::time::Instant;

use fixref_core::{
    render_msb_table, FlowError, LsbAnalysis, MsbAnalysis, RefinePolicy, RefinementFlow,
    ShardBuilder, ShardSim, SweepDriver,
};
use fixref_dsp::{
    Awgn, FirChannel, LmsConfig, PamSource, ShapedPamSource, TimingConfig, TimingRecovery,
};
use fixref_obs::json::{escape, fmt_f64};
use fixref_obs::MetricsReport;
use fixref_sim::{Design, Scenario, ScenarioSet};

use crate::{lms_setup, LMS_SNR_DB};

/// Stimulus samples for one equalizer scenario: BPSK symbols through the
/// scenario's channel (the paper's mild-ISI channel when no taps are
/// given) plus AWGN at the scenario's SNR.
///
/// With empty `channel_taps` this reproduces
/// [`fixref_dsp::lms::equalizer_stimulus`] sample-for-sample, which is
/// what keeps the single-scenario sweep bit-identical to the sequential
/// table runs.
pub fn lms_scenario_stimulus(scenario: &Scenario) -> Vec<f64> {
    let mut pam = PamSource::bpsk(scenario.seed as u32 | 1);
    let mut channel = if scenario.channel_taps.is_empty() {
        FirChannel::mild_isi()
    } else {
        FirChannel::new(&scenario.channel_taps)
    };
    let mut noise = Awgn::from_snr_db(scenario.seed, scenario.snr_db, 1.0);
    (0..scenario.samples)
        .map(|_| {
            let s = pam.next_symbol();
            noise.add(channel.push(s)).clamp(-1.5, 1.5)
        })
        .collect()
}

/// Shard builder for the Fig. 1 LMS equalizer.
///
/// Every shard gets a fresh design with the same seed as [`lms_setup`],
/// so its `error()` injection streams line up with the master design's —
/// only the stimulus varies with the scenario.
pub fn lms_shard_builder(config: LmsConfig) -> Box<ShardBuilder> {
    Box::new(move |scenario: &Scenario| {
        let (design, eq) = lms_setup(&config);
        let stimulus = lms_scenario_stimulus(scenario);
        ShardSim {
            design,
            stimulus: Box::new(move |_d: &Design, _iter: usize| {
                eq.init();
                for &x in &stimulus {
                    eq.step(x);
                }
            }),
        }
    })
}

/// Shard builder for the Fig. 5 timing-recovery loop of the §6.1 complex
/// example.
///
/// The scenario seed drives the shaped-PAM source and the channel noise;
/// the design seed stays fixed (matching [`crate::run_complex`]) so shard
/// `error()` streams match the master design's.
pub fn timing_shard_builder(config: TimingConfig) -> Box<ShardBuilder> {
    Box::new(move |scenario: &Scenario| {
        let design = Design::with_seed(0x0DEC_7BA5);
        let loopm = TimingRecovery::new(&design, &config);
        let (seed, snr_db, samples) = (scenario.seed, scenario.snr_db, scenario.samples);
        ShardSim {
            design,
            stimulus: Box::new(move |_d: &Design, _iter: usize| {
                loopm.init();
                let mut src = ShapedPamSource::new(seed as u32 | 1, 0.35, 2, 0.3, 100.0);
                let mut noise = Awgn::from_snr_db(seed.wrapping_add(2), snr_db, 1.0);
                for _ in 0..samples {
                    loopm.step(noise.add(src.next_sample()).clamp(-1.9, 1.9));
                }
            }),
        }
    })
}

/// The single scenario reproducing the sequential Table 1/2 stimulus:
/// seed 7 at [`LMS_SNR_DB`] over the paper's mild-ISI channel.
pub fn lms_paper_scenario(samples: usize) -> ScenarioSet {
    ScenarioSet::single(7, LMS_SNR_DB, samples)
}

/// A seed sweep around the paper's operating point: `scenarios`
/// consecutive seeds starting at the table seed, all at [`LMS_SNR_DB`]
/// over the mild-ISI channel.
pub fn lms_seed_grid(scenarios: usize, samples: usize) -> ScenarioSet {
    let seeds: Vec<u64> = (0..scenarios.max(1) as u64).map(|i| 7 + i).collect();
    ScenarioSet::grid(&seeds, &[LMS_SNR_DB], &[], &[samples])
}

/// [`crate::run_table1_report`] driven through the scenario-sweep engine.
///
/// # Errors
///
/// Propagates [`FlowError`] if the MSB phase cannot converge.
#[allow(clippy::type_complexity)]
pub fn run_table1_swept(
    scenarios: &ScenarioSet,
    workers: usize,
) -> Result<(Vec<Vec<MsbAnalysis>>, Vec<String>, MetricsReport), FlowError> {
    let (design, _eq) = lms_setup(&LmsConfig::default());
    let mut flow = RefinementFlow::new(design, RefinePolicy::default());
    let mut driver = SweepDriver::new(
        scenarios.clone(),
        workers,
        lms_shard_builder(LmsConfig::default()),
    );
    let (history, interventions) = flow.run_msb_swept(&mut driver)?;
    let report = MetricsReport::from_recorder("table1", flow.recorder());
    Ok((
        history,
        interventions.iter().map(|i| i.to_string()).collect(),
        report,
    ))
}

/// [`crate::run_table2_report`] driven through the scenario-sweep engine.
///
/// # Errors
///
/// Propagates [`FlowError`] if the LSB phase cannot converge.
pub fn run_table2_swept(
    scenarios: &ScenarioSet,
    workers: usize,
) -> Result<(Vec<Vec<LsbAnalysis>>, MetricsReport), FlowError> {
    let config = LmsConfig {
        input_dtype: Some(crate::paper_input_type()),
        ..LmsConfig::default()
    };
    let (design, _eq) = lms_setup(&config);
    let mut flow = RefinementFlow::new(design, RefinePolicy::default());
    let mut driver = SweepDriver::new(scenarios.clone(), workers, lms_shard_builder(config));
    let (history, _) = flow.run_lsb_swept(&mut driver)?;
    let report = MetricsReport::from_recorder("table2", flow.recorder());
    Ok((history, report))
}

/// One shard row of a [`SweepBenchResult`], taken from the parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// Scenario index within the set.
    pub index: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Stimulus SNR (dB).
    pub snr_db: f64,
    /// Stimulus length.
    pub samples: usize,
    /// Clock cycles the shard's design ticked in the last iteration.
    pub cycles: u64,
    /// Wall-clock nanoseconds the shard spent on its worker thread in the
    /// last iteration.
    pub wall_ns: u128,
}

/// Outcome of the parallel scenario-sweep benchmark: the same MSB
/// refinement of the LMS equalizer over a seed grid, once with one worker
/// and once with `workers`.
#[derive(Debug, Clone)]
pub struct SweepBenchResult {
    /// Scenario count in the grid.
    pub scenarios: usize,
    /// Stimulus length per scenario.
    pub samples: usize,
    /// Worker threads of the parallel run.
    pub workers: usize,
    /// `std::thread::available_parallelism()` on the benchmarking host —
    /// read this before trusting the speedup number.
    pub available_parallelism: usize,
    /// Wall time of the one-worker (sequential) refinement, nanoseconds.
    pub sequential_ns: u128,
    /// Wall time of the `workers`-thread refinement, nanoseconds.
    pub parallel_ns: u128,
    /// `sequential_ns / parallel_ns`.
    pub speedup: f64,
    /// MSB iterations both runs took (they must agree).
    pub msb_iterations: usize,
    /// Whether the sequential and parallel runs produced the same final
    /// MSB table — the conformance check riding along with the timing.
    pub outcomes_match: bool,
    /// Per-shard statistics from the last parallel iteration.
    pub shards: Vec<ShardRow>,
}

impl SweepBenchResult {
    /// Renders the result as the `BENCH_parallel.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"parallel\",\n");
        out.push_str(&format!("  \"scenarios\": {},\n", self.scenarios));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str(&format!("  \"sequential_ns\": {},\n", self.sequential_ns));
        out.push_str(&format!("  \"parallel_ns\": {},\n", self.parallel_ns));
        out.push_str(&format!("  \"speedup\": {},\n", fmt_f64(self.speedup)));
        out.push_str(&format!("  \"msb_iterations\": {},\n", self.msb_iterations));
        out.push_str(&format!("  \"outcomes_match\": {},\n", self.outcomes_match));
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let comma = if i + 1 < self.shards.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"index\": {}, \"label\": \"{}\", \"seed\": {}, \"snr_db\": {}, \
                 \"samples\": {}, \"cycles\": {}, \"wall_ns\": {}}}{comma}\n",
                s.index,
                escape(&format!(
                    "s{} seed={} snr={}dB n={}",
                    s.index, s.seed, s.snr_db, s.samples
                )),
                s.seed,
                fmt_f64(s.snr_db),
                s.samples,
                s.cycles,
                s.wall_ns,
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Runs the MSB refinement of `run_msb_swept` over `set` and returns the
/// final rendered MSB table, the iteration count, the per-shard rows of
/// the last iteration, and the wall time.
fn timed_msb_sweep(
    set: &ScenarioSet,
    workers: usize,
) -> Result<(String, usize, Vec<ShardRow>, u128), FlowError> {
    let (design, _eq) = lms_setup(&LmsConfig::default());
    let mut flow = RefinementFlow::new(design, RefinePolicy::default());
    let mut driver = SweepDriver::new(
        set.clone(),
        workers,
        lms_shard_builder(LmsConfig::default()),
    );
    let start = Instant::now();
    let (history, _interventions) = flow.run_msb_swept(&mut driver)?;
    let wall_ns = start.elapsed().as_nanos();
    let table = history
        .last()
        .map(|a| render_msb_table(a))
        .unwrap_or_default();
    let shards = driver
        .shard_summaries()
        .iter()
        .map(|s| ShardRow {
            index: s.scenario.index,
            seed: s.scenario.seed,
            snr_db: s.scenario.snr_db,
            samples: s.scenario.samples,
            cycles: s.cycles,
            wall_ns: s.wall_ns,
        })
        .collect();
    Ok((table, history.len(), shards, wall_ns))
}

/// The parallel-sweep benchmark: refines the equalizer's MSB side over a
/// `scenarios`-seed grid sequentially (one worker) and with `workers`
/// threads, verifying the two runs agree and reporting the timing.
///
/// The speedup is only meaningful when `available_parallelism` actually
/// offers `workers` hardware threads; the JSON carries the host's count
/// so downstream tooling can judge.
///
/// # Errors
///
/// Propagates [`FlowError`] if either refinement fails to converge.
pub fn run_sweep_bench(
    scenarios: usize,
    samples: usize,
    workers: usize,
) -> Result<SweepBenchResult, FlowError> {
    let set = lms_seed_grid(scenarios, samples);
    let (seq_table, seq_iters, _seq_shards, sequential_ns) = timed_msb_sweep(&set, 1)?;
    let (par_table, par_iters, shards, parallel_ns) = timed_msb_sweep(&set, workers)?;

    Ok(SweepBenchResult {
        scenarios: set.len(),
        samples,
        workers,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        sequential_ns,
        parallel_ns,
        speedup: sequential_ns as f64 / parallel_ns.max(1) as f64,
        msb_iterations: seq_iters.max(par_iters),
        outcomes_match: seq_table == par_table && seq_iters == par_iters,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: usize = 600;

    #[test]
    fn scenario_stimulus_with_empty_taps_matches_equalizer_stimulus() {
        let set = lms_paper_scenario(SAMPLES);
        let swept = lms_scenario_stimulus(&set.as_slice()[0]);
        let sequential = fixref_dsp::lms::equalizer_stimulus(7, LMS_SNR_DB, SAMPLES);
        assert_eq!(swept, sequential);
    }

    #[test]
    fn scenario_stimulus_honours_custom_channel_taps() {
        let set = lms_paper_scenario(SAMPLES);
        let mut scenario = set.as_slice()[0].clone();
        scenario.channel_taps = vec![0.3, 1.0];
        let custom = lms_scenario_stimulus(&scenario);
        let default = lms_scenario_stimulus(&set.as_slice()[0]);
        assert_ne!(custom, default);
    }

    #[test]
    fn swept_table1_is_bit_identical_to_sequential_table1() {
        let (seq_history, seq_iv) = crate::run_table1(SAMPLES).expect("sequential converges");
        for workers in [1, 4] {
            let (history, iv, _report) =
                run_table1_swept(&lms_paper_scenario(SAMPLES), workers).expect("swept converges");
            assert_eq!(history, seq_history, "workers={workers}");
            assert_eq!(iv, seq_iv, "workers={workers}");
        }
    }

    #[test]
    fn swept_table2_is_bit_identical_to_sequential_table2() {
        let seq_history = crate::run_table2(SAMPLES).expect("sequential converges");
        for workers in [1, 4] {
            let (history, _report) =
                run_table2_swept(&lms_paper_scenario(SAMPLES), workers).expect("swept converges");
            assert_eq!(history, seq_history, "workers={workers}");
        }
    }

    #[test]
    fn sweep_bench_agrees_across_worker_counts_and_renders_json() {
        let result = run_sweep_bench(3, SAMPLES, 2).expect("bench converges");
        assert!(result.outcomes_match);
        assert_eq!(result.scenarios, 3);
        assert_eq!(result.shards.len(), 3);
        assert!(result.speedup > 0.0);
        let json = result.render_json();
        let parsed = fixref_obs::Json::parse(&json).expect("well-formed JSON");
        assert_eq!(
            parsed.get("bench").and_then(fixref_obs::Json::as_str),
            Some("parallel")
        );
        assert_eq!(
            parsed.get("scenarios").and_then(fixref_obs::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("shards")
                .and_then(fixref_obs::Json::as_arr)
                .map(<[fixref_obs::Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn timing_shard_builder_builds_independent_conforming_shards() {
        let config = TimingConfig {
            input_dtype: Some(fixref_fixed::DType::tc("T_in", 7, 5).expect("valid")),
            input_range: None,
            ..TimingConfig::default()
        };
        let builder = timing_shard_builder(config);
        let set = ScenarioSet::single(31, crate::TIMING_SNR_DB, 400);
        let mut a = builder(&set.as_slice()[0]);
        let mut b = builder(&set.as_slice()[0]);
        (a.stimulus)(&a.design, 1);
        (b.stimulus)(&b.design, 1);
        let (sa, sb) = (a.design.export_stats(), b.design.export_stats());
        assert_eq!(sa, sb, "same scenario twice must be deterministic");
        assert!(sa.iter().any(|s| s.stat.count() > 0));
    }
}
