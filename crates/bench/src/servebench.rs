//! Job-server throughput, latency and recovery benchmark.
//!
//! Three questions, answered with wall clocks rather than claims:
//!
//! 1. **Throughput** — jobs/sec through the server at queue depths 1, 8
//!    and 64: each round submits `depth` identical LMS refinement jobs,
//!    then measures from first submit to last completion with a worker
//!    thread draining the queue.
//! 2. **Latency** — per-job submit-to-complete wall time (p50/p99 over
//!    the round), observed by polling job status at sub-millisecond
//!    granularity.
//! 3. **Recovery** — after an injected `kill -9`-equivalent crash
//!    ([`fixref_sim::FaultPlan::server_crash_after_n_checkpoints`])
//!    mid-job with a full queue behind it: how long the restart takes
//!    to replay the jobs log and re-queue (open), and how long until
//!    every recovered job is finished (drain).
//!
//! Honesty note: these are single-machine wall-clock numbers over a
//! deliberately small stimulus (the default 120-sample LMS job takes
//! ~10 ms), so the *ratios* between queue depths and the recovery split
//! are the signal; the absolute jobs/sec mostly measures the refinement
//! flow itself, and the p50/p99 split at depth 64 shows queueing delay,
//! not server overhead. Latency observation by polling adds up to the
//! poll interval (100 µs) per sample.

use std::time::{Duration, Instant};

use fixref_core::{FlowSpec, JobSpec};
use fixref_obs::json::fmt_f64;
use fixref_serve::{JobState, Server, ServerConfig};
use fixref_sim::{DesignSpec, FaultPlan, ScenarioSet};

/// Throughput/latency measurements at one queue depth.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthRow {
    /// Jobs submitted before the worker starts draining.
    pub depth: usize,
    /// First-submit to last-completion wall time, ns.
    pub wall_ns: u128,
    /// Completed jobs per second over the round.
    pub jobs_per_sec: f64,
    /// Median submit-to-complete latency, ns.
    pub p50_ns: u128,
    /// 99th-percentile submit-to-complete latency, ns.
    pub p99_ns: u128,
}

/// Result of [`run_serve_bench`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchResult {
    /// LMS stimulus length per job.
    pub samples: usize,
    /// One row per measured queue depth.
    pub rows: Vec<DepthRow>,
    /// Jobs queued behind the crash in the recovery measurement.
    pub recovery_jobs: usize,
    /// Restart cost: jobs-log replay + re-queue (`Server::open`), ns.
    pub recovery_open_ns: u128,
    /// Drain cost: finishing every recovered job after restart, ns.
    pub recovery_drain_ns: u128,
    /// Every recovered job finished `"complete"`.
    pub recovery_complete: bool,
}

fn lms_job(samples: usize, tenant: &str) -> JobSpec {
    JobSpec::new(
        tenant,
        DesignSpec::new("lms").with_input_dtype("<7,5,tc,st,rd>"),
        ScenarioSet::single(7, 28.0, samples),
    )
    .with_flow(FlowSpec::default())
}

fn data_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fixref_servebench_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn percentile(sorted: &[u128], pct: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One throughput round: submit `depth` jobs, drain with a worker
/// thread, observe per-job completion by polling.
fn run_depth(samples: usize, depth: usize) -> DepthRow {
    let mut config = ServerConfig::new(data_dir(&format!("depth{depth}")));
    config.queue_capacity = depth.max(1);
    config.tenant_queue_capacity = depth.max(1);
    let server = std::sync::Arc::new(Server::open(config).expect("server opens"));

    let t0 = Instant::now();
    let jobs: Vec<(String, Instant)> = (0..depth)
        .map(|_| {
            let submitted = Instant::now();
            let job = server.submit(lms_job(samples, "bench")).expect("accepted");
            (job, submitted)
        })
        .collect();
    let worker = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run_until_idle())
    };
    let mut latencies_ns: Vec<u128> = Vec::with_capacity(depth);
    let mut pending: Vec<(String, Instant)> = jobs;
    while !pending.is_empty() {
        pending.retain(|(job, submitted)| match server.status(job) {
            Some(s) if s.state == JobState::Finished => {
                latencies_ns.push(submitted.elapsed().as_nanos());
                false
            }
            _ => true,
        });
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    let wall_ns = t0.elapsed().as_nanos();
    assert_eq!(worker.join().expect("worker"), depth);

    latencies_ns.sort_unstable();
    DepthRow {
        depth,
        wall_ns,
        jobs_per_sec: depth as f64 / (wall_ns as f64 / 1e9),
        p50_ns: percentile(&latencies_ns, 50.0),
        p99_ns: percentile(&latencies_ns, 99.0),
    }
}

/// Crash-recovery timing: `jobs` queued, server killed after 2
/// checkpoints (mid job 1), restarted, drained.
fn run_recovery(samples: usize, jobs: usize) -> (usize, u128, u128, bool) {
    let dir = data_dir("recovery");
    let mut config = ServerConfig::new(&dir);
    config.queue_capacity = jobs.max(1);
    config.tenant_queue_capacity = jobs.max(1);
    config.fault_plan = FaultPlan::seeded(0xBE4C).server_crash_after_n_checkpoints(2);
    let server = Server::open(config).expect("server opens");
    let ids: Vec<String> = (0..jobs)
        .map(|_| server.submit(lms_job(samples, "bench")).expect("accepted"))
        .collect();
    server.run_until_idle();
    assert!(server.crashed(), "injected crash must fire");
    drop(server);

    let start = Instant::now();
    let server = Server::open(ServerConfig::new(&dir)).expect("server re-opens");
    let open_ns = start.elapsed().as_nanos();
    let recovered = server.queue_depth();
    let start = Instant::now();
    server.run_until_idle();
    let drain_ns = start.elapsed().as_nanos();
    let complete = ids
        .iter()
        .all(|j| server.result(j).is_some_and(|r| r.status == "complete"));
    (recovered, open_ns, drain_ns, complete)
}

/// Runs the full server benchmark over the given queue depths.
pub fn run_serve_bench(samples: usize, depths: &[usize]) -> ServeBenchResult {
    let rows: Vec<DepthRow> = depths.iter().map(|&d| run_depth(samples, d)).collect();
    let recovery_jobs = 8;
    let (recovered, open_ns, drain_ns, complete) = run_recovery(samples, recovery_jobs);
    ServeBenchResult {
        samples,
        rows,
        recovery_jobs: recovered,
        recovery_open_ns: open_ns,
        recovery_drain_ns: drain_ns,
        recovery_complete: complete,
    }
}

impl ServeBenchResult {
    /// Renders the result as the `BENCH_serve.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"serve\",\n");
        out.push_str("  \"design\": \"lms\",\n");
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str("  \"depths\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"depth\": {}, \"wall_ns\": {}, \"jobs_per_sec\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
                row.depth,
                row.wall_ns,
                fmt_f64(row.jobs_per_sec),
                row.p50_ns,
                row.p99_ns,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"recovery\": {\n");
        out.push_str(&format!("    \"jobs\": {},\n", self.recovery_jobs));
        out.push_str(&format!("    \"open_ns\": {},\n", self.recovery_open_ns));
        out.push_str(&format!("    \"drain_ns\": {},\n", self.recovery_drain_ns));
        out.push_str(&format!("    \"complete\": {}\n", self.recovery_complete));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_runs_and_renders_valid_json() {
        let result = run_serve_bench(100, &[1, 2]);
        assert_eq!(result.rows.len(), 2);
        assert!(result.rows.iter().all(|r| r.jobs_per_sec > 0.0));
        assert!(result.rows.iter().all(|r| r.p50_ns <= r.p99_ns));
        assert!(result.recovery_complete, "recovered jobs must all finish");
        assert_eq!(result.recovery_jobs, 8);
        let json = result.render_json();
        let parsed = fixref_obs::Json::parse(&json).expect("well-formed JSON");
        assert_eq!(
            parsed.get("bench").and_then(fixref_obs::Json::as_str),
            Some("serve")
        );
        assert_eq!(
            parsed
                .get("depths")
                .and_then(fixref_obs::Json::as_arr)
                .map(<[fixref_obs::Json]>::len),
            Some(2)
        );
    }
}
