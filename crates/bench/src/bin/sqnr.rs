//! Regenerates the paper's **§6 SQNR check**: the signal-to-quantization-
//! noise ratio of the equalizer's slicer input `w` before LSB refinement
//! (input quantized `<7,5,tc>` only: paper 39.8 dB) and after refining
//! every signal (paper 39.1 dB).
//!
//! The shape to reproduce: full refinement costs well under 1 dB against
//! the input-quantization noise floor.

use fixref_bench::{run_sqnr, LMS_SAMPLES};

fn main() {
    let (sqnr, outcome) = run_sqnr(LMS_SAMPLES).expect("refinement converges");

    println!("SQNR of w (slicer input) — paper §6");
    println!("====================================");
    println!(
        "before LSB refinement (input <7,5,tc> only): {:6.1} dB   (paper: 39.8 dB)",
        sqnr.before_db
    );
    println!(
        "after full refinement (all signals typed):   {:6.1} dB   (paper: 39.1 dB)",
        sqnr.after_db
    );
    println!(
        "refinement cost:                             {:6.2} dB   (paper: 0.7 dB)",
        sqnr.cost_db()
    );
    println!();
    println!("decided types:");
    for (id, t) in &outcome.types {
        println!("  {:<6} {}", format!("s{}", id.raw()), t);
    }
    println!(
        "verification overflows: {} (must be 0)",
        outcome.verify.total_overflows
    );
}
