//! Fault-tolerance overhead benchmark: times the Table 1/2 refinement
//! flow plain vs. with per-iteration checkpointing, and the
//! `catch_unwind` shard-isolation boundary against a direct call, then
//! writes the result to `BENCH_fault.json`.
//!
//! ```text
//! cargo run --release -p fixref-bench --bin fault -- [--samples N] [--repeats N] [--json]
//! ```
//!
//! Defaults: `LMS_SAMPLES` samples, 3 repeats (minimum wall time wins).
//! `--json` prints the JSON document to stdout instead of the human
//! summary (the file is written either way).

use fixref_bench::{run_fault_bench, write_bench_json, LMS_SAMPLES};

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let samples = parse_flag(&args, "--samples", LMS_SAMPLES);
    let repeats = parse_flag(&args, "--repeats", 3);

    let result = run_fault_bench(samples, repeats).expect("refinement converges");

    let rendered = result.render_json();
    write_bench_json("fault", &rendered);

    if json {
        println!("{rendered}");
    } else {
        println!("Fault tolerance — LMS equalizer, {samples} samples, best of {repeats}");
        println!("==================================================================");
        println!(
            "flow: plain {:.2} ms   checkpointed {:.2} ms   overhead {:+.2}%",
            result.plain_ns as f64 / 1e6,
            result.checkpointed_ns as f64 / 1e6,
            result.checkpoint_overhead_pct
        );
        println!(
            "checkpoints: {} written, final document {} bytes",
            result.checkpoints_written, result.checkpoint_bytes
        );
        println!(
            "isolation: {:.0} ns/job isolated vs {:.0} ns/job direct ({:+.0} ns catch_unwind cost)",
            result.isolated_ns_per_job, result.direct_ns_per_job, result.isolation_cost_ns
        );
        println!("outcomes match: {}", result.outcomes_match);
    }

    if !result.outcomes_match {
        eprintln!("error: checkpointed and plain refinements disagree");
        std::process::exit(1);
    }
    if result.checkpoint_overhead_pct > 3.0 {
        eprintln!(
            "warning: checkpoint overhead {:.2}% above the 3% target (noisy machine?)",
            result.checkpoint_overhead_pct
        );
    }
}
