//! Regenerates the paper's **§6.1 complex example**: the fixed-point
//! refinement of the Fig. 5 PAM timing-recovery loop.
//!
//! Paper-reported shape: 61 monitored signals; 7 put in saturation (2
//! forced by MSB explosion + 5 knowledge-based); the remaining 54
//! non-saturated with a mean MSB overhead of 0.22 bits/signal versus the
//! statistic estimate; 2 MSB iterations; exactly 1 LSB-divergent feedback
//! signal (inside the NCO) fixed with `error()`; 1 further LSB iteration.

use fixref_bench::{run_complex, TIMING_SAMPLES};
use fixref_core::precision::PrecisionStatus;
use fixref_core::{render_lsb_table, render_msb_table};

fn main() {
    let r = run_complex(TIMING_SAMPLES).expect("flow converges on the timing loop");

    println!("Complex example — Fig. 5 timing-recovery loop (paper §6.1)");
    println!("============================================================");
    println!("{:<46} {:>8} {:>8}", "", "measured", "paper");
    println!(
        "{:<46} {:>8} {:>8}",
        "signals subject to refinement", r.signals, 61
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "saturations forced by MSB explosion", r.forced_saturations, 2
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "knowledge-based saturations", r.knowledge_saturations, 5
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "non-saturated signals", r.nonsaturated, 54
    );
    println!(
        "{:<46} {:>8.2} {:>8.2}",
        "mean MSB overhead vs statistic (bits)", r.msb_overhead_bits, 0.22
    );
    println!("{:<46} {:>8} {:>8}", "MSB iterations", r.msb_iterations, 2);
    println!(
        "{:<46} {:>8} {:>8}",
        "LSB-divergent feedback signals",
        r.lsb_divergent.len(),
        1
    );
    println!("{:<46} {:>8} {:>8}", "LSB iterations", r.lsb_iterations, 2);
    println!();
    println!(
        "divergent signal(s): {} (paper: the NCO phase accumulator)",
        r.lsb_divergent.join(", ")
    );
    println!(
        "verification overflows: {}",
        r.outcome.verify.total_overflows
    );
    println!();
    println!("--- final MSB table ---");
    print!("{}", render_msb_table(r.outcome.msb()));
    println!();
    println!("--- final LSB table ---");
    print!("{}", render_lsb_table(r.outcome.lsb()));

    // §5.2 consumed/produced precision check after verification: only the
    // error()-stabilized feedback signals should read as suspects.
    let flagged: Vec<String> = r
        .precision
        .iter()
        .filter(|c| c.status != PrecisionStatus::Preserving)
        .map(|c| format!("{} ({})", c.name, c.status))
        .collect();
    println!();
    println!(
        "precision checks flagged {} of {} signals: {}",
        flagged.len(),
        r.precision.len(),
        if flagged.is_empty() {
            "-".to_string()
        } else {
            flagged.join(", ")
        }
    );
}
