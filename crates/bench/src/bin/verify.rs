//! Runs the formal verification bench over every example design.
//!
//! ```text
//! cargo run --release -p fixref-bench --bin verify
//! ```
//!
//! Prints each example's verdict-annotated report (the text
//! `tests/golden/verify_*.txt` pins in CI) and writes the timing figures —
//! BMC states/second and proof wall-time per design — to
//! `BENCH_verify.json`.

fn main() {
    let result = fixref_bench::run_verify_bench();
    for ex in &result.examples {
        println!("=== {} ===", ex.name);
        print!("{}", ex.verified.render_text());
        println!();
    }
    for ex in &result.examples {
        println!(
            "{}: {} states in {:.3} ms ({:.0} states/s)",
            ex.name,
            ex.states,
            ex.wall_ns as f64 * 1e-6,
            ex.states_per_sec()
        );
    }
    fixref_bench::write_bench_json("verify", &result.render_json());
}
