//! Evaluation-cache benchmark: times one cold LMS simulation against a
//! warm monitor replay, and the full refinement flow with the cache off
//! and on, then writes the result to `BENCH_cache.json`.
//!
//! ```text
//! cargo run --release -p fixref-bench --bin cache -- [--samples N] [--json]
//! ```
//!
//! Defaults: `LMS_SAMPLES` samples. `--json` prints the JSON document to
//! stdout instead of the human summary (the file is written either way).

use fixref_bench::{run_cache_bench, write_bench_json, LMS_SAMPLES};

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let samples = parse_flag(&args, "--samples", LMS_SAMPLES);

    let result = run_cache_bench(samples).expect("refinement converges on the equalizer");

    let rendered = result.render_json();
    write_bench_json("cache", &rendered);

    if json {
        println!("{rendered}");
    } else {
        println!("Evaluation cache — LMS equalizer, {samples} samples");
        println!("===================================================");
        println!(
            "driver: cold {:.2} ms   warm replay {:.3} ms   speedup {:.1}x   ({} cycles)",
            result.cold_ns as f64 / 1e6,
            result.warm_ns as f64 / 1e6,
            result.warm_speedup,
            result.cycles
        );
        println!(
            "driver cache: {} hit(s), {} miss(es)",
            result.driver_hits, result.driver_misses
        );
        println!(
            "flow: uncached {:.1} ms   cached {:.1} ms   speedup {:.2}x",
            result.flow_uncached_ns as f64 / 1e6,
            result.flow_cached_ns as f64 / 1e6,
            result.flow_speedup
        );
        println!(
            "flow cache: {} hit(s), {} miss(es)   outcomes match: {}",
            result.flow_hits, result.flow_misses, result.outcomes_match
        );
    }

    if !result.outcomes_match {
        eprintln!("error: cached and uncached refinements disagree");
        std::process::exit(1);
    }
    if result.warm_speedup < 1.5 {
        eprintln!(
            "error: warm replay speedup {:.2}x below the 1.5x floor",
            result.warm_speedup
        );
        std::process::exit(1);
    }
}
