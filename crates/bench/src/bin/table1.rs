//! Regenerates the paper's **Table 1**: MSB analysis of the Fig. 1 LMS
//! equalizer across refinement iterations.
//!
//! Expected shape (paper §6): iteration 1 resolves every signal except
//! `w` and `b`, which suffer range-propagation explosion from the
//! adaptive feedback; pinning `b`'s range (the flow's automatic
//! equivalent of the paper's `b.range(-0.2, 0.2)`) resolves both in
//! iteration 2.
//!
//! With `--json`, prints the flow's [`MetricsReport`] as JSON instead and
//! writes it to `BENCH_table1.json` for downstream tooling.

use fixref_bench::{run_table1_report, table1_text, write_bench_json, LMS_SAMPLES};

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let (history, interventions, report) =
        run_table1_report(LMS_SAMPLES).expect("MSB phase converges on the equalizer");

    if json {
        let rendered = report.render_json();
        write_bench_json("table1", &rendered);
        println!("{rendered}");
        return;
    }

    print!("{}", table1_text(&history, &interventions));
}
