//! Regenerates the paper's **Table 1**: MSB analysis of the Fig. 1 LMS
//! equalizer across refinement iterations.
//!
//! Expected shape (paper §6): iteration 1 resolves every signal except
//! `w` and `b`, which suffer range-propagation explosion from the
//! adaptive feedback; pinning `b`'s range (the flow's automatic
//! equivalent of the paper's `b.range(-0.2, 0.2)`) resolves both in
//! iteration 2.

use fixref_bench::{run_table1, LMS_SAMPLES};
use fixref_core::render_msb_table;

fn main() {
    let (history, interventions) =
        run_table1(LMS_SAMPLES).expect("MSB phase converges on the equalizer");

    println!("Table 1 — MSB analysis of the LMS equalizer (paper Fig. 1)");
    println!("===========================================================");
    for (i, analyses) in history.iter().enumerate() {
        println!();
        println!("--- iteration {} ---", i + 1);
        print!("{}", render_msb_table(analyses));
        let exploded: Vec<&str> = analyses
            .iter()
            .filter(|a| a.exploded)
            .map(|a| a.name.as_str())
            .collect();
        let no_info: Vec<&str> = analyses
            .iter()
            .filter(|a| !a.exploded && !a.decision.is_resolved())
            .map(|a| a.name.as_str())
            .collect();
        if exploded.is_empty() {
            println!("no range explosions left");
        } else {
            println!("range explosion: {}", exploded.join(", "));
        }
        if !no_info.is_empty() {
            println!(
                "no range information (constant zero, left floating): {}",
                no_info.join(", ")
            );
        }
    }
    println!();
    println!("automatic interventions (the paper's manual range() step):");
    for iv in &interventions {
        println!("  {iv}");
    }
    println!();
    println!(
        "iterations to resolve all MSB weights: {} (paper: 2)",
        history.len()
    );
}
