//! Regenerates the paper's **Table 1**: MSB analysis of the Fig. 1 LMS
//! equalizer across refinement iterations.
//!
//! Expected shape (paper §6): iteration 1 resolves every signal except
//! `w` and `b`, which suffer range-propagation explosion from the
//! adaptive feedback; pinning `b`'s range (the flow's automatic
//! equivalent of the paper's `b.range(-0.2, 0.2)`) resolves both in
//! iteration 2.
//!
//! With `--json`, prints the flow's [`MetricsReport`] as JSON instead and
//! writes it to `BENCH_flow.json` for downstream tooling.

use fixref_bench::{run_table1_report, table1_text, LMS_SAMPLES};
use fixref_obs::MetricsReport;

/// Renders the report as JSON to stdout and `BENCH_flow.json`.
fn emit_json(report: &MetricsReport) {
    let rendered = report.render_json();
    if let Err(e) = std::fs::write("BENCH_flow.json", rendered.as_bytes()) {
        eprintln!("warning: could not write BENCH_flow.json: {e}");
    }
    println!("{rendered}");
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let (history, interventions, report) =
        run_table1_report(LMS_SAMPLES).expect("MSB phase converges on the equalizer");

    if json {
        emit_json(&report);
        return;
    }

    print!("{}", table1_text(&history, &interventions));
}
