//! Ablations over the design choices DESIGN.md calls out, on the LMS
//! equalizer workload:
//!
//! 1. the LSB rule constant `k` (paper: "optimal range \[1,4\]; the smaller
//!    k, the more conservative") — quality vs. bits vs. estimated gates;
//! 2. round-off vs. floor rounding (paper §5.2: floor is cheaper hardware
//!    but shifts the error mean);
//! 3. the rule-*c* trade-off side (propagated MSB, non-saturated vs.
//!    statistic MSB with saturation).

use fixref_bench::{paper_input_type, LMS_SNR_DB};
use fixref_codegen::estimate_cost;
use fixref_core::{RefinePolicy, RefinementFlow};
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_fixed::{RoundingMode, SqnrMeter};
use fixref_sim::Design;

const SAMPLES: usize = 3000;

struct Row {
    label: String,
    mean_f: f64,
    mean_n: f64,
    sqnr_db: f64,
    mean_err: f64,
    gates: f64,
}

fn run(policy: RefinePolicy, label: &str) -> Row {
    let d = Design::with_seed(0xAB1A);
    let config = LmsConfig {
        input_dtype: Some(paper_input_type()),
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&d, &config);
    let mut flow = RefinementFlow::new(d.clone(), policy);
    let eq_for_flow = eq.clone();
    let outcome = flow
        .run(move |_, _| {
            eq_for_flow.init();
            for &x in &equalizer_stimulus(7, LMS_SNR_DB, SAMPLES) {
                eq_for_flow.step(x);
            }
        })
        .expect("flow converges");

    // Measure with the decided types (recording the graph for costing).
    d.reset_stats();
    d.reset_state();
    d.clear_graph();
    d.record_graph(true);
    eq.init();
    let mut meter = SqnrMeter::new();
    let mut err_sum = 0.0;
    let mut err_n = 0u64;
    for &x in &equalizer_stimulus(7, LMS_SNR_DB, SAMPLES) {
        eq.step(x);
        let w = eq.w().get();
        meter.record(w.flt(), w.fix());
        err_sum += w.flt() - w.fix();
        err_n += 1;
    }
    d.record_graph(false);
    let cost = estimate_cost(&d, &d.graph());

    let n = outcome.types.len().max(1) as f64;
    Row {
        label: label.to_string(),
        mean_f: outcome.types.iter().map(|(_, t)| t.f() as f64).sum::<f64>() / n,
        mean_n: outcome.types.iter().map(|(_, t)| t.n() as f64).sum::<f64>() / n,
        sqnr_db: meter.sqnr_db(),
        mean_err: err_sum / err_n as f64,
        gates: cost.gate_score(),
    }
}

fn print_rows(title: &str, rows: &[Row]) {
    println!();
    println!("{title}");
    println!("{}", "-".repeat(78));
    println!(
        "{:<26} {:>8} {:>8} {:>10} {:>11} {:>10}",
        "variant", "mean f", "mean n", "SQNR(dB)", "mean err", "gates"
    );
    for r in rows {
        println!(
            "{:<26} {:>8.2} {:>8.2} {:>10.1} {:>11.2e} {:>10.0}",
            r.label, r.mean_f, r.mean_n, r.sqnr_db, r.mean_err, r.gates
        );
    }
}

fn main() {
    println!("Ablations on the LMS equalizer (input <7,5,tc>, {SAMPLES} samples)");
    println!("==================================================================");

    // 1. The k constant of the LSB rule.
    let k_rows: Vec<Row> = [0.5, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|k| {
            run(
                RefinePolicy::default().with_k_lsb(k),
                &format!("k_lsb = {k}"),
            )
        })
        .collect();
    print_rows("1. LSB rule constant k (2^LSB <= k*sigma)", &k_rows);
    println!("   smaller k = more fractional bits = higher SQNR = more gates.");

    // 2. Round vs floor vs adaptive floor.
    let r_rows = vec![
        run(RefinePolicy::default(), "round everywhere"),
        run(
            RefinePolicy::default().with_rounding(RoundingMode::Floor),
            "floor everywhere",
        ),
        run(
            RefinePolicy::default().with_floor_below(0.35),
            "floor where shift<0.35s",
        ),
    ];
    print_rows(
        "2. Rounding mode (paper 5.2: floor is cheaper, shifts the mean)",
        &r_rows,
    );
    println!("   floor drops the rounder gates and biases the mean error negative.");

    // 3. Rule-c trade-off side.
    let t_rows = vec![
        run(RefinePolicy::default(), "prefer propagated MSB"),
        run(
            RefinePolicy {
                tradeoff_prefers_propagation: false,
                ..RefinePolicy::default()
            },
            "prefer statistic+saturate",
        ),
    ];
    print_rows("3. Rule-c trade-off (paper 5.1c)", &t_rows);
    println!("   the statistic side saves MSBs but pays saturation logic.");
}
