//! Renders the static-diagnostics reports for every example design.
//!
//! ```text
//! cargo run --release -p fixref-bench --bin lint          # text
//! cargo run --release -p fixref-bench --bin lint -- --jsonl
//! ```
//!
//! The text form is what `tests/golden/lint_*.txt` pins in CI; the JSONL
//! form is machine-readable (one diagnostic object per line, prefixed
//! with the example name).

fn main() {
    let jsonl = std::env::args().any(|a| a == "--jsonl");
    for example in fixref_bench::lint_example_designs() {
        if jsonl {
            for d in &example.report.diagnostics {
                println!("{{\"example\":\"{}\",{}", example.name, &d.to_json()[1..]);
            }
        } else {
            println!("=== {} ===", example.name);
            print!("{}", example.report.render_text());
            println!();
        }
    }
}
