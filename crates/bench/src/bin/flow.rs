//! Runs the full refinement flow (MSB + LSB + verification) on the paper
//! equalizer and prints the flow's [`MetricsReport`]
//! (`fixref_obs::MetricsReport`) — span timings, event counts, simulation
//! counters — named `flow`.
//!
//! With `--json`, prints the report as JSON and writes it to
//! `BENCH_flow.json` for downstream tooling; otherwise prints a plain
//! summary of the converged flow.

use fixref_bench::{run_flow_report, write_bench_json, LMS_SAMPLES};

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let (outcome, report) =
        run_flow_report(LMS_SAMPLES).expect("the refinement flow converges on the equalizer");

    if json {
        let rendered = report.render_json();
        write_bench_json("flow", &rendered);
        println!("{rendered}");
        return;
    }

    println!("Refinement flow — Fig. 1 LMS equalizer, input <7,5,tc>");
    println!("======================================================");
    println!("MSB iterations: {}", outcome.msb_iterations);
    println!("LSB iterations: {}", outcome.lsb_iterations);
    println!("decided types:  {}", outcome.types.len());
    println!("interventions:  {}", outcome.interventions.len());
    for iv in &outcome.interventions {
        println!("  {iv}");
    }
}
