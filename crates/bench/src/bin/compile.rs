//! Compiled-backend benchmark: times the table-1 hot loop (one full
//! monitored LMS simulation) interpreted vs. replayed from the lowered op
//! tape vs. batched over 8 scenario lanes, then writes the result to
//! `BENCH_compile.json`.
//!
//! ```text
//! cargo run --release -p fixref-bench --bin compile -- [--samples N] [--repeats N] [--json]
//! ```
//!
//! Defaults: `LMS_SAMPLES` samples, 5 interleaved repeats (minimum wall
//! time wins). `--json` prints the JSON document to stdout instead of the
//! human summary (the file is written either way).
//!
//! Exits non-zero if the replays diverge from the interpreter or the
//! compiled speedup falls below the 5x floor.

use fixref_bench::{run_compile_bench, write_bench_json, LMS_SAMPLES};

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let samples = parse_flag(&args, "--samples", LMS_SAMPLES);
    let repeats = parse_flag(&args, "--repeats", 5);

    let result = run_compile_bench(samples, repeats);

    let rendered = result.render_json();
    write_bench_json("compile", &rendered);

    if json {
        println!("{rendered}");
    } else {
        println!("Compiled backend — LMS equalizer, {samples} samples, best of {repeats}");
        println!("===================================================================");
        println!(
            "program: {} cycle kind(s), {} instruction(s), {} cycles",
            result.program_kinds, result.program_instructions, result.cycles
        );
        println!(
            "first MSB iteration (graph recording): {:.2} ms   compiled replay: {:.3} ms   speedup {:.1}x",
            result.first_iteration_ns as f64 / 1e6,
            result.compiled_ns as f64 / 1e6,
            result.first_iteration_speedup
        );
        println!(
            "steady interpreted iteration: {:.2} ms   speedup {:.1}x",
            result.interpreted_ns as f64 / 1e6,
            result.steady_speedup
        );
        println!(
            "batched ({} lanes): {:.2} ms/pass = {:.3} ms/lane   speedup {:.1}x",
            result.batched_lanes,
            result.batched_ns as f64 / 1e6,
            result.batched_ns_per_lane as f64 / 1e6,
            result.batched_speedup
        );
        println!("outcomes match: {}", result.outcomes_match);
    }

    if !result.outcomes_match {
        eprintln!("error: compiled/batched replays diverge from the interpreter");
        std::process::exit(1);
    }
    if result.first_iteration_speedup < 5.0 {
        eprintln!(
            "error: compiled speedup {:.2}x below the 5x floor on the first-MSB-iteration hot loop",
            result.first_iteration_speedup
        );
        std::process::exit(1);
    }
}
