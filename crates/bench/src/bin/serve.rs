//! Job-server benchmark: throughput at queue depths 1/8/64, per-job
//! submit-to-complete latency (p50/p99) and crash-recovery time, written
//! to `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p fixref-bench --bin serve -- [--samples N] [--json]
//! ```
//!
//! Defaults: 120-sample LMS jobs (small on purpose — the flow itself,
//! not the stimulus, is what the server schedules around).

use fixref_bench::{run_serve_bench, write_bench_json};

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let samples = parse_flag(&args, "--samples", 120);

    let result = run_serve_bench(samples, &[1, 8, 64]);

    let rendered = result.render_json();
    write_bench_json("serve", &rendered);

    if json {
        println!("{rendered}");
    } else {
        println!("Job server — LMS refinement jobs, {samples} samples each");
        println!("=========================================================");
        println!("depth   jobs/sec   p50 (ms)   p99 (ms)");
        for row in &result.rows {
            println!(
                "{:>5}   {:>8.1}   {:>8.2}   {:>8.2}",
                row.depth,
                row.jobs_per_sec,
                row.p50_ns as f64 / 1e6,
                row.p99_ns as f64 / 1e6
            );
        }
        println!(
            "recovery: {} jobs re-queued, open {:.2} ms, drain {:.2} ms, all complete: {}",
            result.recovery_jobs,
            result.recovery_open_ns as f64 / 1e6,
            result.recovery_drain_ns as f64 / 1e6,
            result.recovery_complete
        );
    }

    if !result.recovery_complete {
        eprintln!("error: not every recovered job finished complete");
        std::process::exit(1);
    }
}
