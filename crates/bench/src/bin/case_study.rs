//! Case study beyond the paper's two published designs: a complex-baseband
//! QAM adaptive feed-forward equalizer — the signal class of the paper's
//! production systems ("a cable modem ... signal processor"). Ten adaptive
//! complex coefficients mean ten multiplicative feedback loops whose range
//! propagation explodes; the flow must pin all of them and still converge
//! in a handful of iterations.

use fixref_bench::run_case_study;
use fixref_core::render_msb_table;

fn main() {
    let r = run_case_study(6000).expect("flow converges on the FFE");
    println!("QAM FFE case study (complex LMS, 5 taps)");
    println!("=========================================");
    println!("monitored signals:        {}", r.signals);
    println!("MSB iterations:           {}", r.msb_iterations);
    println!("LSB iterations:           {}", r.lsb_iterations);
    println!(
        "coefficients pinned after range explosion: {}",
        r.forced_saturations
    );
    println!("equalized-output SQNR:    {:.1} dB", r.sqnr_db);
    println!(
        "fixed-vs-float decision mismatches: {} / 6000 symbols",
        r.decision_mismatches
    );
    println!("estimated datapath cost:  {:.0} gate equivalents", r.gates);
    println!(
        "verification overflows:   {}",
        r.outcome.verify.total_overflows
    );
    println!();
    println!("--- final MSB table ---");
    print!("{}", render_msb_table(r.outcome.msb()));
}
