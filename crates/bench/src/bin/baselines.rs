//! Regenerates the paper's **§1/§7 strategy claims** as a measured
//! comparison: the hybrid method versus the pure simulation-based search
//! (Sung & Kum \[1\]) and the pure analytical derivation (Willems et al.
//! \[3\]) on the same equalizer workload and quality target.
//!
//! Expected shape: the simulation-based search needs an order of
//! magnitude more full simulations than the hybrid's 3–4; the analytical
//! method is single-pass but decides visibly larger wordlengths (and
//! cannot type the feedback signal without a declared range).

use fixref_bench::{run_baselines, run_scaling};
use fixref_core::compare::render_comparison;

fn main() {
    let target_db = 35.0;
    let rows = run_baselines(3000, target_db).expect("strategies complete");

    println!("Strategy comparison on the LMS equalizer (target {target_db} dB SQNR on w)");
    println!("===========================================================================");
    print!("{}", render_comparison(&rows));
    println!();
    println!("reading: 'sims' is full simulations consumed; 'mean n' the mean");
    println!("decided wordlength. The hybrid should sit near the simulation");
    println!("search's wordlengths at a fraction of its simulations, while the");
    println!("analytical method overestimates wordlengths (paper §1, §7).");

    // The scaling curve behind the paper's pitch: hybrid cost is flat in
    // design size; search cost grows with the signal count.
    println!();
    println!("Simulation-count scaling with design size");
    println!("------------------------------------------");
    println!(
        "{:<16} {:>8} {:>12} {:>12}",
        "workload", "signals", "hybrid sims", "search sims"
    );
    for r in run_scaling(2000, target_db).expect("strategies complete") {
        println!(
            "{:<16} {:>8} {:>12} {:>12}",
            r.workload, r.signals, r.hybrid_sims, r.search_sims
        );
    }
}
