//! Regenerates the paper's **Table 2**: LSB analysis of the LMS equalizer
//! with the input quantized `<7,5,tc>` and the rule constant `k = 1` (see EXPERIMENTS.md on the OCR-ambiguous constant).
//!
//! Expected shape (paper §6): one iteration resolves the LSB position of
//! every signal; the slicer output `y` is exact (all-zero error
//! statistics) with LSB 0.
//!
//! With `--json`, prints the flow's [`MetricsReport`] as JSON instead and
//! writes it to `BENCH_table2.json` for downstream tooling.

use fixref_bench::{run_table2_report, table2_text, write_bench_json, LMS_SAMPLES};

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let (history, report) =
        run_table2_report(LMS_SAMPLES).expect("LSB phase converges on the equalizer");

    if json {
        let rendered = report.render_json();
        write_bench_json("table2", &rendered);
        println!("{rendered}");
        return;
    }

    print!("{}", table2_text(&history));
}
