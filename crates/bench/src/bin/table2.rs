//! Regenerates the paper's **Table 2**: LSB analysis of the LMS equalizer
//! with the input quantized `<7,5,tc>` and the rule constant `k = 1` (see EXPERIMENTS.md on the OCR-ambiguous constant).
//!
//! Expected shape (paper §6): one iteration resolves the LSB position of
//! every signal; the slicer output `y` is exact (all-zero error
//! statistics) with LSB 0.

use fixref_bench::{run_table2, LMS_SAMPLES};
use fixref_core::render_lsb_table;

fn main() {
    let history = run_table2(LMS_SAMPLES).expect("LSB phase converges on the equalizer");

    println!("Table 2 — LSB analysis of the LMS equalizer (input <7,5,tc>, k = 1)");
    println!("====================================================================");
    for (i, analyses) in history.iter().enumerate() {
        println!();
        println!("--- iteration {} ---", i + 1);
        print!("{}", render_lsb_table(analyses));
    }
    println!();
    println!(
        "iterations to resolve all LSB weights: {} (paper: 1)",
        history.len()
    );
}
