//! Parallel scenario-sweep benchmark: refines the LMS equalizer's MSB
//! side over a seed grid once with a single worker and once with a thread
//! pool, checks the two runs agree, and writes the timing to
//! `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p fixref-bench --bin sweep -- \
//!     [--scenarios N] [--samples N] [--workers N] [--json]
//! ```
//!
//! Defaults: 8 scenarios × `LMS_SAMPLES` samples, one worker per hardware
//! thread. `--json` prints the JSON document to stdout instead of the
//! human summary (the file is written either way).

use fixref_bench::{run_sweep_bench, write_bench_json, LMS_SAMPLES};

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let default_workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let scenarios = parse_flag(&args, "--scenarios", 8);
    let samples = parse_flag(&args, "--samples", LMS_SAMPLES);
    let workers = parse_flag(&args, "--workers", default_workers);

    let result =
        run_sweep_bench(scenarios, samples, workers).expect("MSB sweep converges on the equalizer");

    let rendered = result.render_json();
    write_bench_json("parallel", &rendered);

    if json {
        println!("{rendered}");
        return;
    }

    println!("Parallel scenario sweep — LMS equalizer MSB refinement");
    println!("======================================================");
    println!(
        "{} scenarios x {} samples, {} worker(s), host parallelism {}",
        result.scenarios, result.samples, result.workers, result.available_parallelism
    );
    println!(
        "sequential: {:.1} ms   parallel: {:.1} ms   speedup: {:.2}x",
        result.sequential_ns as f64 / 1e6,
        result.parallel_ns as f64 / 1e6,
        result.speedup
    );
    println!(
        "msb iterations: {}   outcomes match: {}",
        result.msb_iterations, result.outcomes_match
    );
    println!();
    println!("per-shard (last parallel iteration):");
    for s in &result.shards {
        println!(
            "  s{} seed={} snr={}dB n={}  cycles={}  wall={:.2} ms",
            s.index,
            s.seed,
            s.snr_db,
            s.samples,
            s.cycles,
            s.wall_ns as f64 / 1e6
        );
    }
    if !result.outcomes_match {
        eprintln!("error: sequential and parallel refinements disagree");
        std::process::exit(1);
    }
}
