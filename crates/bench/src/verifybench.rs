//! Formal-verification runs over six example designs
//! (`cargo run -p fixref-bench --bin verify`, `BENCH_verify.json`).
//!
//! Each example is a small typed design chosen so the bounded model
//! checker exercises one verdict path end to end:
//!
//! | example | expected outcome |
//! |---|---|
//! | `quickstart` | FXL002 on the leaky wrap accumulator *proved* safe |
//! | `lms_equalizer` | FXL002 on the `{b, w}` adaptation loop *proved* safe |
//! | `timing_recovery` | FXL002 honestly `unknown(state_too_large)` (untyped loop state) |
//! | `iir_refinement` | FXL002/FXL004 *refuted*: a stimulus wraps the under-ranged recursion |
//! | `cic_decimator` | FXL005 *proved*: the unsigned floor integrator has no limit cycle |
//! | `qam_ffe` | FXL004 *proved*: decorrelated interval propagation over-warned |
//!
//! The text renderings are pinned by `tests/golden/verify_*.txt`
//! (deterministic: the checker explores breadth-first in sorted order, so
//! state counts and witnesses never vary); the JSON artifact additionally
//! carries wall-clock time and BMC states/second, which are *not* golden.

use std::time::Instant;

use fixref_fixed::{DType, OverflowMode, RoundingMode};
use fixref_lint::Linter;
use fixref_obs::json::fmt_f64;
use fixref_sim::Design;
use fixref_verify::{VerifiedReport, Verifier};

/// One example's verification outcome.
#[derive(Debug, Clone)]
pub struct ExampleVerify {
    /// The example's name.
    pub name: &'static str,
    /// The verdict-annotated report plus per-check outcomes.
    pub verified: VerifiedReport,
    /// Total states explored across all checks.
    pub states: usize,
    /// Wall-clock time of lint + verification, nanoseconds.
    pub wall_ns: u128,
}

impl ExampleVerify {
    /// Explored states per second of wall time (0 when too fast to
    /// measure).
    pub fn states_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.states as f64 / (self.wall_ns as f64 * 1e-9)
    }
}

fn wrap(spec: &str) -> DType {
    spec.parse::<DType>()
        .expect("literal is valid")
        .with_overflow(OverflowMode::Wrap)
}

/// The quickstart accumulator, wrap-typed: `y = q(0.5*y + x)`. The
/// contraction keeps y inside `<4,2>`, so the FXL002 flag is spurious —
/// and with only 16 mantissas of state the checker proves it.
fn verify_quickstart() -> Design {
    let d = Design::new();
    let x = d.sig_typed("x", wrap("<3,2,tc,st,rd>"));
    let y = d.reg_typed("y", wrap("<4,2,tc,st,rd>"));
    d.record_graph(true);
    for i in 0..64 {
        x.set(((i % 7) as f64 - 3.0) * 0.25);
        y.set(y.get() * 0.5 + x.get());
        d.tick();
    }
    d.record_graph(false);
    d
}

/// A decision-directed LMS tap in wrap arithmetic — the paper's Table 1
/// `b`/`w` pair. Interval propagation explodes on the multiplicative
/// feedback (hence FXL002 *and* FXL004), but the bit-exact recursion
/// `b' = 0.9375*b + 0.0625*(s*x - s*y)` is a contraction that never
/// leaves `<6,4>`: the checker closes the reachable set and discharges
/// both warnings with a proof.
fn verify_lms_equalizer() -> Design {
    let d = Design::new();
    let x = d.sig_typed("x", wrap("<3,2,tc,st,rd>"));
    let w = d.sig_typed("w", wrap("<6,3,tc,st,rd>"));
    let y = d.sig("y");
    let b = d.reg_typed("b", wrap("<6,4,tc,st,rd>"));
    let s = d.reg_typed("s", wrap("<3,1,tc,st,rd>"));
    d.record_graph(true);
    for i in 0..128 {
        x.set(((i % 7) as f64 - 3.0) * 0.25);
        w.set(x.get() - b.get() * s.get());
        y.set(w.get().select_positive(1.0.into(), (-1.0).into()));
        b.set(b.get() + 0.0625 * (s.get() * (w.get() - y.get())));
        s.set(y.get());
        d.tick();
    }
    d.record_graph(false);
    d
}

/// A timing loop whose accumulators are still floating point: the state
/// is a continuum, so the checker must answer `unknown(state_too_large)`
/// instead of sampling and guessing.
fn verify_timing_recovery() -> Design {
    let d = Design::new();
    let x = d.sig_typed("x", wrap("<3,2,tc,st,rd>"));
    let err = d.sig("err");
    let mu = d.reg("mu");
    let phase = d.reg("phase");
    d.record_graph(true);
    for i in 0..64 {
        x.set(((i % 5) as f64 - 2.0) * 0.25);
        err.set(x.get() * phase.get());
        mu.set(mu.get() + 0.01 * err.get());
        phase.set(phase.get() + mu.get());
        d.tick();
    }
    d.record_graph(false);
    d
}

/// A deliberately under-ranged recursion in wrap mode:
/// `y1 = q(0.9*y1 + x)` with `y1` in `<4,2>` but a true envelope near
/// ±10. The checker finds a short stimulus that wraps `y1` and attaches
/// it as a replayable witness.
fn verify_iir_refinement() -> Design {
    let d = Design::new();
    let x = d.sig_typed("x", wrap("<3,2,tc,st,rd>"));
    let y1 = d.reg_typed("y1", wrap("<4,2,tc,st,rd>"));
    d.record_graph(true);
    for i in 0..64 {
        x.set(((i % 5) as f64 - 2.0) * 0.25);
        y1.set(y1.get() * 0.9 + x.get());
        d.tick();
    }
    d.record_graph(false);
    d
}

/// An unsigned, floor-rounded leaky integrator (one CIC-style stage with
/// leak). Floor rounding in feedback trips FXL005, but unsigned state
/// only truncates toward zero, so the zero-input trajectory of every
/// reachable state drains to silence: no limit cycle, proved.
fn verify_cic_decimator() -> Design {
    let t_in = DType::new(
        "cic_in",
        3,
        3,
        fixref_fixed::Signedness::Unsigned,
        OverflowMode::Saturate,
        RoundingMode::Floor,
    )
    .expect("literal is valid");
    let t_acc = DType::new(
        "cic_acc",
        5,
        3,
        fixref_fixed::Signedness::Unsigned,
        OverflowMode::Saturate,
        RoundingMode::Floor,
    )
    .expect("literal is valid");
    let d = Design::new();
    let x = d.sig_typed("x", t_in);
    let acc = d.reg_typed("acc", t_acc);
    d.record_graph(true);
    for i in 0..64 {
        x.set((i % 8) as f64 * 0.125);
        acc.set(acc.get() * 0.5 + x.get() * 0.5);
        d.tick();
    }
    d.record_graph(false);
    d
}

/// A feedforward slice `y = q(x - 0.5*x)`: decorrelated interval
/// propagation widens the envelope past `<4,3>` and flags FXL004, but the
/// correlated true range is four times narrower. No state at all — the
/// checker closes a one-state space and discharges the warning.
fn verify_qam_ffe() -> Design {
    let d = Design::new();
    let x = d.sig_typed("x", wrap("<3,2,tc,st,rd>"));
    let y = d.sig_typed("y", wrap("<4,3,tc,st,rd>"));
    d.record_graph(true);
    for i in 0..64 {
        x.set(((i % 7) as f64 - 3.0) * 0.25);
        y.set(x.get() - x.get() * 0.5);
        d.tick();
    }
    d.record_graph(false);
    d
}

/// Lints and verifies one design, timing the whole check.
fn run_one(name: &'static str, design: Design) -> ExampleVerify {
    let start = Instant::now();
    let report = Linter::new().run(&design);
    let verified = Verifier::new().verify_design(&design, &report, None);
    let wall_ns = start.elapsed().as_nanos();
    let states = verified.outcomes.iter().map(|o| o.states).sum();
    ExampleVerify {
        name,
        verified,
        states,
        wall_ns,
    }
}

/// Verifies every example design, in a fixed order.
pub fn verify_example_designs() -> Vec<ExampleVerify> {
    vec![
        run_one("quickstart", verify_quickstart()),
        run_one("lms_equalizer", verify_lms_equalizer()),
        run_one("timing_recovery", verify_timing_recovery()),
        run_one("iir_refinement", verify_iir_refinement()),
        run_one("cic_decimator", verify_cic_decimator()),
        run_one("qam_ffe", verify_qam_ffe()),
    ]
}

/// The whole bench run.
#[derive(Debug, Clone)]
pub struct VerifyBenchResult {
    /// Per-example outcomes, in fixed order.
    pub examples: Vec<ExampleVerify>,
}

/// Runs the verification bench over all six examples.
pub fn run_verify_bench() -> VerifyBenchResult {
    VerifyBenchResult {
        examples: verify_example_designs(),
    }
}

impl VerifyBenchResult {
    /// The machine-readable report written to `BENCH_verify.json`:
    /// verdict tallies per example plus the timing figures the goldens
    /// deliberately exclude.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"name\":\"verify\",\"examples\":[");
        for (i, ex) in self.examples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut proved = 0usize;
            let mut refuted = 0usize;
            let mut unknown = 0usize;
            for o in &ex.verified.outcomes {
                match o.verdict {
                    fixref_lint::Verdict::Proved => proved += 1,
                    fixref_lint::Verdict::CounterexampleFound => refuted += 1,
                    fixref_lint::Verdict::Unknown { .. } => unknown += 1,
                }
            }
            let _ = write!(
                out,
                "{{\"example\":\"{}\",\"checks\":{},\"proved\":{},\"refuted\":{},\
                 \"unknown\":{},\"states\":{},\"wall_ns\":{},\"states_per_sec\":{}}}",
                ex.name,
                ex.verified.outcomes.len(),
                proved,
                refuted,
                unknown,
                ex.states,
                ex.wall_ns,
                fmt_f64(ex.states_per_sec()),
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_lint::{Code, Verdict};

    #[test]
    fn the_six_examples_cover_all_three_verdicts() {
        let examples = verify_example_designs();
        let by_name = |n: &str| {
            examples
                .iter()
                .find(|e| e.name == n)
                .unwrap_or_else(|| panic!("missing example {n}"))
        };

        // LMS: the paper's b/w loop is discharged by proof.
        let lms = by_name("lms_equalizer");
        let fxl002 = lms
            .verified
            .report
            .with_code(Code::UnclampedFeedback)
            .into_iter()
            .next()
            .expect("LMS FXL002 fires");
        assert_eq!(
            fxl002.verdict,
            Some(Verdict::Proved),
            "{}",
            lms.verified.render_text()
        );

        // IIR: the under-ranged recursion is refuted with a witness.
        let iir = by_name("iir_refinement");
        assert!(
            iir.verified.counterexamples().next().is_some(),
            "{}",
            iir.verified.render_text()
        );

        // Timing: continuum state is reported unknown, not guessed.
        let timing = by_name("timing_recovery");
        assert!(
            timing.verified.outcomes.iter().any(|o| matches!(
                &o.verdict,
                Verdict::Unknown { reason } if reason == "state_too_large"
            )),
            "{}",
            timing.verified.render_text()
        );

        // CIC: floor feedback proved limit-cycle free.
        let cic = by_name("cic_decimator");
        let fxl005 = cic
            .verified
            .report
            .with_code(Code::TruncationInFeedback)
            .into_iter()
            .next()
            .expect("CIC FXL005 fires");
        assert_eq!(fxl005.verdict, Some(Verdict::Proved));

        // FFE: the decorrelation false alarm (FXL004) proved spurious.
        let ffe = by_name("qam_ffe");
        let fxl004 = ffe
            .verified
            .report
            .with_code(Code::WrapNarrowerThanPropagated)
            .into_iter()
            .next()
            .expect("FFE FXL004 fires");
        assert_eq!(fxl004.verdict, Some(Verdict::Proved));
    }

    #[test]
    fn bench_json_is_valid_and_self_describing() {
        let result = run_verify_bench();
        let json = result.render_json();
        let parsed = fixref_obs::Json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("name").and_then(fixref_obs::Json::as_str),
            Some("verify")
        );
        let examples = parsed.get("examples").expect("examples array");
        assert_eq!(examples.as_arr().map(<[_]>::len), Some(6));
    }
}
