//! Compiled-backend benchmark behind
//! `cargo run -p fixref-bench --bin compile` (`BENCH_compile.json`).
//!
//! Measures the table-1 first-MSB-iteration hot loop — one full monitored
//! simulation of the Fig. 1 LMS equalizer, exactly as the flow runs it
//! (recorder attached, stimulus regenerated per run) — four ways:
//!
//! * **first iteration** — interpreted with signal-flow-graph recording
//!   on, which is what `record = iteration == 1` costs in the flow: every
//!   `Value` operator allocates expression-trace nodes and interns them
//!   into the graph;
//! * **interpreted** — the steady-state iteration (recording off): the
//!   host-code stimulus walk with per-assignment registry counters;
//! * **compiled** — the captured execution trace lowered to a flat op
//!   tape and replayed through [`Design::replay_compiled`]: one borrow
//!   for the whole run, no stimulus regeneration, monitors folded through
//!   a buffered sink;
//! * **batched** — [`replay_compiled_batch`] driving [`BATCH_LANES`]
//!   identical scenario lanes through one pass.
//!
//! The headline `first_iteration_speedup` compares the compiled replay
//! against the first-iteration cost it displaces whenever the same
//! workload is re-executed (sweep lanes, cache replays, search probes);
//! `steady_speedup` is the more conservative recording-off comparison,
//! reported alongside so neither number hides the other.
//!
//! The timing follows the repo's interleaved-repeat methodology (see
//! `faultbench`): the variants alternate within each repeat so a
//! background-load spike degrades all minima instead of biasing one
//! block, and the best-of-N wall time wins. The replayed statistics are
//! checked bit-identical against the interpreted run (`outcomes_match`)
//! so the speedup is never bought with divergence.

use std::sync::Arc;
use std::time::Instant;

use fixref_codegen::lower_trace;
use fixref_dsp::lms::equalizer_stimulus;
use fixref_dsp::{LmsConfig, LmsEqualizer};
use fixref_obs::json::fmt_f64;
use fixref_obs::DefaultRecorder;
use fixref_sim::{replay_compiled_batch, BoundTrace, CompiledProgram, Design, SignalStats};

use crate::{lms_setup, LMS_SNR_DB};

/// Scenario lanes the batched measurement drives per pass.
pub const BATCH_LANES: usize = 8;

/// Outcome of the compiled-backend benchmark.
#[derive(Debug, Clone)]
pub struct CompileBenchResult {
    /// Stimulus length.
    pub samples: usize,
    /// Interleaved repeats per variant (minimum wall time wins).
    pub repeats: usize,
    /// Best wall time of the interpreted simulation with graph recording
    /// on — the flow's `iteration == 1` cost — in nanoseconds.
    pub first_iteration_ns: u128,
    /// Best wall time of the interpreted simulation with recording off
    /// (steady-state iteration), nanoseconds.
    pub interpreted_ns: u128,
    /// Best wall time of the compiled replay, nanoseconds.
    pub compiled_ns: u128,
    /// `first_iteration_ns / compiled_ns` — the headline.
    pub first_iteration_speedup: f64,
    /// `interpreted_ns / compiled_ns` — the conservative comparison.
    pub steady_speedup: f64,
    /// Best wall time of one batched pass over [`BATCH_LANES`] lanes,
    /// nanoseconds.
    pub batched_ns: u128,
    /// `batched_ns / BATCH_LANES` — the per-lane cost of the batch.
    pub batched_ns_per_lane: u128,
    /// `interpreted_ns / batched_ns_per_lane`.
    pub batched_speedup: f64,
    /// Lanes per batched pass.
    pub batched_lanes: usize,
    /// Cycles every variant simulated (they must agree).
    pub cycles: u64,
    /// Deduplicated cycle kinds of the lowered program.
    pub program_kinds: usize,
    /// Total instructions across the program's kinds.
    pub program_instructions: usize,
    /// Whether the compiled and batched replays reproduced the
    /// interpreted run's exported statistics bit-identically.
    pub outcomes_match: bool,
}

impl CompileBenchResult {
    /// Renders the result as the `BENCH_compile.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"compile\",\n");
        out.push_str("  \"design\": \"lms\",\n");
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"first_iteration_ns\": {},\n",
            self.first_iteration_ns
        ));
        out.push_str(&format!("  \"interpreted_ns\": {},\n", self.interpreted_ns));
        out.push_str(&format!("  \"compiled_ns\": {},\n", self.compiled_ns));
        out.push_str(&format!(
            "  \"first_iteration_speedup\": {},\n",
            fmt_f64(self.first_iteration_speedup)
        ));
        out.push_str(&format!(
            "  \"steady_speedup\": {},\n",
            fmt_f64(self.steady_speedup)
        ));
        out.push_str(&format!("  \"batched_ns\": {},\n", self.batched_ns));
        out.push_str(&format!(
            "  \"batched_ns_per_lane\": {},\n",
            self.batched_ns_per_lane
        ));
        out.push_str(&format!(
            "  \"batched_speedup\": {},\n",
            fmt_f64(self.batched_speedup)
        ));
        out.push_str(&format!("  \"batched_lanes\": {},\n", self.batched_lanes));
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        out.push_str(&format!("  \"program_kinds\": {},\n", self.program_kinds));
        out.push_str(&format!(
            "  \"program_instructions\": {},\n",
            self.program_instructions
        ));
        out.push_str(&format!("  \"outcomes_match\": {}\n", self.outcomes_match));
        out.push_str("}\n");
        out
    }
}

/// One benchable lane: the table-1 design with a flow-style recorder
/// attached, plus its captured-and-verified op tape.
struct Lane {
    design: Design,
    eq: LmsEqualizer,
    program: CompiledProgram,
    trace: BoundTrace,
}

impl Lane {
    /// The flow's table-1 stimulus: `eq.init()` plus the regenerated
    /// equalizer stimulus — regeneration is part of the interpreted cost,
    /// exactly as in `run_table1`.
    fn drive(&self, samples: usize) {
        drive(&self.eq, samples);
    }
}

fn drive(eq: &LmsEqualizer, samples: usize) {
    eq.init();
    for &x in &equalizer_stimulus(7, LMS_SNR_DB, samples) {
        eq.step(x);
    }
}

/// Builds the table-1 design and compiles its record iteration, enforcing
/// the same gates as the flow backends (FXL001 static schedule, lowering,
/// verification replay).
fn build_lane(samples: usize) -> Lane {
    let (design, eq) = lms_setup(&LmsConfig::default());
    design.attach_recorder(Arc::new(DefaultRecorder::new()));

    design.reset_stats();
    design.reset_state();
    design.clear_graph();
    design.record_graph(true);
    design.begin_capture();
    drive(&eq, samples);
    design.record_graph(false);
    assert!(
        fixref_lint::check_static_schedule(&design).is_empty(),
        "the LMS equalizer satisfies the FXL001 static-schedule gate"
    );
    let trace = design.end_capture().expect("capture is active");
    let (program, bound) = lower_trace(&design, &trace).expect("the LMS trace lowers");
    assert!(
        design.verify_compiled(&program, &bound),
        "the lowered tape must pass its verification replay"
    );
    Lane {
        design,
        eq,
        program,
        trace: bound,
    }
}

/// Exported statistics after a fresh reset + one run of `f`.
fn run_and_export(design: &Design, f: impl FnOnce()) -> (Vec<SignalStats>, u64) {
    design.reset_stats();
    design.reset_state();
    f();
    (design.export_stats(), design.cycle())
}

/// The compiled-backend benchmark on the table-1 first-MSB-iteration hot
/// loop.
///
/// # Panics
///
/// Panics if the LMS capture refuses to lower or verify — that is a
/// regression in the compiled backend, not a measurement.
pub fn run_compile_bench(samples: usize, repeats: usize) -> CompileBenchResult {
    let repeats = repeats.max(1);
    let lane = build_lane(samples);
    let design = &lane.design;

    // Bitwise conformance first: the interpreted statistics are the
    // reference every replay must reproduce exactly.
    let (interp_stats, interp_cycles) = run_and_export(design, || lane.drive(samples));
    let (replay_stats, replay_cycles) = run_and_export(design, || {
        design.replay_compiled(&lane.program, &lane.trace);
    });
    let mut outcomes_match = interp_stats == replay_stats && interp_cycles == replay_cycles;

    // Batched lanes: identical designs (same seed, same scenario) so the
    // grouped tape is shared and every lane must reproduce the reference.
    let batch: Vec<Lane> = (0..BATCH_LANES).map(|_| build_lane(samples)).collect();
    {
        for b in &batch {
            b.design.reset_stats();
            b.design.reset_state();
        }
        let lanes: Vec<(&Design, &BoundTrace)> =
            batch.iter().map(|b| (&b.design, &b.trace)).collect();
        replay_compiled_batch(&batch[0].program, &lanes);
        for b in &batch {
            outcomes_match &=
                b.design.export_stats() == interp_stats && b.design.cycle() == interp_cycles;
        }
    }

    // Interleaved timing: first-iteration, interpreted, compiled, batched
    // within each repeat; best of N.
    let mut first_iteration_ns = u128::MAX;
    let mut interpreted_ns = u128::MAX;
    let mut compiled_ns = u128::MAX;
    let mut batched_ns = u128::MAX;
    for _ in 0..repeats {
        design.reset_stats();
        design.reset_state();
        let start = Instant::now();
        design.clear_graph();
        design.record_graph(true);
        lane.drive(samples);
        design.record_graph(false);
        first_iteration_ns = first_iteration_ns.min(start.elapsed().as_nanos());

        design.reset_stats();
        design.reset_state();
        let start = Instant::now();
        lane.drive(samples);
        interpreted_ns = interpreted_ns.min(start.elapsed().as_nanos());

        design.reset_stats();
        design.reset_state();
        let start = Instant::now();
        design.replay_compiled(&lane.program, &lane.trace);
        compiled_ns = compiled_ns.min(start.elapsed().as_nanos());

        for b in &batch {
            b.design.reset_stats();
            b.design.reset_state();
        }
        let lanes: Vec<(&Design, &BoundTrace)> =
            batch.iter().map(|b| (&b.design, &b.trace)).collect();
        let start = Instant::now();
        replay_compiled_batch(&batch[0].program, &lanes);
        batched_ns = batched_ns.min(start.elapsed().as_nanos());
    }

    let batched_ns_per_lane = batched_ns / BATCH_LANES as u128;
    CompileBenchResult {
        samples,
        repeats,
        first_iteration_ns,
        interpreted_ns,
        compiled_ns,
        first_iteration_speedup: first_iteration_ns as f64 / compiled_ns.max(1) as f64,
        steady_speedup: interpreted_ns as f64 / compiled_ns.max(1) as f64,
        batched_ns,
        batched_ns_per_lane,
        batched_speedup: interpreted_ns as f64 / batched_ns_per_lane.max(1) as f64,
        batched_lanes: BATCH_LANES,
        cycles: interp_cycles,
        program_kinds: lane.program.kinds.len(),
        program_instructions: lane.program.instruction_count(),
        outcomes_match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_bench_replays_bit_identically() {
        let result = run_compile_bench(600, 1);
        assert!(
            result.outcomes_match,
            "compiled/batched replays diverged from the interpreter"
        );
        assert!(result.program_kinds >= 1);
        assert!(result.program_instructions > 0);
        assert_eq!(result.cycles, 600);
        let json = result.render_json();
        let parsed = fixref_obs::Json::parse(&json).expect("well-formed JSON");
        assert_eq!(
            parsed.get("bench").and_then(fixref_obs::Json::as_str),
            Some("compile")
        );
        assert!(matches!(
            parsed.get("outcomes_match"),
            Some(fixref_obs::Json::Bool(true))
        ));
    }
}
