//! End-to-end properties of the bounded model checker: proofs discharge
//! real lint warnings, counterexamples replay bit-identically through the
//! simulator, undecidable cones are reported honestly, and everything is
//! deterministic.

use fixref_fixed::{DType, OverflowMode, RoundingMode};
use fixref_lint::{Code, Linter, Verdict};
use fixref_obs::DefaultRecorder;
use fixref_sim::Design;
use fixref_verify::{Hazard, Verifier, VerifyOptions};

fn wrap(dt: DType) -> DType {
    dt.with_overflow(OverflowMode::Wrap)
}

/// A leaky wrap-mode accumulator `y = q(0.5*y + x)`: the contraction
/// keeps every reachable value inside <4,2>, but no member saturates or
/// clamps, so FXL002 fires. The checker must close the state space and
/// discharge the warning.
fn safe_leaky_accumulator() -> Design {
    let t_in = wrap(DType::tc("in", 3, 2).unwrap());
    let t_acc = wrap(DType::tc("acc", 4, 2).unwrap());
    let d = Design::new();
    let x = d.sig_typed("x", t_in);
    let y = d.reg_typed("y", t_acc);
    d.record_graph(true);
    for i in 0..16 {
        x.set(((i % 7) as f64 - 3.0) * 0.25);
        y.set(y.get() * 0.5 + x.get());
        d.tick();
    }
    d.record_graph(false);
    d
}

/// An unstable wrap-mode accumulator `y = q(0.9*y + x)`: the gain keeps
/// |y| growing past the <4,2> rails, so a short stimulus wraps it.
fn unsafe_growing_accumulator() -> Design {
    let t_in = wrap(DType::tc("in", 3, 2).unwrap());
    let t_acc = wrap(DType::tc("acc", 4, 2).unwrap());
    let d = Design::new();
    let x = d.sig_typed("x", t_in);
    let y = d.reg_typed("y", t_acc);
    d.record_graph(true);
    for i in 0..16 {
        x.set(((i % 5) as f64 - 2.0) * 0.25);
        y.set(y.get() * 0.9 + x.get());
        d.tick();
    }
    d.record_graph(false);
    d
}

#[test]
fn proof_discharges_a_real_unclamped_feedback_warning() {
    let d = safe_leaky_accumulator();
    let report = Linter::new().run(&d);
    assert!(
        !report.with_code(Code::UnclampedFeedback).is_empty(),
        "precondition: lint must flag the cycle\n{}",
        report.render_text()
    );

    let rec = DefaultRecorder::new();
    let verified = Verifier::new().verify_design(&d, &report, Some(&rec));
    let fxl002 = verified
        .report
        .with_code(Code::UnclampedFeedback)
        .into_iter()
        .next()
        .expect("diagnostic survives");
    assert_eq!(
        fxl002.verdict,
        Some(Verdict::Proved),
        "{}",
        verified.render_text()
    );

    // The proof closed a real state space and journaled it.
    let outcome = &verified.outcomes[0];
    assert!(outcome.states > 1);
    assert_eq!(rec.counter("verify.proved"), verified.outcomes.len() as u64);
    assert_eq!(rec.counter("verify.counterexamples"), 0);
    let kinds: Vec<String> = rec.events().iter().map(|e| e.kind().to_string()).collect();
    assert!(kinds.contains(&"verify_started".to_string()));
    assert!(kinds.contains(&"verify_proved".to_string()));
}

#[test]
fn counterexample_is_found_and_replays_bit_identically_through_the_simulator() {
    let d = unsafe_growing_accumulator();
    let report = Linter::new().run(&d);
    assert!(!report.with_code(Code::UnclampedFeedback).is_empty());

    let rec = DefaultRecorder::new();
    let verified = Verifier::new().verify_design(&d, &report, Some(&rec));
    let outcome = verified
        .counterexamples()
        .next()
        .expect("the growing accumulator must be refuted");
    let witness = outcome.witness.as_ref().expect("witness attached");
    assert!(matches!(witness.hazard, Hazard::Overflow { ref signal } if signal == "y"));
    assert_eq!(witness.inputs.len(), 1, "one free input");
    assert_eq!(witness.inputs[0].0, "x");
    assert_eq!(witness.inputs[0].1.len(), witness.steps);
    assert!(rec.counter("verify.counterexamples") >= 1);

    // Round trip: lower the witness to a replay scenario set, then drive a
    // fresh simulation of the same design with those exact streams. The
    // overflow must reproduce, and the register trace must match the
    // witness bit for bit.
    let scenarios = witness.to_scenario_set(7);
    assert_eq!(scenarios.len(), 1);
    let scenario = scenarios.get(0).expect("one scenario");
    assert_eq!(scenario.samples, witness.steps);
    let stream = scenario.stimulus_for("x").expect("stream carried over");

    let t_in = wrap(DType::tc("in", 3, 2).unwrap());
    let t_acc = wrap(DType::tc("acc", 4, 2).unwrap());
    let d2 = Design::new();
    let x2 = d2.sig_typed("x", t_in);
    let y2 = d2.reg_typed("y", t_acc);
    let mut overflow_tick = None;
    for (t, &v) in stream.iter().enumerate() {
        x2.set(v);
        let before = d2.report_for(&y2).overflows;
        y2.set(y2.get() * 0.9 + x2.get());
        d2.tick();
        // Wrap-mode overflows are counted per signal, not journaled as
        // Error-mode events: watch the monitor counter tick over.
        if overflow_tick.is_none() && d2.report_for(&y2).overflows > before {
            overflow_tick = Some(t);
        }
        let expected = witness.trace[t]
            .iter()
            .find(|(n, _)| n == "y")
            .map(|&(_, v)| v)
            .expect("y in trace");
        assert_eq!(
            y2.get().fix(),
            expected,
            "replay diverged from witness at tick {t}"
        );
    }
    assert_eq!(
        overflow_tick,
        Some(witness.steps - 1),
        "the simulator must overflow exactly at the witness's final tick"
    );
}

#[test]
fn floor_rounded_feedback_yields_a_limit_cycle_witness() {
    // y = q_floor(0.5*y + x): floor rounding maps every value in
    // (-step, 0) to -step, so once y goes negative the zero-input
    // trajectory parks on a nonzero fixpoint — a period-1 limit cycle.
    let t_in = wrap(DType::tc("in", 2, 1).unwrap());
    let t_acc = DType::new(
        "acc",
        4,
        2,
        fixref_fixed::Signedness::TwosComplement,
        OverflowMode::Saturate,
        RoundingMode::Floor,
    )
    .unwrap();
    let d = Design::new();
    let x = d.sig_typed("x", t_in);
    let y = d.reg_typed("y", t_acc);
    d.record_graph(true);
    for i in 0..16 {
        x.set(((i % 4) as f64 - 2.0) * 0.5);
        y.set(y.get() * 0.5 + x.get());
        d.tick();
    }
    d.record_graph(false);

    let report = Linter::new().run(&d);
    assert!(
        !report.with_code(Code::TruncationInFeedback).is_empty(),
        "precondition: FXL005 must fire\n{}",
        report.render_text()
    );
    let verified = Verifier::new().verify_design(&d, &report, None);
    let fxl005 = verified
        .report
        .with_code(Code::TruncationInFeedback)
        .into_iter()
        .next()
        .expect("survives");
    assert_eq!(
        fxl005.verdict,
        Some(Verdict::CounterexampleFound),
        "{}",
        verified.render_text()
    );
    let outcome = verified
        .outcomes
        .iter()
        .find(|o| o.code == Code::TruncationInFeedback)
        .expect("outcome recorded");
    let witness = outcome.witness.as_ref().expect("witness");
    let Hazard::LimitCycle { period } = witness.hazard else {
        panic!("expected a limit-cycle hazard, got {:?}", witness.hazard);
    };
    assert!(period >= 1);

    // The witness tail really is a cycle: the last `period` trace entries
    // repeat the state reached `period` ticks earlier, and are nonzero.
    let n = witness.trace.len();
    assert!(n > period);
    assert_eq!(witness.trace[n - 1], witness.trace[n - 1 - period]);
    let cycle_state = &witness.trace[n - 1];
    assert!(cycle_state.iter().any(|&(_, v)| v != 0.0));
}

#[test]
fn untyped_state_is_reported_unknown_not_guessed() {
    // The register has no fixed-point type: its state is a continuum, so
    // the checker must refuse with state_too_large instead of sampling.
    let d = Design::new();
    let x = d.sig_typed("x", wrap(DType::tc("in", 3, 2).unwrap()));
    let y = d.reg("y");
    d.record_graph(true);
    for i in 0..16 {
        x.set(((i % 7) as f64 - 3.0) * 0.25);
        y.set(y.get() * 0.99 + x.get());
        d.tick();
    }
    d.record_graph(false);

    let report = Linter::new().run(&d);
    assert!(!report.with_code(Code::UnclampedFeedback).is_empty());
    let rec = DefaultRecorder::new();
    let verified = Verifier::new().verify_design(&d, &report, Some(&rec));
    let fxl002 = verified
        .report
        .with_code(Code::UnclampedFeedback)
        .into_iter()
        .next()
        .expect("survives");
    assert_eq!(
        fxl002.verdict,
        Some(Verdict::Unknown {
            reason: "state_too_large".to_string()
        })
    );
    assert!(rec.counter("verify.unknown") >= 1);
    assert!(rec
        .events()
        .iter()
        .any(|e| e.kind() == "verify_bound_exhausted"));
}

#[test]
fn tight_budgets_exhaust_honestly() {
    let d = unsafe_growing_accumulator();
    let report = Linter::new().run(&d);
    let verifier = Verifier::with_options(VerifyOptions {
        max_states: 2,
        ..VerifyOptions::default()
    });
    let verified = verifier.verify_design(&d, &report, None);
    let fxl002 = verified
        .report
        .with_code(Code::UnclampedFeedback)
        .into_iter()
        .next()
        .expect("survives");
    // With two states of budget the checker may stumble on the shallow
    // counterexample or give up — but it must never claim a proof.
    assert_ne!(fxl002.verdict, Some(Verdict::Proved));
}

#[test]
fn verification_is_deterministic() {
    let d = unsafe_growing_accumulator();
    let report = Linter::new().run(&d);
    let a = Verifier::new().verify_design(&d, &report, None);
    let b = Verifier::new().verify_design(&d, &report, None);
    assert_eq!(a.render_text(), b.render_text());
    let wa = a.counterexamples().next().and_then(|o| o.witness.clone());
    let wb = b.counterexamples().next().and_then(|o| o.witness.clone());
    assert_eq!(wa, wb, "witnesses must be bit-identical across runs");
}
