//! Finite-state model extraction from a lint snapshot.
//!
//! The checker works on the *cone of influence* of a diagnostic: the
//! flagged signals plus everything they transitively read. Each cone
//! signal is classified exactly like the RTL back-end classifies signals
//! for VHDL generation:
//!
//! * externally driven (no definitions, or several distinct constant
//!   definitions from a stimulus loop) ⇒ **input** — its fixed-point type
//!   gives a finite alphabet to enumerate;
//! * one non-constant definition, register kind ⇒ **state** — one i64
//!   mantissa in the state vector, reset to 0 like the simulator;
//! * one non-constant definition, wire kind ⇒ **combinational** —
//!   re-evaluated every tick in topological order.
//!
//! Anything that breaks the classification (an untyped register, an input
//! too wide to enumerate, multiple data-flow definitions, a combinational
//! cycle) aborts extraction with a [`ModelError`] that the verifier
//! reports honestly as `Verdict::Unknown`.

use std::collections::HashMap;

use fixref_fixed::{quantize, DType};
use fixref_lint::LintInput;
use fixref_sim::{Graph, NodeId, Op, SignalId, SignalKind};

/// Why a design (cone) could not be turned into a finite-state model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A register in the cone has no fixed-point type: its state is a
    /// full f64 and the explicit-state space is unbounded.
    StateTooLarge {
        /// The untyped register.
        signal: String,
    },
    /// An input in the cone has no fixed-point type, so its alphabet is
    /// the continuum.
    UntypedInput {
        /// The untyped input.
        signal: String,
    },
    /// A typed input has more representable values than the checker is
    /// allowed to enumerate.
    AlphabetTooLarge {
        /// The wide input.
        signal: String,
        /// Its number of representable values.
        size: u64,
    },
    /// The product of all input alphabets exceeds the per-state
    /// branching budget.
    BranchingTooLarge {
        /// Product of the input alphabet sizes.
        product: u64,
    },
    /// A signal has several structurally distinct non-constant
    /// definitions — Rust-level control flow the graph cannot see.
    MultipleDefinitions {
        /// The multiply-defined signal.
        signal: String,
    },
    /// Wires feed each other with no register in the loop.
    CombinationalCycle,
    /// The diagnostic's anchor signals do not appear in the snapshot.
    EmptyScope,
}

impl ModelError {
    /// The stable reason tag rendered inside `Verdict::Unknown`.
    pub fn reason(&self) -> String {
        match self {
            ModelError::StateTooLarge { .. } => "state_too_large".to_string(),
            ModelError::UntypedInput { .. } => "untyped_input".to_string(),
            ModelError::AlphabetTooLarge { .. } => "input_alphabet_too_large".to_string(),
            ModelError::BranchingTooLarge { .. } => "branching_too_large".to_string(),
            ModelError::MultipleDefinitions { .. } => "multiple_definitions".to_string(),
            ModelError::CombinationalCycle => "combinational_cycle".to_string(),
            ModelError::EmptyScope => "empty_scope".to_string(),
        }
    }
}

/// A state-holding register of the model.
#[derive(Debug, Clone)]
pub struct RegVar {
    /// The signal.
    pub id: SignalId,
    /// Its name.
    pub name: String,
    /// Its fixed-point type (mandatory: the mantissa is the state).
    pub dtype: DType,
    /// The definition evaluated each tick for the next value.
    pub def: NodeId,
}

/// A combinational signal of the model.
#[derive(Debug, Clone)]
pub struct WireVar {
    /// The signal.
    pub id: SignalId,
    /// Its name.
    pub name: String,
    /// Its fixed-point type, if refined (untyped wires stay float).
    pub dtype: Option<DType>,
    /// The definition evaluated each tick.
    pub def: NodeId,
}

/// A free input of the model with its enumerable alphabet.
#[derive(Debug, Clone)]
pub struct InputVar {
    /// The signal.
    pub id: SignalId,
    /// Its name.
    pub name: String,
    /// Its fixed-point type.
    pub dtype: DType,
    /// Every representable value, ascending — the branching alphabet.
    pub alphabet: Vec<f64>,
}

/// Extraction limits (mirrors the caller-facing `VerifyOptions`).
#[derive(Debug, Clone, Copy)]
pub struct ModelLimits {
    /// Maximum representable values per input.
    pub max_alphabet: u64,
    /// Maximum product of input alphabet sizes.
    pub max_branching: u64,
}

/// A finite-state transition system extracted from one diagnostic's cone.
#[derive(Debug, Clone)]
pub struct Model {
    graph: Graph,
    /// State variables, sorted by signal id. The state vector holds their
    /// mantissas in this order; the initial state is all zeros.
    pub registers: Vec<RegVar>,
    /// Combinational signals in evaluation (topological) order.
    pub wires: Vec<WireVar>,
    /// Free inputs, sorted by signal id.
    pub inputs: Vec<InputVar>,
    /// Dense value-table index for every cone signal.
    index: HashMap<SignalId, usize>,
    /// Names per dense slot (diagnostics/witnesses).
    names: Vec<String>,
}

/// One step's outcome: the successor state plus which monitored signals
/// overflowed while computing it.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// Next state vector (register mantissas in `Model::registers` order).
    pub next: Vec<i64>,
    /// Names of typed signals whose assignment overflowed this tick, in
    /// evaluation order.
    pub overflows: Vec<String>,
}

impl Model {
    /// Extracts the cone of `scope` signals from a lint snapshot.
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] classification failure; the verifier maps it to
    /// `Verdict::Unknown { reason }`.
    pub fn extract(
        input: &LintInput,
        scope: &[SignalId],
        limits: &ModelLimits,
    ) -> Result<Model, ModelError> {
        if scope.is_empty() {
            return Err(ModelError::EmptyScope);
        }
        let graph = &input.graph;

        // Cone of influence: scope plus transitive fan-in.
        let mut cone: Vec<SignalId> = scope.to_vec();
        cone.sort();
        cone.dedup();
        let mut frontier = cone.clone();
        while let Some(sig) = frontier.pop() {
            for dep in graph.fan_in(sig) {
                if let Err(pos) = cone.binary_search(&dep) {
                    cone.insert(pos, dep);
                    frontier.push(dep);
                }
            }
        }

        let mut registers = Vec::new();
        let mut wires = Vec::new();
        let mut inputs = Vec::new();
        for &sig in &cone {
            let Some(info) = input.signals.get(sig.raw() as usize) else {
                return Err(ModelError::EmptyScope);
            };
            let defs = graph.defs(sig);
            let all_const = !defs.is_empty()
                && defs
                    .iter()
                    .all(|&d| matches!(graph.node(d).op, Op::Const(_)));
            let is_input = defs.is_empty() || (defs.len() > 1 && all_const);
            if is_input {
                let Some(dt) = info.dtype.clone() else {
                    return Err(ModelError::UntypedInput {
                        signal: info.name.clone(),
                    });
                };
                let size = (dt.max_mantissa() - dt.min_mantissa() + 1) as u64;
                if size > limits.max_alphabet {
                    return Err(ModelError::AlphabetTooLarge {
                        signal: info.name.clone(),
                        size,
                    });
                }
                let step = dt.resolution();
                let alphabet = (dt.min_mantissa()..=dt.max_mantissa())
                    .map(|m| m as f64 * step)
                    .collect();
                inputs.push(InputVar {
                    id: sig,
                    name: info.name.clone(),
                    dtype: dt,
                    alphabet,
                });
                continue;
            }
            if defs.len() > 1 {
                return Err(ModelError::MultipleDefinitions {
                    signal: info.name.clone(),
                });
            }
            let def = defs[0];
            match info.kind {
                SignalKind::Register => {
                    let Some(dt) = info.dtype.clone() else {
                        return Err(ModelError::StateTooLarge {
                            signal: info.name.clone(),
                        });
                    };
                    registers.push(RegVar {
                        id: sig,
                        name: info.name.clone(),
                        dtype: dt,
                        def,
                    });
                }
                SignalKind::Wire => {
                    wires.push(WireVar {
                        id: sig,
                        name: info.name.clone(),
                        dtype: info.dtype.clone(),
                        def,
                    });
                }
            }
        }

        let branching: u64 = inputs
            .iter()
            .map(|i| i.alphabet.len() as u64)
            .try_fold(1u64, |p, n| p.checked_mul(n))
            .unwrap_or(u64::MAX);
        if branching > limits.max_branching {
            return Err(ModelError::BranchingTooLarge { product: branching });
        }

        registers.sort_by_key(|r| r.id);
        inputs.sort_by_key(|i| i.id);
        wires = topo_sort_wires(graph, wires)?;

        let mut index = HashMap::new();
        let mut names = Vec::new();
        for &sig in &cone {
            index.insert(sig, names.len());
            names.push(input.name(sig).to_string());
        }

        Ok(Model {
            graph: graph.clone(),
            registers,
            wires,
            inputs,
            index,
            names,
        })
    }

    /// Total per-state branching (product of input alphabet sizes; 1 with
    /// no inputs).
    pub fn branching(&self) -> u64 {
        self.inputs
            .iter()
            .map(|i| i.alphabet.len() as u64)
            .product::<u64>()
            .max(1)
    }

    /// The all-zeros initial state (the simulator's reset values).
    pub fn initial_state(&self) -> Vec<i64> {
        vec![0; self.registers.len()]
    }

    /// The `k`-th input combination (row-major over the sorted inputs,
    /// each alphabet ascending), as `(name, value)` pairs in input order.
    /// `k` ranges over `0..branching()`.
    pub fn input_combo(&self, k: u64) -> Vec<f64> {
        let mut values = Vec::with_capacity(self.inputs.len());
        let mut rest = k;
        // Last input varies fastest, so combos enumerate in lexicographic
        // order of the input vector.
        let mut radix: Vec<u64> = Vec::with_capacity(self.inputs.len());
        for i in self.inputs.iter().rev() {
            radix.push(i.alphabet.len() as u64);
        }
        let mut digits = vec![0u64; self.inputs.len()];
        for (d, r) in digits.iter_mut().rev().zip(&radix) {
            *d = rest % r;
            rest /= r;
        }
        for (input, &d) in self.inputs.iter().zip(&digits) {
            values.push(input.alphabet[d as usize]);
        }
        values
    }

    /// The all-zero input vector (every input driven with 0.0, which every
    /// fixed-point type represents exactly).
    pub fn zero_inputs(&self) -> Vec<f64> {
        vec![0.0; self.inputs.len()]
    }

    /// Executes one clock cycle bit-exactly: drive `input_values` (one per
    /// [`Model::inputs`] entry), evaluate wires in topological order,
    /// evaluate register definitions against the *current* state, latch.
    /// Quantization at every typed assignment matches the simulator's
    /// assignment pipeline ([`fixref_fixed::quantize`]); any typed wire or
    /// register whose assignment overflows is reported in
    /// [`StepOutput::overflows`].
    pub fn step(&self, state: &[i64], input_values: &[f64]) -> StepOutput {
        let mut values = vec![0.0f64; self.names.len()];
        for (reg, &m) in self.registers.iter().zip(state) {
            values[self.index[&reg.id]] = m as f64 * reg.dtype.resolution();
        }
        for (input, &v) in self.inputs.iter().zip(input_values) {
            // Inputs pass through their own quantizer, like set() on a
            // typed stimulus signal; alphabet values are exact already.
            values[self.index[&input.id]] = quantize(v, &input.dtype).value;
        }
        let mut overflows = Vec::new();
        for wire in &self.wires {
            let raw = eval(&self.graph, wire.def, &self.index, &values);
            let v = match &wire.dtype {
                Some(dt) => {
                    let q = quantize(raw, dt);
                    if q.overflowed {
                        overflows.push(wire.name.clone());
                    }
                    q.value
                }
                None => raw,
            };
            values[self.index[&wire.id]] = v;
        }
        let mut next = Vec::with_capacity(self.registers.len());
        for reg in &self.registers {
            let raw = eval(&self.graph, reg.def, &self.index, &values);
            let q = quantize(raw, &reg.dtype);
            if q.overflowed {
                overflows.push(reg.name.clone());
            }
            next.push(q.mantissa);
        }
        StepOutput { next, overflows }
    }

    /// The on-grid register values of a state, as `(name, value)` pairs in
    /// register order — the trace entries a witness records.
    pub fn state_values(&self, state: &[i64]) -> Vec<(String, f64)> {
        self.registers
            .iter()
            .zip(state)
            .map(|(r, &m)| (r.name.clone(), m as f64 * r.dtype.resolution()))
            .collect()
    }
}

/// Orders wires so every wire is evaluated after the wires its definition
/// reads (register and input reads are state, not dependencies).
fn topo_sort_wires(graph: &Graph, wires: Vec<WireVar>) -> Result<Vec<WireVar>, ModelError> {
    let wire_ids: HashMap<SignalId, usize> =
        wires.iter().enumerate().map(|(i, w)| (w.id, i)).collect();
    // deps[i] = wire indices wire i reads.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); wires.len()];
    for (i, w) in wires.iter().enumerate() {
        let mut stack = vec![w.def];
        while let Some(n) = stack.pop() {
            let node = graph.node(n);
            if let Op::Read(s) = node.op {
                if let Some(&j) = wire_ids.get(&s) {
                    if i != j && !deps[i].contains(&j) {
                        deps[i].push(j);
                    }
                }
            }
            stack.extend(node.args.iter().copied());
        }
    }
    // Kahn's algorithm, smallest signal id first for determinism.
    let mut indegree: Vec<usize> = deps.iter().map(|d| d.len()).collect();
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); wires.len()];
    for (i, ds) in deps.iter().enumerate() {
        for &j in ds {
            users[j].push(i);
        }
    }
    let mut ready: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    ready.sort_by_key(|&i| wires[i].id);
    let mut order = Vec::with_capacity(wires.len());
    while let Some(i) = ready.first().copied() {
        ready.remove(0);
        order.push(i);
        for &u in &users[i] {
            indegree[u] -= 1;
            if indegree[u] == 0 {
                let pos = ready
                    .binary_search_by_key(&wires[u].id, |&r| wires[r].id)
                    .unwrap_or_else(|p| p);
                ready.insert(pos, u);
            }
        }
    }
    if order.len() != wires.len() {
        return Err(ModelError::CombinationalCycle);
    }
    let mut sorted = Vec::with_capacity(wires.len());
    let mut wires = wires.into_iter().map(Some).collect::<Vec<_>>();
    for i in order {
        if let Some(w) = wires[i].take() {
            sorted.push(w);
        }
    }
    Ok(sorted)
}

/// Bit-exact expression evaluation — the same semantics as the RTL
/// interpreter and the simulator's fixed path: float arithmetic between
/// quantization points, `cast` quantizes, `select` takes the then-branch
/// for a strictly positive condition.
fn eval(graph: &Graph, root: NodeId, index: &HashMap<SignalId, usize>, values: &[f64]) -> f64 {
    let node = graph.node(root);
    match &node.op {
        Op::Const(c) => *c,
        Op::Read(s) => index.get(s).map(|&i| values[i]).unwrap_or(0.0),
        Op::Add => {
            eval(graph, node.args[0], index, values) + eval(graph, node.args[1], index, values)
        }
        Op::Sub => {
            eval(graph, node.args[0], index, values) - eval(graph, node.args[1], index, values)
        }
        Op::Mul => {
            eval(graph, node.args[0], index, values) * eval(graph, node.args[1], index, values)
        }
        Op::Div => {
            eval(graph, node.args[0], index, values) / eval(graph, node.args[1], index, values)
        }
        Op::Neg => -eval(graph, node.args[0], index, values),
        Op::Abs => eval(graph, node.args[0], index, values).abs(),
        Op::Min => {
            eval(graph, node.args[0], index, values).min(eval(graph, node.args[1], index, values))
        }
        Op::Max => {
            eval(graph, node.args[0], index, values).max(eval(graph, node.args[1], index, values))
        }
        Op::Cast(dt) => quantize(eval(graph, node.args[0], index, values), dt).value,
        Op::Select => {
            if eval(graph, node.args[0], index, values) > 0.0 {
                eval(graph, node.args[1], index, values)
            } else {
                eval(graph, node.args[2], index, values)
            }
        }
    }
}
