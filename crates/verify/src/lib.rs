//! `fixref-verify` — formal verification of lint findings.
//!
//! The lint passes (`fixref-lint`) are heuristic pattern matchers: an
//! unclamped feedback cycle *might* overflow, a floor-rounded loop
//! *might* sustain a limit cycle. For small-state designs this crate
//! settles the question with a bounded model checker: an explicit-state
//! reachability engine whose transition relation is bit-exact against the
//! simulator's fixed-point semantics (every typed assignment runs the
//! same [`fixref_fixed::quantize`] pipeline, wires evaluate in
//! topological order, registers latch at the tick).
//!
//! Three verdicts are possible, attached to each checked diagnostic:
//!
//! * [`Verdict::Proved`] — the reachable set closed without the hazard;
//!   the warning is discharged by proof.
//! * [`Verdict::CounterexampleFound`] — a concrete stimulus triggers the
//!   hazard; the [`Witness`] carries the input streams and register
//!   trace, and lowers to a [`fixref_sim::ScenarioSet`] so the sweep
//!   engine replays it bit-identically.
//! * [`Verdict::Unknown`] — the cone does not extract to a finite model
//!   (untyped state, wide inputs) or the exploration budget ran out; the
//!   reason is reported honestly.
//!
//! # Which diagnostics are checked
//!
//! | Code | Property |
//! |------|----------|
//! | `FXL002` | no reachable overflow on any typed cycle member |
//! | `FXL004` | no reachable overflow on the flagged signal |
//! | `FXL005` | no zero-input limit cycle through nonzero state |
//!
//! # Example
//!
//! ```
//! use fixref_fixed::{DType, OverflowMode};
//! use fixref_lint::{Linter, Verdict};
//! use fixref_sim::Design;
//! use fixref_verify::Verifier;
//!
//! // A leaky wrap-mode accumulator: lint flags the cycle (FXL002), the
//! // checker proves the flag spurious — |y| never leaves the range.
//! let t_in = DType::tc("in", 3, 2).unwrap().with_overflow(OverflowMode::Wrap);
//! let t_acc = DType::tc("acc", 4, 2).unwrap().with_overflow(OverflowMode::Wrap);
//! let d = Design::new();
//! let x = d.sig_typed("x", t_in);
//! let y = d.reg_typed("y", t_acc);
//! d.record_graph(true);
//! for i in 0..16 {
//!     x.set(((i % 7) as f64 - 3.0) * 0.25);
//!     y.set(y.get() * 0.5 + x.get());
//!     d.tick();
//! }
//! d.record_graph(false);
//!
//! let report = Linter::new().run(&d);
//! let verified = Verifier::new().verify_design(&d, &report, None);
//! let y_diag = &verified.report.diagnostics[0];
//! assert_eq!(y_diag.verdict, Some(Verdict::Proved));
//! ```
//!
//! Determinism: exploration is breadth-first with lexicographic input
//! enumeration over id-sorted inputs, so verdicts, state counts, depths
//! and witnesses are bit-identical on every run, platform and
//! `FIXREF_TEST_SHARDS` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bmc;
mod model;

pub use bmc::{CheckLimits, CheckResult, Hazard, Witness};
pub use model::{InputVar, Model, ModelError, ModelLimits, RegVar, StepOutput, WireVar};

use fixref_lint::{Code, Diagnostic, LintInput, LintReport, Verdict};
use fixref_obs::{Event, Recorder};
use fixref_sim::{Design, SignalId};

/// Budget knobs for the verifier.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Maximum distinct reachable states per check.
    pub max_states: usize,
    /// Maximum exploration depth (ticks) per check.
    pub max_depth: usize,
    /// Maximum representable values per free input.
    pub max_alphabet: u64,
    /// Maximum product of input alphabet sizes (per-state branching).
    pub max_branching: u64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            max_states: 1 << 16,
            max_depth: 1 << 12,
            max_alphabet: 64,
            max_branching: 4096,
        }
    }
}

/// The outcome of checking one diagnostic.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The diagnostic's code.
    pub code: Code,
    /// The diagnostic's anchor signal.
    pub signal: String,
    /// The formal verdict.
    pub verdict: Verdict,
    /// Distinct states explored (0 when extraction failed).
    pub states: usize,
    /// Deepest tick explored, or witness length for a counterexample.
    pub depth: usize,
    /// The counterexample, for [`Verdict::CounterexampleFound`].
    pub witness: Option<Witness>,
}

impl Outcome {
    /// One-line rendering (`verify: FXL002 b proved (states=34, depth=5)`).
    pub fn render(&self) -> String {
        match &self.verdict {
            Verdict::Proved => format!(
                "verify: {} {} proved (states={}, depth={})",
                self.code, self.signal, self.states, self.depth
            ),
            Verdict::CounterexampleFound => {
                let hazard = self
                    .witness
                    .as_ref()
                    .map(|w| w.hazard.describe())
                    .unwrap_or_else(|| "hazard".to_string());
                format!(
                    "verify: {} {} counterexample ({} in {} tick(s))",
                    self.code, self.signal, hazard, self.depth
                )
            }
            Verdict::Unknown { reason } => {
                format!("verify: {} {} unknown({reason})", self.code, self.signal)
            }
        }
    }
}

/// A lint report with formal verdicts attached, plus per-check detail.
#[derive(Debug, Clone)]
pub struct VerifiedReport {
    /// The input report with [`Diagnostic::verdict`] filled in on every
    /// checked diagnostic (unchecked diagnostics keep `None`).
    pub report: LintReport,
    /// One entry per checked diagnostic, in report order.
    pub outcomes: Vec<Outcome>,
}

impl VerifiedReport {
    /// Outcomes that found a counterexample.
    pub fn counterexamples(&self) -> impl Iterator<Item = &Outcome> {
        self.outcomes
            .iter()
            .filter(|o| o.verdict == Verdict::CounterexampleFound)
    }

    /// Number of outcomes with a given verdict class.
    fn tally(&self) -> (usize, usize, usize) {
        let mut proved = 0;
        let mut refuted = 0;
        let mut unknown = 0;
        for o in &self.outcomes {
            match o.verdict {
                Verdict::Proved => proved += 1,
                Verdict::CounterexampleFound => refuted += 1,
                Verdict::Unknown { .. } => unknown += 1,
            }
        }
        (proved, refuted, unknown)
    }

    /// Deterministic human rendering: the verdict-annotated lint report,
    /// one line per check, and a tally line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.report.render_text();
        for o in &self.outcomes {
            let _ = writeln!(out, "{}", o.render());
        }
        let (proved, refuted, unknown) = self.tally();
        let _ = writeln!(
            out,
            "{proved} proved, {refuted} refuted, {unknown} undecided"
        );
        out
    }
}

/// The verification driver: walks a lint report, model-checks every
/// checkable diagnostic and attaches verdicts.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    options: VerifyOptions,
}

impl Verifier {
    /// A verifier with default budgets.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// A verifier with explicit budgets.
    pub fn with_options(options: VerifyOptions) -> Self {
        Verifier { options }
    }

    /// Convenience: snapshot `design` and verify `report` against it.
    pub fn verify_design(
        &self,
        design: &Design,
        report: &LintReport,
        recorder: Option<&dyn Recorder>,
    ) -> VerifiedReport {
        self.verify(&LintInput::from_design(design), report, recorder)
    }

    /// Verifies every checkable diagnostic of `report` against the
    /// snapshot it was produced from, returning the annotated report.
    pub fn verify(
        &self,
        input: &LintInput,
        report: &LintReport,
        recorder: Option<&dyn Recorder>,
    ) -> VerifiedReport {
        let mut annotated = report.clone();
        let mut outcomes = Vec::new();
        for diag in &mut annotated.diagnostics {
            let Some(outcome) = self.check_diagnostic(input, diag, recorder) else {
                continue;
            };
            diag.verdict = Some(outcome.verdict.clone());
            outcomes.push(outcome);
        }
        VerifiedReport {
            report: annotated,
            outcomes,
        }
    }

    /// Runs the property check matching one diagnostic; `None` when the
    /// code has no formal property.
    fn check_diagnostic(
        &self,
        input: &LintInput,
        diag: &Diagnostic,
        recorder: Option<&dyn Recorder>,
    ) -> Option<Outcome> {
        let property = match diag.code {
            Code::UnclampedFeedback | Code::WrapNarrowerThanPropagated => Property::Overflow,
            Code::TruncationInFeedback => Property::LimitCycle,
            _ => return None,
        };
        // Scope: the anchor signal plus every related signal (cycle
        // members for FXL002/FXL005); the model adds the full fan-in cone.
        let mut names: Vec<&str> = vec![diag.signal.as_str()];
        names.extend(diag.related.iter().map(String::as_str));
        let scope: Vec<SignalId> = input
            .signals
            .iter()
            .filter(|s| names.contains(&s.name.as_str()))
            .map(|s| s.id)
            .collect();

        let limits = ModelLimits {
            max_alphabet: self.options.max_alphabet,
            max_branching: self.options.max_branching,
        };
        let model = match Model::extract(input, &scope, &limits) {
            Ok(m) => m,
            Err(e) => {
                let reason = e.reason();
                if let Some(rec) = recorder {
                    rec.inc("verify.checks", 1);
                    rec.inc("verify.unknown", 1);
                    rec.record_event(Event::VerifyBoundExhausted {
                        code: diag.code.as_str().to_string(),
                        signal: diag.signal.clone(),
                        reason: reason.clone(),
                        states: 0,
                    });
                }
                return Some(Outcome {
                    code: diag.code,
                    signal: diag.signal.clone(),
                    verdict: Verdict::Unknown { reason },
                    states: 0,
                    depth: 0,
                    witness: None,
                });
            }
        };

        if let Some(rec) = recorder {
            rec.inc("verify.checks", 1);
            rec.record_event(Event::VerifyStarted {
                code: diag.code.as_str().to_string(),
                signal: diag.signal.clone(),
                registers: model.registers.len(),
            });
        }

        let check_limits = CheckLimits {
            max_states: self.options.max_states,
            max_depth: self.options.max_depth,
        };
        let result = match property {
            Property::Overflow => {
                // Watch every typed signal in scope: the hazard is any
                // cycle member aliasing, not just the anchor.
                let watch: Vec<String> = names.iter().map(|n| n.to_string()).collect();
                bmc::check_overflow(&model, &watch, &check_limits)
            }
            Property::LimitCycle => bmc::check_limit_cycle(&model, &check_limits),
        };

        if let Some(rec) = recorder {
            rec.inc("verify.states", result.states as u64);
            match &result.verdict {
                Verdict::Proved => {
                    rec.inc("verify.proved", 1);
                    rec.record_event(Event::VerifyProved {
                        code: diag.code.as_str().to_string(),
                        signal: diag.signal.clone(),
                        states: result.states,
                        depth: result.depth,
                    });
                }
                Verdict::CounterexampleFound => {
                    rec.inc("verify.counterexamples", 1);
                    rec.record_event(Event::VerifyCounterexample {
                        code: diag.code.as_str().to_string(),
                        signal: diag.signal.clone(),
                        steps: result.depth,
                    });
                }
                Verdict::Unknown { reason } => {
                    rec.inc("verify.unknown", 1);
                    rec.record_event(Event::VerifyBoundExhausted {
                        code: diag.code.as_str().to_string(),
                        signal: diag.signal.clone(),
                        reason: reason.clone(),
                        states: result.states,
                    });
                }
            }
        }

        Some(Outcome {
            code: diag.code,
            signal: diag.signal.clone(),
            verdict: result.verdict,
            states: result.states,
            depth: result.depth,
            witness: result.witness,
        })
    }
}

enum Property {
    Overflow,
    LimitCycle,
}
