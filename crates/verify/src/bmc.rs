//! Explicit-state bounded model checking over an extracted [`Model`].
//!
//! State = the vector of register mantissas (exact integers, so hashing
//! is bit-exact); transition = one [`Model::step`] per input combination.
//! Exploration is breadth-first with a deterministic successor order
//! (states dequeued FIFO, input combinations enumerated lexicographically
//! over the sorted inputs), so witnesses, state counts and depths are
//! identical on every run and platform.
//!
//! Two properties are checked:
//!
//! * **overflow freedom** — no typed assignment in a watch set ever
//!   raises the quantizer's overflow flag on any reachable path. When
//!   the reachable set closes without a hit, the hazard is *proved*
//!   absent (reachability closure is exhaustive, not just bounded);
//!   when a hit is found, the BFS path is a shortest witness.
//! * **zero-input limit cycles** — from every reachable state, driving
//!   all inputs with 0 must eventually reach the all-zeros fixpoint (or
//!   a cycle of states that are all zero). A nonzero cycle is the DC
//!   limit cycle of the paper's truncation hazard, and the witness is
//!   the excitation prefix plus the zero-driven loop.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use fixref_lint::Verdict;
use fixref_sim::ScenarioSet;

use crate::model::Model;

/// Exploration limits for the checker.
#[derive(Debug, Clone, Copy)]
pub struct CheckLimits {
    /// Maximum distinct reachable states before giving up.
    pub max_states: usize,
    /// Maximum BFS depth (ticks) before giving up.
    pub max_depth: usize,
}

/// What the checker observed about one trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum Hazard {
    /// A typed assignment overflowed.
    Overflow {
        /// The overflowing signal.
        signal: String,
    },
    /// A zero-input cycle through nonzero state.
    LimitCycle {
        /// Cycle length in ticks.
        period: usize,
    },
}

impl Hazard {
    /// Short human rendering for reports.
    pub fn describe(&self) -> String {
        match self {
            Hazard::Overflow { signal } => format!("overflow of {signal}"),
            Hazard::LimitCycle { period } => format!("limit cycle of period {period}"),
        }
    }
}

/// A machine-checked counterexample: concrete input streams plus the
/// register trace they induce from reset.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// What the trace triggers.
    pub hazard: Hazard,
    /// Per-input stimulus streams, `(name, samples)` — one sample per
    /// tick, aligned across streams.
    pub inputs: Vec<(String, Vec<f64>)>,
    /// Register values *after* each tick, `(name, value)` pairs in
    /// register order; `trace.len() == steps`.
    pub trace: Vec<Vec<(String, f64)>>,
    /// Number of ticks in the witness.
    pub steps: usize,
}

impl Witness {
    /// Lowers the witness to a replayable [`ScenarioSet`]: one noiseless
    /// scenario whose stimulus streams are exactly these input samples,
    /// so the sweep engine re-executes the counterexample bit-exactly.
    pub fn to_scenario_set(&self, seed: u64) -> ScenarioSet {
        ScenarioSet::replay(seed, self.inputs.clone())
    }
}

/// The result of one property check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Proved / counterexample / unknown.
    pub verdict: Verdict,
    /// Distinct states visited.
    pub states: usize,
    /// Deepest tick explored.
    pub depth: usize,
    /// The counterexample, when `verdict` is
    /// [`Verdict::CounterexampleFound`].
    pub witness: Option<Witness>,
}

/// The reachable state space, with enough book-keeping to rebuild the
/// shortest input path to any state.
struct Reachable {
    /// Arena of distinct states in discovery order; index 0 is initial.
    states: Vec<Vec<i64>>,
    /// For each state: `(predecessor index, input combination index)`;
    /// the initial state has no entry.
    parent: Vec<Option<(usize, u64)>>,
    /// BFS depth of each state.
    depth: Vec<usize>,
    /// Whether exploration closed (completed) within the limits.
    closed: bool,
    /// Why it did not close, when it did not.
    exhausted: Option<String>,
}

/// Explores the full reachable set breadth-first. If `stop_on_overflow`
/// is set, returns early with a witness path the moment a step raises an
/// overflow on a watched signal.
fn explore(
    model: &Model,
    limits: &CheckLimits,
    watch: Option<&[String]>,
) -> (Reachable, Option<(usize, u64, String)>) {
    let mut seen: HashMap<Vec<i64>, usize> = HashMap::new();
    let initial = model.initial_state();
    let mut reach = Reachable {
        states: vec![initial.clone()],
        parent: vec![None],
        depth: vec![0],
        closed: false,
        exhausted: None,
    };
    seen.insert(initial, 0);
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    let branching = model.branching();
    while let Some(s) = queue.pop_front() {
        if reach.depth[s] >= limits.max_depth {
            reach.exhausted = Some("depth_exhausted".to_string());
            return (reach, None);
        }
        let state = reach.states[s].clone();
        for k in 0..branching {
            let inputs = model.input_combo(k);
            let out = model.step(&state, &inputs);
            if let Some(watched) = watch {
                if let Some(sig) = out
                    .overflows
                    .iter()
                    .find(|o| watched.iter().any(|w| w == *o))
                {
                    return (reach, Some((s, k, sig.clone())));
                }
            }
            match seen.entry(out.next.clone()) {
                Entry::Occupied(_) => {}
                Entry::Vacant(v) => {
                    if reach.states.len() >= limits.max_states {
                        reach.exhausted = Some("state_budget_exhausted".to_string());
                        return (reach, None);
                    }
                    let idx = reach.states.len();
                    v.insert(idx);
                    reach.states.push(out.next);
                    reach.parent.push(Some((s, k)));
                    reach.depth.push(reach.depth[s] + 1);
                    queue.push_back(idx);
                }
            }
        }
    }
    reach.closed = true;
    (reach, None)
}

/// Rebuilds the input-combination path from the initial state to state
/// `target` (exclusive of any further step).
fn path_to(reach: &Reachable, target: usize) -> Vec<u64> {
    let mut combos = Vec::new();
    let mut at = target;
    while let Some((prev, k)) = reach.parent[at] {
        combos.push(k);
        at = prev;
    }
    combos.reverse();
    combos
}

/// Replays a combo path (plus optional trailing zero-input ticks) into a
/// full witness: stimulus streams and the post-tick register trace.
fn build_witness(model: &Model, combos: &[u64], zero_ticks: usize, hazard: Hazard) -> Witness {
    let steps = combos.len() + zero_ticks;
    let mut streams: Vec<(String, Vec<f64>)> = model
        .inputs
        .iter()
        .map(|i| (i.name.clone(), Vec::with_capacity(steps)))
        .collect();
    let mut trace = Vec::with_capacity(steps);
    let mut state = model.initial_state();
    for t in 0..steps {
        let inputs = if t < combos.len() {
            model.input_combo(combos[t])
        } else {
            model.zero_inputs()
        };
        for (stream, &v) in streams.iter_mut().zip(&inputs) {
            stream.1.push(v);
        }
        let out = model.step(&state, &inputs);
        state = out.next;
        trace.push(model.state_values(&state));
    }
    Witness {
        hazard,
        inputs: streams,
        trace,
        steps,
    }
}

/// Checks overflow freedom of the signals in `watch` over the complete
/// reachable set.
pub fn check_overflow(model: &Model, watch: &[String], limits: &CheckLimits) -> CheckResult {
    let (reach, hit) = explore(model, limits, Some(watch));
    let states = reach.states.len();
    let depth = reach.depth.iter().copied().max().unwrap_or(0);
    if let Some((from, combo, signal)) = hit {
        let mut combos = path_to(&reach, from);
        combos.push(combo);
        let witness = build_witness(model, &combos, 0, Hazard::Overflow { signal });
        return CheckResult {
            verdict: Verdict::CounterexampleFound,
            states,
            depth: witness.steps,
            witness: Some(witness),
        };
    }
    if !reach.closed {
        let reason = reach
            .exhausted
            .unwrap_or_else(|| "state_budget_exhausted".to_string());
        return CheckResult {
            verdict: Verdict::Unknown { reason },
            states,
            depth,
            witness: None,
        };
    }
    CheckResult {
        verdict: Verdict::Proved,
        states,
        depth,
        witness: None,
    }
}

/// Checks absence of zero-input limit cycles: from every reachable
/// state, the zero-driven trajectory must end in a cycle whose states
/// are all zero (the silent fixpoint). Any nonzero cycle state is a
/// sustained oscillation with no input — the classic truncation limit
/// cycle — and yields a witness: the shortest excitation reaching the
/// offending state, then zeros through one full period.
pub fn check_limit_cycle(model: &Model, limits: &CheckLimits) -> CheckResult {
    let (reach, _) = explore(model, limits, None);
    let states = reach.states.len();
    let depth = reach.depth.iter().copied().max().unwrap_or(0);
    if !reach.closed {
        let reason = reach
            .exhausted
            .unwrap_or_else(|| "state_budget_exhausted".to_string());
        return CheckResult {
            verdict: Verdict::Unknown { reason },
            states,
            depth,
            witness: None,
        };
    }
    let zero = model.zero_inputs();
    // clean[s]: Some(true) = trajectory from s settles silently,
    // Some(false) = it hits a nonzero cycle. Memoized across starts —
    // zero-input stepping is deterministic, so trajectories merge.
    let mut clean: HashMap<Vec<i64>, bool> = HashMap::new();
    for start in 0..reach.states.len() {
        let mut chain: Vec<Vec<i64>> = Vec::new();
        let mut pos: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut state = reach.states[start].clone();
        let verdict_for_chain;
        loop {
            if let Some(&v) = clean.get(&state) {
                verdict_for_chain = v;
                break;
            }
            if let Some(&at) = pos.get(&state) {
                // Found the cycle: chain[at..] repeats forever.
                let dirty = chain[at..].iter().any(|s| s.iter().any(|&m| m != 0));
                if dirty {
                    let period = chain.len() - at;
                    let combos = path_to(&reach, start);
                    let zero_ticks = at + period;
                    let witness =
                        build_witness(model, &combos, zero_ticks, Hazard::LimitCycle { period });
                    return CheckResult {
                        verdict: Verdict::CounterexampleFound,
                        states,
                        depth: witness.steps,
                        witness: Some(witness),
                    };
                }
                verdict_for_chain = true;
                break;
            }
            pos.insert(state.clone(), chain.len());
            chain.push(state.clone());
            state = model.step(&state, &zero).next;
        }
        for s in chain {
            clean.insert(s, verdict_for_chain);
        }
    }
    CheckResult {
        verdict: Verdict::Proved,
        states,
        depth,
        witness: None,
    }
}
