//! A minimal JSON value model, writer helpers and recursive-descent
//! parser — just enough to serialize the event journal and metrics
//! reports and to parse them back in tests and tooling, with no external
//! dependencies.
//!
//! The subset is full JSON minus two deliberate relaxations on the
//! *writer* side only: non-finite floats are emitted as the strings
//! `"NaN"`, `"Infinity"` and `"-Infinity"` (JSON has no spelling for
//! them), and object keys are kept in insertion order.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the first offending byte.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// Member lookup on objects (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload; also decodes the writer's non-finite string
    /// spellings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(lead) => {
                    // Consume one UTF-8 scalar; the input came in as &str
                    // so a multi-byte sequence is always complete.
                    let len = match lead {
                        b if b < 0x80 => 1,
                        b if b < 0xe0 => 2,
                        b if b < 0xf0 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON token: shortest round-trip representation
/// for finite values, quoted sentinel strings for the rest.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits the decimal point for integral values; keep the
        // token a JSON number either way (it already is).
        s
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"Infinity\"".to_string()
    } else {
        "\"-Infinity\"".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -1.5e3 ").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" backslash\\ newline\n tab\t unicode µ §";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn f64_formatting_round_trips() {
        for v in [0.0, -0.2, 1.0 / 3.0, 1e300, -2.5e-17] {
            let parsed = Json::parse(&fmt_f64(v)).unwrap();
            assert_eq!(parsed.as_f64(), Some(v));
        }
        assert!(Json::parse(&fmt_f64(f64::NAN))
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
        assert_eq!(
            Json::parse(&fmt_f64(f64::INFINITY)).unwrap().as_f64(),
            Some(f64::INFINITY)
        );
    }
}
