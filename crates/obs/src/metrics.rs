//! The metrics report: a renderable snapshot of everything a recorder
//! accumulated — counters, histograms, spans and event tallies — with
//! text output for terminals and JSON output for the `BENCH_*.json`
//! perf trajectory and other tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{escape, fmt_f64, Json, JsonError};
use crate::recorder::{DefaultRecorder, HistogramSummary, SpanRecord};

/// A point-in-time snapshot of a recorder, ready to render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Name of the run/flow the metrics describe (the JSON `"name"`).
    pub name: String,
    /// Name-sorted counters.
    pub counters: Vec<(String, u64)>,
    /// Name-sorted histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Event tallies by kind, name-sorted.
    pub event_counts: Vec<(String, u64)>,
}

impl MetricsReport {
    /// Snapshots a recorder under a report name.
    pub fn from_recorder(name: &str, recorder: &DefaultRecorder) -> Self {
        let mut tally: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in recorder.events() {
            *tally.entry(e.kind()).or_insert(0) += 1;
        }
        MetricsReport {
            name: name.to_string(),
            counters: recorder.counters(),
            histograms: recorder.histograms(),
            spans: recorder.spans(),
            event_counts: tally.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// Renders an aligned plain-text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics report — {}", self.name);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            let w = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<w$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            let w = self
                .histograms
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<w$}  n={} min={:.6} mean={:.6} max={:.6}",
                    h.count,
                    h.min,
                    h.mean(),
                    h.max
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans:");
            let w = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
            for s in &self.spans {
                let ms = s.wall_ns as f64 / 1e6;
                if s.cycles > 0 {
                    let _ = writeln!(
                        out,
                        "  {:<w$}  {:>10.3} ms  {:>10} cycles  ({:.1} ns/cycle)",
                        s.name,
                        ms,
                        s.cycles,
                        s.wall_ns as f64 / s.cycles as f64
                    );
                } else {
                    let _ = writeln!(out, "  {:<w$}  {:>10.3} ms", s.name, ms);
                }
            }
        }
        if !self.event_counts.is_empty() {
            let _ = writeln!(out, "events:");
            let w = self
                .event_counts
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, v) in &self.event_counts {
                let _ = writeln!(out, "  {k:<w$}  {v}");
            }
        }
        out
    }

    /// Renders one JSON object:
    /// `{"name", "counters", "histograms", "spans", "events"}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(r#"{{"name":"{}","#, escape(&self.name)));
        out.push_str(r#""counters":{"#);
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(r#""{}":{v}"#, escape(k)));
        }
        out.push_str(r#"},"histograms":{"#);
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                r#""{}":{{"count":{},"sum":{},"min":{},"max":{},"mean":{}}}"#,
                escape(k),
                h.count,
                fmt_f64(h.sum),
                fmt_f64(h.min),
                fmt_f64(h.max),
                fmt_f64(h.mean())
            ));
        }
        out.push_str(r#"},"spans":["#);
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                r#"{{"name":"{}","wall_ns":{},"cycles":{},"seq":{}}}"#,
                escape(&s.name),
                s.wall_ns,
                s.cycles,
                s.seq
            ));
        }
        out.push_str(r#"],"events":{"#);
        for (i, (k, v)) in self.event_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(r#""{}":{v}"#, escape(k)));
        }
        out.push_str("}}");
        out
    }

    /// Parses a report back from its [`MetricsReport::render_json`] form —
    /// the round-trip used by tests and by consumers of `BENCH_*.json`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or a missing member.
    pub fn parse_json(text: &str) -> Result<MetricsReport, JsonError> {
        let v = Json::parse(text)?;
        let missing = |what: &str| JsonError {
            message: format!("missing or mistyped member {what:?}"),
            offset: 0,
        };
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("name"))?
            .to_string();
        let obj = |key: &str| -> Result<Vec<(String, Json)>, JsonError> {
            match v.get(key) {
                Some(Json::Obj(members)) => Ok(members.clone()),
                _ => Err(missing(key)),
            }
        };
        let mut counters = Vec::new();
        for (k, val) in obj("counters")? {
            counters.push((k, val.as_u64().ok_or_else(|| missing("counter value"))?));
        }
        let mut histograms = Vec::new();
        for (k, val) in obj("histograms")? {
            let f = |m: &str| val.get(m).and_then(Json::as_f64).ok_or_else(|| missing(m));
            histograms.push((
                k,
                HistogramSummary {
                    count: val
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| missing("count"))?,
                    sum: f("sum")?,
                    min: f("min")?,
                    max: f("max")?,
                },
            ));
        }
        let mut spans = Vec::new();
        for s in v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("spans"))?
        {
            let u = |m: &str| s.get(m).and_then(Json::as_u64).ok_or_else(|| missing(m));
            spans.push(SpanRecord {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("span name"))?
                    .to_string(),
                wall_ns: u("wall_ns")?,
                cycles: u("cycles")?,
                seq: u("seq")?,
            });
        }
        let mut event_counts = Vec::new();
        for (k, val) in obj("events")? {
            event_counts.push((k, val.as_u64().ok_or_else(|| missing("event count"))?));
        }
        Ok(MetricsReport {
            name,
            counters,
            histograms,
            spans,
            event_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Phase};
    use crate::recorder::Recorder;

    fn sample() -> MetricsReport {
        let rec = DefaultRecorder::new();
        rec.inc("sim.ticks", 4000);
        rec.inc("sim.assignments", 56_000);
        rec.observe("flow.iter_wall_ms", 12.5);
        rec.observe("flow.iter_wall_ms", 9.25);
        rec.record_event(Event::PhaseConverged {
            phase: Phase::Msb,
            iterations: 2,
        });
        rec.record_event(Event::PhaseConverged {
            phase: Phase::Lsb,
            iterations: 1,
        });
        let id = rec.span_begin("flow.msb.iter");
        rec.span_end(id, 4000);
        MetricsReport::from_recorder("lms", &rec)
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let json = report.render_json();
        let back = MetricsReport::parse_json(&json).unwrap();
        assert_eq!(back.name, report.name);
        assert_eq!(back.counters, report.counters);
        assert_eq!(back.spans, report.spans);
        assert_eq!(back.event_counts, report.event_counts);
        assert_eq!(back.histograms.len(), report.histograms.len());
        for ((ka, ha), (kb, hb)) in back.histograms.iter().zip(&report.histograms) {
            assert_eq!(ka, kb);
            assert_eq!(ha.count, hb.count);
            assert!((ha.sum - hb.sum).abs() < 1e-12);
        }
    }

    #[test]
    fn text_rendering_names_all_sections() {
        let text = sample().render_text();
        assert!(text.contains("counters:"));
        assert!(text.contains("sim.ticks"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("spans:"));
        assert!(text.contains("cycles"));
        assert!(text.contains("events:"));
        assert!(text.contains("phase_converged"));
    }

    #[test]
    fn empty_report_renders_header_only() {
        let rec = DefaultRecorder::new();
        let report = MetricsReport::from_recorder("empty", &rec);
        let text = report.render_text();
        assert!(text.starts_with("metrics report — empty"));
        assert!(!text.contains("counters:"));
        let back = MetricsReport::parse_json(&report.render_json()).unwrap();
        assert_eq!(back.name, "empty");
        assert!(back.counters.is_empty());
    }
}
