//! The [`Recorder`] trait and its thread-safe default implementation.
//!
//! A recorder is the sink every instrumented layer writes into: monotonic
//! counters (ticks, assignments, overflows), min/max/mean histograms
//! (observed values, error magnitudes), phase-scoped spans with wall-clock
//! and cycle-accurate timing, and the structured [`Event`] journal.
//!
//! [`DefaultRecorder`] keeps everything behind one mutex, so a single
//! `Arc<DefaultRecorder>` can be attached to a `Design`, a refinement
//! flow and a code generator at once, and snapshotted from any thread.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::Event;

/// Opaque token pairing a [`Recorder::span_begin`] with its
/// [`Recorder::span_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Summary of one min/max/mean histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramSummary {
    /// The mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One completed span: a named scope with wall-clock duration and an
/// optional cycle count supplied by the instrumented layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span's name (e.g. `"flow.msb.iter"`).
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Simulation cycles spent inside the span (0 when not applicable).
    pub cycles: u64,
    /// Completion order (0-based) — spans are reported in this order.
    pub seq: u64,
}

/// The instrumentation sink interface.
///
/// Object-safe and thread-safe so `Arc<dyn Recorder>` can be shared
/// across layers. All methods take `&self`; implementations synchronize
/// internally.
pub trait Recorder: Send + Sync {
    /// Adds `by` to the monotonic counter `name` (created at 0).
    fn inc(&self, name: &str, by: u64);

    /// Records one observation into the histogram `name`.
    fn observe(&self, name: &str, value: f64);

    /// Records a batch of observations into the histogram `name`, folding
    /// them in slice order. Equivalent to calling [`Recorder::observe`]
    /// once per value — implementations may override it to amortize
    /// locking and lookup, but must keep the fold bit-identical to the
    /// one-at-a-time form (the compiled simulation backend buffers
    /// per-signal quantization errors and flushes them through this).
    fn observe_seq(&self, name: &str, values: &[f64]) {
        for &v in values {
            self.observe(name, v);
        }
    }

    /// Appends an event to the journal.
    fn record_event(&self, event: Event);

    /// Opens a timed span; the returned id must be passed to
    /// [`Recorder::span_end`].
    fn span_begin(&self, name: &str) -> SpanId;

    /// Closes a span, attributing `cycles` simulation cycles to it (pass
    /// 0 when cycles are meaningless for the scope).
    fn span_end(&self, id: SpanId, cycles: u64);
}

/// RAII guard that closes its span on drop.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use fixref_obs::{DefaultRecorder, Span};
///
/// let rec = Arc::new(DefaultRecorder::new());
/// {
///     let mut span = Span::enter(rec.clone(), "work");
///     span.set_cycles(128);
/// } // span recorded here
/// assert_eq!(rec.spans().len(), 1);
/// assert_eq!(rec.spans()[0].cycles, 128);
/// ```
pub struct Span {
    recorder: Arc<dyn Recorder>,
    id: SpanId,
    cycles: u64,
}

impl Span {
    /// Opens a span on `recorder` that closes when the guard drops.
    pub fn enter(recorder: Arc<dyn Recorder>, name: &str) -> Span {
        let id = recorder.span_begin(name);
        Span {
            recorder,
            id,
            cycles: 0,
        }
    }

    /// Attributes simulation cycles to the span (latest call wins).
    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.recorder.span_end(self.id, self.cycles);
    }
}

#[derive(Debug, Default)]
struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

#[derive(Default)]
struct Inner {
    counters: HashMap<String, u64>,
    hists: HashMap<String, Hist>,
    events: Vec<Event>,
    spans: Vec<SpanRecord>,
    pending: HashMap<u64, (String, Instant)>,
    next_span: u64,
}

/// The standard mutex-protected recorder.
///
/// # Example
///
/// ```
/// use fixref_obs::{DefaultRecorder, Recorder};
///
/// let rec = DefaultRecorder::new();
/// rec.inc("sim.ticks", 3);
/// rec.observe("err", 0.25);
/// rec.observe("err", -0.75);
/// assert_eq!(rec.counter("sim.ticks"), 3);
/// let h = rec.histogram("err").unwrap();
/// assert_eq!(h.count, 2);
/// assert_eq!(h.min, -0.75);
/// assert_eq!(h.mean(), -0.25);
/// ```
#[derive(Default)]
pub struct DefaultRecorder {
    inner: Mutex<Inner>,
}

impl DefaultRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        DefaultRecorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Instrumentation must not take the process down with it: on a
        // poisoned mutex, keep recording into the (still consistent
        // enough) state.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// A name-sorted snapshot of every counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let inner = self.lock();
        let mut out: Vec<_> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort();
        out
    }

    /// The summary of one histogram, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.lock().hists.get(name).map(|h| HistogramSummary {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
        })
    }

    /// A name-sorted snapshot of every histogram.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        let inner = self.lock();
        let mut out: Vec<_> = inner
            .hists
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSummary {
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// A snapshot of the event journal, in recording order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.clone()
    }

    /// The journal entries matching a predicate — the query interface the
    /// flow uses instead of ad-hoc bookkeeping vectors.
    pub fn query<F: FnMut(&Event) -> bool>(&self, mut pred: F) -> Vec<Event> {
        self.lock()
            .events
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }

    /// Completed spans in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Merges everything another recorder collected into this one:
    /// counters add, histograms combine (count/sum add, min/max extend),
    /// events append in the other's journal order, and completed spans
    /// append with their completion sequence renumbered to continue this
    /// recorder's. The other recorder is left untouched; its pending
    /// (unclosed) spans are not transferred.
    ///
    /// This is the merge layer of the scenario-sweep engine: each shard
    /// simulates into a private recorder, and the master absorbs them in
    /// shard order so the merged journal is deterministic regardless of
    /// worker scheduling.
    pub fn absorb(&self, other: &DefaultRecorder) {
        if std::ptr::eq(self, other) {
            return;
        }
        // Snapshot the source first so the two mutexes are never held at
        // once (no lock-order deadlock risk however callers pair them).
        let (counters, hists, events, spans) = {
            let o = other.lock();
            let hists: Vec<(String, Hist)> = o
                .hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Hist {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                        },
                    )
                })
                .collect();
            (o.counters.clone(), hists, o.events.clone(), o.spans.clone())
        };
        let mut inner = self.lock();
        for (name, by) in counters {
            match inner.counters.get_mut(&name) {
                Some(v) => *v = v.saturating_add(by),
                None => {
                    inner.counters.insert(name, by);
                }
            }
        }
        for (name, h) in hists {
            match inner.hists.get_mut(&name) {
                Some(mine) => {
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                }
                None => {
                    inner.hists.insert(name, h);
                }
            }
        }
        inner.events.extend(events);
        for mut span in spans {
            span.seq = inner.spans.len() as u64;
            inner.spans.push(span);
        }
    }

    /// Discards all recorded data (counters, histograms, events, spans).
    /// Pending (unclosed) spans survive so a reset during a phase does
    /// not orphan its guard.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.hists.clear();
        inner.events.clear();
        inner.spans.clear();
    }
}

impl Recorder for DefaultRecorder {
    fn inc(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(by),
            None => {
                inner.counters.insert(name.to_string(), by);
            }
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.hists.get_mut(name) {
            Some(h) => {
                h.count += 1;
                h.sum += value;
                h.min = h.min.min(value);
                h.max = h.max.max(value);
            }
            None => {
                inner.hists.insert(
                    name.to_string(),
                    Hist {
                        count: 1,
                        sum: value,
                        min: value,
                        max: value,
                    },
                );
            }
        }
    }

    fn observe_seq(&self, name: &str, values: &[f64]) {
        let Some((&first, rest)) = values.split_first() else {
            return;
        };
        let mut inner = self.lock();
        // Same sequential fold as `observe`, one value at a time
        // (including the first-observation insert), so a buffered flush is
        // bitwise identical to per-assignment recording.
        use std::collections::hash_map::Entry;
        let (h, tail) = match inner.hists.entry(name.to_string()) {
            Entry::Occupied(e) => (e.into_mut(), values),
            Entry::Vacant(e) => (
                e.insert(Hist {
                    count: 1,
                    sum: first,
                    min: first,
                    max: first,
                }),
                rest,
            ),
        };
        for &v in tail {
            h.count += 1;
            h.sum += v;
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
    }

    fn record_event(&self, event: Event) {
        self.lock().events.push(event);
    }

    fn span_begin(&self, name: &str) -> SpanId {
        let mut inner = self.lock();
        let id = inner.next_span;
        inner.next_span += 1;
        inner.pending.insert(id, (name.to_string(), Instant::now()));
        SpanId(id)
    }

    fn span_end(&self, id: SpanId, cycles: u64) {
        let mut inner = self.lock();
        if let Some((name, start)) = inner.pending.remove(&id.0) {
            let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let seq = inner.spans.len() as u64;
            inner.spans.push(SpanRecord {
                name,
                wall_ns,
                cycles,
                seq,
            });
        }
    }
}

impl std::fmt::Debug for DefaultRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("DefaultRecorder")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.hists.len())
            .field("events", &inner.events.len())
            .field("spans", &inner.spans.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = DefaultRecorder::new();
        r.inc("a", 1);
        r.inc("a", 2);
        r.inc("b", u64::MAX);
        r.inc("b", 5);
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("b"), u64::MAX);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(
            r.counters(),
            vec![("a".to_string(), 3), ("b".to_string(), u64::MAX)]
        );
    }

    #[test]
    fn histograms_track_min_max_mean() {
        let r = DefaultRecorder::new();
        for v in [1.0, -3.0, 2.0] {
            r.observe("h", v);
        }
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -3.0);
        assert_eq!(h.max, 2.0);
        assert_eq!(h.mean(), 0.0);
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn observe_seq_matches_one_at_a_time() {
        let a = DefaultRecorder::new();
        let b = DefaultRecorder::new();
        let values = [0.25, -0.75, 0.0, -0.0, 3.5];
        for v in values {
            a.observe("h", v);
        }
        // Flush in two chunks: one that creates the histogram, one that
        // extends it.
        b.observe_seq("h", &values[..2]);
        b.observe_seq("h", &values[2..]);
        let (ha, hb) = (a.histogram("h").unwrap(), b.histogram("h").unwrap());
        assert_eq!(ha.count, hb.count);
        assert_eq!(ha.sum.to_bits(), hb.sum.to_bits());
        assert_eq!(ha.min.to_bits(), hb.min.to_bits());
        assert_eq!(ha.max.to_bits(), hb.max.to_bits());
        // Seeding with `observe` first, then batching, also matches.
        let c = DefaultRecorder::new();
        c.observe("h", values[0]);
        c.observe_seq("h", &values[1..]);
        assert_eq!(c.histogram("h"), a.histogram("h"));
        // Empty flush is a no-op and never creates the histogram.
        c.observe_seq("empty", &[]);
        assert!(c.histogram("empty").is_none());
    }

    #[test]
    fn spans_capture_order_and_cycles() {
        let r = Arc::new(DefaultRecorder::new());
        {
            let mut outer = Span::enter(r.clone(), "outer");
            outer.set_cycles(10);
            let _inner = Span::enter(r.clone(), "inner");
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        // Inner guard drops first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].cycles, 10);
        assert_eq!(spans[0].seq, 0);
        assert_eq!(spans[1].seq, 1);
    }

    #[test]
    fn journal_queries_filter_by_kind() {
        let r = DefaultRecorder::new();
        r.record_event(Event::PhaseConverged {
            phase: Phase::Msb,
            iterations: 2,
        });
        r.record_event(Event::AutoRange {
            signal: "b".into(),
            lo: -0.2,
            hi: 0.2,
            iteration: 1,
        });
        let ranges = r.query(|e| matches!(e, Event::AutoRange { .. }));
        assert_eq!(ranges.len(), 1);
        assert_eq!(r.events().len(), 2);
    }

    #[test]
    fn clear_resets_everything_recorded() {
        let r = DefaultRecorder::new();
        r.inc("a", 1);
        r.observe("h", 1.0);
        r.record_event(Event::VerifyCompleted {
            overflows: 0,
            saturation_events: 0,
        });
        let id = r.span_begin("open");
        r.clear();
        assert_eq!(r.counter("a"), 0);
        assert!(r.histogram("h").is_none());
        assert!(r.events().is_empty());
        // The pending span survives the clear and still closes cleanly.
        r.span_end(id, 7);
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.spans()[0].cycles, 7);
    }

    #[test]
    fn absorb_merges_counters_histograms_events_and_spans() {
        let master = DefaultRecorder::new();
        master.inc("sim.samples", 10);
        master.observe("h", 1.0);
        master.record_event(Event::PhaseConverged {
            phase: Phase::Msb,
            iterations: 1,
        });
        let id = master.span_begin("master.iter");
        master.span_end(id, 3);

        let shard = DefaultRecorder::new();
        shard.inc("sim.samples", 32);
        shard.inc("sim.overflows", 2);
        shard.observe("h", -4.0);
        shard.observe("h", 9.0);
        shard.observe("g", 0.5);
        shard.record_event(Event::AutoRange {
            signal: "x".into(),
            lo: -1.0,
            hi: 1.0,
            iteration: 2,
        });
        let sid = shard.span_begin("shard.sim");
        shard.span_end(sid, 100);

        master.absorb(&shard);

        assert_eq!(master.counter("sim.samples"), 42);
        assert_eq!(master.counter("sim.overflows"), 2);
        let h = master.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -4.0);
        assert_eq!(h.max, 9.0);
        assert_eq!(master.histogram("g").unwrap().count, 1);
        let events = master.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::PhaseConverged { .. }));
        assert!(matches!(events[1], Event::AutoRange { .. }));
        let spans = master.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "master.iter");
        assert_eq!(spans[1].name, "shard.sim");
        // Absorbed span sequence continues the master's numbering.
        assert_eq!(spans[1].seq, 1);
        assert_eq!(spans[1].cycles, 100);
        // The shard is untouched.
        assert_eq!(shard.counter("sim.samples"), 32);
        assert_eq!(shard.spans()[0].seq, 0);
    }

    #[test]
    fn absorb_is_deterministic_over_fold_order_and_self_safe() {
        let mk = |n: u64| {
            let r = DefaultRecorder::new();
            r.inc("c", n);
            r.observe("h", n as f64);
            r
        };
        let a = DefaultRecorder::new();
        for r in [mk(1), mk(2), mk(3)] {
            a.absorb(&r);
        }
        let b = DefaultRecorder::new();
        for r in [mk(1), mk(2), mk(3)] {
            b.absorb(&r);
        }
        assert_eq!(a.counter("c"), b.counter("c"));
        assert_eq!(a.histogram("h"), b.histogram("h"));

        // Self-absorb is a no-op, not a deadlock or a double-count.
        a.absorb(&a);
        assert_eq!(a.counter("c"), 6);
        assert_eq!(a.histogram("h").unwrap().count, 3);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = Arc::new(DefaultRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.inc("n", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("n"), 4000);
    }
}
