//! JSON Lines serialization of the event journal.
//!
//! One event per line, each line one self-describing JSON object — the
//! interchange format between the instrumented flow and external tooling
//! (plotters, regression dashboards, the `BENCH_*.json` trajectory).

use std::io::{self, Write};

use crate::event::Event;
use crate::json::JsonError;

/// Streams events as JSON Lines into any [`Write`].
///
/// # Example
///
/// ```
/// use fixref_obs::{Event, JournalWriter, Phase};
///
/// let mut buf = Vec::new();
/// let mut w = JournalWriter::new(&mut buf);
/// w.write_event(&Event::PhaseConverged { phase: Phase::Msb, iterations: 2 }).unwrap();
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.ends_with("\n"));
/// assert_eq!(fixref_obs::parse_journal(&text).unwrap().len(), 1);
/// ```
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    sink: W,
    written: u64,
}

impl<W: Write> JournalWriter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        JournalWriter { sink, written: 0 }
    }

    /// Writes one event as one line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_event(&mut self, event: &Event) -> io::Result<()> {
        self.sink.write_all(event.to_json().as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Writes a whole slice of events.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_all_events(&mut self, events: &[Event]) -> io::Result<()> {
        for e in events {
            self.write_event(e)?;
        }
        Ok(())
    }

    /// Number of events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Renders a slice of events as one JSON Lines string.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSON Lines journal back into events. Blank lines are
/// skipped; any malformed line aborts with its error.
///
/// # Errors
///
/// Returns the first line's [`JsonError`], annotated with the 1-based
/// line number in the message.
pub fn parse_journal(text: &str) -> Result<Vec<Event>, JsonError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let e = Event::from_json(line).map_err(|err| JsonError {
            message: format!("line {}: {}", i + 1, err.message),
            offset: err.offset,
        })?;
        events.push(e);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn journal() -> Vec<Event> {
        vec![
            Event::IterationStarted {
                phase: Phase::Msb,
                iteration: 1,
            },
            Event::IntervalExploded {
                signal: "w".into(),
                iteration: 1,
            },
            Event::AutoRange {
                signal: "b".into(),
                lo: -0.355,
                hi: 0.189,
                iteration: 1,
            },
            Event::PhaseConverged {
                phase: Phase::Msb,
                iterations: 2,
            },
        ]
    }

    #[test]
    fn emit_parse_same_events() {
        let events = journal();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = parse_journal(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn writer_counts_and_round_trips() {
        let events = journal();
        let mut w = JournalWriter::new(Vec::new());
        w.write_all_events(&events).unwrap();
        assert_eq!(w.written(), events.len() as u64);
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(parse_journal(&text).unwrap(), events);
    }

    #[test]
    fn blank_lines_are_tolerated_malformed_lines_are_not() {
        let text = format!(
            "\n{}\n\n{}\n",
            journal()[0].to_json(),
            journal()[3].to_json()
        );
        assert_eq!(parse_journal(&text).unwrap().len(), 2);
        let bad = format!("{}\nnot json\n", journal()[0].to_json());
        let err = parse_journal(&bad).unwrap_err();
        assert!(err.message.contains("line 2"), "{err}");
    }
}
