//! The structured event taxonomy of the refinement flow.
//!
//! Every noteworthy occurrence during simulation and refinement — an
//! overflow, a range-propagation explosion, an automatic `range()` or
//! `error()` intervention, a signal resolving, a phase converging — is an
//! [`Event`]. Events are plain data: the journal they accumulate in can be
//! queried in-process (replacing ad-hoc bookkeeping vectors) and exported
//! as JSON Lines for external tooling.

use crate::json::{escape, fmt_f64, Json, JsonError};
use std::fmt;

/// Which refinement phase an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Integer-wordlength (range) refinement, paper §5.1.
    Msb,
    /// Fractional-wordlength (precision) refinement, paper §5.2.
    Lsb,
}

impl Phase {
    /// The lowercase wire name (`"msb"` / `"lsb"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Msb => "msb",
            Phase::Lsb => "lsb",
        }
    }

    fn parse(s: &str) -> Option<Phase> {
        match s {
            "msb" => Some(Phase::Msb),
            "lsb" => Some(Phase::Lsb),
            _ => None,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured occurrence in the instrumented flow.
///
/// The taxonomy follows the refinement loop of paper Fig. 4: simulation
/// monitors raise [`Event::OverflowDetected`]; per-iteration analysis
/// raises [`Event::IntervalExploded`] and [`Event::SignalResolved`];
/// automatic interventions raise [`Event::AutoRange`] /
/// [`Event::AutoError`]; phase ends raise [`Event::PhaseConverged`] or
/// [`Event::PhaseFailed`]; type application raises [`Event::TypeApplied`];
/// the final check raises [`Event::VerifyCompleted`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A value did not fit a signal's type during simulation.
    OverflowDetected {
        /// The overflowing signal.
        signal: String,
        /// The unquantized value that did not fit.
        value: f64,
        /// The clock cycle at which it happened.
        cycle: u64,
    },
    /// One refinement iteration began (spans carry its timing; this event
    /// anchors the journal's ordering).
    IterationStarted {
        /// The phase iterating.
        phase: Phase,
        /// 1-based iteration number.
        iteration: usize,
    },
    /// A signal's propagated range exploded (unbounded or past the
    /// explosion threshold) in an MSB iteration.
    IntervalExploded {
        /// The exploded signal.
        signal: String,
        /// 1-based iteration in which the explosion was observed.
        iteration: usize,
    },
    /// The flow pinned `range(lo, hi)` on a feedback signal — the
    /// automatic equivalent of the paper's manual `b.range(-0.2, 0.2)`.
    AutoRange {
        /// The annotated signal.
        signal: String,
        /// Lower pinned bound.
        lo: f64,
        /// Upper pinned bound.
        hi: f64,
        /// 1-based MSB iteration that inserted it.
        iteration: usize,
    },
    /// The flow injected `error(σ)` on an LSB-divergent feedback signal.
    AutoError {
        /// The annotated signal.
        signal: String,
        /// Injected error standard deviation.
        sigma: f64,
        /// 1-based LSB iteration that inserted it.
        iteration: usize,
    },
    /// A signal that was exploded (MSB) or divergent (LSB) in an earlier
    /// iteration is now resolved.
    SignalResolved {
        /// The resolved signal.
        signal: String,
        /// The phase it resolved in.
        phase: Phase,
        /// 1-based iteration in which it resolved.
        iteration: usize,
    },
    /// A phase finished with every refinable signal resolved.
    PhaseConverged {
        /// The converged phase.
        phase: Phase,
        /// Iterations it took.
        iterations: usize,
    },
    /// A phase exhausted its iteration budget.
    PhaseFailed {
        /// The failed phase.
        phase: Phase,
        /// Iterations spent.
        iterations: usize,
        /// Comma-joined names of the signals still unresolved.
        unresolved: String,
    },
    /// A decided type was applied to a signal.
    TypeApplied {
        /// The typed signal.
        signal: String,
        /// The decided type, in `<n,f,…>` display form.
        dtype: String,
    },
    /// The final verification run completed.
    VerifyCompleted {
        /// Overflows on wrap/error-mode types (failures).
        overflows: u64,
        /// Excursions absorbed by saturating types (informational).
        saturation_events: u64,
    },
    /// A scenario shard of a parallel sweep began merging into the master
    /// journal. Shard journals are concatenated in shard (scenario) order,
    /// bracketed by this event and [`Event::ShardMerged`].
    ShardStarted {
        /// 0-based scenario index of the shard.
        shard: usize,
        /// Stimulus seed the shard simulated with.
        seed: u64,
        /// Stimulus SNR of the shard (dB).
        snr_db: f64,
        /// Samples the shard simulated.
        samples: usize,
    },
    /// A scenario shard's statistics finished merging into the master
    /// design.
    ShardMerged {
        /// 0-based scenario index of the shard.
        shard: usize,
        /// Simulation cycles the shard ran.
        cycles: u64,
        /// Signals whose monitors were merged.
        signals: usize,
    },
    /// An incremental evaluation cache was invalidated: annotation
    /// changes dirtied part (or all) of the design, so the next run
    /// cannot be replayed wholesale from cached monitors.
    CacheInvalidated {
        /// What invalidated the cache (e.g. `"annotations"`,
        /// `"error_sigma"`).
        reason: String,
        /// Number of signals marked dirty by the invalidation.
        dirty: usize,
    },
    /// A zero-spanning division's unbounded quotient was clamped to the
    /// dividend's declared type bound during analytical range
    /// propagation, instead of silently poisoning downstream ranges.
    RangeClamped {
        /// The signal whose defining division was clamped.
        signal: String,
        /// Lower clamped bound.
        lo: f64,
        /// Upper clamped bound.
        hi: f64,
    },
    /// A signal's analytical range was widened to unbounded after
    /// exceeding the growth-pass budget on a feedback path — the "MSB
    /// explosion" the paper warns about, journaled instead of silently
    /// railing to `Interval::UNBOUNDED`.
    RangeExploded {
        /// The signal whose range exploded.
        signal: String,
        /// Growing passes observed before the analysis gave up.
        passes: usize,
    },
    /// One static-lint finding (pre-flight diagnostics over the recorded
    /// signal-flow graph).
    LintDiagnostic {
        /// The stable diagnostic code (`"FXL001"`, …).
        code: String,
        /// Severity wire form (`"info"` / `"warning"` / `"error"`).
        severity: String,
        /// The signal the finding is anchored to.
        signal: String,
        /// Human-readable explanation.
        message: String,
    },
    /// A lint run over the design finished.
    LintCompleted {
        /// Error-severity findings.
        errors: usize,
        /// Warning-severity findings.
        warnings: usize,
        /// Info-severity findings.
        infos: usize,
    },
    /// A lint-backed gate rejected something: the pre-flight flow gate
    /// hit a denied code, or the evaluation cache refused a partial plan
    /// because the declared static schedule did not verify.
    LintGateFailed {
        /// Which gate failed (`"flow.preflight"` / `"cache.partial"`).
        context: String,
        /// The diagnostic code that triggered the failure.
        code: String,
        /// Number of findings with that code.
        findings: usize,
    },
    /// A formal verification run (bounded model check of one lint
    /// finding) started.
    VerifyStarted {
        /// Diagnostic code under check (`"FXL002"`, …).
        code: String,
        /// Anchor signal of the property being checked.
        signal: String,
        /// Number of state-holding registers in the extracted model.
        registers: usize,
    },
    /// The checker proved the property: the reachable state space closed
    /// with no bad state, discharging the diagnostic.
    VerifyProved {
        /// Diagnostic code discharged.
        code: String,
        /// Anchor signal of the property.
        signal: String,
        /// Distinct states in the closed reachable set.
        states: usize,
        /// Exploration depth (ticks) at closure.
        depth: usize,
    },
    /// The checker found a concrete input sequence driving the design
    /// into the hazard the diagnostic warned about.
    VerifyCounterexample {
        /// Diagnostic code refuted.
        code: String,
        /// Anchor signal of the property.
        signal: String,
        /// Length of the witness stimulus in ticks.
        steps: usize,
    },
    /// The checker gave up without a verdict: state space or input
    /// alphabet exceeded its bounds, or the model was not finite-state.
    VerifyBoundExhausted {
        /// Diagnostic code left undecided.
        code: String,
        /// Anchor signal of the property.
        signal: String,
        /// Why the check was inconclusive (`"state_too_large"`, …).
        reason: String,
        /// States explored before giving up.
        states: usize,
    },
    /// A scenario shard failed — panicked or lost its result — after
    /// every permitted attempt. Under a `Strict` fault policy the sweep
    /// aborts here; under `Degraded` the surviving shards are merged and
    /// coverage drops.
    ShardFailed {
        /// 0-based scenario index of the failed shard.
        shard: usize,
        /// The scenario label (`Scenario::label`).
        scenario: String,
        /// Attempts made before giving up.
        attempts: usize,
        /// The captured panic message or failure cause.
        cause: String,
    },
    /// A failed shard attempt was retried with the same scenario (same
    /// seed, so a retry that succeeds is bit-identical to a fault-free
    /// run).
    ShardRetried {
        /// 0-based scenario index of the retried shard.
        shard: usize,
        /// 0-based attempt number being started (1 = first retry).
        attempt: usize,
    },
    /// A scenario that exhausted its retry budget was quarantined: the
    /// sweep stops re-simulating it and reports reduced coverage instead.
    ShardQuarantined {
        /// 0-based scenario index of the quarantined shard.
        shard: usize,
        /// The scenario label (`Scenario::label`).
        scenario: String,
    },
    /// Flow state was checkpointed to the journal-backed checkpoint file.
    CheckpointWritten {
        /// 0-based checkpoint sequence number (monotonic per flow).
        sequence: usize,
        /// The phase whose iteration just completed.
        phase: Phase,
        /// The 1-based iteration just completed.
        iteration: usize,
    },
    /// A checkpoint write failed (I/O error or injected fault). The flow
    /// continues; the previous checkpoint on disk stays authoritative.
    CheckpointFailed {
        /// Sequence number of the failed write.
        sequence: usize,
        /// The failure cause.
        cause: String,
    },
    /// A flow was reconstructed from a checkpoint file; the restored
    /// journal follows this event.
    ResumedFromCheckpoint {
        /// Sequence number of the checkpoint resumed from.
        sequence: usize,
        /// The phase the flow will resume in.
        phase: Phase,
        /// The 1-based iteration the flow will resume at.
        iteration: usize,
        /// Number of journal events restored from the checkpoint.
        events: usize,
    },
    /// A wall-clock or simulation-count budget ran out; the flow returns
    /// its best-so-far annotations marked `Partial` instead of erroring.
    BudgetExhausted {
        /// The phase that was running when the budget ran out.
        phase: Phase,
        /// Simulations completed so far across the run.
        simulations: u64,
        /// Which budget ran out and where (human-readable).
        reason: String,
    },
    /// A design's captured execution trace was lowered to a straight-line
    /// bytecode program, enabling compiled (and batched) re-simulation.
    BackendCompiled {
        /// The backend that compiled (`"compiled"` / `"batched"`).
        backend: String,
        /// Deduplicated cycle kinds in the program.
        kinds: usize,
        /// Total bytecode instructions across all kinds.
        instructions: usize,
        /// Scheduled simulation cycles per replay.
        cycles: u64,
    },
    /// A compiled/batched backend request fell back to the interpreted
    /// simulator — the static-schedule lint refused the design, lowering
    /// failed, or the run mode (armed fault plan, checkpoint resume) is
    /// only supported interpreted. The run proceeds with identical
    /// results, just without the speedup.
    BackendFallback {
        /// The backend that was requested (`"compiled"` / `"batched"`).
        backend: String,
        /// Why the fallback happened (e.g. `"FXL001"`).
        reason: String,
    },
    /// The job server admitted a submitted job into its bounded queue
    /// and journaled it to the write-ahead jobs log.
    JobAccepted {
        /// The server-assigned job id (stable across restarts).
        job: String,
        /// The submitting tenant.
        tenant: String,
        /// Queue depth *after* admission.
        queue_depth: usize,
    },
    /// Admission control refused a submitted job (full queue, oversized
    /// spec, unknown design kind). The job is never enqueued or journaled
    /// as accepted; the submitter gets the reason back.
    JobRejected {
        /// The submitting tenant.
        tenant: String,
        /// Why admission refused the job (`"queue full (cap 64)"`, …).
        reason: String,
    },
    /// A worker picked a queued job and began (or resumed) its flow.
    JobStarted {
        /// The job id.
        job: String,
        /// The submitting tenant.
        tenant: String,
        /// 1-based attempt number (1 = first execution).
        attempt: usize,
    },
    /// A failed job was rescheduled after its deterministic backoff.
    JobRetried {
        /// The job id.
        job: String,
        /// 1-based attempt number being scheduled next.
        attempt: usize,
        /// The jittered backoff delay that preceded the retry, in ms.
        backoff_ms: u64,
    },
    /// A restarted server found the job accepted-but-unfinished in the
    /// write-ahead log and requeued it, resuming from its last
    /// checkpoint when one exists.
    JobRecovered {
        /// The job id.
        job: String,
        /// The submitting tenant.
        tenant: String,
        /// Whether a usable checkpoint file was found to resume from
        /// (`false` means the job restarts from scratch — still
        /// bit-identical, just without the saved progress).
        from_checkpoint: bool,
    },
    /// A job reached a terminal state: `"complete"`, `"partial"` (budget
    /// exhausted or cancelled) or `"failed"` (error after all retries).
    JobCompleted {
        /// The job id.
        job: String,
        /// Terminal status wire tag.
        status: String,
        /// Total execution attempts consumed.
        attempts: usize,
    },
}

impl Event {
    /// The event's wire tag (the JSON `"event"` member).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::OverflowDetected { .. } => "overflow_detected",
            Event::IterationStarted { .. } => "iteration_started",
            Event::IntervalExploded { .. } => "interval_exploded",
            Event::AutoRange { .. } => "auto_range",
            Event::AutoError { .. } => "auto_error",
            Event::SignalResolved { .. } => "signal_resolved",
            Event::PhaseConverged { .. } => "phase_converged",
            Event::PhaseFailed { .. } => "phase_failed",
            Event::TypeApplied { .. } => "type_applied",
            Event::VerifyCompleted { .. } => "verify_completed",
            Event::ShardStarted { .. } => "shard_started",
            Event::ShardMerged { .. } => "shard_merged",
            Event::CacheInvalidated { .. } => "cache_invalidated",
            Event::RangeClamped { .. } => "range_clamped",
            Event::RangeExploded { .. } => "range_exploded",
            Event::LintDiagnostic { .. } => "lint_diagnostic",
            Event::LintCompleted { .. } => "lint_completed",
            Event::LintGateFailed { .. } => "lint_gate_failed",
            Event::VerifyStarted { .. } => "verify_started",
            Event::VerifyProved { .. } => "verify_proved",
            Event::VerifyCounterexample { .. } => "verify_counterexample",
            Event::VerifyBoundExhausted { .. } => "verify_bound_exhausted",
            Event::ShardFailed { .. } => "shard_failed",
            Event::ShardRetried { .. } => "shard_retried",
            Event::ShardQuarantined { .. } => "shard_quarantined",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::CheckpointFailed { .. } => "checkpoint_failed",
            Event::ResumedFromCheckpoint { .. } => "resumed_from_checkpoint",
            Event::BudgetExhausted { .. } => "budget_exhausted",
            Event::BackendCompiled { .. } => "backend_compiled",
            Event::BackendFallback { .. } => "backend_fallback",
            Event::JobAccepted { .. } => "job_accepted",
            Event::JobRejected { .. } => "job_rejected",
            Event::JobStarted { .. } => "job_started",
            Event::JobRetried { .. } => "job_retried",
            Event::JobRecovered { .. } => "job_recovered",
            Event::JobCompleted { .. } => "job_completed",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let kind = self.kind();
        match self {
            Event::OverflowDetected {
                signal,
                value,
                cycle,
            } => format!(
                r#"{{"event":"{kind}","signal":"{}","value":{},"cycle":{cycle}}}"#,
                escape(signal),
                fmt_f64(*value)
            ),
            Event::IterationStarted { phase, iteration } => {
                format!(r#"{{"event":"{kind}","phase":"{phase}","iteration":{iteration}}}"#)
            }
            Event::IntervalExploded { signal, iteration } => format!(
                r#"{{"event":"{kind}","signal":"{}","iteration":{iteration}}}"#,
                escape(signal)
            ),
            Event::AutoRange {
                signal,
                lo,
                hi,
                iteration,
            } => format!(
                r#"{{"event":"{kind}","signal":"{}","lo":{},"hi":{},"iteration":{iteration}}}"#,
                escape(signal),
                fmt_f64(*lo),
                fmt_f64(*hi)
            ),
            Event::AutoError {
                signal,
                sigma,
                iteration,
            } => format!(
                r#"{{"event":"{kind}","signal":"{}","sigma":{},"iteration":{iteration}}}"#,
                escape(signal),
                fmt_f64(*sigma)
            ),
            Event::SignalResolved {
                signal,
                phase,
                iteration,
            } => format!(
                r#"{{"event":"{kind}","signal":"{}","phase":"{phase}","iteration":{iteration}}}"#,
                escape(signal)
            ),
            Event::PhaseConverged { phase, iterations } => {
                format!(r#"{{"event":"{kind}","phase":"{phase}","iterations":{iterations}}}"#)
            }
            Event::PhaseFailed {
                phase,
                iterations,
                unresolved,
            } => format!(
                r#"{{"event":"{kind}","phase":"{phase}","iterations":{iterations},"unresolved":"{}"}}"#,
                escape(unresolved)
            ),
            Event::TypeApplied { signal, dtype } => format!(
                r#"{{"event":"{kind}","signal":"{}","dtype":"{}"}}"#,
                escape(signal),
                escape(dtype)
            ),
            Event::VerifyCompleted {
                overflows,
                saturation_events,
            } => format!(
                r#"{{"event":"{kind}","overflows":{overflows},"saturation_events":{saturation_events}}}"#
            ),
            Event::ShardStarted {
                shard,
                seed,
                snr_db,
                samples,
            } => format!(
                r#"{{"event":"{kind}","shard":{shard},"seed":{seed},"snr_db":{},"samples":{samples}}}"#,
                fmt_f64(*snr_db)
            ),
            Event::ShardMerged {
                shard,
                cycles,
                signals,
            } => format!(
                r#"{{"event":"{kind}","shard":{shard},"cycles":{cycles},"signals":{signals}}}"#
            ),
            Event::CacheInvalidated { reason, dirty } => format!(
                r#"{{"event":"{kind}","reason":"{}","dirty":{dirty}}}"#,
                escape(reason)
            ),
            Event::RangeClamped { signal, lo, hi } => format!(
                r#"{{"event":"{kind}","signal":"{}","lo":{},"hi":{}}}"#,
                escape(signal),
                fmt_f64(*lo),
                fmt_f64(*hi)
            ),
            Event::RangeExploded { signal, passes } => format!(
                r#"{{"event":"{kind}","signal":"{}","passes":{passes}}}"#,
                escape(signal)
            ),
            Event::LintDiagnostic {
                code,
                severity,
                signal,
                message,
            } => format!(
                r#"{{"event":"{kind}","code":"{}","severity":"{}","signal":"{}","message":"{}"}}"#,
                escape(code),
                escape(severity),
                escape(signal),
                escape(message)
            ),
            Event::LintCompleted {
                errors,
                warnings,
                infos,
            } => format!(
                r#"{{"event":"{kind}","errors":{errors},"warnings":{warnings},"infos":{infos}}}"#
            ),
            Event::LintGateFailed {
                context,
                code,
                findings,
            } => format!(
                r#"{{"event":"{kind}","context":"{}","code":"{}","findings":{findings}}}"#,
                escape(context),
                escape(code)
            ),
            Event::VerifyStarted {
                code,
                signal,
                registers,
            } => format!(
                r#"{{"event":"{kind}","code":"{}","signal":"{}","registers":{registers}}}"#,
                escape(code),
                escape(signal)
            ),
            Event::VerifyProved {
                code,
                signal,
                states,
                depth,
            } => format!(
                r#"{{"event":"{kind}","code":"{}","signal":"{}","states":{states},"depth":{depth}}}"#,
                escape(code),
                escape(signal)
            ),
            Event::VerifyCounterexample {
                code,
                signal,
                steps,
            } => format!(
                r#"{{"event":"{kind}","code":"{}","signal":"{}","steps":{steps}}}"#,
                escape(code),
                escape(signal)
            ),
            Event::VerifyBoundExhausted {
                code,
                signal,
                reason,
                states,
            } => format!(
                r#"{{"event":"{kind}","code":"{}","signal":"{}","reason":"{}","states":{states}}}"#,
                escape(code),
                escape(signal),
                escape(reason)
            ),
            Event::ShardFailed {
                shard,
                scenario,
                attempts,
                cause,
            } => format!(
                r#"{{"event":"{kind}","shard":{shard},"scenario":"{}","attempts":{attempts},"cause":"{}"}}"#,
                escape(scenario),
                escape(cause)
            ),
            Event::ShardRetried { shard, attempt } => {
                format!(r#"{{"event":"{kind}","shard":{shard},"attempt":{attempt}}}"#)
            }
            Event::ShardQuarantined { shard, scenario } => format!(
                r#"{{"event":"{kind}","shard":{shard},"scenario":"{}"}}"#,
                escape(scenario)
            ),
            Event::CheckpointWritten {
                sequence,
                phase,
                iteration,
            } => format!(
                r#"{{"event":"{kind}","sequence":{sequence},"phase":"{phase}","iteration":{iteration}}}"#
            ),
            Event::CheckpointFailed { sequence, cause } => format!(
                r#"{{"event":"{kind}","sequence":{sequence},"cause":"{}"}}"#,
                escape(cause)
            ),
            Event::ResumedFromCheckpoint {
                sequence,
                phase,
                iteration,
                events,
            } => format!(
                r#"{{"event":"{kind}","sequence":{sequence},"phase":"{phase}","iteration":{iteration},"events":{events}}}"#
            ),
            Event::BudgetExhausted {
                phase,
                simulations,
                reason,
            } => format!(
                r#"{{"event":"{kind}","phase":"{phase}","simulations":{simulations},"reason":"{}"}}"#,
                escape(reason)
            ),
            Event::BackendCompiled {
                backend,
                kinds,
                instructions,
                cycles,
            } => format!(
                r#"{{"event":"{kind}","backend":"{}","kinds":{kinds},"instructions":{instructions},"cycles":{cycles}}}"#,
                escape(backend)
            ),
            Event::BackendFallback { backend, reason } => format!(
                r#"{{"event":"{kind}","backend":"{}","reason":"{}"}}"#,
                escape(backend),
                escape(reason)
            ),
            Event::JobAccepted {
                job,
                tenant,
                queue_depth,
            } => format!(
                r#"{{"event":"{kind}","job":"{}","tenant":"{}","queue_depth":{queue_depth}}}"#,
                escape(job),
                escape(tenant)
            ),
            Event::JobRejected { tenant, reason } => format!(
                r#"{{"event":"{kind}","tenant":"{}","reason":"{}"}}"#,
                escape(tenant),
                escape(reason)
            ),
            Event::JobStarted {
                job,
                tenant,
                attempt,
            } => format!(
                r#"{{"event":"{kind}","job":"{}","tenant":"{}","attempt":{attempt}}}"#,
                escape(job),
                escape(tenant)
            ),
            Event::JobRetried {
                job,
                attempt,
                backoff_ms,
            } => format!(
                r#"{{"event":"{kind}","job":"{}","attempt":{attempt},"backoff_ms":{backoff_ms}}}"#,
                escape(job)
            ),
            Event::JobRecovered {
                job,
                tenant,
                from_checkpoint,
            } => format!(
                r#"{{"event":"{kind}","job":"{}","tenant":"{}","from_checkpoint":{from_checkpoint}}}"#,
                escape(job),
                escape(tenant)
            ),
            Event::JobCompleted {
                job,
                status,
                attempts,
            } => format!(
                r#"{{"event":"{kind}","job":"{}","status":"{}","attempts":{attempts}}}"#,
                escape(job),
                escape(status)
            ),
        }
    }

    /// Deserializes an event from one JSON object (one journal line).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, an unknown `"event"`
    /// tag, or missing/mistyped members.
    pub fn from_json(line: &str) -> Result<Event, JsonError> {
        let v = Json::parse(line)?;
        Event::from_value(&v)
    }

    /// Deserializes an event from an already-parsed [`Json`] object —
    /// the form checkpoint files use, where journal events are embedded
    /// as an array of objects rather than JSON Lines.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on an unknown `"event"` tag or
    /// missing/mistyped members.
    pub fn from_value(v: &Json) -> Result<Event, JsonError> {
        let field_err = |name: &str| JsonError {
            message: format!("missing or mistyped member {name:?}"),
            offset: 0,
        };
        let s = |name: &str| -> Result<String, JsonError> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| field_err(name))
        };
        let f = |name: &str| -> Result<f64, JsonError> {
            v.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| field_err(name))
        };
        let u = |name: &str| -> Result<u64, JsonError> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| field_err(name))
        };
        let phase = |name: &str| -> Result<Phase, JsonError> {
            v.get(name)
                .and_then(Json::as_str)
                .and_then(Phase::parse)
                .ok_or_else(|| field_err(name))
        };
        let kind = s("event")?;
        match kind.as_str() {
            "overflow_detected" => Ok(Event::OverflowDetected {
                signal: s("signal")?,
                value: f("value")?,
                cycle: u("cycle")?,
            }),
            "iteration_started" => Ok(Event::IterationStarted {
                phase: phase("phase")?,
                iteration: u("iteration")? as usize,
            }),
            "interval_exploded" => Ok(Event::IntervalExploded {
                signal: s("signal")?,
                iteration: u("iteration")? as usize,
            }),
            "auto_range" => Ok(Event::AutoRange {
                signal: s("signal")?,
                lo: f("lo")?,
                hi: f("hi")?,
                iteration: u("iteration")? as usize,
            }),
            "auto_error" => Ok(Event::AutoError {
                signal: s("signal")?,
                sigma: f("sigma")?,
                iteration: u("iteration")? as usize,
            }),
            "signal_resolved" => Ok(Event::SignalResolved {
                signal: s("signal")?,
                phase: phase("phase")?,
                iteration: u("iteration")? as usize,
            }),
            "phase_converged" => Ok(Event::PhaseConverged {
                phase: phase("phase")?,
                iterations: u("iterations")? as usize,
            }),
            "phase_failed" => Ok(Event::PhaseFailed {
                phase: phase("phase")?,
                iterations: u("iterations")? as usize,
                unresolved: s("unresolved")?,
            }),
            "type_applied" => Ok(Event::TypeApplied {
                signal: s("signal")?,
                dtype: s("dtype")?,
            }),
            "verify_completed" => Ok(Event::VerifyCompleted {
                overflows: u("overflows")?,
                saturation_events: u("saturation_events")?,
            }),
            "shard_started" => Ok(Event::ShardStarted {
                shard: u("shard")? as usize,
                seed: u("seed")?,
                snr_db: f("snr_db")?,
                samples: u("samples")? as usize,
            }),
            "shard_merged" => Ok(Event::ShardMerged {
                shard: u("shard")? as usize,
                cycles: u("cycles")?,
                signals: u("signals")? as usize,
            }),
            "cache_invalidated" => Ok(Event::CacheInvalidated {
                reason: s("reason")?,
                dirty: u("dirty")? as usize,
            }),
            "range_clamped" => Ok(Event::RangeClamped {
                signal: s("signal")?,
                lo: f("lo")?,
                hi: f("hi")?,
            }),
            "range_exploded" => Ok(Event::RangeExploded {
                signal: s("signal")?,
                passes: u("passes")? as usize,
            }),
            "lint_diagnostic" => Ok(Event::LintDiagnostic {
                code: s("code")?,
                severity: s("severity")?,
                signal: s("signal")?,
                message: s("message")?,
            }),
            "lint_completed" => Ok(Event::LintCompleted {
                errors: u("errors")? as usize,
                warnings: u("warnings")? as usize,
                infos: u("infos")? as usize,
            }),
            "lint_gate_failed" => Ok(Event::LintGateFailed {
                context: s("context")?,
                code: s("code")?,
                findings: u("findings")? as usize,
            }),
            "verify_started" => Ok(Event::VerifyStarted {
                code: s("code")?,
                signal: s("signal")?,
                registers: u("registers")? as usize,
            }),
            "verify_proved" => Ok(Event::VerifyProved {
                code: s("code")?,
                signal: s("signal")?,
                states: u("states")? as usize,
                depth: u("depth")? as usize,
            }),
            "verify_counterexample" => Ok(Event::VerifyCounterexample {
                code: s("code")?,
                signal: s("signal")?,
                steps: u("steps")? as usize,
            }),
            "verify_bound_exhausted" => Ok(Event::VerifyBoundExhausted {
                code: s("code")?,
                signal: s("signal")?,
                reason: s("reason")?,
                states: u("states")? as usize,
            }),
            "shard_failed" => Ok(Event::ShardFailed {
                shard: u("shard")? as usize,
                scenario: s("scenario")?,
                attempts: u("attempts")? as usize,
                cause: s("cause")?,
            }),
            "shard_retried" => Ok(Event::ShardRetried {
                shard: u("shard")? as usize,
                attempt: u("attempt")? as usize,
            }),
            "shard_quarantined" => Ok(Event::ShardQuarantined {
                shard: u("shard")? as usize,
                scenario: s("scenario")?,
            }),
            "checkpoint_written" => Ok(Event::CheckpointWritten {
                sequence: u("sequence")? as usize,
                phase: phase("phase")?,
                iteration: u("iteration")? as usize,
            }),
            "checkpoint_failed" => Ok(Event::CheckpointFailed {
                sequence: u("sequence")? as usize,
                cause: s("cause")?,
            }),
            "resumed_from_checkpoint" => Ok(Event::ResumedFromCheckpoint {
                sequence: u("sequence")? as usize,
                phase: phase("phase")?,
                iteration: u("iteration")? as usize,
                events: u("events")? as usize,
            }),
            "budget_exhausted" => Ok(Event::BudgetExhausted {
                phase: phase("phase")?,
                simulations: u("simulations")?,
                reason: s("reason")?,
            }),
            "backend_compiled" => Ok(Event::BackendCompiled {
                backend: s("backend")?,
                kinds: u("kinds")? as usize,
                instructions: u("instructions")? as usize,
                cycles: u("cycles")?,
            }),
            "backend_fallback" => Ok(Event::BackendFallback {
                backend: s("backend")?,
                reason: s("reason")?,
            }),
            "job_accepted" => Ok(Event::JobAccepted {
                job: s("job")?,
                tenant: s("tenant")?,
                queue_depth: u("queue_depth")? as usize,
            }),
            "job_rejected" => Ok(Event::JobRejected {
                tenant: s("tenant")?,
                reason: s("reason")?,
            }),
            "job_started" => Ok(Event::JobStarted {
                job: s("job")?,
                tenant: s("tenant")?,
                attempt: u("attempt")? as usize,
            }),
            "job_retried" => Ok(Event::JobRetried {
                job: s("job")?,
                attempt: u("attempt")? as usize,
                backoff_ms: u("backoff_ms")?,
            }),
            "job_recovered" => Ok(Event::JobRecovered {
                job: s("job")?,
                tenant: s("tenant")?,
                from_checkpoint: v
                    .get("from_checkpoint")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| field_err("from_checkpoint"))?,
            }),
            "job_completed" => Ok(Event::JobCompleted {
                job: s("job")?,
                status: s("status")?,
                attempts: u("attempts")? as usize,
            }),
            other => Err(JsonError {
                message: format!("unknown event tag {other:?}"),
                offset: 0,
            }),
        }
    }
}

impl fmt::Display for Event {
    /// Human-readable one-liner (the journal's text rendering).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::OverflowDetected {
                signal,
                value,
                cycle,
            } => write!(f, "overflow on {signal}: value {value} at cycle {cycle}"),
            Event::IterationStarted { phase, iteration } => {
                write!(f, "{phase} iteration {iteration} started")
            }
            Event::IntervalExploded { signal, iteration } => {
                write!(f, "iter {iteration}: interval of {signal} exploded")
            }
            Event::AutoRange {
                signal,
                lo,
                hi,
                iteration,
            } => write!(f, "iter {iteration}: {signal}.range({lo}, {hi})"),
            Event::AutoError {
                signal,
                sigma,
                iteration,
            } => write!(f, "iter {iteration}: {signal}.error(sigma={sigma:.3e})"),
            Event::SignalResolved {
                signal,
                phase,
                iteration,
            } => write!(f, "iter {iteration}: {signal} resolved ({phase})"),
            Event::PhaseConverged { phase, iterations } => {
                write!(f, "{phase} phase converged after {iterations} iteration(s)")
            }
            Event::PhaseFailed {
                phase,
                iterations,
                unresolved,
            } => write!(
                f,
                "{phase} phase failed after {iterations} iteration(s): {unresolved}"
            ),
            Event::TypeApplied { signal, dtype } => write!(f, "{signal} := {dtype}"),
            Event::VerifyCompleted {
                overflows,
                saturation_events,
            } => write!(
                f,
                "verification: {overflows} overflows, {saturation_events} saturation events"
            ),
            Event::ShardStarted {
                shard,
                seed,
                snr_db,
                samples,
            } => write!(
                f,
                "shard {shard}: seed {seed}, {snr_db} dB, {samples} samples"
            ),
            Event::ShardMerged {
                shard,
                cycles,
                signals,
            } => write!(
                f,
                "shard {shard}: merged {signals} signals, {cycles} cycles"
            ),
            Event::CacheInvalidated { reason, dirty } => {
                write!(
                    f,
                    "eval cache invalidated ({reason}): {dirty} signal(s) dirty"
                )
            }
            Event::RangeClamped { signal, lo, hi } => {
                write!(f, "division range of {signal} clamped to [{lo}, {hi}]")
            }
            Event::RangeExploded { signal, passes } => {
                write!(
                    f,
                    "analytical range of {signal} exploded after {passes} growing pass(es)"
                )
            }
            Event::LintDiagnostic {
                code,
                severity,
                signal,
                message,
            } => write!(f, "{code} {severity} {signal}: {message}"),
            Event::LintCompleted {
                errors,
                warnings,
                infos,
            } => write!(
                f,
                "lint: {errors} error(s), {warnings} warning(s), {infos} info(s)"
            ),
            Event::LintGateFailed {
                context,
                code,
                findings,
            } => write!(
                f,
                "lint gate {context} failed: {findings} {code} finding(s)"
            ),
            Event::VerifyStarted {
                code,
                signal,
                registers,
            } => write!(
                f,
                "verifying {code} at {signal}: {registers} register(s) of state"
            ),
            Event::VerifyProved {
                code,
                signal,
                states,
                depth,
            } => write!(
                f,
                "{code} at {signal} proved safe: {states} reachable state(s) closed at depth {depth}"
            ),
            Event::VerifyCounterexample {
                code,
                signal,
                steps,
            } => write!(
                f,
                "{code} at {signal} refuted: counterexample in {steps} tick(s)"
            ),
            Event::VerifyBoundExhausted {
                code,
                signal,
                reason,
                states,
            } => write!(
                f,
                "{code} at {signal} undecided ({reason}) after {states} state(s)"
            ),
            Event::ShardFailed {
                shard,
                scenario,
                attempts,
                cause,
            } => write!(
                f,
                "shard {shard} ({scenario}) failed after {attempts} attempt(s): {cause}"
            ),
            Event::ShardRetried { shard, attempt } => {
                write!(f, "shard {shard}: retry attempt {attempt}")
            }
            Event::ShardQuarantined { shard, scenario } => {
                write!(f, "shard {shard} ({scenario}) quarantined")
            }
            Event::CheckpointWritten {
                sequence,
                phase,
                iteration,
            } => write!(
                f,
                "checkpoint {sequence} written after {phase} iteration {iteration}"
            ),
            Event::CheckpointFailed { sequence, cause } => {
                write!(f, "checkpoint {sequence} write failed: {cause}")
            }
            Event::ResumedFromCheckpoint {
                sequence,
                phase,
                iteration,
                events,
            } => write!(
                f,
                "resumed from checkpoint {sequence} at {phase} iteration {iteration} ({events} events restored)"
            ),
            Event::BudgetExhausted {
                phase,
                simulations,
                reason,
            } => write!(
                f,
                "budget exhausted in {phase} phase after {simulations} simulation(s): {reason}"
            ),
            Event::BackendCompiled {
                backend,
                kinds,
                instructions,
                cycles,
            } => write!(
                f,
                "{backend} backend compiled: {kinds} cycle kind(s), {instructions} instruction(s), {cycles} cycles"
            ),
            Event::BackendFallback { backend, reason } => {
                write!(f, "{backend} backend fell back to interpreted: {reason}")
            }
            Event::JobAccepted {
                job,
                tenant,
                queue_depth,
            } => write!(
                f,
                "job {job} accepted from {tenant} (queue depth {queue_depth})"
            ),
            Event::JobRejected { tenant, reason } => {
                write!(f, "job from {tenant} rejected: {reason}")
            }
            Event::JobStarted {
                job,
                tenant,
                attempt,
            } => write!(f, "job {job} ({tenant}) started, attempt {attempt}"),
            Event::JobRetried {
                job,
                attempt,
                backoff_ms,
            } => write!(
                f,
                "job {job} retrying as attempt {attempt} after {backoff_ms} ms backoff"
            ),
            Event::JobRecovered {
                job,
                tenant,
                from_checkpoint,
            } => write!(
                f,
                "job {job} ({tenant}) recovered from the jobs log{}",
                if *from_checkpoint {
                    ", resuming from checkpoint"
                } else {
                    ", restarting from scratch"
                }
            ),
            Event::JobCompleted {
                job,
                status,
                attempts,
            } => write!(f, "job {job} completed {status} after {attempts} attempt(s)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::OverflowDetected {
                signal: "acc".into(),
                value: 3.75,
                cycle: 17,
            },
            Event::IterationStarted {
                phase: Phase::Msb,
                iteration: 1,
            },
            Event::IntervalExploded {
                signal: "w".into(),
                iteration: 1,
            },
            Event::AutoRange {
                signal: "b".into(),
                lo: -0.355,
                hi: 0.189,
                iteration: 1,
            },
            Event::AutoError {
                signal: "nco".into(),
                sigma: 2.26e-4,
                iteration: 1,
            },
            Event::SignalResolved {
                signal: "w".into(),
                phase: Phase::Msb,
                iteration: 2,
            },
            Event::PhaseConverged {
                phase: Phase::Lsb,
                iterations: 2,
            },
            Event::PhaseFailed {
                phase: Phase::Msb,
                iterations: 8,
                unresolved: "a, b".into(),
            },
            Event::TypeApplied {
                signal: "y\"q\\".into(),
                dtype: "<8,6,tc,st,rd>".into(),
            },
            Event::VerifyCompleted {
                overflows: 0,
                saturation_events: 12,
            },
            Event::ShardStarted {
                shard: 3,
                seed: 0xDA7E_1999,
                snr_db: 28.0,
                samples: 4000,
            },
            Event::ShardMerged {
                shard: 3,
                cycles: 4000,
                signals: 14,
            },
            Event::CacheInvalidated {
                reason: "error_sigma".into(),
                dirty: 14,
            },
            Event::RangeClamped {
                signal: "q".into(),
                lo: -8.0,
                hi: 7.9375,
            },
            Event::RangeExploded {
                signal: "acc".into(),
                passes: 64,
            },
            Event::LintDiagnostic {
                code: "FXL001".into(),
                severity: "error".into(),
                signal: "mu".into(),
                message: "written 5999 times, producers at 12000".into(),
            },
            Event::LintCompleted {
                errors: 1,
                warnings: 4,
                infos: 2,
            },
            Event::LintGateFailed {
                context: "cache.partial".into(),
                code: "FXL001".into(),
                findings: 3,
            },
            Event::VerifyStarted {
                code: "FXL002".into(),
                signal: "b".into(),
                registers: 2,
            },
            Event::VerifyProved {
                code: "FXL002".into(),
                signal: "b".into(),
                states: 1024,
                depth: 9,
            },
            Event::VerifyCounterexample {
                code: "FXL004".into(),
                signal: "y1".into(),
                steps: 6,
            },
            Event::VerifyBoundExhausted {
                code: "FXL002".into(),
                signal: "phase".into(),
                reason: "state_too_large".into(),
                states: 0,
            },
            Event::ShardFailed {
                shard: 1,
                scenario: "s1 seed=8 snr=24dB n=1200".into(),
                attempts: 2,
                cause: "injected fault: shard 1 attempt 1".into(),
            },
            Event::ShardRetried {
                shard: 1,
                attempt: 1,
            },
            Event::ShardQuarantined {
                shard: 1,
                scenario: "s1 seed=8 snr=24dB n=1200".into(),
            },
            Event::CheckpointWritten {
                sequence: 0,
                phase: Phase::Msb,
                iteration: 1,
            },
            Event::CheckpointFailed {
                sequence: 1,
                cause: "injected checkpoint-write fault".into(),
            },
            Event::ResumedFromCheckpoint {
                sequence: 1,
                phase: Phase::Lsb,
                iteration: 1,
                events: 42,
            },
            Event::BudgetExhausted {
                phase: Phase::Msb,
                simulations: 2,
                reason: "simulation budget of 2 exhausted".into(),
            },
            Event::BackendCompiled {
                backend: "batched".into(),
                kinds: 3,
                instructions: 412,
                cycles: 4000,
            },
            Event::BackendFallback {
                backend: "compiled".into(),
                reason: "FXL001".into(),
            },
            Event::JobAccepted {
                job: "j-0003".into(),
                tenant: "acme".into(),
                queue_depth: 5,
            },
            Event::JobRejected {
                tenant: "acme".into(),
                reason: "queue full (cap 8)".into(),
            },
            Event::JobStarted {
                job: "j-0003".into(),
                tenant: "acme".into(),
                attempt: 1,
            },
            Event::JobRetried {
                job: "j-0003".into(),
                attempt: 2,
                backoff_ms: 37,
            },
            Event::JobRecovered {
                job: "j-0003".into(),
                tenant: "acme".into(),
                from_checkpoint: true,
            },
            Event::JobCompleted {
                job: "j-0003".into(),
                status: "partial".into(),
                attempts: 2,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for e in sample_events() {
            let line = e.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|err| {
                panic!("{line}: {err}");
            });
            assert_eq!(back, e, "line {line}");
        }
    }

    #[test]
    fn non_finite_payloads_survive() {
        let e = Event::OverflowDetected {
            signal: "x".into(),
            value: f64::INFINITY,
            cycle: 0,
        };
        let back = Event::from_json(&e.to_json()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn unknown_tags_and_missing_members_are_rejected() {
        assert!(Event::from_json(r#"{"event":"nope"}"#).is_err());
        assert!(Event::from_json(r#"{"event":"auto_range","signal":"b"}"#).is_err());
        assert!(Event::from_json("not json").is_err());
    }

    #[test]
    fn display_is_compact_and_named() {
        let e = Event::AutoRange {
            signal: "b".into(),
            lo: -0.2,
            hi: 0.2,
            iteration: 1,
        };
        assert_eq!(e.to_string(), "iter 1: b.range(-0.2, 0.2)");
    }
}
