//! `fixref-obs` — zero-dependency observability for the fixed-point
//! refinement flow.
//!
//! Three layers, each usable on its own:
//!
//! 1. **[`Recorder`]** — a thread-safe metrics sink: monotonic counters,
//!    min/max/mean histograms, and phase-scoped [`Span`]s with wall-clock
//!    and cycle-accurate timing. [`DefaultRecorder`] is the in-memory
//!    implementation; anything `Send + Sync` can stand in for it.
//! 2. **[`Event`] journal** — a structured record of what the refinement
//!    flow *did* (`overflow_detected`, `auto_range`, `phase_converged`,
//!    …), serialized as JSON Lines with [`JournalWriter`] / [`to_jsonl`]
//!    and parsed back with [`parse_journal`].
//! 3. **[`MetricsReport`]** — a renderer for recorder snapshots with
//!    aligned text output and machine-readable JSON output.
//!
//! The crate deliberately has **no dependencies** — JSON emission and
//! parsing are hand-rolled in [`json`] — so every other crate in the
//! workspace can depend on it without cost or cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use event::{Event, Phase};
pub use journal::{parse_journal, to_jsonl, JournalWriter};
pub use json::{Json, JsonError};
pub use metrics::MetricsReport;
pub use recorder::{DefaultRecorder, HistogramSummary, Recorder, Span, SpanId, SpanRecord};
